"""Regenerates the paper's **Table 1** — synthesis results for b14.

For each technique: instrument the circuit, generate the controller,
LUT-map everything and report LUTs/FFs with overhead percentages plus the
RAM budget. The assertions pin the *structural* facts the paper's table
encodes; absolute LUT counts are printed side by side with the paper's.
"""

import pytest

from benchmarks.conftest import once
from repro.eval.paper import PAPER_B14, PAPER_TABLE1
from repro.eval.table1 import run_table1_experiment


@pytest.fixture(scope="module")
def table1(b14):
    return run_table1_experiment(b14, num_cycles=PAPER_B14["stimulus_vectors"])


def test_bench_table1(benchmark, b14):
    result = once(
        benchmark,
        run_table1_experiment,
        b14,
        num_cycles=PAPER_B14["stimulus_vectors"],
    )
    print()
    print(result.render())


class TestTable1Shape:
    def test_original_matches_paper_closely(self, table1):
        # our Viper-style b14 lands within 15 % of the paper's 1,172 LUTs
        # and has exactly the paper's 215 flip-flops
        assert table1.original.ffs == PAPER_TABLE1["original"]["ffs"]
        paper_luts = PAPER_TABLE1["original"]["luts"]
        assert abs(table1.original.luts - paper_luts) / paper_luts < 0.15

    def test_ff_overheads_exact(self, table1):
        # the flip-flop ratios are structural: x2 / x2 / x4
        n = table1.original.ffs
        assert table1.summaries["mask_scan"].modified.ffs == 2 * n
        assert table1.summaries["state_scan"].modified.ffs == 2 * n
        assert table1.summaries["time_multiplexed"].modified.ffs == 4 * n

    def test_time_mux_modified_has_largest_lut_overhead(self, table1):
        luts = {t: s.modified.luts for t, s in table1.summaries.items()}
        assert luts["time_multiplexed"] > luts["mask_scan"]
        assert luts["time_multiplexed"] > luts["state_scan"]

    def test_system_rows_exceed_modified_rows(self, table1):
        for summary in table1.summaries.values():
            assert summary.system.luts > summary.modified.luts
            assert summary.system.ffs > summary.modified.ffs

    def test_mask_scan_system_adds_golden_state_register(self, table1):
        extra = (
            table1.summaries["mask_scan"].system.ffs
            - table1.summaries["mask_scan"].modified.ffs
        )
        # dominated by the 215-bit golden-final-state bank (paper: +236)
        assert extra >= table1.original.ffs

    def test_ram_column_shape(self, table1):
        ram = {t: s.ram for t, s in table1.summaries.items()}
        # time-mux stores no expected outputs: smallest on-chip RAM
        assert ram["time_multiplexed"].fpga_kbits < ram["mask_scan"].fpga_kbits
        # state-scan's faulty states dominate everything (paper: 7,289 kbit)
        assert ram["state_scan"].board_kbits > 50 * ram["mask_scan"].board_kbits
        assert ram["state_scan"].board_kbits == pytest.approx(7465, rel=0.05)

    def test_everything_fits_the_virtex_2000e(self, table1):
        from repro.synth.area import VIRTEX_2000E

        for summary in table1.summaries.values():
            assert summary.system.luts <= VIRTEX_2000E.luts
            assert summary.system.ffs <= VIRTEX_2000E.ffs
