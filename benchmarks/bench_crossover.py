"""Regenerates the paper's in-text **crossover claim** (C3):

"[state-scan] improves when the number of cycles is higher than the
flip-flop number. The Time-Multiplexed technique is always the fastest."

Sweeps processor-shaped circuits across (flip-flops x testbench length)
and verifies both halves of the claim empirically.
"""

import pytest

from benchmarks.conftest import once
from repro.eval.crossover import run_crossover_experiment

BUDGETS = (32, 64, 128)
LENGTHS = (32, 128, 512)


@pytest.fixture(scope="module")
def crossover():
    return run_crossover_experiment(BUDGETS, LENGTHS, seed=7)


def test_bench_crossover_sweep(benchmark):
    result = once(benchmark, run_crossover_experiment, BUDGETS, LENGTHS, 7)
    print()
    print(result.render())


class TestCrossoverClaims:
    def test_time_mux_always_fastest(self, crossover):
        assert crossover.paper_claims_hold()["time_mux_always_fastest"]

    def test_state_scan_wins_long_benches(self, crossover):
        assert crossover.paper_claims_hold()[
            "state_scan_wins_when_cycles_exceed_flops"
        ]

    def test_mask_scan_wins_short_benches(self, crossover):
        """The b14 situation generalises: with cycles well below the flop
        count, mask-scan beats state-scan."""
        short = [
            p for p in crossover.points if p.num_cycles <= p.num_flops
        ]
        assert short, "sweep must include the short-bench regime"
        assert all(not p.state_scan_wins for p in short)

    def test_state_scan_cost_grows_with_flops(self, crossover):
        by_cycles = {}
        for point in crossover.points:
            by_cycles.setdefault(point.num_cycles, []).append(point)
        for points in by_cycles.values():
            points.sort(key=lambda p: p.num_flops)
            costs = [p.cycles_per_fault["state_scan"] for p in points]
            assert costs == sorted(costs)

    def test_mask_scan_cost_grows_with_cycles(self, crossover):
        by_flops = {}
        for point in crossover.points:
            by_flops.setdefault(point.num_flops, []).append(point)
        for points in by_flops.values():
            points.sort(key=lambda p: p.num_cycles)
            costs = [p.cycles_per_fault["mask_scan"] for p in points]
            assert costs == sorted(costs)
