"""Oracle engine benchmark: the us/fault cost of each grading backend.

The functional oracle is the wall-clock bottleneck of every campaign and
eval table, so this bench tracks each registered engine on the paper's
b14 setup (34,400 faults x 160 cycles), plus the sharded campaign
runner at several worker counts (the orchestration-overhead row).
``scripts/bench_report.py`` dumps the same measurements to
``BENCH_oracle.json`` so the perf trajectory is recorded across PRs.

Also runnable standalone (CI smoke)::

    PYTHONPATH=src python benchmarks/bench_oracle.py --quick
"""

import os
import sys

if __package__ in (None, ""):  # standalone: python benchmarks/bench_oracle.py
    _ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    sys.path.insert(0, _ROOT)
    sys.path.insert(0, os.path.join(_ROOT, "src"))

import pytest

from benchmarks.conftest import once
from repro.run.runner import CampaignRunner, default_pool_workers
from repro.run.spec import CampaignSpec
from repro.sim.backends import available_engines, get_engine
from repro.sim.backends.fused import FusedEngine
from repro.sim.cache import compiled_for, golden_for
from repro.sim.parallel import grade_faults

#: the "many workers" point benchmarked against workers=1
POOL_WORKERS = default_pool_workers()


@pytest.fixture(scope="module", autouse=True)
def warm_shared_artifacts(b14, b14_bench):
    """Pre-build compile/golden caches so each engine bench measures
    grading alone, not shared setup."""
    golden_for(compiled_for(b14), b14_bench)


@pytest.mark.parametrize("backend", sorted(available_engines()))
def test_bench_oracle_backend(benchmark, b14, b14_bench, b14_faults, backend):
    result = once(
        benchmark, grade_faults, b14, b14_bench, b14_faults, backend=backend
    )
    assert len(result.fail_cycles) == len(b14_faults)
    us_per_fault = benchmark.stats["mean"] * 1e6 / len(b14_faults)
    print(f"\n{backend}: {us_per_fault:.3f} us/fault on {len(b14_faults)} faults")


def test_bench_fused_python_plan(benchmark, b14, b14_bench, b14_faults, monkeypatch):
    """The fused engine's pure-numpy fallback (no C compiler available)."""
    monkeypatch.setattr(FusedEngine, "use_native", False)
    result = once(
        benchmark, grade_faults, b14, b14_bench, b14_faults, backend="fused"
    )
    assert len(result.fail_cycles) == len(b14_faults)


@pytest.mark.parametrize("workers", [1, POOL_WORKERS])
def test_bench_sharded_runner(benchmark, b14, b14_bench, b14_faults, workers):
    """Campaign-runner grading of the b14 oracle, workers=1 vs a pool —
    the cost of orchestration (sharding, merge, process fan-out)."""
    spec = CampaignSpec(circuit="b14", technique="time_multiplexed")
    runner = CampaignRunner(workers=workers)
    result = once(benchmark, runner.grade, spec)
    assert result.num_faults == len(b14_faults)
    us_per_fault = benchmark.stats["mean"] * 1e6 / len(b14_faults)
    print(
        f"\nsharded runner, workers={workers}: {us_per_fault:.3f} us/fault"
    )


class TestOracleSpeedContract:
    """The acceptance bar this repo holds the default engine to."""

    def test_fused_is_default_and_at_least_5x_numpy(
        self, b14, b14_bench, b14_faults
    ):
        import time

        from repro.sim.parallel import DEFAULT_BACKEND

        assert DEFAULT_BACKEND == "fused"
        # warm program/plan caches before timing
        grade_faults(b14, b14_bench, b14_faults, backend="fused")

        started = time.perf_counter()
        fused = grade_faults(b14, b14_bench, b14_faults, backend="fused")
        fused_seconds = time.perf_counter() - started

        started = time.perf_counter()
        reference = grade_faults(b14, b14_bench, b14_faults, backend="numpy")
        numpy_seconds = time.perf_counter() - started

        assert fused.fail_cycles == reference.fail_cycles
        assert fused.vanish_cycles == reference.vanish_cycles
        if get_engine("fused").last_stats.get("native"):
            assert numpy_seconds / fused_seconds >= 5.0, (
                f"fused {fused_seconds:.3f}s vs numpy {numpy_seconds:.3f}s"
            )


def _standalone(argv=None) -> int:
    """No-pytest smoke bench (CI runs this with ``--quick --gate-scaling``)."""
    import argparse
    import time

    from repro.run.runner import SHARDS_PER_WORKER

    parser = argparse.ArgumentParser(description=_standalone.__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="workers 1 vs 2 only, two steady repeats",
    )
    parser.add_argument(
        "--workers",
        default=None,
        metavar="N,N,...",
        help="comma-separated worker counts to time (e.g. 1,2,4; default: "
        "1,2 with --quick, else 1 and the pool default)",
    )
    parser.add_argument(
        "--gate-scaling",
        action="store_true",
        help="fail when workers=2 steady state is more than "
        "--scaling-tolerance slower than workers=1",
    )
    parser.add_argument(
        "--scaling-tolerance",
        type=float,
        default=None,
        help="fractional slowdown of workers=2 vs workers=1 the scaling "
        "gate tolerates (default: 0 on a multi-core host — workers=2 "
        "must win — and 0.10 on a single core, where only pool overhead "
        "is measurable)",
    )
    args = parser.parse_args(argv)

    from repro.circuits.itc99.b14 import b14_program_testbench, build_b14
    from repro.faults.model import exhaustive_fault_list

    circuit = build_b14()
    bench = b14_program_testbench(circuit, 160, seed=0)
    faults = exhaustive_fault_list(circuit, bench.num_cycles)
    golden_for(compiled_for(circuit), bench)  # shared setup out of timings

    started = time.perf_counter()
    reference = grade_faults(circuit, bench, faults)
    serial_seconds = time.perf_counter() - started
    print(
        f"grade_faults (fused, serial): {serial_seconds:.3f}s "
        f"({serial_seconds * 1e6 / len(faults):.3f} us/fault)"
    )

    spec = CampaignSpec(circuit="b14", technique="time_multiplexed")
    if args.workers:
        worker_counts = tuple(
            int(part) for part in args.workers.split(",") if part.strip()
        )
    else:
        worker_counts = (1, 2) if args.quick else (1, POOL_WORKERS)
    # One shard plan for every worker count — the workers=1 default
    # plan: the comparison below is about process scaling, so shard
    # count (and its per-shard/IPC overhead) must not vary with the
    # worker count.
    shards = SHARDS_PER_WORKER
    steady = {}
    for workers in worker_counts:
        with CampaignRunner(workers=workers, shards=shards) as runner:
            started = time.perf_counter()
            merged = runner.grade(spec)  # warmup pass, reported separately
            warmup = time.perf_counter() - started
            best = float("inf")
            for _ in range(2):
                started = time.perf_counter()
                merged = runner.grade(spec)
                best = min(best, time.perf_counter() - started)
        steady[workers] = best
        print(
            f"sharded runner (workers={workers}): steady {best:.3f}s "
            f"({best * 1e6 / len(faults):.3f} us/fault), "
            f"warmup {warmup:.3f}s"
        )
        if merged.fail_cycles != reference.fail_cycles or (
            merged.vanish_cycles != reference.vanish_cycles
        ):
            print("ERROR: sharded runner disagrees with serial grading")
            return 1
    print("sharded runner bit-exact with serial grading")
    if args.gate_scaling and 1 in steady and 2 in steady:
        tolerance = args.scaling_tolerance
        if tolerance is None:
            # On >= 2 real cores the dynamic queue must make workers=2
            # win outright; a single core can only measure pool overhead,
            # so a small slowdown budget applies instead.
            tolerance = 0.0 if (os.cpu_count() or 1) >= 2 else 0.10
        ratio = steady[2] / steady[1]
        limit = 1.0 + tolerance
        print(
            f"scaling gate: workers=2 / workers=1 = {ratio:.3f} "
            f"(limit {limit:.2f}, {os.cpu_count()} cpu(s))"
        )
        if ratio > limit:
            print(
                f"ERROR: workers=2 ({steady[2]:.3f}s) is more than "
                f"{100 * tolerance:.0f}% slower than "
                f"workers=1 ({steady[1]:.3f}s)"
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(_standalone())
