"""Oracle engine benchmark: the us/fault cost of each grading backend.

The functional oracle is the wall-clock bottleneck of every campaign and
eval table, so this bench tracks each registered engine on the paper's
b14 setup (34,400 faults x 160 cycles). ``scripts/bench_report.py`` dumps
the same measurements to ``BENCH_oracle.json`` so the perf trajectory is
recorded across PRs.
"""

import pytest

from benchmarks.conftest import once
from repro.sim.backends import available_engines, get_engine
from repro.sim.backends.fused import FusedEngine
from repro.sim.cache import compiled_for, golden_for
from repro.sim.parallel import grade_faults


@pytest.fixture(scope="module", autouse=True)
def warm_shared_artifacts(b14, b14_bench):
    """Pre-build compile/golden caches so each engine bench measures
    grading alone, not shared setup."""
    golden_for(compiled_for(b14), b14_bench)


@pytest.mark.parametrize("backend", sorted(available_engines()))
def test_bench_oracle_backend(benchmark, b14, b14_bench, b14_faults, backend):
    result = once(
        benchmark, grade_faults, b14, b14_bench, b14_faults, backend=backend
    )
    assert len(result.fail_cycles) == len(b14_faults)
    us_per_fault = benchmark.stats["mean"] * 1e6 / len(b14_faults)
    print(f"\n{backend}: {us_per_fault:.3f} us/fault on {len(b14_faults)} faults")


def test_bench_fused_python_plan(benchmark, b14, b14_bench, b14_faults, monkeypatch):
    """The fused engine's pure-numpy fallback (no C compiler available)."""
    monkeypatch.setattr(FusedEngine, "use_native", False)
    result = once(
        benchmark, grade_faults, b14, b14_bench, b14_faults, backend="fused"
    )
    assert len(result.fail_cycles) == len(b14_faults)


class TestOracleSpeedContract:
    """The acceptance bar this repo holds the default engine to."""

    def test_fused_is_default_and_at_least_5x_numpy(
        self, b14, b14_bench, b14_faults
    ):
        import time

        from repro.sim.parallel import DEFAULT_BACKEND

        assert DEFAULT_BACKEND == "fused"
        # warm program/plan caches before timing
        grade_faults(b14, b14_bench, b14_faults, backend="fused")

        started = time.perf_counter()
        fused = grade_faults(b14, b14_bench, b14_faults, backend="fused")
        fused_seconds = time.perf_counter() - started

        started = time.perf_counter()
        reference = grade_faults(b14, b14_bench, b14_faults, backend="numpy")
        numpy_seconds = time.perf_counter() - started

        assert fused.fail_cycles == reference.fail_cycles
        assert fused.vanish_cycles == reference.vanish_cycles
        if get_engine("fused").last_stats.get("native"):
            assert numpy_seconds / fused_seconds >= 5.0, (
                f"fused {fused_seconds:.3f}s vs numpy {numpy_seconds:.3f}s"
            )
