"""Regenerates the paper's **Table 2** — emulation times for b14 at 25 MHz.

The campaign engines replay each technique's protocol over the complete
34,400-fault set and count FPGA clock cycles; time = cycles / 25 MHz. The
assertions pin the paper's qualitative facts (ordering, early-exit
effect); measured ms / us-per-fault are printed against the paper's.
"""

import pytest

from benchmarks.conftest import once
from repro.emu.campaign import run_campaign
from repro.eval.paper import PAPER_TABLE2
from repro.eval.table2 import run_table2_experiment


@pytest.fixture(scope="module")
def table2(b14, b14_bench):
    return run_table2_experiment(b14, b14_bench)


def test_bench_table2(benchmark, b14, b14_bench):
    result = once(benchmark, run_table2_experiment, b14, b14_bench)
    print()
    print(result.render())


@pytest.mark.parametrize("technique", sorted(PAPER_TABLE2))
def test_bench_single_campaign(benchmark, b14, b14_bench, b14_faults, b14_oracle, technique):
    """Per-technique campaign cost (oracle shared, so this times the
    protocol cycle-accounting itself)."""
    result = once(
        benchmark,
        run_campaign,
        b14,
        b14_bench,
        technique,
        faults=b14_faults,
        oracle=b14_oracle,
    )
    print()
    print(
        f"{technique}: {result.timing.milliseconds:.2f} ms measured vs "
        f"{PAPER_TABLE2[technique]['emulation_ms']:.2f} ms paper"
    )


class TestTable2Shape:
    def test_ordering_matches_paper(self, table2):
        # paper: time-mux 19.95 ms < mask-scan 141.11 ms < state-scan 386.40 ms
        ms = {t: c.timing.milliseconds for t, c in table2.campaigns.items()}
        assert ms["time_multiplexed"] < ms["mask_scan"] < ms["state_scan"]

    def test_magnitudes_within_band(self, table2):
        """Absolute times within ~2.5x of the paper (different b14
        implementation and stimulus, same protocol)."""
        for technique, campaign in table2.campaigns.items():
            paper_ms = PAPER_TABLE2[technique]["emulation_ms"]
            ratio = campaign.timing.milliseconds / paper_ms
            assert 0.4 < ratio < 2.5, (technique, ratio)

    def test_time_mux_order_of_magnitude_faster_than_state_scan(self, table2):
        tmux = table2.campaigns["time_multiplexed"].timing.us_per_fault
        state = table2.campaigns["state_scan"].timing.us_per_fault
        assert state / tmux > 8  # paper: 11.2 / 0.58 = 19x

    def test_us_per_fault_sub_10us_for_all(self, table2):
        # the headline: all autonomous techniques are single-digit-us to
        # low-tens-of-us per fault (vs 100 us host-driven)
        for campaign in table2.campaigns.values():
            assert campaign.timing.us_per_fault < 20

    def test_state_scan_setup_dominated_by_scan_in(self, table2):
        breakdown = table2.campaigns["state_scan"].breakdown
        assert breakdown.setup > breakdown.run

    def test_time_mux_run_cycles_shrunk_by_early_exit(self, table2, b14_bench):
        """Early termination: the average emulated cycles per fault must be
        far below the full 2x testbench interleave."""
        campaign = table2.campaigns["time_multiplexed"]
        full_interleave = 2 * b14_bench.num_cycles
        assert campaign.breakdown.run / campaign.num_faults < full_interleave / 4
