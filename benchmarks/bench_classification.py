"""Regenerates the paper's in-text **fault classification** (claim C1):
34,400 single faults on b14 graded into failure / latent / silent.

Paper: 49.2 % failure, 4.4 % latent, 46.4 % silent. Our Viper-style b14
must land in the same regime: failure and silent each roughly half, latent
a small residue. This bench also times the bit-parallel oracle itself —
the software engine standing in for the FPGA.
"""

import pytest

from benchmarks.conftest import once
from repro.eval.classification import run_classification_experiment
from repro.eval.paper import PAPER_CLASSIFICATION
from repro.sim.parallel import grade_faults


@pytest.fixture(scope="module")
def classification(b14, b14_bench):
    return run_classification_experiment(b14, b14_bench)


def test_bench_grade_all_faults(benchmark, b14, b14_bench, b14_faults):
    """Time grading the complete fault set (numpy backend)."""
    result = once(benchmark, grade_faults, b14, b14_bench, b14_faults)
    assert result.num_faults == 34_400


def test_bench_classification_report(benchmark, b14, b14_bench):
    result = once(benchmark, run_classification_experiment, b14, b14_bench)
    print()
    print(result.render())
    print(
        f"mean failure latency {result.mean_failure_latency():.1f} cycles, "
        f"mean silent latency {result.mean_silent_latency():.1f} cycles"
    )


class TestClassificationShape:
    def test_failure_fraction_band(self, classification):
        # paper: 49.2 % — processor-shaped circuits land 35-65 %
        assert 35 <= classification.percentages["failure"] <= 65

    def test_silent_fraction_band(self, classification):
        # paper: 46.4 %
        assert 25 <= classification.percentages["silent"] <= 60

    def test_latent_is_smallest_class(self, classification):
        pct = classification.percentages
        assert pct["latent"] < pct["failure"]
        assert pct["latent"] < pct["silent"]
        # paper: 4.4 % — ours stays below 15 %
        assert pct["latent"] < 15

    def test_total_is_exhaustive(self, classification):
        assert classification.num_faults == 34_400

    def test_paper_reference_unchanged(self):
        assert PAPER_CLASSIFICATION == {
            "failure": 49.2, "latent": 4.4, "silent": 46.4
        }

    def test_short_latencies_enable_early_exit(self, classification):
        """The latency structure behind Table 2: failures and silents
        classify quickly, which is what the early-exit protocols bank on."""
        assert classification.mean_failure_latency() < 40
        assert classification.mean_silent_latency() < 40
