"""Shared fixtures for the benchmark harness.

Everything expensive (b14, its program testbench, the exhaustive fault
oracle) is computed once per session and shared across benches — the
oracle is technique-independent, exactly as in the library itself.
"""

from __future__ import annotations

import pytest

from repro.circuits.itc99.b14 import b14_program_testbench, build_b14
from repro.eval.paper import PAPER_B14
from repro.faults.model import exhaustive_fault_list
from repro.sim.parallel import grade_faults


@pytest.fixture(scope="session")
def b14():
    return build_b14()


@pytest.fixture(scope="session")
def b14_bench(b14):
    return b14_program_testbench(b14, PAPER_B14["stimulus_vectors"], seed=0)


@pytest.fixture(scope="session")
def b14_faults(b14, b14_bench):
    faults = exhaustive_fault_list(b14, b14_bench.num_cycles)
    assert len(faults) == PAPER_B14["faults"]
    return faults


@pytest.fixture(scope="session")
def b14_oracle(b14, b14_bench, b14_faults):
    return grade_faults(b14, b14_bench, b14_faults)


def once(benchmark, fn, *args, **kwargs):
    """Run a heavy function exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
