"""Ablation benches for the design choices DESIGN.md calls out.

Not a paper table — these quantify the substrate decisions of this
reproduction: the bit-parallel oracle vs the bigint backend vs serial
replay, and LUT-mapper throughput. They justify why campaigns of paper
scale run in seconds in pure Python.
"""

import pytest

from benchmarks.conftest import once
from repro.faults.sampling import sample_fault_list
from repro.sim.compile import compile_netlist
from repro.sim.cycle import CycleSimulator, replay_single_fault, run_golden
from repro.sim.parallel import grade_faults
from repro.synth.lutmap import map_to_luts


def test_bench_oracle_numpy(benchmark, b14, b14_bench, b14_faults):
    """34,400 faults, numpy backend — the production path."""
    result = once(benchmark, grade_faults, b14, b14_bench, b14_faults, "numpy")
    assert result.num_faults == len(b14_faults)


def test_bench_oracle_bigint_sample(benchmark, b14, b14_bench, b14_faults):
    """Bigint backend over a 2,048-fault sample (dependency-free path)."""
    sample = sample_fault_list(b14_faults, 2048, seed=3)
    result = once(benchmark, grade_faults, b14, b14_bench, sample, "bigint")
    assert result.num_faults == 2048


def test_bench_serial_replay_sample(benchmark, b14, b14_bench, b14_faults):
    """Serial replay over 16 faults — the per-fault cost that makes
    unaccelerated software fault simulation slow."""
    sample = sample_fault_list(b14_faults, 16, seed=4)
    compiled = compile_netlist(b14)
    golden = run_golden(compiled, b14_bench)

    def replay_all():
        for fault in sample:
            replay_single_fault(
                compiled, b14_bench, fault.flop_index, fault.cycle, golden
            )

    once(benchmark, replay_all)


def test_bench_golden_run(benchmark, b14, b14_bench):
    """One 160-cycle golden run of b14 on the compiled simulator."""
    compiled = compile_netlist(b14)

    def golden():
        return CycleSimulator(compiled).run(b14_bench)

    outputs = once(benchmark, golden)
    assert len(outputs) == b14_bench.num_cycles


def test_bench_lut_mapping_b14(benchmark, b14):
    """Priority-cuts 4-LUT mapping of the 1,700-gate b14."""
    mapping = once(benchmark, map_to_luts, b14)
    assert mapping.num_luts > 0


@pytest.mark.parametrize("k", [3, 4, 5, 6])
def test_bench_lut_k_sweep(benchmark, b14, k):
    """Mapper ablation: LUT count vs LUT input size."""
    mapping = once(benchmark, map_to_luts, b14, k)
    print(f"\nk={k}: {mapping.num_luts} LUTs, depth {mapping.depth}")
    assert all(len(cut) <= k for cut in mapping.luts.values())
