"""Regenerates the paper's **Figure 1** — the time-multiplexed instrument.

The figure is a schematic; its machine-checkable form is (a) the census
of what the transform inserts per circuit flip-flop (GOLDEN / FAULTY /
MASK / STATE flops + glue) and (b) a demonstration that the instrument
actually works: a full protocol-level injection driven through the
instrumented netlist, clock edge by clock edge.
"""

import pytest

from benchmarks.conftest import once
from repro.emu.instrument.timemux import instrument_time_multiplexed
from repro.emu.protocol import _Driver, drive_time_mux
from repro.eval.figure1 import run_figure1_census
from repro.faults.classify import FaultClass
from repro.faults.model import SeuFault
from repro.sim.parallel import grade_faults
from repro.sim.vectors import random_testbench
from tests.conftest import build_counter


def test_bench_figure1_census(benchmark):
    census = once(benchmark, run_figure1_census)
    print()
    print(census.render())
    assert census.flops_per_bit == {
        "golden": 1, "faulty": 1, "mask": 1, "state": 1
    }


def test_bench_instrument_b14(benchmark, b14):
    """Time instrumenting the full 215-flop b14 with Figure-1 cells."""
    instrumented = once(benchmark, instrument_time_multiplexed, b14)
    assert instrumented.netlist.num_ffs == 4 * b14.num_ffs


def test_bench_protocol_injection(benchmark):
    """One complete hardware-level time-mux injection on a counter."""
    circuit = build_counter(6)
    bench = random_testbench(circuit, 32, seed=7)
    instrumented = instrument_time_multiplexed(circuit)
    driver = _Driver(instrumented, bench)
    fault = SeuFault(cycle=5, flop_index=2)

    outcome = once(
        benchmark, drive_time_mux, instrumented, bench, fault, driver=driver
    )
    oracle = grade_faults(circuit, bench, [fault])
    assert outcome.verdict is oracle.verdict(0)
    print(f"\ninstrument verdict: {outcome.verdict.value} "
          f"after {outcome.emulation_cycles} FPGA cycles")


class TestFigure1Behaviour:
    def test_silent_fault_detected_without_full_testbench(self):
        """The figure's purpose: the state flip-flop plus the
        golden/faulty comparison lets the system stop the moment the
        fault effect disappears."""
        from repro.netlist.builder import NetlistBuilder

        # a shift register whose output is rarely observed: flipped bits
        # usually flush out unseen -> plenty of silent faults
        builder = NetlistBuilder("gated_shift")
        serial_in = builder.input("si")
        observe = builder.input("observe")
        previous = serial_in
        for index in range(4):
            previous = builder.dff(
                previous, q=f"s[{index}]", init=0, name=f"ff$s[{index}]"
            )
        builder.output_net("so", builder.and_(previous, observe))
        circuit = builder.build()
        bench = random_testbench(circuit, 64, seed=9, probability_of_one=0.15)
        instrumented = instrument_time_multiplexed(circuit)
        driver = _Driver(instrumented, bench)
        oracle = grade_faults(
            circuit,
            bench,
            [SeuFault(cycle=c, flop_index=f) for c in range(10) for f in range(4)],
        )
        checked = 0
        for index, fault in enumerate(oracle.faults):
            if oracle.verdict(index) is not FaultClass.SILENT:
                continue
            outcome = drive_time_mux(instrumented, bench, fault, driver=driver)
            assert outcome.verdict is FaultClass.SILENT
            # must classify well before 2x the remaining testbench
            remaining = 2 * (bench.num_cycles - fault.cycle)
            assert outcome.emulation_cycles < remaining
            checked += 1
        assert checked > 0
