"""Regenerates the paper's in-text **speed comparison** (claim C2):
autonomous emulation vs software fault simulation (1300 us/fault) and
host-driven FPGA emulation [Civera 2001] (100 us/fault).

Includes an *actual measurement* of a software fault simulator (our
compiled serial replay) over a fault sample, alongside the era-calibrated
analytic model.
"""

import pytest

from benchmarks.conftest import once
from repro.emu.hostlink import HostLinkModel, SoftwareFaultSimModel
from repro.eval.paper import PAPER_BASELINES
from repro.eval.speedup import run_speedup_experiment
from repro.faults.sampling import sample_fault_list


@pytest.fixture(scope="module")
def speedup(b14, b14_bench):
    return run_speedup_experiment(b14, b14_bench)


def test_bench_speedup_table(benchmark, b14, b14_bench):
    result = once(benchmark, run_speedup_experiment, b14, b14_bench)
    print()
    print(result.render())


def test_bench_measured_software_simulator(benchmark, b14, b14_bench, b14_faults):
    """Wall-clock of serial software fault simulation (20-fault sample) —
    the modern embodiment of the paper's 1300 us/fault baseline."""
    sample = sample_fault_list(b14_faults, 20, seed=2)
    model = SoftwareFaultSimModel()
    seconds = once(
        benchmark, model.seconds_per_fault_measured, b14, b14_bench, sample
    )
    print(f"\nmeasured serial software fault simulation: "
          f"{seconds * 1e6:.0f} us/fault on this host "
          f"(paper-era figure: {PAPER_BASELINES['fault_simulation_us_per_fault']:.0f})")
    assert seconds > 0


class TestSpeedupShape:
    def test_orders_of_magnitude_claim(self, speedup):
        """The abstract's claim: autonomous emulation is orders of
        magnitude faster than fault simulation."""
        for technique in ("mask_scan", "state_scan", "time_multiplexed"):
            assert speedup.speedup(technique, "fault simulation") > 100

    def test_beats_host_driven_by_large_factor(self, speedup):
        # paper: 100/4.1 = 24x (mask), 100/0.58 = 172x (time-mux)
        assert speedup.speedup("mask_scan", "host-driven emulation [2]") > 5
        assert speedup.speedup(
            "time_multiplexed", "host-driven emulation [2]"
        ) > 30

    def test_baseline_models_near_paper_figures(self, b14, b14_bench):
        host = HostLinkModel()
        assert host.us_per_fault(b14_bench.num_cycles) == pytest.approx(
            PAPER_BASELINES["host_driven_emulation_us_per_fault"], rel=0.25
        )
        sim = SoftwareFaultSimModel()
        analytic = sim.seconds_per_fault_analytic(b14, b14_bench.num_cycles) * 1e6
        paper = PAPER_BASELINES["fault_simulation_us_per_fault"]
        assert 0.2 < analytic / paper < 5.0

    def test_time_mux_is_overall_fastest(self, speedup):
        fastest = min(speedup.us_per_fault, key=speedup.us_per_fault.get)
        assert fastest == "time_multiplexed"
