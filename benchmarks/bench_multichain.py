"""Ablation: multi-chain state-scan (our extension beyond the paper).

The paper's state-scan pays N scan-in cycles per fault through a single
chain. Splitting the shadow register into K parallel chains divides that
term by K — this bench sweeps K on the b14 campaign and shows state-scan
closing its gap to mask-scan (and approaching time-mux for large K).
"""

import pytest

from benchmarks.conftest import once
from repro.emu.campaign import run_campaign

CHAINS = (1, 2, 4, 8, 16)


@pytest.mark.parametrize("chains", CHAINS)
def test_bench_state_scan_chain_sweep(benchmark, b14, b14_bench, b14_faults, b14_oracle, chains):
    result = once(
        benchmark,
        run_campaign,
        b14,
        b14_bench,
        "state_scan",
        faults=b14_faults,
        oracle=b14_oracle,
        scan_chains=chains,
    )
    print(
        f"\nstate-scan x{chains}: {result.timing.milliseconds:.2f} ms "
        f"({result.timing.us_per_fault:.2f} us/fault)"
    )


class TestChainSweepShape:
    @pytest.fixture(scope="class")
    def sweep(self, b14, b14_bench, b14_faults, b14_oracle):
        return {
            chains: run_campaign(
                b14, b14_bench, "state_scan",
                faults=b14_faults, oracle=b14_oracle, scan_chains=chains,
            )
            for chains in CHAINS
        }

    def test_monotone_improvement(self, sweep):
        times = [sweep[c].total_cycles for c in CHAINS]
        assert times == sorted(times, reverse=True)

    def test_eight_chains_beat_mask_scan_on_b14(
        self, sweep, b14, b14_bench, b14_faults, b14_oracle
    ):
        """The paper's b14 verdict (state-scan loses because N=215 > T=160)
        flips once the scan chain is split ~8 ways."""
        mask = run_campaign(
            b14, b14_bench, "mask_scan", faults=b14_faults, oracle=b14_oracle
        )
        assert sweep[8].total_cycles < mask.total_cycles

    def test_verdicts_independent_of_chains(self, sweep):
        counts = [sweep[c].dictionary.counts() for c in CHAINS]
        assert all(c == counts[0] for c in counts)
