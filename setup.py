"""Setup shim.

The offline environment has setuptools but no `wheel` package, so editable
installs must take the legacy `setup.py develop` path; all real metadata
lives in pyproject.toml.
"""

from setuptools import setup

setup()
