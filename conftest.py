"""Repo-root pytest bootstrap.

The canonical setup is an editable install (``pip install -e .``, which
CI uses); for a plain checkout this conftest puts ``src/`` on
``sys.path`` once, so ``python -m pytest`` works for ``tests/`` and
``benchmarks/`` alike without a ``PYTHONPATH=src`` prefix and without
each sub-conftest duplicating path logic.
"""

import os
import sys

try:
    import repro  # noqa: F401
except ImportError:
    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
    )
