"""Regenerate the bundled benchmark corpus (``repro/circuits/corpus/``).

Two entries are the canonical published netlists, embedded verbatim:
``c17`` (smallest ISCAS-85) and ``s27`` (smallest ISCAS-89). The rest
are *representative reconstructions*: deterministic seeded random logic
generated to the published port/flop/gate counts of their ISCAS
namesakes. They exercise the import -> lower -> grade pipeline at
realistic benchmark sizes without redistributing the original ISCAS
files; every generated file's header states exactly this.

Run from the repo root (the output is checked in, so running this is
only needed when changing the generator)::

    PYTHONPATH=src python scripts/make_corpus.py
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.util.rng import DeterministicRng  # noqa: E402

CORPUS_DIR = REPO_ROOT / "src" / "repro" / "circuits" / "corpus"

C17_BENCH = """\
# c17 — smallest ISCAS-85 benchmark (canonical netlist)
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
"""

S27_BENCH = """\
# s27 — smallest ISCAS-89 benchmark (canonical netlist)
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
"""

#: name -> (inputs, outputs, flops, gates) — the published sizes of the
#: ISCAS namesakes the reconstructions are generated to.
RECONSTRUCTIONS = {
    "c432": (36, 7, 0, 160),
    "c880": (60, 26, 0, 383),
    "c1355": (41, 32, 0, 546),
    "s298": (3, 6, 14, 119),
    "s344": (9, 11, 15, 160),
    "s1488": (8, 19, 6, 653),
}

#: gate types the generator draws from, with (min, max) arity. Wide
#: gates are intentional: they exercise the frontend lowering pass.
GATE_MENU = [
    ("AND", 2, 4),
    ("NAND", 2, 4),
    ("OR", 2, 4),
    ("NOR", 2, 3),
    ("XOR", 2, 2),
    ("NOT", 1, 1),
]


def generate(name: str, n_in: int, n_out: int, n_ff: int, n_gates: int, seed: int):
    """Deterministic random synchronous logic with the given counts.

    Returns (inputs, outputs, flops, gates) where flops is a list of
    (d, q) and gates a list of (op, input nets, output net), emitted in
    a topological order for the combinational part (flop feedback only
    crosses registers, so the result is always acyclic).

    Every gate output ends up observable — gates prefer consuming
    not-yet-consumed nets, flop data inputs and primary outputs drain
    the rest — so the frontend's dead-logic sweep keeps the advertised
    gate counts (modulo a handful of leftovers when the budget runs
    out).
    """
    rng = DeterministicRng(seed).fork(f"corpus:{name}")
    inputs = [f"I{i}" for i in range(n_in)]
    states = [f"S{i}" for i in range(n_ff)]
    pool = inputs + states
    gates = []
    produced = []
    unconsumed = []  # produced nets nothing reads yet, oldest first
    # The queue width bounds logic depth: each gate drains one
    # near-oldest dangling net once the queue exceeds it, so depth grows
    # like n_gates / width (realistic for mapped benchmarks) and the
    # frontend's dead-logic sweep finds almost nothing to remove.
    width = max(n_out + n_ff, n_in, n_gates // 24, 6)

    def random_net(chosen):
        net = pool[rng.integer(0, len(pool) - 1)]
        if net in chosen:  # one redraw; a rare duplicate input is legal
            net = pool[rng.integer(0, len(pool) - 1)]
        return net

    for k in range(n_gates):
        op, low, high = GATE_MENU[rng.integer(0, len(GATE_MENU) - 1)]
        arity = rng.integer(low, high)
        chosen = []
        if len(unconsumed) > width:
            index = rng.integer(0, min(4, len(unconsumed) - 1))
            chosen.append(unconsumed.pop(index))
        while len(chosen) < arity:
            chosen.append(random_net(chosen))
        out = f"N{k}"
        gates.append((op, chosen, out))
        produced.append(out)
        pool.append(out)
        unconsumed.append(out)
    flops = []
    for i in range(n_ff):
        if len(unconsumed) > n_out:
            d = unconsumed.pop(rng.integer(0, len(unconsumed) - 1))
        else:
            d = produced[rng.integer(0, len(produced) - 1)]
        flops.append((d, states[i]))
    # outputs drain the remaining dangling nets, padded with random
    # produced nets when the logic converged harder than n_out
    outputs = list(unconsumed[-n_out:])
    while len(outputs) < n_out:
        candidate = produced[rng.integer(0, len(produced) - 1)]
        if candidate not in outputs:
            outputs.append(candidate)
    return inputs, outputs, flops, gates


def emit_bench(name, inputs, outputs, flops, gates) -> str:
    lines = [
        f"# {name} — representative reconstruction generated by",
        "# scripts/make_corpus.py to the published port/flop/gate counts",
        f"# of ISCAS benchmark {name}; NOT the original ISCAS netlist.",
    ]
    lines += [f"INPUT({net})" for net in inputs]
    lines += [f"OUTPUT({net})" for net in outputs]
    lines += [f"{q} = DFF({d})" for d, q in flops]
    for op, gate_inputs, out in gates:
        lines.append(f"{out} = {op}({', '.join(gate_inputs)})")
    return "\n".join(lines) + "\n"


def emit_blif(name, inputs, outputs, flops, gates) -> str:
    lines = [
        f"# {name} — representative reconstruction generated by",
        "# scripts/make_corpus.py to the published port/flop/gate counts",
        f"# of ISCAS benchmark {name}; NOT the original ISCAS netlist.",
        f".model {name}",
        ".inputs " + " ".join(inputs),
        ".outputs " + " ".join(outputs),
    ]
    lines += [f".latch {d} {q} re clk 0" for d, q in flops]
    for op, gate_inputs, out in gates:
        arity = len(gate_inputs)
        lines.append(".names " + " ".join(gate_inputs) + f" {out}")
        if op == "AND":
            lines.append("1" * arity + " 1")
        elif op == "NAND":
            lines.append("1" * arity + " 0")
        elif op == "OR":
            for position in range(arity):
                lines.append(
                    "-" * position + "1" + "-" * (arity - position - 1) + " 1"
                )
        elif op == "NOR":
            lines.append("0" * arity + " 1")
        elif op == "XOR":
            lines.append("01 1")
            lines.append("10 1")
        elif op == "NOT":
            lines.append("0 1")
        else:  # pragma: no cover - menu and writer must stay in sync
            raise ValueError(f"no BLIF cover for {op}")
    lines.append(".end")
    return "\n".join(lines) + "\n"


def main() -> None:
    CORPUS_DIR.mkdir(parents=True, exist_ok=True)
    (CORPUS_DIR / "c17.bench").write_text(C17_BENCH)
    (CORPUS_DIR / "s27.bench").write_text(S27_BENCH)
    for seed, (name, counts) in enumerate(sorted(RECONSTRUCTIONS.items())):
        parts = generate(name, *counts, seed=1000 + seed)
        if name == "s344":  # one BLIF entry keeps that parser end-to-end
            (CORPUS_DIR / f"{name}.blif").write_text(emit_blif(name, *parts))
        else:
            (CORPUS_DIR / f"{name}.bench").write_text(emit_bench(name, *parts))
    # sanity: every emitted file must load through the frontend
    from repro.frontend.corpus import corpus_files, load_corpus_circuit
    from repro.netlist.stats import netlist_stats

    for name in sorted(corpus_files()):
        stats = netlist_stats(load_corpus_circuit(name))
        print(stats.summary())


if __name__ == "__main__":
    main()
