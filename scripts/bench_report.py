#!/usr/bin/env python
"""Measure every grading backend on the b14 campaign and dump
``BENCH_oracle.json`` so future PRs can track the oracle's perf
trajectory.

Usage::

    PYTHONPATH=src python scripts/bench_report.py [--output BENCH_oracle.json]
    PYTHONPATH=src python scripts/bench_report.py --check BENCH_oracle.json

The JSON records seconds and us/fault per backend (plus the fused
engine's pure-numpy fallback path), the speedup of each backend over the
``numpy`` reference, and the campaign shape.

``--check`` is the CI regression gate: it re-measures only the fused
engine (the production oracle) and exits non-zero if its ``us_per_fault``
regressed more than ``--threshold`` (default 25 %) against the committed
baseline. It never rewrites the baseline — refreshing it is a deliberate
act (rerun without ``--check`` and commit the diff).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.circuits.itc99.b14 import b14_program_testbench, build_b14  # noqa: E402
from repro.eval.paper import PAPER_B14  # noqa: E402
from repro.faults.model import exhaustive_fault_list  # noqa: E402
from repro.run.runner import CampaignRunner, default_pool_workers  # noqa: E402
from repro.run.spec import CampaignSpec  # noqa: E402
from repro.sim.backends import available_engines, get_engine  # noqa: E402
from repro.sim.backends.fused import FusedEngine  # noqa: E402
from repro.sim.cache import compiled_for, golden_for  # noqa: E402
from repro.sim.parallel import DEFAULT_BACKEND, grade_faults  # noqa: E402

#: worker counts measured for the sharded-runner (orchestration) rows
RUNNER_WORKERS = (1, default_pool_workers())


def measure(circuit, bench, faults, backend: str, repeats: int) -> dict:
    """Best-of-N wall clock of one backend (caches pre-warmed)."""
    reference = None
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        result = grade_faults(circuit, bench, faults, backend=backend)
        best = min(best, time.perf_counter() - started)
        reference = result
    return {
        "seconds": round(best, 4),
        "us_per_fault": round(best * 1e6 / len(faults), 3),
        "fail_cycles": reference.fail_cycles,
        "vanish_cycles": reference.vanish_cycles,
    }


def check_regression(baseline_path: str, threshold: float, repeats: int) -> int:
    """CI gate: fail when the fused engine's us/fault regresses more than
    ``threshold`` (fractional) against the committed baseline.

    The baseline was recorded on a different machine, so absolute
    wall-clock numbers are not comparable (shared CI runners vary well
    beyond 25 % between generations). The gate therefore re-measures the
    *numpy reference engine* in the same run and scales the baseline's
    fused number by the observed numpy ratio — machine speed cancels,
    and what remains is the fused engine's speed relative to a fixed
    yardstick that changes only when engine code changes.
    """
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    baseline_fused = baseline["backends"]["fused"]["us_per_fault"]
    baseline_numpy = baseline["backends"]["numpy"]["us_per_fault"]

    circuit = build_b14()
    bench = b14_program_testbench(
        circuit, PAPER_B14["stimulus_vectors"], seed=0
    )
    faults = exhaustive_fault_list(circuit, bench.num_cycles)
    golden_for(compiled_for(circuit), bench)  # shared setup out of the timing
    grade_faults(circuit, bench, faults, backend="fused")  # warm the program
    measured = measure(circuit, bench, faults, "fused", repeats)["us_per_fault"]
    native = bool(get_engine("fused").last_stats.get("native"))
    if baseline.get("fused_native_kernel") and not native:
        # Apples to apples: without a C compiler the fused engine runs
        # its numpy plan, which the committed fused row did not measure.
        plan_row = baseline["backends"].get("fused (numpy plan)")
        if plan_row:
            baseline_fused = plan_row["us_per_fault"]
            print(
                "no native kernel here; gating vs the plan-path baseline "
                f"({baseline_fused:.3f} us/fault)"
            )
    numpy_now = measure(circuit, bench, faults, "numpy", max(1, repeats - 1))[
        "us_per_fault"
    ]
    machine_scale = numpy_now / baseline_numpy
    expected = baseline_fused * machine_scale
    ratio = measured / expected

    print(
        f"fused oracle: measured {measured:.3f} us/fault; baseline "
        f"{baseline_fused:.3f} scaled by numpy ratio "
        f"{machine_scale:.2f} ({numpy_now:.3f}/{baseline_numpy:.3f}) -> "
        f"expected {expected:.3f} us/fault ({ratio:.2f}x, gate at "
        f"{1 + threshold:.2f}x, native kernel: {native})"
    )
    if ratio > 1 + threshold:
        print(
            f"REGRESSION: fused us_per_fault {measured:.3f} exceeds the "
            f"{100 * threshold:.0f}% budget over the machine-normalized "
            f"baseline {expected:.3f}",
            file=sys.stderr,
        )
        return 1
    print("benchmark gate passed")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="BENCH_oracle.json")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--check",
        metavar="BASELINE",
        default=None,
        help="regression-gate mode: compare the fused engine against this "
        "committed baseline instead of rewriting it",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="fractional us/fault regression tolerated by --check",
    )
    args = parser.parse_args()

    if args.check:
        return check_regression(args.check, args.threshold, args.repeats)

    circuit = build_b14()
    bench = b14_program_testbench(
        circuit, PAPER_B14["stimulus_vectors"], seed=0
    )
    faults = exhaustive_fault_list(circuit, bench.num_cycles)
    golden_for(compiled_for(circuit), bench)  # shared setup out of the timing

    rows = {}
    for backend in sorted(available_engines()):
        rows[backend] = measure(circuit, bench, faults, backend, args.repeats)
        print(
            f"{backend:>12}: {rows[backend]['seconds']:7.3f} s "
            f"({rows[backend]['us_per_fault']:7.3f} us/fault)"
        )
    native_used = bool(get_engine("fused").last_stats.get("native"))

    FusedEngine.use_native = False
    try:
        rows["fused (numpy plan)"] = measure(
            circuit, bench, faults, "fused", max(1, args.repeats - 1)
        )
        print(
            f"{'fused-plan':>12}: {rows['fused (numpy plan)']['seconds']:7.3f} s "
            f"({rows['fused (numpy plan)']['us_per_fault']:7.3f} us/fault)"
        )
    finally:
        FusedEngine.use_native = True

    reference = rows["numpy"]
    for name, row in rows.items():
        if row["fail_cycles"] != reference["fail_cycles"] or (
            row["vanish_cycles"] != reference["vanish_cycles"]
        ):
            print(f"ERROR: backend {name!r} disagrees with numpy", file=sys.stderr)
            return 1

    # Sharded-runner rows: the same campaign through the orchestration
    # layer, workers=1 vs a process pool, so the perf trajectory records
    # sharding/merge/fan-out overhead alongside raw engine speed.
    spec = CampaignSpec(circuit="b14", technique="time_multiplexed")
    runner_rows = {}
    for workers in RUNNER_WORKERS:
        runner = CampaignRunner(workers=workers)
        best = float("inf")
        merged = None
        for _ in range(max(1, args.repeats - 1)):
            started = time.perf_counter()
            merged = runner.grade(spec)
            best = min(best, time.perf_counter() - started)
        if merged.fail_cycles != reference["fail_cycles"] or (
            merged.vanish_cycles != reference["vanish_cycles"]
        ):
            print(
                f"ERROR: sharded runner (workers={workers}) disagrees "
                "with numpy",
                file=sys.stderr,
            )
            return 1
        runner_rows[f"workers={workers}"] = {
            "seconds": round(best, 4),
            "us_per_fault": round(best * 1e6 / len(faults), 3),
        }
        print(
            f"{'runner w=' + str(workers):>12}: {best:7.3f} s "
            f"({best * 1e6 / len(faults):7.3f} us/fault)"
        )

    report = {
        "circuit": circuit.name,
        "num_faults": len(faults),
        "num_cycles": bench.num_cycles,
        "default_backend": DEFAULT_BACKEND,
        "fused_native_kernel": native_used,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "sharded_runner": runner_rows,
        "backends": {
            name: {
                "seconds": row["seconds"],
                "us_per_fault": row["us_per_fault"],
                "speedup_vs_numpy": round(
                    reference["seconds"] / row["seconds"], 2
                ),
            }
            for name, row in rows.items()
        },
    }
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")

    fused_speedup = report["backends"]["fused"]["speedup_vs_numpy"]
    print(f"fused speedup vs numpy: {fused_speedup}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
