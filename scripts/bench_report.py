#!/usr/bin/env python
"""Measure every grading backend on the b14 campaign and dump
``BENCH_oracle.json`` so future PRs can track the oracle's perf
trajectory.

Usage::

    PYTHONPATH=src python scripts/bench_report.py [--output BENCH_oracle.json]

The JSON records seconds and us/fault per backend (plus the fused
engine's pure-numpy fallback path), the speedup of each backend over the
``numpy`` reference, and the campaign shape.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.circuits.itc99.b14 import b14_program_testbench, build_b14  # noqa: E402
from repro.eval.paper import PAPER_B14  # noqa: E402
from repro.faults.model import exhaustive_fault_list  # noqa: E402
from repro.run.runner import CampaignRunner, default_pool_workers  # noqa: E402
from repro.run.spec import CampaignSpec  # noqa: E402
from repro.sim.backends import available_engines, get_engine  # noqa: E402
from repro.sim.backends.fused import FusedEngine  # noqa: E402
from repro.sim.cache import compiled_for, golden_for  # noqa: E402
from repro.sim.parallel import DEFAULT_BACKEND, grade_faults  # noqa: E402

#: worker counts measured for the sharded-runner (orchestration) rows
RUNNER_WORKERS = (1, default_pool_workers())


def measure(circuit, bench, faults, backend: str, repeats: int) -> dict:
    """Best-of-N wall clock of one backend (caches pre-warmed)."""
    reference = None
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        result = grade_faults(circuit, bench, faults, backend=backend)
        best = min(best, time.perf_counter() - started)
        reference = result
    return {
        "seconds": round(best, 4),
        "us_per_fault": round(best * 1e6 / len(faults), 3),
        "fail_cycles": reference.fail_cycles,
        "vanish_cycles": reference.vanish_cycles,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="BENCH_oracle.json")
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args()

    circuit = build_b14()
    bench = b14_program_testbench(
        circuit, PAPER_B14["stimulus_vectors"], seed=0
    )
    faults = exhaustive_fault_list(circuit, bench.num_cycles)
    golden_for(compiled_for(circuit), bench)  # shared setup out of the timing

    rows = {}
    for backend in sorted(available_engines()):
        rows[backend] = measure(circuit, bench, faults, backend, args.repeats)
        print(
            f"{backend:>12}: {rows[backend]['seconds']:7.3f} s "
            f"({rows[backend]['us_per_fault']:7.3f} us/fault)"
        )
    native_used = bool(get_engine("fused").last_stats.get("native"))

    FusedEngine.use_native = False
    try:
        rows["fused (numpy plan)"] = measure(
            circuit, bench, faults, "fused", max(1, args.repeats - 1)
        )
        print(
            f"{'fused-plan':>12}: {rows['fused (numpy plan)']['seconds']:7.3f} s "
            f"({rows['fused (numpy plan)']['us_per_fault']:7.3f} us/fault)"
        )
    finally:
        FusedEngine.use_native = True

    reference = rows["numpy"]
    for name, row in rows.items():
        if row["fail_cycles"] != reference["fail_cycles"] or (
            row["vanish_cycles"] != reference["vanish_cycles"]
        ):
            print(f"ERROR: backend {name!r} disagrees with numpy", file=sys.stderr)
            return 1

    # Sharded-runner rows: the same campaign through the orchestration
    # layer, workers=1 vs a process pool, so the perf trajectory records
    # sharding/merge/fan-out overhead alongside raw engine speed.
    spec = CampaignSpec(circuit="b14", technique="time_multiplexed")
    runner_rows = {}
    for workers in RUNNER_WORKERS:
        runner = CampaignRunner(workers=workers)
        best = float("inf")
        merged = None
        for _ in range(max(1, args.repeats - 1)):
            started = time.perf_counter()
            merged = runner.grade(spec)
            best = min(best, time.perf_counter() - started)
        if merged.fail_cycles != reference["fail_cycles"] or (
            merged.vanish_cycles != reference["vanish_cycles"]
        ):
            print(
                f"ERROR: sharded runner (workers={workers}) disagrees "
                "with numpy",
                file=sys.stderr,
            )
            return 1
        runner_rows[f"workers={workers}"] = {
            "seconds": round(best, 4),
            "us_per_fault": round(best * 1e6 / len(faults), 3),
        }
        print(
            f"{'runner w=' + str(workers):>12}: {best:7.3f} s "
            f"({best * 1e6 / len(faults):7.3f} us/fault)"
        )

    report = {
        "circuit": circuit.name,
        "num_faults": len(faults),
        "num_cycles": bench.num_cycles,
        "default_backend": DEFAULT_BACKEND,
        "fused_native_kernel": native_used,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "sharded_runner": runner_rows,
        "backends": {
            name: {
                "seconds": row["seconds"],
                "us_per_fault": row["us_per_fault"],
                "speedup_vs_numpy": round(
                    reference["seconds"] / row["seconds"], 2
                ),
            }
            for name, row in rows.items()
        },
    }
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")

    fused_speedup = report["backends"]["fused"]["speedup_vs_numpy"]
    print(f"fused speedup vs numpy: {fused_speedup}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
