#!/usr/bin/env python
"""Measure every grading backend on the b14 campaign and update
``BENCH_oracle.json`` so future PRs can track the oracle's perf
trajectory.

Usage::

    PYTHONPATH=src python scripts/bench_report.py [--output BENCH_oracle.json]
    PYTHONPATH=src python scripts/bench_report.py --check BENCH_oracle.json

The JSON carries an append-only ``history`` list: every run adds a
timestamped entry recording the machine fingerprint, kernel flags
(native / thread count), seconds and us/fault per backend (plus the
fused engine's pure-numpy fallback path) and warmup-separated
sharded-runner rows for every ``--workers`` count measured. The
top-level summary fields are **derived from the newest history entry
on write** — they exist for greppability and old tooling, but the
history tail is the source of truth, so the two can never disagree.

The runner rows grade a *fixed shard plan* at every worker count and
discard a warmup pass first (recorded as ``warmup_seconds``): the
steady-state numbers then compare process scaling alone, not pool
spin-up, compile time or per-shard overhead differences.

``--check`` is the CI regression gate. When the committed baseline
holds history entries from the *same machine fingerprint*, the gate
compares absolute us/fault against the best such entry. Otherwise
(CI machine differs from the committing machine) it re-measures the
numpy reference engine in the same run and scales the baseline's fused
number by the observed numpy ratio — machine speed cancels, and what
remains is the fused engine's speed relative to a fixed yardstick that
changes only when engine code changes. It never rewrites the baseline —
refreshing it is a deliberate act (rerun without ``--check`` and commit
the diff).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.circuits.itc99.b14 import b14_program_testbench, build_b14  # noqa: E402
from repro.eval.paper import PAPER_B14  # noqa: E402
from repro.faults.model import exhaustive_fault_list  # noqa: E402
from repro.run.runner import (  # noqa: E402
    SHARDS_PER_WORKER,
    CampaignRunner,
    default_pool_workers,
)
from repro.run.spec import CampaignSpec  # noqa: E402
from repro.sim.backends import available_engines, get_engine  # noqa: E402
from repro.sim.backends.fused import FusedEngine  # noqa: E402
from repro.sim.cache import compiled_for, golden_for  # noqa: E402
from repro.sim.parallel import DEFAULT_BACKEND, grade_faults  # noqa: E402

#: default worker counts for the sharded-runner (orchestration) rows —
#: override with ``--workers 1,2,4``
RUNNER_WORKERS = (1, default_pool_workers())
#: one shard plan for every runner row — the workers=1 default plan, so
#: the rows differ only in process scaling, never in per-shard overhead
RUNNER_SHARDS = SHARDS_PER_WORKER


def machine_fingerprint() -> dict:
    """Identity of the benchmarking host, for same-machine gating.

    Coarse on purpose: arch + logical CPU count + CPU model catches
    "different CI runner generation" without tripping on reboots.
    """
    cpu_model = platform.processor() or ""
    try:
        with open("/proc/cpuinfo", "r", encoding="utf-8") as handle:
            for line in handle:
                if line.lower().startswith("model name"):
                    cpu_model = line.split(":", 1)[1].strip()
                    break
    except OSError:
        pass
    return {
        "arch": platform.machine(),
        "cpus": os.cpu_count(),
        "cpu_model": cpu_model,
    }


def kernel_flags() -> dict:
    """The fused engine's kernel configuration, as last observed."""
    stats = get_engine("fused").last_stats
    return {
        "native": bool(stats.get("native")),
        "threads": int(stats.get("threads", 1) or 1),
    }


def measure(circuit, bench, faults, backend: str, repeats: int) -> dict:
    """Best-of-N wall clock of one backend (caches pre-warmed)."""
    reference = None
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        result = grade_faults(circuit, bench, faults, backend=backend)
        best = min(best, time.perf_counter() - started)
        reference = result
    return {
        "seconds": round(best, 4),
        "us_per_fault": round(best * 1e6 / len(faults), 3),
        "fail_cycles": reference.fail_cycles,
        "vanish_cycles": reference.vanish_cycles,
    }


def best_prior_for_machine(baseline: dict, fingerprint: dict):
    """The lowest prior fused us/fault recorded on this machine, if any."""
    candidates = [
        entry["fused_us_per_fault"]
        for entry in baseline.get("history", [])
        if entry.get("machine") == fingerprint
        and entry.get("kernel", {}).get("native")
        and entry.get("fused_us_per_fault")
    ]
    return min(candidates) if candidates else None


def baseline_backend_us(baseline: dict, name: str):
    """One backend's baseline us/fault, from either JSON layout.

    New layout: the newest ``history`` entry is the source of truth (its
    ``backends`` map may hold ``{seconds, us_per_fault}`` rows or bare
    us/fault scalars, depending on vintage). Old layout: only the
    top-level ``backends`` snapshot exists. Returns ``None`` when the
    backend was never measured.
    """
    for entry in reversed(baseline.get("history") or []):
        row = entry.get("backends", {}).get(name)
        if isinstance(row, dict):
            return float(row["us_per_fault"])
        if row is not None:
            return float(row)
        break  # the tail entry is authoritative; do not walk further
    row = baseline.get("backends", {}).get(name)
    return float(row["us_per_fault"]) if row else None


def check_regression(baseline_path: str, threshold: float, repeats: int) -> int:
    """CI gate: fail when the fused engine's us/fault regresses more than
    ``threshold`` (fractional) against the committed baseline."""
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    baseline_fused = baseline_backend_us(baseline, "fused")
    baseline_numpy = baseline_backend_us(baseline, "numpy")
    if baseline_fused is None or baseline_numpy is None:
        print(
            f"baseline {baseline_path} records no fused/numpy measurement",
            file=sys.stderr,
        )
        return 1

    circuit = build_b14()
    bench = b14_program_testbench(
        circuit, PAPER_B14["stimulus_vectors"], seed=0
    )
    faults = exhaustive_fault_list(circuit, bench.num_cycles)
    golden_for(compiled_for(circuit), bench)  # shared setup out of the timing
    grade_faults(circuit, bench, faults, backend="fused")  # warm the program
    measured = measure(circuit, bench, faults, "fused", repeats)["us_per_fault"]
    native = bool(get_engine("fused").last_stats.get("native"))

    same_machine_best = (
        best_prior_for_machine(baseline, machine_fingerprint())
        if native
        else None
    )
    if same_machine_best is not None:
        # This host has committed history — absolute numbers compare.
        expected = same_machine_best
        ratio = measured / expected
        print(
            f"fused oracle: measured {measured:.3f} us/fault vs best prior "
            f"entry for this machine {expected:.3f} ({ratio:.2f}x, gate at "
            f"{1 + threshold:.2f}x, native kernel: {native})"
        )
    else:
        if baseline.get("fused_native_kernel") and not native:
            # Apples to apples: without a C compiler the fused engine
            # runs its numpy plan, which the committed fused row did not
            # measure.
            plan_us = baseline_backend_us(baseline, "fused (numpy plan)")
            if plan_us is not None:
                baseline_fused = plan_us
                print(
                    "no native kernel here; gating vs the plan-path baseline "
                    f"({baseline_fused:.3f} us/fault)"
                )
        numpy_now = measure(
            circuit, bench, faults, "numpy", max(1, repeats - 1)
        )["us_per_fault"]
        machine_scale = numpy_now / baseline_numpy
        expected = baseline_fused * machine_scale
        ratio = measured / expected
        print(
            f"fused oracle: measured {measured:.3f} us/fault; baseline "
            f"{baseline_fused:.3f} scaled by numpy ratio "
            f"{machine_scale:.2f} ({numpy_now:.3f}/{baseline_numpy:.3f}) -> "
            f"expected {expected:.3f} us/fault ({ratio:.2f}x, gate at "
            f"{1 + threshold:.2f}x, native kernel: {native})"
        )
    if ratio > 1 + threshold:
        print(
            f"REGRESSION: fused us_per_fault {measured:.3f} exceeds the "
            f"{100 * threshold:.0f}% budget over the baseline "
            f"{expected:.3f}",
            file=sys.stderr,
        )
        return 1
    print("benchmark gate passed")
    return 0


def measure_runner_rows(
    reference: dict, num_faults: int, repeats: int, worker_counts=RUNNER_WORKERS
):
    """Sharded-runner rows: the same campaign through the orchestration
    layer at several worker counts, one fixed shard plan, steady state
    separated from warmup. Returns ``None`` on a bit-exactness failure.
    """
    spec = CampaignSpec(circuit="b14", technique="time_multiplexed")
    runner_rows = {}
    for workers in worker_counts:
        with CampaignRunner(workers=workers, shards=RUNNER_SHARDS) as runner:
            started = time.perf_counter()
            merged = runner.grade(spec)  # warmup: pool + caches, discarded
            warmup = time.perf_counter() - started
            best = float("inf")
            for _ in range(max(1, repeats - 1)):
                started = time.perf_counter()
                merged = runner.grade(spec)
                best = min(best, time.perf_counter() - started)
        if merged.fail_cycles != reference["fail_cycles"] or (
            merged.vanish_cycles != reference["vanish_cycles"]
        ):
            print(
                f"ERROR: sharded runner (workers={workers}) disagrees "
                "with numpy",
                file=sys.stderr,
            )
            return None
        runner_rows[f"workers={workers}"] = {
            "seconds": round(best, 4),
            "warmup_seconds": round(warmup, 4),
            "us_per_fault": round(best * 1e6 / num_faults, 3),
        }
        print(
            f"{'runner w=' + str(workers):>12}: {best:7.3f} s "
            f"({best * 1e6 / num_faults:7.3f} us/fault, "
            f"warmup {warmup:.3f} s)"
        )
    return runner_rows


def summary_from_entry(entry: dict) -> dict:
    """The top-level snapshot fields, derived from one history entry.

    The summary used to be written independently of the history append,
    which let the two drift; deriving it here makes the newest history
    entry the single source of truth.
    """
    seconds = entry["backends_seconds"]
    numpy_seconds = seconds["numpy"]
    return {
        "circuit": entry["circuit"],
        "num_faults": entry["num_faults"],
        "num_cycles": entry["num_cycles"],
        "default_backend": entry["default_backend"],
        "fused_native_kernel": entry["kernel"]["native"],
        "fused_threads": entry["kernel"]["threads"],
        "python": entry["python"],
        "machine": entry["machine"]["arch"],
        "runner_shards": entry["runner_shards"],
        "sharded_runner": entry["sharded_runner"],
        "backends": {
            name: {
                "seconds": seconds[name],
                "us_per_fault": us_per_fault,
                "speedup_vs_numpy": round(numpy_seconds / seconds[name], 2),
            }
            for name, us_per_fault in entry["backends"].items()
        },
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="BENCH_oracle.json")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--workers",
        default=None,
        metavar="N,N,...",
        help="comma-separated worker counts for the sharded-runner rows "
        f"(default: {','.join(map(str, RUNNER_WORKERS))}); every count "
        "measured lands in the history entry",
    )
    parser.add_argument(
        "--check",
        metavar="BASELINE",
        default=None,
        help="regression-gate mode: compare the fused engine against this "
        "committed baseline instead of rewriting it",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="fractional us/fault regression tolerated by --check",
    )
    args = parser.parse_args()

    if args.check:
        return check_regression(args.check, args.threshold, args.repeats)

    circuit = build_b14()
    bench = b14_program_testbench(
        circuit, PAPER_B14["stimulus_vectors"], seed=0
    )
    faults = exhaustive_fault_list(circuit, bench.num_cycles)
    golden_for(compiled_for(circuit), bench)  # shared setup out of the timing

    rows = {}
    for backend in sorted(available_engines()):
        rows[backend] = measure(circuit, bench, faults, backend, args.repeats)
        print(
            f"{backend:>12}: {rows[backend]['seconds']:7.3f} s "
            f"({rows[backend]['us_per_fault']:7.3f} us/fault)"
        )
    flags = kernel_flags()

    FusedEngine.use_native = False
    try:
        rows["fused (numpy plan)"] = measure(
            circuit, bench, faults, "fused", max(1, args.repeats - 1)
        )
        print(
            f"{'fused-plan':>12}: {rows['fused (numpy plan)']['seconds']:7.3f} s "
            f"({rows['fused (numpy plan)']['us_per_fault']:7.3f} us/fault)"
        )
    finally:
        FusedEngine.use_native = True

    reference = rows["numpy"]
    for name, row in rows.items():
        if row["fail_cycles"] != reference["fail_cycles"] or (
            row["vanish_cycles"] != reference["vanish_cycles"]
        ):
            print(f"ERROR: backend {name!r} disagrees with numpy", file=sys.stderr)
            return 1

    worker_counts = RUNNER_WORKERS
    if args.workers:
        worker_counts = tuple(
            int(part) for part in args.workers.split(",") if part.strip()
        )
    runner_rows = measure_runner_rows(
        reference, len(faults), args.repeats, worker_counts
    )
    if runner_rows is None:
        return 1

    history = []
    try:
        with open(args.output, "r", encoding="utf-8") as handle:
            history = list(json.load(handle).get("history", []))
    except (OSError, json.JSONDecodeError):
        pass  # first run, or a pre-history baseline: start the list
    history.append(
        {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "machine": machine_fingerprint(),
            "python": platform.python_version(),
            "kernel": flags,
            "circuit": circuit.name,
            "num_faults": len(faults),
            "num_cycles": bench.num_cycles,
            "default_backend": DEFAULT_BACKEND,
            "fused_us_per_fault": rows["fused"]["us_per_fault"],
            "numpy_us_per_fault": rows["numpy"]["us_per_fault"],
            "backends": {
                name: row["us_per_fault"] for name, row in rows.items()
            },
            "backends_seconds": {
                name: row["seconds"] for name, row in rows.items()
            },
            "sharded_runner": runner_rows,
            "runner_shards": RUNNER_SHARDS,
            "runner_workers": list(worker_counts),
        }
    )

    # The top level is derived from the history tail, never written
    # independently — the snapshot and the trajectory cannot disagree.
    report = {**summary_from_entry(history[-1]), "history": history}
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output} ({len(history)} history entries)")

    fused_speedup = report["backends"]["fused"]["speedup_vs_numpy"]
    print(f"fused speedup vs numpy: {fused_speedup}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
