#!/usr/bin/env python3
"""Markdown link checker for README.md and docs/.

Stdlib-only (CI runs it before installing anything): finds every
``[text](target)`` inline link and bare relative link in the given
markdown files and verifies that relative targets exist on disk.
External links (``http(s)://``, ``mailto:``) and pure in-page anchors
(``#section``) are skipped — this guards the docs *tree*, not the
internet. Exits 1 listing every broken link.

Run from the repository root::

    python scripts/check_links.py README.md docs/*.md
"""

from __future__ import annotations

import os
import re
import sys
from typing import List, Tuple

#: inline markdown links; deliberately simple — fenced code is stripped
#: first so `code samples containing ](...)` do not trip it
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FENCE_RE = re.compile(r"```.*?```", re.DOTALL)

SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def broken_links(path: str) -> List[Tuple[str, str]]:
    """(target, reason) for every broken relative link in one file."""
    with open(path, "r", encoding="utf-8") as handle:
        text = FENCE_RE.sub("", handle.read())
    base = os.path.dirname(os.path.abspath(path))
    problems = []
    for target in LINK_RE.findall(text):
        if target.startswith(SKIP_PREFIXES):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        resolved = os.path.normpath(os.path.join(base, relative))
        if not os.path.exists(resolved):
            problems.append((target, f"{relative} does not exist"))
    return problems


def main(argv: List[str]) -> int:
    files = argv or ["README.md"]
    failures = 0
    for path in files:
        for target, reason in broken_links(path):
            print(f"{path}: broken link ({target}): {reason}")
            failures += 1
    if failures:
        print(f"\n{failures} broken link(s)", file=sys.stderr)
        return 1
    print(f"all relative links resolve ({len(files)} file(s) checked)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
