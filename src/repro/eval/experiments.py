"""Run every paper experiment and render a single report.

``run_all_experiments`` is what ``python -m repro report`` and the
EXPERIMENTS.md generator call; it resolves one scenario (any registered
circuit — the paper's b14 by default), grades its complete single-fault
set once through the campaign runner (sharded and resumable when the
context asks for workers/a store), and shares that oracle across all
experiments so the whole reproduction runs in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.emu.board import RC1000, BoardModel
from repro.eval.classification import (
    ClassificationResult,
    run_classification_experiment,
)
from repro.eval.context import grade_eval_scenario, resolve_scenario
from repro.eval.crossover import CrossoverResult, run_crossover_experiment
from repro.eval.figure1 import Figure1Census, run_figure1_census
from repro.eval.speedup import SpeedupResult, run_speedup_experiment
from repro.eval.table1 import Table1Result, run_table1_experiment
from repro.eval.table2 import Table2Result, run_table2_experiment
from repro.netlist.netlist import Netlist
from repro.run.runner import CampaignRunner
from repro.sim.parallel import DEFAULT_BACKEND
from repro.sim.vectors import Testbench


@dataclass
class ExperimentContext:
    """Shared configuration for a full reproduction run.

    ``circuit`` names any registered circuit (paper reference columns
    stay b14's — they are what the paper printed). Explicit ``netlist``/
    ``testbench`` objects override the name. ``engine`` selects the
    fault-grading backend used by every experiment; ``workers`` > 1
    shards the grading over a process pool, and ``store_root`` persists
    completed shards so an interrupted reproduction resumes.
    """

    circuit: str = "b14"
    netlist: Optional[Netlist] = None
    testbench: Optional[Testbench] = None
    board: BoardModel = RC1000
    seed: int = 0
    include_crossover: bool = True
    engine: str = DEFAULT_BACKEND
    workers: int = 1
    shards: Optional[int] = None
    store_root: Optional[str] = None
    resume: bool = True
    progress: Optional[Callable[[str], None]] = None
    num_cycles: Optional[int] = None

    def runner(self) -> CampaignRunner:
        return CampaignRunner(
            workers=self.workers,
            shards=self.shards,
            store_root=self.store_root,
            resume=self.resume,
            progress=self.progress,
        )

    def resolve(self):
        """The (netlist, testbench) pair the experiments will use."""
        scenario = resolve_scenario(
            self.netlist,
            self.testbench,
            circuit=self.circuit,
            seed=self.seed,
            num_cycles=self.num_cycles,
            engine=self.engine,
        )
        return scenario.netlist, scenario.testbench


@dataclass
class FullReport:
    """All experiment results plus a rendered report."""

    table1: Table1Result
    table2: Table2Result
    classification: ClassificationResult
    speedup: SpeedupResult
    figure1: Figure1Census
    crossover: Optional[CrossoverResult] = None
    sections: list = field(default_factory=list)

    def render(self) -> str:
        parts = [
            self.table1.render(),
            self.table2.render(),
            self.classification.render(),
            self.speedup.render(),
            self.figure1.render(),
        ]
        if self.crossover is not None:
            parts.append(self.crossover.render())
        return "\n\n".join(parts)


def run_all_experiments(context: Optional[ExperimentContext] = None) -> FullReport:
    """Execute the complete reproduction (Tables 1-2, C1-C3, Figure 1)."""
    context = context or ExperimentContext()
    runner = context.runner()
    scenario = resolve_scenario(
        context.netlist,
        context.testbench,
        circuit=context.circuit,
        seed=context.seed,
        num_cycles=context.num_cycles,
        engine=context.engine,
    )

    # The oracle is experiment-independent: grade the complete fault set
    # once (sharded/resumed by the runner) and share it everywhere.
    oracle = grade_eval_scenario(scenario, runner, context.engine)

    shared = dict(
        netlist=context.netlist,
        testbench=context.testbench,
        circuit=context.circuit,
        num_cycles=context.num_cycles,
        seed=context.seed,
        engine=context.engine,
        runner=runner,
        oracle=oracle,
    )
    table1 = run_table1_experiment(
        scenario.netlist, num_cycles=scenario.testbench.num_cycles
    )
    table2 = run_table2_experiment(board=context.board, **shared)
    classification = run_classification_experiment(**shared)
    speedup = run_speedup_experiment(board=context.board, **shared)
    figure1 = run_figure1_census()
    crossover = (
        run_crossover_experiment(
            seed=context.seed, engine=context.engine, runner=runner
        )
        if context.include_crossover
        else None
    )
    return FullReport(
        table1=table1,
        table2=table2,
        classification=classification,
        speedup=speedup,
        figure1=figure1,
        crossover=crossover,
    )
