"""Run every paper experiment and render a single report.

``run_all_experiments`` is what ``examples/b14_campaign.py`` and the
EXPERIMENTS.md generator call; it shares one circuit/testbench/oracle
across experiments so the whole paper reproduction runs in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.circuits.itc99.b14 import b14_program_testbench, build_b14
from repro.emu.board import RC1000, BoardModel
from repro.eval.classification import (
    ClassificationResult,
    run_classification_experiment,
)
from repro.eval.crossover import CrossoverResult, run_crossover_experiment
from repro.eval.figure1 import Figure1Census, run_figure1_census
from repro.eval.paper import PAPER_B14
from repro.eval.speedup import SpeedupResult, run_speedup_experiment
from repro.eval.table1 import Table1Result, run_table1_experiment
from repro.eval.table2 import Table2Result, run_table2_experiment
from repro.faults.model import exhaustive_fault_list
from repro.netlist.netlist import Netlist
from repro.sim.parallel import DEFAULT_BACKEND, grade_faults
from repro.sim.vectors import Testbench


@dataclass
class ExperimentContext:
    """Shared configuration for a full reproduction run.

    ``engine`` selects the fault-grading backend used by every
    experiment (see :func:`repro.sim.backends.available_engines`); the
    exhaustive b14 fault set is graded once and the oracle shared across
    the experiments, with compiled netlists and golden traces reused
    through the session caches.
    """

    netlist: Optional[Netlist] = None
    testbench: Optional[Testbench] = None
    board: BoardModel = RC1000
    seed: int = 0
    include_crossover: bool = True
    engine: str = DEFAULT_BACKEND

    def resolve(self):
        circuit = self.netlist if self.netlist is not None else build_b14()
        bench = self.testbench or b14_program_testbench(
            circuit, PAPER_B14["stimulus_vectors"], seed=self.seed
        )
        return circuit, bench


@dataclass
class FullReport:
    """All experiment results plus a rendered report."""

    table1: Table1Result
    table2: Table2Result
    classification: ClassificationResult
    speedup: SpeedupResult
    figure1: Figure1Census
    crossover: Optional[CrossoverResult] = None
    sections: list = field(default_factory=list)

    def render(self) -> str:
        parts = [
            self.table1.render(),
            self.table2.render(),
            self.classification.render(),
            self.speedup.render(),
            self.figure1.render(),
        ]
        if self.crossover is not None:
            parts.append(self.crossover.render())
        return "\n\n".join(parts)


def run_all_experiments(context: Optional[ExperimentContext] = None) -> FullReport:
    """Execute the complete reproduction (Tables 1-2, C1-C3, Figure 1)."""
    context = context or ExperimentContext()
    circuit, bench = context.resolve()

    # The oracle is experiment-independent: grade the exhaustive fault
    # set once and share it across every b14 experiment.
    faults = exhaustive_fault_list(circuit, bench.num_cycles)
    oracle = grade_faults(circuit, bench, faults, backend=context.engine)

    table1 = run_table1_experiment(circuit, num_cycles=bench.num_cycles)
    table2 = run_table2_experiment(
        circuit, bench, board=context.board, engine=context.engine, oracle=oracle
    )
    classification = run_classification_experiment(
        circuit, bench, engine=context.engine, oracle=oracle
    )
    speedup = run_speedup_experiment(
        circuit, bench, board=context.board, engine=context.engine, oracle=oracle
    )
    figure1 = run_figure1_census()
    crossover = (
        run_crossover_experiment(seed=context.seed, engine=context.engine)
        if context.include_crossover
        else None
    )
    return FullReport(
        table1=table1,
        table2=table2,
        classification=classification,
        speedup=speedup,
        figure1=figure1,
        crossover=crossover,
    )
