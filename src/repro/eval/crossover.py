"""Experiment C3: the mask-scan / state-scan crossover.

The paper observes that state-scan loses on b14 because the circuit has
many flip-flops (215) and a short testbench (160 cycles) — scanning the
state in costs N cycles per fault while mask-scan's replay costs ~T — and
states that "this method improves when the number of cycles is higher
than the flip-flop number", while time-mux "is always the fastest".

This experiment sweeps testbench length against flip-flop count on a
processor-shaped circuit family and locates the crossover empirically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.emu.instrument import TECHNIQUES
from repro.run.runner import CampaignRunner
from repro.run.spec import CampaignSpec
from repro.sim.parallel import DEFAULT_BACKEND
from repro.util.tables import Table


@dataclass
class CrossoverPoint:
    """One sweep cell: per-technique cycles/fault at (flops, cycles)."""

    num_flops: int
    num_cycles: int
    cycles_per_fault: dict = field(default_factory=dict)

    @property
    def state_scan_wins(self) -> bool:
        """True when state-scan beats mask-scan in this cell."""
        return (
            self.cycles_per_fault["state_scan"]
            < self.cycles_per_fault["mask_scan"]
        )

    @property
    def time_mux_fastest(self) -> bool:
        """True when time-mux is the fastest technique in this cell."""
        fastest = min(self.cycles_per_fault.values())
        return self.cycles_per_fault["time_multiplexed"] == fastest


@dataclass
class CrossoverResult:
    """The full sweep."""

    points: List[CrossoverPoint] = field(default_factory=list)

    def render(self) -> str:
        table = Table(
            ["flops", "cycles", "mask-scan c/f", "state-scan c/f",
             "time-mux c/f", "state-scan wins", "time-mux fastest"],
            title="Mask-scan vs state-scan crossover sweep",
        )
        for point in self.points:
            table.add_row(
                [
                    point.num_flops,
                    point.num_cycles,
                    f"{point.cycles_per_fault['mask_scan']:.1f}",
                    f"{point.cycles_per_fault['state_scan']:.1f}",
                    f"{point.cycles_per_fault['time_multiplexed']:.1f}",
                    "yes" if point.state_scan_wins else "no",
                    "yes" if point.time_mux_fastest else "no",
                ]
            )
        return table.render()

    def paper_claims_hold(self) -> dict:
        """Check the two paper claims over the sweep.

        Returns flags: ``time_mux_always_fastest`` and
        ``state_scan_wins_when_cycles_exceed_flops`` (evaluated on cells
        where cycles >= 2x flops, the regime the paper describes).
        """
        always_fastest = all(point.time_mux_fastest for point in self.points)
        long_bench = [p for p in self.points if p.num_cycles >= 2 * p.num_flops]
        state_wins_long = bool(long_bench) and all(
            p.state_scan_wins for p in long_bench
        )
        return {
            "time_mux_always_fastest": always_fastest,
            "state_scan_wins_when_cycles_exceed_flops": state_wins_long,
        }


def run_crossover_experiment(
    flop_budgets: Optional[Sequence[int]] = None,
    cycle_counts: Optional[Sequence[int]] = None,
    seed: int = 7,
    engine: str = DEFAULT_BACKEND,
    runner: Optional[CampaignRunner] = None,
) -> CrossoverResult:
    """Sweep (flip-flops x testbench length) and measure all techniques.

    Each sweep cell is a declarative campaign over the parameterized
    ``proc:<flops>`` circuit family, expanded with
    :meth:`CampaignSpec.matrix` and executed by the ``runner`` — the
    three techniques of a cell share one graded oracle.
    """
    budgets = list(flop_budgets or (32, 64, 128))
    lengths = list(cycle_counts or (32, 128, 512))
    runner = runner or CampaignRunner()
    result = CrossoverResult()
    for budget in budgets:
        for length in lengths:
            specs = CampaignSpec.matrix(
                circuits=[f"proc:{budget}"],
                techniques=TECHNIQUES,
                engines=[engine],
                testbench="random",
                num_cycles=length,
                seed=seed,
            )
            campaigns = runner.sweep(specs)
            point = CrossoverPoint(
                num_flops=len(campaigns[0].dictionary.flop_names),
                num_cycles=length,
            )
            for spec, campaign in zip(specs, campaigns):
                point.cycles_per_fault[spec.technique] = (
                    campaign.timing.cycles_per_fault
                )
            result.points.append(point)
    return result
