"""Figure 1: the time-multiplexed instrument.

The paper's only figure is the per-flip-flop instrument of the
time-multiplexed technique (GOLDEN/FAULTY/MASK/STATE flops plus the
inject, load, save and compare logic). This module regenerates it as a
*census*: instrument one flip-flop, count what the transform inserted,
and verify the roles — the machine-checkable rendering of the schematic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.emu.instrument.timemux import instrument_time_multiplexed
from repro.netlist.builder import NetlistBuilder
from repro.netlist.netlist import Netlist
from repro.util.tables import Table

#: role -> flop-name prefix inserted by the transform
INSTRUMENT_FLOP_ROLES = {
    "golden": "tm$golden",
    "faulty": "tm$faulty",
    "mask": "tm$mask",
    "state": "tm$state",
}


def _single_flop_circuit() -> Netlist:
    """The smallest host for one instrument: a single flop with feedback."""
    builder = NetlistBuilder("one_flop")
    data = builder.input("d_in")
    q = builder.dff(builder.xor_(data, "loop"), q="loop", init=0, name="the_flop")
    builder.output_net("q_out", q)
    return builder.build()


@dataclass
class Figure1Census:
    """What the Figure-1 instrument adds per circuit flip-flop."""

    flops_per_bit: Dict[str, int]
    gates_added_per_bit: float
    control_inputs: list
    control_outputs: list

    def render(self) -> str:
        table = Table(
            ["instrument element", "count per circuit FF"],
            title="Figure 1 — time-multiplexed instrument census",
        )
        for role, count in self.flops_per_bit.items():
            table.add_row([f"{role} flip-flop", count])
        table.add_row(["added gates (approx)", f"{self.gates_added_per_bit:.1f}"])
        text = table.render()
        text += "\ncontrol inputs : " + ", ".join(sorted(self.control_inputs))
        text += "\ncontrol outputs: " + ", ".join(sorted(self.control_outputs))
        return text


def run_figure1_census() -> Figure1Census:
    """Instrument a one-flop circuit and count the Figure-1 structure."""
    original = _single_flop_circuit()
    instrumented = instrument_time_multiplexed(original)

    flops_per_bit = {}
    for role, prefix in INSTRUMENT_FLOP_ROLES.items():
        flops_per_bit[role] = sum(
            1 for name in instrumented.netlist.dffs if name.startswith(prefix)
        )

    gates_added = instrumented.netlist.num_gates - original.num_gates
    return Figure1Census(
        flops_per_bit=flops_per_bit,
        gates_added_per_bit=gates_added / original.num_ffs,
        control_inputs=sorted(instrumented.control_inputs.values()),
        control_outputs=sorted(instrumented.control_outputs.values()),
    )
