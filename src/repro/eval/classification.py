"""Experiment C1: fault classification of the complete single-fault set.

The paper reports, for b14 with 160 vectors and 34,400 faults:
49.2 % failure, 4.4 % latent, 46.4 % silent. The split is a property of
the circuit and stimulus, not of the emulation technique (all three
techniques grade identically); we reproduce its *shape* — failure and
silent each taking roughly half, latent a small residue.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.circuits.itc99.b14 import b14_program_testbench, build_b14
from repro.eval.paper import PAPER_B14, PAPER_CLASSIFICATION
from repro.faults.classify import FaultClass
from repro.faults.dictionary import FaultDictionary
from repro.faults.model import exhaustive_fault_list
from repro.netlist.netlist import Netlist
from repro.sim.parallel import DEFAULT_BACKEND, FaultGradingResult, grade_faults
from repro.sim.vectors import Testbench
from repro.util.tables import Table


@dataclass
class ClassificationResult:
    """Measured classification split plus the fault dictionary."""

    circuit: str
    num_faults: int
    dictionary: FaultDictionary

    @property
    def percentages(self) -> dict:
        return {
            verdict.value: value
            for verdict, value in self.dictionary.percentages().items()
        }

    def render(self, with_paper: bool = True) -> str:
        """Side-by-side measured vs paper percentages."""
        table = Table(
            ["class", "measured %", "paper %"],
            title=(
                f"Fault classification — {self.num_faults:,} single faults "
                f"on {self.circuit}"
            ),
        )
        measured = self.percentages
        for name in ("failure", "latent", "silent"):
            paper_value = PAPER_CLASSIFICATION[name] if with_paper else float("nan")
            table.add_row([name, f"{measured[name]:.1f}", f"{paper_value:.1f}"])
        return table.render()

    def mean_failure_latency(self) -> float:
        """Average cycles from injection to output corruption (failures
        only) — the quantity mask-scan's early exit banks on."""
        return self.dictionary.mean_latency(FaultClass.FAILURE)

    def mean_silent_latency(self) -> float:
        """Average cycles from injection to disappearance (silent only) —
        the quantity time-mux's early exit banks on."""
        return self.dictionary.mean_latency(FaultClass.SILENT)


def run_classification_experiment(
    netlist: Optional[Netlist] = None,
    testbench: Optional[Testbench] = None,
    seed: int = 0,
    engine: str = DEFAULT_BACKEND,
    oracle: Optional[FaultGradingResult] = None,
) -> ClassificationResult:
    """Grade the complete single-fault set (paper's C1 setup).

    A precomputed ``oracle`` for the exhaustive fault list may be passed
    when several experiments share one circuit/testbench.
    """
    circuit = netlist if netlist is not None else build_b14()
    bench = testbench or b14_program_testbench(
        circuit, PAPER_B14["stimulus_vectors"], seed=seed
    )
    faults = exhaustive_fault_list(circuit, bench.num_cycles)
    if oracle is None:
        oracle = grade_faults(circuit, bench, faults, backend=engine)
    return ClassificationResult(
        circuit=circuit.name,
        num_faults=len(faults),
        dictionary=oracle.to_dictionary(),
    )
