"""Experiment C1: fault classification of the complete single-fault set.

The paper reports, for b14 with 160 vectors and 34,400 faults:
49.2 % failure, 4.4 % latent, 46.4 % silent. The split is a property of
the circuit and stimulus, not of the emulation technique (all three
techniques grade identically); we reproduce its *shape* — failure and
silent each taking roughly half, latent a small residue — and can do so
for any registered circuit via the campaign runner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.eval.context import grade_eval_scenario, resolve_scenario
from repro.eval.paper import PAPER_CLASSIFICATION
from repro.faults.classify import FaultClass
from repro.faults.dictionary import FaultDictionary
from repro.netlist.netlist import Netlist
from repro.run.runner import CampaignRunner
from repro.sim.parallel import DEFAULT_BACKEND, FaultGradingResult
from repro.sim.vectors import Testbench
from repro.util.tables import Table


@dataclass
class ClassificationResult:
    """Measured classification split plus the fault dictionary."""

    circuit: str
    num_faults: int
    dictionary: FaultDictionary

    @property
    def percentages(self) -> dict:
        return {
            verdict.value: value
            for verdict, value in self.dictionary.percentages().items()
        }

    def render(self, with_paper: bool = True) -> str:
        """Side-by-side measured vs paper percentages."""
        table = Table(
            ["class", "measured %", "paper %"],
            title=(
                f"Fault classification — {self.num_faults:,} single faults "
                f"on {self.circuit}"
            ),
        )
        measured = self.percentages
        for name in ("failure", "latent", "silent"):
            paper_value = PAPER_CLASSIFICATION[name] if with_paper else float("nan")
            table.add_row([name, f"{measured[name]:.1f}", f"{paper_value:.1f}"])
        return table.render()

    def mean_failure_latency(self) -> float:
        """Average cycles from injection to output corruption (failures
        only) — the quantity mask-scan's early exit banks on."""
        return self.dictionary.mean_latency(FaultClass.FAILURE)

    def mean_silent_latency(self) -> float:
        """Average cycles from injection to disappearance (silent only) —
        the quantity time-mux's early exit banks on."""
        return self.dictionary.mean_latency(FaultClass.SILENT)


def run_classification_experiment(
    netlist: Optional[Netlist] = None,
    testbench: Optional[Testbench] = None,
    seed: int = 0,
    engine: str = DEFAULT_BACKEND,
    oracle: Optional[FaultGradingResult] = None,
    circuit: Optional[str] = None,
    runner: Optional[CampaignRunner] = None,
    num_cycles: Optional[int] = None,
) -> ClassificationResult:
    """Grade the complete single-fault set (paper's C1 setup).

    Accepts explicit ``netlist``/``testbench`` objects or a registered
    ``circuit`` name; a precomputed ``oracle`` may be passed when several
    experiments share one circuit/testbench.
    """
    scenario = resolve_scenario(
        netlist, testbench, circuit=circuit, seed=seed,
        num_cycles=num_cycles, engine=engine,
    )
    if oracle is None:
        oracle = grade_eval_scenario(scenario, runner, engine)
    return ClassificationResult(
        circuit=scenario.netlist.name,
        num_faults=len(scenario.faults),
        dictionary=oracle.to_dictionary(),
    )
