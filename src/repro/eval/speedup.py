"""Experiment C2: autonomous emulation vs the two baselines.

The paper's headline: at 25 MHz the autonomous system is "some orders of
magnitude better than fault simulation (1300 us/fault) and emulation in
[2] (100 us/fault)". This experiment assembles the whole comparison
table: three autonomous techniques (measured by the campaign engines via
the runner), the host-driven model, and the software-simulation baseline
(both the era-calibrated analytic model and an actual measurement of our
own serial fault simulator).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.emu.board import RC1000, BoardModel
from repro.emu.hostlink import HostLinkModel, SoftwareFaultSimModel
from repro.emu.instrument import TECHNIQUES
from repro.eval.context import (
    grade_eval_scenario,
    resolve_scenario,
    run_eval_campaign,
)
from repro.eval.paper import PAPER_BASELINES, PAPER_TABLE2
from repro.faults.sampling import sample_fault_list
from repro.netlist.netlist import Netlist
from repro.run.runner import CampaignRunner
from repro.sim.parallel import DEFAULT_BACKEND, FaultGradingResult
from repro.sim.vectors import Testbench
from repro.util.tables import Table


@dataclass
class SpeedupResult:
    """us/fault per method plus derived speedups."""

    circuit: str
    us_per_fault: Dict[str, float] = field(default_factory=dict)
    paper_us_per_fault: Dict[str, float] = field(default_factory=dict)

    def speedup(self, method: str, versus: str) -> float:
        """How many times faster ``method`` is than ``versus``."""
        return self.us_per_fault[versus] / self.us_per_fault[method]

    def render(self) -> str:
        table = Table(
            ["method", "us/fault", "speedup vs fault simulation",
             "speedup vs host-driven [2]", "paper us/fault"],
            title=f"Speed comparison on {self.circuit}",
        )
        for method, value in self.us_per_fault.items():
            paper = self.paper_us_per_fault.get(method)
            table.add_row(
                [
                    method,
                    f"{value:.2f}",
                    f"{self.speedup(method, 'fault simulation'):.0f}x",
                    f"{self.speedup(method, 'host-driven emulation [2]'):.0f}x",
                    f"{paper:.2f}" if paper is not None else "-",
                ]
            )
        return table.render()


def run_speedup_experiment(
    netlist: Optional[Netlist] = None,
    testbench: Optional[Testbench] = None,
    board: BoardModel = RC1000,
    seed: int = 0,
    measure_software: bool = False,
    software_sample: int = 50,
    engine: str = DEFAULT_BACKEND,
    oracle: Optional[FaultGradingResult] = None,
    circuit: Optional[str] = None,
    runner: Optional[CampaignRunner] = None,
    num_cycles: Optional[int] = None,
) -> SpeedupResult:
    """Assemble the C2 comparison.

    ``measure_software`` additionally times our own Python serial fault
    simulator over a sampled fault list (slow; used by the benchmark).
    Accepts explicit ``netlist``/``testbench`` objects or a registered
    ``circuit`` name; a precomputed ``oracle`` may be passed when several
    experiments share one circuit/testbench.
    """
    scenario = resolve_scenario(
        netlist, testbench, circuit=circuit, seed=seed,
        num_cycles=num_cycles, engine=engine,
    )
    runner = runner or CampaignRunner()
    if oracle is None:
        oracle = grade_eval_scenario(scenario, runner, engine)
    bench = scenario.testbench

    result = SpeedupResult(circuit=scenario.netlist.name)
    simulation = SoftwareFaultSimModel()
    result.us_per_fault["fault simulation"] = (
        simulation.seconds_per_fault_analytic(scenario.netlist, bench.num_cycles)
        * 1e6
    )
    result.paper_us_per_fault["fault simulation"] = PAPER_BASELINES[
        "fault_simulation_us_per_fault"
    ]

    host = HostLinkModel(board=board)
    result.us_per_fault["host-driven emulation [2]"] = host.us_per_fault(
        bench.num_cycles
    )
    result.paper_us_per_fault["host-driven emulation [2]"] = PAPER_BASELINES[
        "host_driven_emulation_us_per_fault"
    ]

    for technique in TECHNIQUES:
        campaign = run_eval_campaign(scenario, technique, runner, board, oracle)
        result.us_per_fault[technique] = campaign.timing.us_per_fault
        result.paper_us_per_fault[technique] = PAPER_TABLE2[technique][
            "us_per_fault"
        ]

    if measure_software:
        sample = sample_fault_list(scenario.faults, software_sample, seed=seed)
        measured = simulation.seconds_per_fault_measured(
            scenario.netlist, bench, sample
        )
        result.us_per_fault["fault simulation (measured, this host)"] = (
            measured * 1e6
        )
    return result
