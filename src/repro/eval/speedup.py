"""Experiment C2: autonomous emulation vs the two baselines.

The paper's headline: at 25 MHz the autonomous system is "some orders of
magnitude better than fault simulation (1300 us/fault) and emulation in
[2] (100 us/fault)". This experiment assembles the whole comparison
table: three autonomous techniques (measured by the campaign engines),
the host-driven model, and the software-simulation baseline (both the
era-calibrated analytic model and an actual measurement of our own serial
fault simulator).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.circuits.itc99.b14 import b14_program_testbench, build_b14
from repro.emu.board import RC1000, BoardModel
from repro.emu.campaign import run_campaign
from repro.emu.hostlink import HostLinkModel, SoftwareFaultSimModel
from repro.emu.instrument import TECHNIQUES
from repro.eval.paper import PAPER_B14, PAPER_BASELINES, PAPER_TABLE2
from repro.faults.model import exhaustive_fault_list
from repro.faults.sampling import sample_fault_list
from repro.netlist.netlist import Netlist
from repro.sim.parallel import DEFAULT_BACKEND, FaultGradingResult, grade_faults
from repro.sim.vectors import Testbench
from repro.util.tables import Table


@dataclass
class SpeedupResult:
    """us/fault per method plus derived speedups."""

    circuit: str
    us_per_fault: Dict[str, float] = field(default_factory=dict)
    paper_us_per_fault: Dict[str, float] = field(default_factory=dict)

    def speedup(self, method: str, versus: str) -> float:
        """How many times faster ``method`` is than ``versus``."""
        return self.us_per_fault[versus] / self.us_per_fault[method]

    def render(self) -> str:
        table = Table(
            ["method", "us/fault", "speedup vs fault simulation",
             "speedup vs host-driven [2]", "paper us/fault"],
            title=f"Speed comparison on {self.circuit}",
        )
        for method, value in self.us_per_fault.items():
            paper = self.paper_us_per_fault.get(method)
            table.add_row(
                [
                    method,
                    f"{value:.2f}",
                    f"{self.speedup(method, 'fault simulation'):.0f}x",
                    f"{self.speedup(method, 'host-driven emulation [2]'):.0f}x",
                    f"{paper:.2f}" if paper is not None else "-",
                ]
            )
        return table.render()


def run_speedup_experiment(
    netlist: Optional[Netlist] = None,
    testbench: Optional[Testbench] = None,
    board: BoardModel = RC1000,
    seed: int = 0,
    measure_software: bool = False,
    software_sample: int = 50,
    engine: str = DEFAULT_BACKEND,
    oracle: Optional[FaultGradingResult] = None,
) -> SpeedupResult:
    """Assemble the C2 comparison.

    ``measure_software`` additionally times our own Python serial fault
    simulator over a sampled fault list (slow; used by the benchmark).
    A precomputed ``oracle`` for the exhaustive fault list may be passed
    when several experiments share one circuit/testbench.
    """
    circuit = netlist if netlist is not None else build_b14()
    bench = testbench or b14_program_testbench(
        circuit, PAPER_B14["stimulus_vectors"], seed=seed
    )
    faults = exhaustive_fault_list(circuit, bench.num_cycles)
    if oracle is None:
        oracle = grade_faults(circuit, bench, faults, backend=engine)

    result = SpeedupResult(circuit=circuit.name)
    simulation = SoftwareFaultSimModel()
    result.us_per_fault["fault simulation"] = (
        simulation.seconds_per_fault_analytic(circuit, bench.num_cycles) * 1e6
    )
    result.paper_us_per_fault["fault simulation"] = PAPER_BASELINES[
        "fault_simulation_us_per_fault"
    ]

    host = HostLinkModel(board=board)
    result.us_per_fault["host-driven emulation [2]"] = host.us_per_fault(
        bench.num_cycles
    )
    result.paper_us_per_fault["host-driven emulation [2]"] = PAPER_BASELINES[
        "host_driven_emulation_us_per_fault"
    ]

    for technique in TECHNIQUES:
        campaign = run_campaign(
            circuit, bench, technique, board=board, faults=faults, oracle=oracle
        )
        result.us_per_fault[technique] = campaign.timing.us_per_fault
        result.paper_us_per_fault[technique] = PAPER_TABLE2[technique][
            "us_per_fault"
        ]

    if measure_software:
        sample = sample_fault_list(faults, software_sample, seed=seed)
        measured = simulation.seconds_per_fault_measured(circuit, bench, sample)
        result.us_per_fault["fault simulation (measured, this host)"] = (
            measured * 1e6
        )
    return result
