"""Experiment Table 1: synthesis results for the b14 circuit.

Regenerates every cell of the paper's Table 1: the original circuit, the
three instrumented ("modified") circuits with LUT/FF overheads, the three
full emulator systems (modified + generated controller), and the RAM
budget per technique.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.circuits.itc99.b14 import build_b14
from repro.emu.instrument import TECHNIQUES
from repro.emu.system import AutonomousEmulator, SynthesisSummary
from repro.eval.paper import PAPER_B14, PAPER_TABLE1
from repro.netlist.netlist import Netlist
from repro.synth.area import AreaReport, area_of
from repro.util.tables import Table


@dataclass
class Table1Result:
    """Structured Table-1 data plus a rendered table."""

    circuit: str
    original: AreaReport
    summaries: Dict[str, SynthesisSummary] = field(default_factory=dict)

    def render(self, with_paper: bool = True) -> str:
        """Render in the paper's layout; optionally with the published
        numbers inline for comparison."""
        table = Table(
            [
                "row",
                "RAM (board/fpga kbit)",
                "modified LUTs",
                "modified FFs",
                "system LUTs",
                "system FFs",
            ],
            title=f"Table 1 — synthesis results for {self.circuit}",
        )
        table.add_row(
            [f"{self.circuit} original", "-", f"{self.original.luts:,}",
             str(self.original.ffs), "-", "-"]
        )
        for technique, summary in self.summaries.items():
            modified = summary.modified.overhead_vs(summary.original)
            system = summary.system.overhead_vs(summary.original)
            table.add_row(
                [
                    technique,
                    f"{summary.ram.board_kbits:,.0f} / {summary.ram.fpga_kbits:.1f}",
                    modified.lut_cell(),
                    modified.ff_cell(),
                    system.lut_cell(),
                    system.ff_cell(),
                ]
            )
        text = table.render()
        if with_paper:
            text += "\n\npaper reference:\n"
            for technique in self.summaries:
                ref = PAPER_TABLE1[technique]
                text += (
                    f"  {technique}: RAM {ref['ram'][0]} / {ref['ram'][1]} kbit, "
                    f"modified {ref['modified_luts']:,} ({ref['modified_luts_pct']}%) LUTs / "
                    f"{ref['modified_ffs']} ({ref['modified_ffs_pct']}%) FFs, system "
                    f"{ref['system_luts']:,} ({ref['system_luts_pct']}%) LUTs / "
                    f"{ref['system_ffs']} ({ref['system_ffs_pct']}%) FFs\n"
                )
        return text


def run_table1_experiment(
    netlist: Optional[Netlist] = None,
    num_cycles: int = PAPER_B14["stimulus_vectors"],
    techniques: Optional[List[str]] = None,
) -> Table1Result:
    """Measure every Table-1 row (defaults to the paper's b14 setup)."""
    circuit = netlist if netlist is not None else build_b14()
    num_faults = circuit.num_ffs * num_cycles
    result = Table1Result(circuit=circuit.name, original=area_of(circuit))
    for technique in techniques or list(TECHNIQUES):
        emulator = AutonomousEmulator(
            circuit,
            technique,
            campaign_cycles=num_cycles,
            campaign_faults=num_faults,
        )
        result.summaries[technique] = emulator.synthesize(num_cycles, num_faults)
    return result
