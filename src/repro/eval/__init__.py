"""Experiment harness: one module per paper artifact.

* :mod:`repro.eval.table1` — synthesis results (Table 1)
* :mod:`repro.eval.table2` — emulation time results (Table 2)
* :mod:`repro.eval.classification` — fault classification split (C1)
* :mod:`repro.eval.speedup` — comparison vs the two baselines (C2)
* :mod:`repro.eval.crossover` — mask-scan vs state-scan crossover (C3)
* :mod:`repro.eval.figure1` — the time-mux instrument census (Figure 1)
* :mod:`repro.eval.experiments` — run everything, render a report
"""

from repro.eval.classification import run_classification_experiment
from repro.eval.crossover import run_crossover_experiment
from repro.eval.experiments import ExperimentContext, run_all_experiments
from repro.eval.figure1 import run_figure1_census
from repro.eval.speedup import run_speedup_experiment
from repro.eval.table1 import run_table1_experiment
from repro.eval.table2 import run_table2_experiment

__all__ = [
    "ExperimentContext",
    "run_all_experiments",
    "run_classification_experiment",
    "run_crossover_experiment",
    "run_figure1_census",
    "run_speedup_experiment",
    "run_table1_experiment",
    "run_table2_experiment",
]
