"""Shared scenario resolution for the eval experiments.

Every experiment accepts either an explicit ``(netlist, testbench)`` pair
(the test suite's path — any ad-hoc circuit works) or a registered
circuit *name*, in which case the experiment builds a
:class:`~repro.run.spec.CampaignSpec` and consumes the sharded,
store-backed :class:`~repro.run.runner.CampaignRunner`. This module is
the one place that precedence lives, so every paper table resolves
scenarios — and therefore supports every registered circuit — the same
way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.circuits.registry import build_circuit
from repro.emu.campaign import run_campaign
from repro.faults.model import SeuFault, exhaustive_fault_list
from repro.netlist.netlist import Netlist
from repro.run import worker
from repro.run.runner import CampaignRunner
from repro.run.spec import CampaignSpec, default_testbench_for
from repro.sim.parallel import DEFAULT_BACKEND, FaultGradingResult
from repro.sim.vectors import Testbench


@dataclass
class EvalScenario:
    """A resolved experiment scenario.

    ``spec`` is set when the scenario came from a circuit name and the
    experiment can route work through the runner and its results store;
    ``None`` marks an ad-hoc netlist/testbench with no declarative
    description.
    """

    netlist: Netlist
    testbench: Testbench
    faults: List[SeuFault]
    spec: Optional[CampaignSpec]


def resolve_scenario(
    netlist: Optional[Netlist] = None,
    testbench: Optional[Testbench] = None,
    circuit: Optional[str] = None,
    seed: int = 0,
    num_cycles: Optional[int] = None,
    engine: str = DEFAULT_BACKEND,
    technique: str = "mask_scan",
) -> EvalScenario:
    """Resolve experiment inputs into a concrete scenario.

    Explicit ``netlist``/``testbench`` objects win (an explicit
    testbench alone runs against the named circuit, built on the spot);
    only when *both* are absent is ``circuit`` (default b14) resolved
    through a spec. ``technique`` only seeds the spec (grading is
    technique-independent); experiments that sweep techniques swap it
    per campaign.
    """
    if netlist is None and testbench is None:
        spec = CampaignSpec(
            circuit=circuit or "b14",
            technique=technique,
            engine=engine,
            num_cycles=num_cycles,
            seed=seed,
        )
        scenario = worker.scenario_for(spec)  # memoized across experiments
        return EvalScenario(
            netlist=scenario.netlist,
            testbench=scenario.testbench,
            faults=scenario.faults,
            spec=spec,
        )
    if netlist is None:
        netlist = build_circuit(circuit or "b14")
    bench = testbench
    if bench is None:
        bench = default_testbench_for(
            netlist, num_cycles=num_cycles, seed=seed, circuit=circuit
        )
    faults = exhaustive_fault_list(netlist, bench.num_cycles)
    return EvalScenario(netlist=netlist, testbench=bench, faults=faults, spec=None)


def grade_eval_scenario(
    scenario: EvalScenario,
    runner: Optional[CampaignRunner],
    engine: str = DEFAULT_BACKEND,
) -> FaultGradingResult:
    """Grade a resolved scenario through the runner.

    Spec-described scenarios take the sharded (and, when the runner has
    a store root, resumable) path; ad-hoc ones grade serially in-process.
    """
    runner = runner or CampaignRunner()
    if scenario.spec is not None:
        return runner.grade(scenario.spec)
    return runner.grade_scenario(
        scenario.netlist, scenario.testbench, scenario.faults, engine=engine
    )


def run_eval_campaign(
    scenario: EvalScenario,
    technique: str,
    runner: CampaignRunner,
    board,
    oracle: FaultGradingResult,
):
    """One technique's campaign over a resolved scenario.

    The spec/ad-hoc dispatch twin of :func:`grade_eval_scenario`, so
    experiments that sweep techniques (Table 2, the speed comparison)
    share one execution path.
    """
    if scenario.spec is not None:
        return runner.run(
            scenario.spec.with_technique(technique), board=board, oracle=oracle
        )
    return run_campaign(
        scenario.netlist,
        scenario.testbench,
        technique,
        board=board,
        faults=scenario.faults,
        oracle=oracle,
    )
