"""Experiment Table 2: emulation time results for the b14 circuit.

Regenerates the paper's Table 2 — total emulation time (ms) and average
speed (us/fault) for the three autonomous techniques at the board clock —
from the cycle-accurate campaign engines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.circuits.itc99.b14 import b14_program_testbench, build_b14
from repro.emu.board import RC1000, BoardModel
from repro.emu.campaign import CampaignResult, run_campaign
from repro.emu.instrument import TECHNIQUES
from repro.eval.paper import PAPER_B14, PAPER_TABLE2
from repro.faults.model import exhaustive_fault_list
from repro.netlist.netlist import Netlist
from repro.sim.parallel import DEFAULT_BACKEND, FaultGradingResult, grade_faults
from repro.sim.vectors import Testbench
from repro.util.tables import Table


@dataclass
class Table2Result:
    """Structured Table-2 data plus a rendered table."""

    circuit: str
    campaigns: Dict[str, CampaignResult] = field(default_factory=dict)

    def render(self, with_paper: bool = True) -> str:
        """Render in the paper's layout."""
        table = Table(
            ["autonomous system", "emulation time (ms)", "avg speed (us/fault)",
             "cycles/fault"],
            title=f"Table 2 — time results for {self.circuit}",
        )
        for technique, campaign in self.campaigns.items():
            table.add_row(
                [
                    technique,
                    f"{campaign.timing.milliseconds:.2f}",
                    f"{campaign.timing.us_per_fault:.2f}",
                    f"{campaign.timing.cycles_per_fault:.1f}",
                ]
            )
        text = table.render()
        if with_paper:
            text += "\n\npaper reference:\n"
            for technique in self.campaigns:
                ref = PAPER_TABLE2[technique]
                text += (
                    f"  {technique}: {ref['emulation_ms']:.2f} ms, "
                    f"{ref['us_per_fault']:.2f} us/fault\n"
                )
        return text

    def fastest(self) -> str:
        """Name of the fastest technique (the paper's claim: time-mux)."""
        return min(
            self.campaigns, key=lambda t: self.campaigns[t].timing.cycles_per_fault
        )


def run_table2_experiment(
    netlist: Optional[Netlist] = None,
    testbench: Optional[Testbench] = None,
    board: BoardModel = RC1000,
    seed: int = 0,
    engine: str = DEFAULT_BACKEND,
    oracle: Optional[FaultGradingResult] = None,
) -> Table2Result:
    """Run all three campaigns on the paper's setup (b14, 160 vectors,
    exhaustive faults) and report Table-2 figures.

    A precomputed ``oracle`` for the exhaustive fault list may be passed
    when several experiments share one circuit/testbench (see
    :func:`repro.eval.experiments.run_all_experiments`).
    """
    circuit = netlist if netlist is not None else build_b14()
    bench = testbench or b14_program_testbench(
        circuit, PAPER_B14["stimulus_vectors"], seed=seed
    )
    faults = exhaustive_fault_list(circuit, bench.num_cycles)
    if oracle is None:
        oracle = grade_faults(circuit, bench, faults, backend=engine)

    result = Table2Result(circuit=circuit.name)
    for technique in TECHNIQUES:
        result.campaigns[technique] = run_campaign(
            circuit, bench, technique, board=board, faults=faults, oracle=oracle
        )
    return result
