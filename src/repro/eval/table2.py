"""Experiment Table 2: emulation time results.

Regenerates the paper's Table 2 — total emulation time (ms) and average
speed (us/fault) for the three autonomous techniques at the board clock —
from the cycle-accurate campaign engines, for any registered circuit
(the paper's setup being b14, 160 vectors, exhaustive faults). Campaigns
are described as :class:`~repro.run.spec.CampaignSpec`\\ s and executed
by a (possibly sharded, store-backed) campaign runner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.emu.board import RC1000, BoardModel
from repro.emu.campaign import CampaignResult
from repro.emu.instrument import TECHNIQUES
from repro.eval.context import (
    grade_eval_scenario,
    resolve_scenario,
    run_eval_campaign,
)
from repro.eval.paper import PAPER_TABLE2
from repro.netlist.netlist import Netlist
from repro.run.runner import CampaignRunner
from repro.sim.parallel import DEFAULT_BACKEND, FaultGradingResult
from repro.sim.vectors import Testbench
from repro.util.tables import Table


@dataclass
class Table2Result:
    """Structured Table-2 data plus a rendered table."""

    circuit: str
    campaigns: Dict[str, CampaignResult] = field(default_factory=dict)

    def render(self, with_paper: bool = True) -> str:
        """Render in the paper's layout."""
        table = Table(
            ["autonomous system", "emulation time (ms)", "avg speed (us/fault)",
             "cycles/fault"],
            title=f"Table 2 — time results for {self.circuit}",
        )
        for technique, campaign in self.campaigns.items():
            table.add_row(
                [
                    technique,
                    f"{campaign.timing.milliseconds:.2f}",
                    f"{campaign.timing.us_per_fault:.2f}",
                    f"{campaign.timing.cycles_per_fault:.1f}",
                ]
            )
        text = table.render()
        if with_paper:
            text += "\n\npaper reference:\n"
            for technique in self.campaigns:
                ref = PAPER_TABLE2[technique]
                text += (
                    f"  {technique}: {ref['emulation_ms']:.2f} ms, "
                    f"{ref['us_per_fault']:.2f} us/fault\n"
                )
        return text

    def fastest(self) -> str:
        """Name of the fastest technique (the paper's claim: time-mux)."""
        return min(
            self.campaigns, key=lambda t: self.campaigns[t].timing.cycles_per_fault
        )


def run_table2_experiment(
    netlist: Optional[Netlist] = None,
    testbench: Optional[Testbench] = None,
    board: BoardModel = RC1000,
    seed: int = 0,
    engine: str = DEFAULT_BACKEND,
    oracle: Optional[FaultGradingResult] = None,
    circuit: Optional[str] = None,
    runner: Optional[CampaignRunner] = None,
    num_cycles: Optional[int] = None,
) -> Table2Result:
    """Run all three campaigns on one circuit and report Table-2 figures.

    Pass either explicit ``netlist``/``testbench`` objects or a
    registered ``circuit`` name (default b14 at the paper's scale). A
    precomputed ``oracle`` for the scenario's fault list may be passed
    when several experiments share one circuit/testbench (see
    :func:`repro.eval.experiments.run_all_experiments`); otherwise the
    ``runner`` grades it — sharded and resumable when so configured.
    """
    scenario = resolve_scenario(
        netlist, testbench, circuit=circuit, seed=seed,
        num_cycles=num_cycles, engine=engine,
    )
    runner = runner or CampaignRunner()
    if oracle is None:
        oracle = grade_eval_scenario(scenario, runner, engine)

    result = Table2Result(circuit=scenario.netlist.name)
    for technique in TECHNIQUES:
        result.campaigns[technique] = run_eval_campaign(
            scenario, technique, runner, board, oracle
        )
    return result
