"""Sampled vs exhaustive classification rates — the sampling-error table.

For each circuit this experiment grades the exhaustive campaign (the
ground truth the paper reports) and one sampled campaign per requested
sample size, then tabulates, per fault class:

* the exhaustive rate,
* the sampled point estimate with its confidence interval,
* the absolute estimation error, and
* whether the interval **covers** the true rate — the property the
  statistical machinery exists to provide.

The default circuits are the CI trio (b04, b06, b14); any registered
circuit works. Oracles flow through the shared runner path, so exhaustive
grades are reused from the results store when present.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from repro.faults.classify import FaultClass, classification_counts
from repro.faults.sampling import SampleEstimate, classification_estimates
from repro.run.runner import CampaignRunner
from repro.run.spec import CampaignSpec
from repro.util.tables import Table

DEFAULT_CIRCUITS = ("b04", "b06", "b14")
DEFAULT_SAMPLES = (200, 500, 1000)


@dataclass
class SamplingErrorRow:
    """One (circuit, sample size, fault class) comparison."""

    circuit: str
    sample: int
    population: int
    fault_class: FaultClass
    exhaustive_rate: float
    estimate: SampleEstimate

    @property
    def error(self) -> float:
        """|sampled − exhaustive| in rate units."""
        return abs(self.estimate.proportion - self.exhaustive_rate)

    @property
    def covered(self) -> bool:
        """Whether the interval contains the exhaustive rate."""
        return self.estimate.covers(self.exhaustive_rate)


@dataclass
class SamplingErrorReport:
    """All rows plus the rendering/aggregation helpers."""

    rows: List[SamplingErrorRow]
    confidence: float
    ci_method: str
    fault_model: str
    sampling: str

    def coverage(self) -> float:
        """Fraction of rows whose interval covers the true rate."""
        if not self.rows:
            return 0.0
        return sum(row.covered for row in self.rows) / len(self.rows)

    def worst_error(self) -> float:
        return max((row.error for row in self.rows), default=0.0)

    def render(self) -> str:
        table = Table(
            [
                "circuit",
                "n / N",
                "class",
                "exhaustive",
                "sampled [CI]",
                "|error|",
                "covered",
            ],
            title=(
                f"Sampling error — {self.fault_model} faults, "
                f"{self.sampling} sampling, {self.ci_method} "
                f"@{int(self.confidence * 100)}%"
            ),
        )
        for row in self.rows:
            table.add_row(
                [
                    row.circuit,
                    f"{row.sample}/{row.population}",
                    row.fault_class.value,
                    f"{100 * row.exhaustive_rate:.2f} %",
                    row.estimate.describe(),
                    f"{100 * row.error:.2f} pp",
                    "yes" if row.covered else "NO",
                ]
            )
        footer = (
            f"\ninterval coverage: {100 * self.coverage():.0f}% of rows "
            f"(nominal {int(self.confidence * 100)}%), worst error "
            f"{100 * self.worst_error():.2f} pp"
        )
        return table.render() + footer


def sampling_error_report(
    circuits: Sequence[str] = DEFAULT_CIRCUITS,
    samples: Sequence[int] = DEFAULT_SAMPLES,
    fault_model: str = "seu",
    sampling: str = "uniform",
    seed: int = 0,
    num_cycles: Optional[int] = None,
    confidence: float = 0.95,
    ci_method: str = "wilson",
    engine: Optional[str] = None,
    runner: Optional[CampaignRunner] = None,
) -> SamplingErrorReport:
    """Build the sampled-vs-exhaustive comparison for several circuits.

    Sample sizes larger than a circuit's population are skipped for that
    circuit (they would not be samples). The exhaustive oracle is graded
    once per circuit and shared by every sample-size row.
    """
    runner = runner or CampaignRunner()
    rows: List[SamplingErrorRow] = []
    for circuit in circuits:
        spec = CampaignSpec(
            circuit=circuit,
            technique="time_multiplexed",
            fault_model=fault_model,
            sampling=sampling,
            seed=seed,
            num_cycles=num_cycles,
            **({"engine": engine} if engine else {}),
        )
        exhaustive = runner.grade(spec)
        population = exhaustive.num_faults
        counts = classification_counts(exhaustive.verdicts())
        true_rates: Dict[FaultClass, float] = {
            fault_class: count / population
            for fault_class, count in counts.items()
        }
        for sample in samples:
            if sample >= population:
                continue
            sampled = runner.grade(replace(spec, sample=sample))
            estimates = classification_estimates(
                sampled.verdicts(), confidence=confidence, method=ci_method
            )
            for fault_class in FaultClass:
                rows.append(
                    SamplingErrorRow(
                        circuit=circuit,
                        sample=sample,
                        population=population,
                        fault_class=fault_class,
                        exhaustive_rate=true_rates[fault_class],
                        estimate=estimates[fault_class],
                    )
                )
    return SamplingErrorReport(
        rows=rows,
        confidence=confidence,
        ci_method=ci_method,
        fault_model=fault_model,
        sampling=sampling,
    )
