"""The paper's published numbers, kept verbatim for side-by-side reports.

Source: Lopez-Ongil et al., DATE 2005 — Table 1, Table 2 and the in-text
figures for the b14 experiment (160 stimulus vectors, 34,400 single
faults, 25 MHz emulation clock).
"""

from __future__ import annotations

#: Table 1 — synthesis results for the b14 circuit (Leonardo Spectrum,
#: Virtex-2000E). RAM cells are (board figure, fpga kbits) as printed.
PAPER_TABLE1 = {
    "original": {"luts": 1172, "ffs": 215},
    "mask_scan": {
        "ram": (33, 13.4),
        "modified_luts": 1657,
        "modified_luts_pct": 41,
        "modified_ffs": 434,
        "modified_ffs_pct": 102,
        "system_luts": 2040,
        "system_luts_pct": 74,
        "system_ffs": 670,
        "system_ffs_pct": 211,
    },
    "state_scan": {
        "ram": (7289, 13.4),
        "modified_luts": 1644,
        "modified_luts_pct": 40,
        "modified_ffs": 433,
        "modified_ffs_pct": 101,
        "system_luts": 1728,
        "system_luts_pct": 47,
        "system_ffs": 518,
        "system_ffs_pct": 140,
    },
    "time_multiplexed": {
        "ram": (67, 5.3),
        "modified_luts": 3836,
        "modified_luts_pct": 227,
        "modified_ffs": 859,
        "modified_ffs_pct": 300,
        "system_luts": 4162,
        "system_luts_pct": 255,
        "system_ffs": 1032,
        "system_ffs_pct": 380,
    },
}

#: Table 2 — time results for the b14 circuit at 25 MHz.
PAPER_TABLE2 = {
    "mask_scan": {"emulation_ms": 141.11, "us_per_fault": 4.1},
    "state_scan": {"emulation_ms": 386.40, "us_per_fault": 11.2},
    "time_multiplexed": {"emulation_ms": 19.95, "us_per_fault": 0.58},
}

#: In-text C1 — classification of the 34,400 single faults.
PAPER_CLASSIFICATION = {"failure": 49.2, "latent": 4.4, "silent": 46.4}

#: In-text C2 — baseline speeds quoted by the paper.
PAPER_BASELINES = {
    "fault_simulation_us_per_fault": 1300.0,
    "host_driven_emulation_us_per_fault": 100.0,
}

#: Experiment scale.
PAPER_B14 = {
    "stimulus_vectors": 160,
    "faults": 34_400,
    "clock_mhz": 25.0,
    "inputs": 32,
    "outputs": 54,
    "flip_flops": 215,
}
