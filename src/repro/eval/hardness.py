"""The hardness-evaluation report: plain vs hardened classification.

This is the paper's motivating workload: the accelerator exists so a
designer can grade a protected circuit version against the unprotected
one — per fault model — and weigh the sensitivity gain against the area
price. ``run_hardness_experiment`` grades one circuit plain and under
any set of :mod:`repro.hardening` schemes, for any set of fault models,
through the ordinary campaign machinery (sharded, store-backed, any
grading engine), and renders the comparison as one table.

Reading the numbers:

* **tmr** masks: its failure rate should collapse toward zero (the
  ``failure_reduction_pct`` metric quantifies how much of the plain
  failure rate the scheme removed).
* **dwc** / **parity** detect: their error flags are primary outputs, so
  a raised flag *is* an output mismatch and classifies as FAILURE — for
  detection schemes the failure column reads as detection coverage, and
  the interesting comparison is how little silent/latent residue is left.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import CampaignError
from repro.faults.classify import FaultClass
from repro.faults.sampling import SampleEstimate, classification_estimates
from repro.hardening import available_schemes
from repro.run import worker
from repro.run.runner import CampaignRunner
from repro.run.spec import CampaignSpec
from repro.sim.parallel import DEFAULT_BACKEND
from repro.synth.area import AreaOverhead, AreaReport, area_of
from repro.util.tables import Table

#: default comparison axes: the paper's SEU model, a multi-bit upset
#: (which defeats per-flop TMR when both hits land in one voter group)
#: and a permanent fault.
DEFAULT_SCHEMES = ("tmr", "dwc", "parity")
DEFAULT_FAULT_MODELS = ("seu", "mbu:2", "stuck_at_1")

#: schemes whose protection is an error flag rather than masking; their
#: failure column is detection coverage.
DETECTION_SCHEMES = ("dwc", "parity")


@dataclass
class HardnessRow:
    """One circuit version (plain or hardened) across all fault models.

    ``populations`` is the complete fault-population size per model;
    ``samples`` is how many faults were actually graded (equal under
    exhaustive grading, the ``--sample`` size otherwise). For sampled
    campaigns ``estimates`` carries per-class Wilson
    :class:`~repro.faults.sampling.SampleEstimate` intervals, so the
    rendered cells show sampling uncertainty instead of point estimates
    that look exact.
    """

    scheme: Optional[str]
    label: str
    area: AreaReport
    overhead: AreaOverhead
    num_flops: int
    rates: Dict[str, Dict[FaultClass, float]] = field(default_factory=dict)
    populations: Dict[str, int] = field(default_factory=dict)
    samples: Dict[str, int] = field(default_factory=dict)
    estimates: Dict[str, Dict[FaultClass, "SampleEstimate"]] = field(
        default_factory=dict
    )

    def rate_cell(self, fault_model: str) -> str:
        rates = self.rates[fault_model]
        estimates = self.estimates.get(fault_model)
        if estimates is not None:
            cells = []
            for fault_class in (
                FaultClass.FAILURE,
                FaultClass.LATENT,
                FaultClass.SILENT,
            ):
                estimate = estimates[fault_class]
                cells.append(
                    f"{rates[fault_class]:.1f}±{100 * estimate.half_width:.1f}"
                )
            return " / ".join(cells)
        return (
            f"{rates[FaultClass.FAILURE]:5.1f} / "
            f"{rates[FaultClass.LATENT]:4.1f} / "
            f"{rates[FaultClass.SILENT]:5.1f}"
        )


@dataclass
class HardnessReport:
    """Structured hardness data plus the rendered comparison table."""

    circuit: str
    num_cycles: int
    seed: int
    engine: str
    sample: Optional[int]
    fault_models: List[str]
    rows: List[HardnessRow]

    def row(self, scheme: Optional[str]) -> HardnessRow:
        for row in self.rows:
            if row.scheme == scheme:
                return row
        raise CampaignError(f"no hardness row for scheme {scheme!r}")

    def failure_reduction_pct(
        self, scheme: str, fault_model: str
    ) -> Optional[float]:
        """Share of the plain failure rate the scheme eliminated.

        100 means every plain-circuit failure became non-failing (for
        TMR: masked to silent/latent); 0 means no improvement; negative
        means the scheme *raised* the failure rate (detection schemes do,
        by design — their flag turns silent corruption into a detected,
        failing output). ``None`` when the plain rate is zero but the
        hardened one is not — there is no baseline to reduce, so a
        percentage would be meaningless.
        """
        plain = self.row(None).rates[fault_model][FaultClass.FAILURE]
        hardened = self.row(scheme).rates[fault_model][FaultClass.FAILURE]
        if plain == 0.0:
            return 0.0 if hardened == 0.0 else None
        return 100.0 * (plain - hardened) / plain

    def render(self) -> str:
        sampled = "" if self.sample is None else f", sample={self.sample}"
        table = Table(
            ["version", "LUTs", "FFs"]
            + [f"{model} fail/lat/sil %" for model in self.fault_models],
            title=(
                f"Hardness evaluation — {self.circuit} "
                f"({self.num_cycles} cycles, seed {self.seed}, "
                f"engine {self.engine}{sampled})"
            ),
        )
        for row in self.rows:
            if row.scheme is None:
                luts, ffs = f"{row.area.luts:,}", f"{row.area.ffs:,}"
            else:
                luts, ffs = row.overhead.lut_cell(), row.overhead.ff_cell()
            table.add_row(
                [row.label, luts, ffs]
                + [row.rate_cell(model) for model in self.fault_models]
            )
        lines = [table.render()]
        for row in self.rows:
            if row.scheme is None or row.scheme in DETECTION_SCHEMES:
                continue
            for model in self.fault_models:
                reduction = self.failure_reduction_pct(row.scheme, model)
                plain_rate = self.row(None).rates[model][FaultClass.FAILURE]
                if reduction is None:
                    hardened_rate = row.rates[model][FaultClass.FAILURE]
                    lines.append(
                        f"  {row.scheme}: n/a for {model} — plain failure "
                        f"rate is 0.0% but the hardened rate is "
                        f"{hardened_rate:.1f}%"
                    )
                else:
                    lines.append(
                        f"  {row.scheme}: removes {reduction:.1f}% of the "
                        f"plain {model} failure rate ({plain_rate:.1f}%)"
                    )
        if any(row.scheme in DETECTION_SCHEMES for row in self.rows):
            lines.append(
                "  note: dwc/parity error flags are primary outputs — their "
                "failure column is detection coverage, not damage"
            )
        if any(row.estimates for row in self.rows):
            parts = []
            for row in self.rows:
                if not row.estimates:
                    continue
                sizes = sorted(
                    {
                        (row.samples[model], row.populations[model])
                        for model in row.estimates
                    }
                )
                parts.append(
                    f"{row.label} "
                    + ", ".join(
                        f"{sample:,}/{population:,}"
                        for sample, population in sizes
                    )
                )
            lines.append(
                "  note: ±x.x cells are Wilson 95% half-widths from sampled "
                "campaigns (graded/population: " + "; ".join(parts) + ")"
            )
        return "\n".join(lines)


def run_hardness_experiment(
    circuit: str,
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    fault_models: Sequence[str] = DEFAULT_FAULT_MODELS,
    engine: str = DEFAULT_BACKEND,
    seed: int = 0,
    num_cycles: Optional[int] = None,
    sample: Optional[int] = None,
    sampling: str = "uniform",
    technique: str = "mask_scan",
    runner: Optional[CampaignRunner] = None,
) -> HardnessReport:
    """Grade ``circuit`` plain and under every scheme, per fault model.

    All campaigns route through ``runner`` (sharded and resumable when it
    has workers/a store root), one oracle per (version, model); areas are
    measured on the same built netlists the campaigns grade.
    """
    if not fault_models:
        raise CampaignError("hardness report needs at least one fault model")
    if circuit.startswith("hardened:"):
        raise CampaignError(
            f"the hardness report hardens its own baseline; pass the plain "
            f"circuit name instead of {circuit!r} (schemes are chosen via "
            "the schemes argument / --schemes)"
        )
    for scheme in schemes:
        if scheme not in available_schemes():
            raise CampaignError(
                f"unknown hardening scheme {scheme!r}; available: "
                + ", ".join(available_schemes())
            )
    runner = runner or CampaignRunner()
    versions: List[Optional[str]] = [None, *schemes]
    rows: List[HardnessRow] = []
    plain_area: Optional[AreaReport] = None
    num_cycles_resolved = None
    for scheme in versions:
        base_spec = CampaignSpec(
            circuit=circuit,
            technique=technique,
            engine=engine,
            num_cycles=num_cycles,
            seed=seed,
            sample=sample,
            sampling=sampling,
            fault_model=fault_models[0],
            hardening=scheme,
        )
        netlist = worker.scenario_for(base_spec).netlist
        area = area_of(netlist)
        if plain_area is None:
            plain_area = area
        num_cycles_resolved = base_spec.resolved_cycles()
        row = HardnessRow(
            scheme=scheme,
            label="plain" if scheme is None else f"hardened:{scheme}",
            area=area,
            overhead=area.overhead_vs(plain_area),
            num_flops=netlist.num_ffs,
        )
        for model in fault_models:
            spec = CampaignSpec.from_dict(
                {**base_spec.to_dict(), "fault_model": model}
            )
            oracle = runner.grade(spec)
            dictionary = oracle.to_dictionary()
            row.rates[model] = dictionary.percentages()
            # num_faults is how many faults were *graded*; under --sample
            # that is the sample size, not the population, so both are
            # recorded and sampled cells get Wilson intervals.
            row.samples[model] = oracle.num_faults
            row.populations[model] = spec.population_size(netlist)
            if oracle.num_faults < row.populations[model]:
                row.estimates[model] = classification_estimates(
                    oracle.verdicts()
                )
        rows.append(row)
    return HardnessReport(
        circuit=circuit,
        num_cycles=num_cycles_resolved,
        seed=seed,
        engine=engine,
        sample=sample,
        fault_models=list(fault_models),
        rows=rows,
    )
