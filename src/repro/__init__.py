"""repro — autonomous FPGA emulation for fast transient (SEU) fault grading.

A full-stack Python reproduction of *"Techniques for Fast Transient Fault
Grading Based on Autonomous Emulation"* (Lopez-Ongil, Garcia-Valderas,
Portela-Garcia, Entrena-Arrontes — DATE 2005): gate-level netlists, RTL
elaboration, LUT technology mapping, bit-parallel fault simulation, the
three autonomous fault-injection techniques (mask-scan, state-scan,
time-multiplexed), cycle-accurate campaign engines and the paper's full
evaluation harness.

Quick start::

    from repro import AutonomousEmulator, build_circuit
    from repro.circuits.itc99.b14 import b14_program_testbench

    b14 = build_circuit("b14")
    emulator = AutonomousEmulator(b14, technique="time_multiplexed")
    testbench = b14_program_testbench(b14, 160)
    result = emulator.run_campaign(testbench)
    print(result.summary())
"""

from repro.circuits import available_circuits, build_circuit
from repro.emu import (
    TECHNIQUES,
    AutonomousEmulator,
    BoardModel,
    CampaignResult,
    RC1000,
    instrument_circuit,
    run_campaign,
)
from repro.faults import FaultClass, SeuFault, exhaustive_fault_list
from repro.netlist import Netlist, NetlistBuilder
from repro.rtl import RtlModule
from repro.run import CampaignRunner, CampaignSpec
from repro.sim import Testbench, grade_faults, random_testbench
from repro.synth import area_of

__version__ = "1.0.0"

__all__ = [
    "AutonomousEmulator",
    "BoardModel",
    "CampaignResult",
    "CampaignRunner",
    "CampaignSpec",
    "FaultClass",
    "Netlist",
    "NetlistBuilder",
    "RC1000",
    "RtlModule",
    "SeuFault",
    "TECHNIQUES",
    "Testbench",
    "__version__",
    "area_of",
    "available_circuits",
    "build_circuit",
    "exhaustive_fault_list",
    "grade_faults",
    "instrument_circuit",
    "random_testbench",
    "run_campaign",
]
