"""Per-register parity checking.

One extra flip-flop stores the parity of the protected flops' next-state
bits each clock edge; an XOR tree recomputes the parity of the live state
and compares it against the stored bit, driving a **parity error flag**
appended as a new primary output.

A single upset in any protected flop (or in the parity bit itself) flips
exactly one term of the comparison, so the flag raises for every cycle
the corrupted value is live — detection at roughly one flop and two XOR
trees of cost. Even-sized multi-bit upsets cancel in the parity sum and
pass undetected: the classic parity blind spot, measurable here by
grading an ``mbu:2`` campaign against the parity-hardened circuit.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.logic.values import X
from repro.netlist.netlist import Netlist
from repro.netlist.validate import validate_netlist
from repro.hardening.base import (
    MARK,
    copy_structure,
    fresh_output_name,
    reduce_tree,
    resolve_flops,
)

DEFAULT_FLAG = "parity_err"


def harden_parity(
    netlist: Netlist,
    flops: Optional[Sequence[str]] = None,
    name: Optional[str] = None,
    flag_output: Optional[str] = None,
) -> Netlist:
    """Guard ``flops`` (default: all) with one stored parity bit."""
    protected = resolve_flops(netlist, flops)
    result = copy_structure(netlist, name or f"{netlist.name}{MARK}parity")
    flag = fresh_output_name(netlist, flag_output or DEFAULT_FLAG)
    prefix = f"parity{MARK}{flag}"

    d_nets = [netlist.dffs[flop_name].d for flop_name in protected]
    q_nets = [netlist.dffs[flop_name].q for flop_name in protected]
    inits = [netlist.dffs[flop_name].init for flop_name in protected]

    if len(d_nets) == 1:
        # A single protected flop's parity is its own bit: the scheme
        # degenerates to duplication of that flop.
        next_parity = d_nets[0]
        live_parity = q_nets[0]
    else:
        next_parity = reduce_tree(result, "xor", d_nets, f"{prefix}{MARK}next")
        live_parity = reduce_tree(result, "xor", q_nets, f"{prefix}{MARK}live")

    parity_init = X if any(init == X for init in inits) else (
        sum(int(init) for init in inits) & 1
    )
    stored = f"{prefix}{MARK}q"
    result.add_dff(f"{prefix}{MARK}ff", next_parity, stored, parity_init)
    result.add_gate(f"{prefix}{MARK}check", "xor", (live_parity, stored), flag)
    result.add_output(flag)
    validate_netlist(result)
    return result
