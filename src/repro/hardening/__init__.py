"""Automatic hardening transforms (TMR / DWC / parity).

The paper's accelerator exists to *compare* circuit versions: how much
less sensitive is a protected design, and at what area cost? This package
supplies the protected versions: pure netlist -> netlist transforms that
triplicate, duplicate or parity-guard any subset of a circuit's
flip-flops, producing netlists that validate, instrument, synthesize and
grade exactly like hand-written ones.

Schemes compose with the whole stack by name:

* registry: ``build_circuit("hardened:tmr:b04")``,
  ``"hardened:dwc:corpus:s298"``;
* campaign specs / CLI: ``CampaignSpec(circuit="b04", hardening="tmr")``,
  ``python -m repro run --circuit b04 --hardening tmr``;
* reporting: ``python -m repro report --hardness --circuit b04``
  (:mod:`repro.eval.hardness`), ``python -m repro harden`` to emit the
  transformed netlist itself.

See ``docs/hardening.md`` for semantics and the measurement story.
"""

from repro.hardening.base import (
    HardeningScheme,
    apply_hardening,
    available_schemes,
    canonical_flop_subset,
    format_scheme_segment,
    get_hardening_scheme,
    parse_hardened_name,
    parse_scheme_segment,
    register_scheme,
    split_hardened_name,
)
from repro.hardening.dwc import harden_dwc
from repro.hardening.parity import harden_parity
from repro.hardening.tmr import harden_tmr

register_scheme(
    "tmr",
    "triple modular redundancy with voted feedback: single upsets are "
    "masked and scrubbed (silent)",
    harden_tmr,
)
register_scheme(
    "tmr_unvoted",
    "triple modular redundancy with per-copy feedback cones: single "
    "upsets are masked at the outputs but persist in their copy (latent)",
    lambda netlist, flops=None, name=None: harden_tmr(
        netlist, flops=flops, name=name, voted_feedback=False
    ),
)
register_scheme(
    "dwc",
    "duplication with comparison: divergence raises a dwc_err output "
    "(detection, not masking)",
    harden_dwc,
    detects=True,
)
register_scheme(
    "parity",
    "stored parity bit over the protected register: odd-sized upsets "
    "raise a parity_err output",
    harden_parity,
    detects=True,
)

__all__ = [
    "HardeningScheme",
    "apply_hardening",
    "available_schemes",
    "canonical_flop_subset",
    "format_scheme_segment",
    "get_hardening_scheme",
    "harden_dwc",
    "harden_parity",
    "harden_tmr",
    "parse_hardened_name",
    "parse_scheme_segment",
    "register_scheme",
    "split_hardened_name",
]
