"""Duplication with comparison.

Each protected flop gains a shadow copy loading the same ``d`` net; a
per-flop XOR compares the two and an OR tree reduces the compare bits
into a single **error flag**, appended as a new primary output. The
functional outputs are untouched — DWC detects, it does not mask — so a
raised flag is the hardened circuit's way of *signalling* an upset.

Because the flag is a primary output, any divergence between a flop and
its shadow shows up in fault grading as an output mismatch: upsets that
were silent or latent in the plain circuit become detected (classified
FAILURE) in the DWC version. The hardness report reads the DWC failure
rate as detection coverage.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.netlist.netlist import Netlist
from repro.netlist.validate import validate_netlist
from repro.hardening.base import (
    MARK,
    copy_structure,
    fresh_output_name,
    reduce_tree,
    resolve_flops,
)

DEFAULT_FLAG = "dwc_err"


def harden_dwc(
    netlist: Netlist,
    flops: Optional[Sequence[str]] = None,
    name: Optional[str] = None,
    flag_output: Optional[str] = None,
) -> Netlist:
    """Duplicate ``flops`` (default: all) and emit a comparison flag."""
    protected = resolve_flops(netlist, flops)
    result = copy_structure(netlist, name or f"{netlist.name}{MARK}dwc")
    flag = fresh_output_name(netlist, flag_output or DEFAULT_FLAG)

    compare_bits = []
    for flop_name in protected:
        dff = netlist.dffs[flop_name]
        shadow_q = f"{dff.q}{MARK}dwc"
        result.add_dff(f"{flop_name}{MARK}dwc", dff.d, shadow_q, dff.init)
        compare_net = f"{dff.q}{MARK}cmp"
        result.add_gate(
            f"{flop_name}{MARK}cmp", "xor", (dff.q, shadow_q), compare_net
        )
        compare_bits.append(compare_net)

    reduce_tree(result, "or", compare_bits, flag, out_net=flag)
    result.add_output(flag)
    validate_netlist(result)
    return result
