"""Triple modular redundancy on flip-flops.

Each protected flop is replaced by three copies plus a majority voter
driving the original ``q`` net, so every consumer of the flop — including
the shared next-state logic — sees the voted value:

* **voted feedback** (``tmr``, the default): the copies reload from the
  original ``d`` net, which is a function of voted state. A single upset
  is masked the cycle it happens *and* scrubbed at the next clock edge
  (the corrupted copy reloads the correct next state), so single SEUs are
  silent.
* **unvoted feedback** (``tmr_unvoted``): each copy reloads from its own
  private clone of the ``d`` logic cone, substituting protected-flop
  outputs with that copy's raw (unvoted) ``q`` — classic full TMR with
  voting only at the boundary. A single upset stays masked at the outputs
  but persists inside its copy's loop (latent rather than silent),
  modelling TMR without scrubbing.

Double upsets in two copies of the same flop defeat the majority in both
variants — exactly the failure mode MBU campaigns quantify.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.netlist.netlist import Dff, Gate, Netlist
from repro.netlist.transform import sweep_dead_logic
from repro.netlist.validate import validate_netlist
from repro.hardening.base import (
    MARK,
    add_majority_voter,
    copy_structure,
    resolve_flops,
)

COPIES = 3


def harden_tmr(
    netlist: Netlist,
    flops: Optional[Sequence[str]] = None,
    name: Optional[str] = None,
    voted_feedback: bool = True,
) -> Netlist:
    """Triplicate ``flops`` (default: all) behind majority voters."""
    protected = resolve_flops(netlist, flops)
    protected_set = set(protected)
    suffix = "tmr" if voted_feedback else "tmr_unvoted"
    result = copy_structure(
        netlist, name or f"{netlist.name}{MARK}{suffix}", skip_flops=protected_set
    )

    #: (copy, original q net) -> that copy's raw q net
    copy_q: Dict[Tuple[int, str], str] = {}
    for flop_name in protected:
        dff = netlist.dffs[flop_name]
        for copy in range(COPIES):
            copy_q[(copy, dff.q)] = f"{dff.q}{MARK}{suffix}{copy}"

    if voted_feedback:
        d_net_of = {
            (copy, flop_name): netlist.dffs[flop_name].d
            for flop_name in protected
            for copy in range(COPIES)
        }
    else:
        d_net_of = _clone_feedback_cones(netlist, result, protected, copy_q)

    for flop_name in protected:
        dff = netlist.dffs[flop_name]
        for copy in range(COPIES):
            result.add_dff(
                f"{flop_name}{MARK}{suffix}{copy}",
                d_net_of[(copy, flop_name)],
                copy_q[(copy, dff.q)],
                dff.init,
            )
        add_majority_voter(
            result,
            flop_name,
            [copy_q[(copy, dff.q)] for copy in range(COPIES)],
            dff.q,
        )

    if not voted_feedback:
        # Original d-cones whose only consumers were the protected flops
        # are now dead (each copy owns a private clone); sweep them so
        # the result passes strict validation and area reflects the real
        # structure.
        result = sweep_dead_logic(result, name=result.name)
    validate_netlist(result)
    return result


def _clone_feedback_cones(
    source: Netlist,
    result: Netlist,
    protected: List[str],
    copy_q: Dict[Tuple[int, str], str],
) -> Dict[Tuple[int, str], str]:
    """Per-copy clones of every protected flop's combinational d-cone.

    Cloning stops at primary inputs, unprotected flop outputs (shared —
    they are outside the redundant domain) and protected flop outputs
    (rewired to the copy's raw q, closing the copy's private feedback
    loop). Overlapping cones share clones within one copy.
    """
    memo: Dict[Tuple[int, str], str] = {}

    def clone_net(copy: int, net: str) -> str:
        mapped = copy_q.get((copy, net))
        if mapped is not None:
            return mapped
        if source.is_input(net):
            return net
        driver = source.driver_of(net)
        if isinstance(driver, Dff):
            return net  # unprotected state is shared
        key = (copy, net)
        cached = memo.get(key)
        if cached is not None:
            return cached
        assert isinstance(driver, Gate)
        inputs = [clone_net(copy, input_net) for input_net in driver.inputs]
        output = f"{net}{MARK}c{copy}"
        result.add_gate(
            f"{driver.name}{MARK}c{copy}", driver.gate_type, inputs, output
        )
        memo[key] = output
        return output

    return {
        (copy, flop_name): clone_net(copy, source.dffs[flop_name].d)
        for flop_name in protected
        for copy in range(COPIES)
    }
