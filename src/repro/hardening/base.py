"""Hardening-scheme interface and registry.

A *hardening scheme* is a pure netlist -> netlist transform that adds
fault-tolerance structure (redundant flip-flops, voters, checkers) around
a subset of a circuit's state. Schemes register by name so campaign
specs, the circuit registry (``hardened:<scheme>:<base>``) and the CLI
(``--hardening`` / ``repro harden``) select one with a plain string —
the same pattern the fault-model and grading-engine registries use.

Every transform obeys the same contract:

* the original primary inputs are untouched (the plain and hardened
  versions accept identical stimulus),
* the original primary outputs keep their names and positions (checker
  flags, if any, are *appended*), and
* the result passes strict :func:`repro.netlist.validate.validate_netlist`
  so it instruments, grades and synthesizes like any other circuit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import HardeningError, NetlistError
from repro.netlist.netlist import Netlist

#: instance/net suffix separator used by every transform. Builder-made
#: circuits never contain it (they use ``$``), so derived names read as
#: visibly machine-generated; imported files *may* contain it, in which
#: case a collision surfaces as a clean :class:`HardeningError` from
#: :meth:`HardeningScheme.apply`.
MARK = "~"


@dataclass(frozen=True)
class HardeningScheme:
    """One registered protection transform.

    ``transform`` takes ``(netlist, flops=None, name=None)`` and returns
    a new netlist; ``flops=None`` hardens every flip-flop, a sequence
    hardens only the named subset (selective hardening).

    ``detects`` marks schemes that *signal* upsets through an appended
    error-flag output instead of masking them (dwc, parity). Their
    checkers are functions of the protected storage and the same
    next-state inputs, so only an upset on a covered flop (or on the
    checker's own storage) can raise the flag — which lets downstream
    consumers (the selective-hardening optimizer) attribute detection
    per fault from the faulted flop's name alone.
    """

    name: str
    description: str
    transform: Callable[..., Netlist]
    detects: bool = False

    def apply(
        self,
        netlist: Netlist,
        flops: Optional[Sequence[str]] = None,
        name: Optional[str] = None,
    ) -> Netlist:
        try:
            return self.transform(netlist, flops=flops, name=name)
        except HardeningError:
            raise
        except NetlistError as error:
            # e.g. an imported netlist whose own names contain the '~'
            # separator and collide with a generated copy/voter name
            raise HardeningError(
                f"cannot apply {self.name!r} to circuit {netlist.name!r}: "
                f"{error}"
            ) from error


_SCHEMES: Dict[str, HardeningScheme] = {}


def register_scheme(
    name: str,
    description: str,
    transform: Callable[..., Netlist],
    detects: bool = False,
) -> None:
    """Register a hardening transform under ``name``."""
    _SCHEMES[name] = HardeningScheme(name, description, transform, detects)


def available_schemes() -> List[str]:
    """Sorted names accepted by :func:`get_hardening_scheme`."""
    return sorted(_SCHEMES)


def get_hardening_scheme(name: str) -> HardeningScheme:
    """Look up a hardening scheme; raises naming the bad segment."""
    try:
        return _SCHEMES[name]
    except KeyError:
        raise HardeningError(
            f"unknown hardening scheme {name!r}; available schemes: "
            + ", ".join(available_schemes())
        ) from None


def apply_hardening(
    scheme: str,
    netlist: Netlist,
    flops: Optional[Sequence[str]] = None,
    name: Optional[str] = None,
) -> Netlist:
    """Apply a registered scheme by name."""
    return get_hardening_scheme(scheme).apply(netlist, flops=flops, name=name)


#: separators of the selective-subset spelling
#: ``hardened:<scheme>@<flop>+<flop>:<base>``. Flop names carrying any
#: of these characters (or ``:``, the segment separator) cannot be
#: spelled in a circuit name and are rejected with a clean error — pass
#: them through ``CampaignSpec(hardening_flops=...)``'s normalisation
#: error instead of silently mis-splitting the name.
SUBSET_MARK = "@"
SUBSET_SEP = "+"
_SUBSET_FORBIDDEN = (SUBSET_MARK, SUBSET_SEP, ":")


def canonical_flop_subset(flops: Sequence[str]) -> Tuple[str, ...]:
    """Validate and canonicalise a selective-hardening flop subset.

    The canonical form — sorted, deduplicated — is what campaign
    identity hashes, so ``ff2+ff1`` and ``ff1+ff2`` name one campaign.
    Sorting is safe because every transform is deterministic in the
    subset it receives; it only fixes *which* order that is.
    """
    names = sorted({str(flop) for flop in flops})
    if not names or any(not name for name in names):
        raise HardeningError(
            "selective hardening needs at least one non-empty flip-flop name"
        )
    for name in names:
        bad = [mark for mark in _SUBSET_FORBIDDEN if mark in name]
        if bad:
            raise HardeningError(
                f"flip-flop name {name!r} contains the reserved "
                f"character(s) {', '.join(repr(b) for b in bad)} and cannot "
                "appear in a selective-hardening subset"
            )
    return tuple(names)


def parse_scheme_segment(
    segment: str, context: str
) -> Tuple[str, Optional[Tuple[str, ...]]]:
    """Parse one ``<scheme>[@<flop>+<flop>...]`` grammar segment.

    Returns ``(scheme, flops)`` with ``flops`` of ``None`` meaning every
    flip-flop (the classic all-flops spelling). Raises
    :class:`HardeningError` naming the malformed piece and ``context``
    (the full string being parsed) so CLI errors stay actionable.
    """
    scheme, mark, subset = segment.partition(SUBSET_MARK)
    if scheme not in _SCHEMES:
        raise HardeningError(
            f"unknown hardening scheme {scheme!r} in {context!r}; "
            "available schemes: " + ", ".join(available_schemes())
        )
    if not mark:
        return scheme, None
    flops = [flop for flop in subset.split(SUBSET_SEP)]
    if not subset or any(not flop for flop in flops):
        raise HardeningError(
            f"malformed flop subset {subset!r} in {context!r}; expected "
            f"{scheme}{SUBSET_MARK}<flop>{SUBSET_SEP}<flop>... "
            f"(e.g. tmr{SUBSET_MARK}state_reg{SUBSET_SEP}count0)"
        )
    return scheme, canonical_flop_subset(flops)


def format_scheme_segment(
    scheme: str, flops: Optional[Sequence[str]]
) -> str:
    """Inverse of :func:`parse_scheme_segment` (canonical spelling)."""
    if flops is None:
        return scheme
    return scheme + SUBSET_MARK + SUBSET_SEP.join(canonical_flop_subset(flops))


def parse_hardened_name(
    full: str,
) -> Tuple[str, Optional[Tuple[str, ...]], str]:
    """Parse ``hardened:<scheme>[@<flops>]:<base>`` into
    ``(scheme, flops, base)``.

    ``flops`` is ``None`` for the all-flops spelling, else the canonical
    (sorted, deduplicated) subset tuple. ``base`` may itself be
    parameterized (``corpus:s298``, ``proc:40``) — including another
    ``hardened:`` name, which is how mixed protections compose (e.g.
    ``hardened:tmr@ff1:hardened:parity@ff2+ff3:b04`` parity-guards two
    flops, then triplicates a third). Raises :class:`HardeningError`
    naming the malformed segment.
    """
    parts = full.split(":", 2)
    if len(parts) != 3 or not parts[1] or not parts[2]:
        raise HardeningError(
            f"malformed hardened circuit name {full!r}; expected "
            "hardened:<scheme>[@<flop>+<flop>...]:<circuit> "
            "(e.g. hardened:tmr:b04, hardened:tmr@state_reg:b04)"
        )
    scheme, flops = parse_scheme_segment(parts[1], full)
    return scheme, flops, parts[2]


def split_hardened_name(full: str) -> Tuple[str, str]:
    """Parse ``hardened:<scheme>:<base>`` into ``(scheme, base)``.

    The pre-subset-grammar surface, kept for callers that only need the
    scheme and base circuit; a selective subset (``@ff1+ff2``) is parsed
    and validated but not returned — use :func:`parse_hardened_name`
    when the subset matters.
    """
    scheme, _, base = parse_hardened_name(full)
    return scheme, base


# ----------------------------------------------------------------------
# shared construction helpers
# ----------------------------------------------------------------------
def resolve_flops(
    netlist: Netlist, flops: Optional[Sequence[str]]
) -> List[str]:
    """The flop subset a transform protects, validated and deduplicated.

    ``None`` selects every flip-flop (in netlist order, so derived
    structures are deterministic); an explicit subset keeps the caller's
    order.
    """
    if flops is None:
        names = netlist.ff_names()
        if not names:
            raise HardeningError(
                f"circuit {netlist.name!r} has no flip-flops to harden"
            )
        return names
    known = set(netlist.dffs)
    seen = set()
    names = []
    for flop in flops:
        if flop not in known:
            raise HardeningError(
                f"cannot harden unknown flip-flop {flop!r} in circuit "
                f"{netlist.name!r}"
            )
        if flop not in seen:
            seen.add(flop)
            names.append(flop)
    if not names:
        raise HardeningError("selective hardening needs at least one flip-flop")
    return names


def copy_structure(
    source: Netlist,
    name: str,
    skip_flops: Optional[set] = None,
) -> Netlist:
    """New netlist with ``source``'s ports, gates and (optionally all)
    flops copied verbatim — the canvas every transform starts from."""
    return source.clone(name=name, skip_dffs=skip_flops or ())


def add_majority_voter(
    result: Netlist, base: str, copies: Sequence[str], out_net: str
) -> None:
    """Emit ``maj(a, b, c) = ab | bc | ac`` driving ``out_net``.

    Voters are plain 2-input-AND / 3-input-OR gates, so instrumented and
    mapped hardened circuits treat them like any other logic.
    """
    a, b, c = copies
    ab = f"{out_net}{MARK}vab"
    bc = f"{out_net}{MARK}vbc"
    ac = f"{out_net}{MARK}vac"
    result.add_gate(f"{base}{MARK}vab", "and", (a, b), ab)
    result.add_gate(f"{base}{MARK}vbc", "and", (b, c), bc)
    result.add_gate(f"{base}{MARK}vac", "and", (a, c), ac)
    result.add_gate(f"{base}{MARK}vote", "or", (ab, bc, ac), out_net)


def reduce_tree(
    result: Netlist,
    gate_type: str,
    nets: Sequence[str],
    prefix: str,
    out_net: Optional[str] = None,
    arity: int = 4,
) -> str:
    """Balanced ``gate_type`` reduction over ``nets``; returns (and, when
    ``out_net`` is given, drives) the root net. A single input is
    buffered so the root is always a fresh driver."""
    if not nets:
        raise HardeningError("cannot reduce an empty net list")
    counter = 0
    level = list(nets)
    while len(level) > 1:
        next_level: List[str] = []
        for start in range(0, len(level), arity):
            chunk = level[start : start + arity]
            if len(chunk) == 1:
                next_level.append(chunk[0])
                continue
            counter += 1
            is_root = len(level) <= arity
            output = (
                out_net
                if (is_root and out_net is not None)
                else f"{prefix}{MARK}r{counter}"
            )
            result.add_gate(
                f"{prefix}{MARK}reduce{counter}", gate_type, tuple(chunk), output
            )
            next_level.append(output)
        level = next_level
    root = level[0]
    if out_net is not None and root != out_net:
        result.add_gate(f"{prefix}{MARK}buf", "buf", (root,), out_net)
        return out_net
    return root


def fresh_output_name(netlist: Netlist, wanted: str) -> str:
    """An output/net name not yet used anywhere in ``netlist``."""
    taken = netlist.all_referenced_nets() | set(netlist.outputs)
    if wanted not in taken:
        return wanted
    counter = 1
    while f"{wanted}{MARK}{counter}" in taken:
        counter += 1
    return f"{wanted}{MARK}{counter}"
