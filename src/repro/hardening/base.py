"""Hardening-scheme interface and registry.

A *hardening scheme* is a pure netlist -> netlist transform that adds
fault-tolerance structure (redundant flip-flops, voters, checkers) around
a subset of a circuit's state. Schemes register by name so campaign
specs, the circuit registry (``hardened:<scheme>:<base>``) and the CLI
(``--hardening`` / ``repro harden``) select one with a plain string —
the same pattern the fault-model and grading-engine registries use.

Every transform obeys the same contract:

* the original primary inputs are untouched (the plain and hardened
  versions accept identical stimulus),
* the original primary outputs keep their names and positions (checker
  flags, if any, are *appended*), and
* the result passes strict :func:`repro.netlist.validate.validate_netlist`
  so it instruments, grades and synthesizes like any other circuit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import HardeningError, NetlistError
from repro.netlist.netlist import Netlist

#: instance/net suffix separator used by every transform. Builder-made
#: circuits never contain it (they use ``$``), so derived names read as
#: visibly machine-generated; imported files *may* contain it, in which
#: case a collision surfaces as a clean :class:`HardeningError` from
#: :meth:`HardeningScheme.apply`.
MARK = "~"


@dataclass(frozen=True)
class HardeningScheme:
    """One registered protection transform.

    ``transform`` takes ``(netlist, flops=None, name=None)`` and returns
    a new netlist; ``flops=None`` hardens every flip-flop, a sequence
    hardens only the named subset (selective hardening).
    """

    name: str
    description: str
    transform: Callable[..., Netlist]

    def apply(
        self,
        netlist: Netlist,
        flops: Optional[Sequence[str]] = None,
        name: Optional[str] = None,
    ) -> Netlist:
        try:
            return self.transform(netlist, flops=flops, name=name)
        except HardeningError:
            raise
        except NetlistError as error:
            # e.g. an imported netlist whose own names contain the '~'
            # separator and collide with a generated copy/voter name
            raise HardeningError(
                f"cannot apply {self.name!r} to circuit {netlist.name!r}: "
                f"{error}"
            ) from error


_SCHEMES: Dict[str, HardeningScheme] = {}


def register_scheme(
    name: str, description: str, transform: Callable[..., Netlist]
) -> None:
    """Register a hardening transform under ``name``."""
    _SCHEMES[name] = HardeningScheme(name, description, transform)


def available_schemes() -> List[str]:
    """Sorted names accepted by :func:`get_hardening_scheme`."""
    return sorted(_SCHEMES)


def get_hardening_scheme(name: str) -> HardeningScheme:
    """Look up a hardening scheme; raises naming the bad segment."""
    try:
        return _SCHEMES[name]
    except KeyError:
        raise HardeningError(
            f"unknown hardening scheme {name!r}; available schemes: "
            + ", ".join(available_schemes())
        ) from None


def apply_hardening(
    scheme: str,
    netlist: Netlist,
    flops: Optional[Sequence[str]] = None,
    name: Optional[str] = None,
) -> Netlist:
    """Apply a registered scheme by name."""
    return get_hardening_scheme(scheme).apply(netlist, flops=flops, name=name)


def split_hardened_name(full: str) -> Tuple[str, str]:
    """Parse ``hardened:<scheme>:<base>`` into ``(scheme, base)``.

    ``base`` may itself be parameterized (``corpus:s298``, ``proc:40``);
    scheme names are colon-free, so the split is unambiguous. Raises
    :class:`HardeningError` naming the malformed segment.
    """
    parts = full.split(":", 2)
    if len(parts) != 3 or not parts[1] or not parts[2]:
        raise HardeningError(
            f"malformed hardened circuit name {full!r}; expected "
            "hardened:<scheme>:<circuit> (e.g. hardened:tmr:b04)"
        )
    scheme, base = parts[1], parts[2]
    if scheme not in _SCHEMES:
        raise HardeningError(
            f"unknown hardening scheme {scheme!r} in circuit name "
            f"{full!r}; available schemes: " + ", ".join(available_schemes())
        )
    return scheme, base


# ----------------------------------------------------------------------
# shared construction helpers
# ----------------------------------------------------------------------
def resolve_flops(
    netlist: Netlist, flops: Optional[Sequence[str]]
) -> List[str]:
    """The flop subset a transform protects, validated and deduplicated.

    ``None`` selects every flip-flop (in netlist order, so derived
    structures are deterministic); an explicit subset keeps the caller's
    order.
    """
    if flops is None:
        names = netlist.ff_names()
        if not names:
            raise HardeningError(
                f"circuit {netlist.name!r} has no flip-flops to harden"
            )
        return names
    known = set(netlist.dffs)
    seen = set()
    names = []
    for flop in flops:
        if flop not in known:
            raise HardeningError(
                f"cannot harden unknown flip-flop {flop!r} in circuit "
                f"{netlist.name!r}"
            )
        if flop not in seen:
            seen.add(flop)
            names.append(flop)
    if not names:
        raise HardeningError("selective hardening needs at least one flip-flop")
    return names


def copy_structure(
    source: Netlist,
    name: str,
    skip_flops: Optional[set] = None,
) -> Netlist:
    """New netlist with ``source``'s ports, gates and (optionally all)
    flops copied verbatim — the canvas every transform starts from."""
    return source.clone(name=name, skip_dffs=skip_flops or ())


def add_majority_voter(
    result: Netlist, base: str, copies: Sequence[str], out_net: str
) -> None:
    """Emit ``maj(a, b, c) = ab | bc | ac`` driving ``out_net``.

    Voters are plain 2-input-AND / 3-input-OR gates, so instrumented and
    mapped hardened circuits treat them like any other logic.
    """
    a, b, c = copies
    ab = f"{out_net}{MARK}vab"
    bc = f"{out_net}{MARK}vbc"
    ac = f"{out_net}{MARK}vac"
    result.add_gate(f"{base}{MARK}vab", "and", (a, b), ab)
    result.add_gate(f"{base}{MARK}vbc", "and", (b, c), bc)
    result.add_gate(f"{base}{MARK}vac", "and", (a, c), ac)
    result.add_gate(f"{base}{MARK}vote", "or", (ab, bc, ac), out_net)


def reduce_tree(
    result: Netlist,
    gate_type: str,
    nets: Sequence[str],
    prefix: str,
    out_net: Optional[str] = None,
    arity: int = 4,
) -> str:
    """Balanced ``gate_type`` reduction over ``nets``; returns (and, when
    ``out_net`` is given, drives) the root net. A single input is
    buffered so the root is always a fresh driver."""
    if not nets:
        raise HardeningError("cannot reduce an empty net list")
    counter = 0
    level = list(nets)
    while len(level) > 1:
        next_level: List[str] = []
        for start in range(0, len(level), arity):
            chunk = level[start : start + arity]
            if len(chunk) == 1:
                next_level.append(chunk[0])
                continue
            counter += 1
            is_root = len(level) <= arity
            output = (
                out_net
                if (is_root and out_net is not None)
                else f"{prefix}{MARK}r{counter}"
            )
            result.add_gate(
                f"{prefix}{MARK}reduce{counter}", gate_type, tuple(chunk), output
            )
            next_level.append(output)
        level = next_level
    root = level[0]
    if out_net is not None and root != out_net:
        result.add_gate(f"{prefix}{MARK}buf", "buf", (root,), out_net)
        return out_net
    return root


def fresh_output_name(netlist: Netlist, wanted: str) -> str:
    """An output/net name not yet used anywhere in ``netlist``."""
    taken = netlist.all_referenced_nets() | set(netlist.outputs)
    if wanted not in taken:
        return wanted
    counter = 1
    while f"{wanted}{MARK}{counter}" in taken:
        counter += 1
    return f"{wanted}{MARK}{counter}"
