"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class NetlistError(ReproError):
    """Structural problem in a netlist (bad connectivity, duplicate names...)."""


class ValidationError(NetlistError):
    """A netlist failed validation (combinational loop, floating input...)."""


class ElaborationError(ReproError):
    """RTL could not be elaborated into a gate-level netlist."""


class SimulationError(ReproError):
    """A simulation could not be run or produced inconsistent results."""


class SynthesisError(ReproError):
    """Technology mapping / area estimation failed."""


class InstrumentationError(ReproError):
    """A fault-injection instrumentation transform failed."""


class CampaignError(ReproError):
    """A fault-injection campaign was misconfigured or failed."""


class ParseError(ReproError):
    """A textual netlist / stimulus file could not be parsed."""

    def __init__(self, message: str, line: int | None = None):
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)
        self.line = line
