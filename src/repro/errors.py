"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class NetlistError(ReproError):
    """Structural problem in a netlist (bad connectivity, duplicate names...)."""


class ValidationError(NetlistError):
    """A netlist failed validation (combinational loop, floating input...)."""


class ElaborationError(ReproError):
    """RTL could not be elaborated into a gate-level netlist."""


class SimulationError(ReproError):
    """A simulation could not be run or produced inconsistent results."""


class SynthesisError(ReproError):
    """Technology mapping / area estimation failed."""


class InstrumentationError(ReproError):
    """A fault-injection instrumentation transform failed."""


class CampaignError(ReproError):
    """A fault-injection campaign was misconfigured or failed."""


class HardeningError(ReproError):
    """A hardening transform was misconfigured or could not be applied."""


class ServiceError(ReproError):
    """The campaign service (HTTP daemon / results database) failed.

    Raised for service-level misconfiguration: an incompatible results-
    database schema version, a full submission queue, a store that
    cannot be imported, a malformed query.
    """


class ParseError(ReproError):
    """A textual netlist / stimulus file could not be parsed.

    Carries the 1-based ``line`` (and, when a parser can pinpoint the
    offending token, 1-based ``column``) so import errors read like
    compiler diagnostics instead of tracebacks.
    """

    def __init__(
        self,
        message: str,
        line: int | None = None,
        column: int | None = None,
    ):
        if line is not None and column is not None:
            message = f"line {line}, column {column}: {message}"
        elif line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)
        self.line = line
        self.column = column
