"""Fault dictionary: per-fault records and aggregate queries.

The emulation RAM stores a 2-bit verdict per fault; the host-side fault
dictionary is its decoded, queryable form — the artifact a hardening
engineer actually reads ("which flops cause failures?", "how long do
latent errors survive?").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.errors import CampaignError
from repro.faults.classify import FaultClass, classification_counts
from repro.faults.model import SeuFault


@dataclass(frozen=True)
class FaultRecord:
    """One graded fault.

    ``fail_cycle``/``vanish_cycle`` are -1 when the event never occurred.
    ``latency`` is the number of cycles from injection until the verdict
    was decidable (what the time-multiplexed technique exploits).
    """

    fault: SeuFault
    verdict: FaultClass
    fail_cycle: int
    vanish_cycle: int

    def latency(self, num_cycles: int) -> int:
        """Cycles from injection to classification.

        Failures classify at the first wrong output; silent faults at state
        convergence; latent faults only at the end of the testbench.
        """
        if self.verdict is FaultClass.FAILURE:
            return self.fail_cycle - self.fault.cycle
        if self.verdict is FaultClass.SILENT:
            return self.vanish_cycle - self.fault.cycle
        return num_cycles - self.fault.cycle


class FaultDictionary:
    """All graded faults of one campaign."""

    def __init__(self, num_cycles: int, flop_names: List[str]):
        self.num_cycles = num_cycles
        self.flop_names = list(flop_names)
        self.records: List[FaultRecord] = []

    def add(self, record: FaultRecord) -> None:
        """Append one graded fault."""
        if record.fault.cycle >= self.num_cycles:
            raise CampaignError(
                f"fault at cycle {record.fault.cycle} outside testbench "
                f"of {self.num_cycles} cycles"
            )
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[FaultRecord]:
        return iter(self.records)

    # ------------------------------------------------------------------
    # aggregate queries
    # ------------------------------------------------------------------
    def counts(self) -> Dict[FaultClass, int]:
        """Verdict histogram — the paper's classification split."""
        return classification_counts(record.verdict for record in self.records)

    def percentages(self) -> Dict[FaultClass, float]:
        """Verdict percentages."""
        total = len(self.records)
        if total == 0:
            return {key: 0.0 for key in FaultClass}
        counts = self.counts()
        return {key: 100.0 * counts[key] / total for key in counts}

    def per_flop_failures(self) -> Dict[str, int]:
        """Failure count per flip-flop — the weak-area report that
        motivates emulation-based grading (paper section I)."""
        failures: Dict[str, int] = {name: 0 for name in self.flop_names}
        for record in self.records:
            if record.verdict is FaultClass.FAILURE:
                name = record.fault.flop_name or self.flop_names[record.fault.flop_index]
                failures[name] = failures.get(name, 0) + 1
        return failures

    def weakest_flops(self, count: int = 10) -> List[tuple]:
        """The ``count`` flops with the most failures, worst first."""
        per_flop = self.per_flop_failures()
        ranked = sorted(per_flop.items(), key=lambda item: (-item[1], item[0]))
        return ranked[:count]

    def mean_latency(self, verdict: Optional[FaultClass] = None) -> float:
        """Average classification latency in cycles (optionally filtered by
        verdict). This is the quantity that determines time-mux speed."""
        relevant = [
            record
            for record in self.records
            if verdict is None or record.verdict is verdict
        ]
        if not relevant:
            return 0.0
        total = sum(record.latency(self.num_cycles) for record in relevant)
        return total / len(relevant)

    def summary(self) -> str:
        """Multi-line text summary."""
        counts = self.counts()
        percentages = self.percentages()
        lines = [f"{len(self.records)} faults graded over {self.num_cycles} cycles"]
        for verdict in FaultClass:
            lines.append(
                f"  {verdict.value:>8}: {counts[verdict]:>8} "
                f"({percentages[verdict]:5.1f} %)"
            )
        return "\n".join(lines)
