"""The SEU fault model: a single bit-flip in one flip-flop at one cycle.

The paper adopts the standard bit-flip model for single-event upsets: only
memory elements are affected, and a fault is the pair (flip-flop, clock
cycle). The *complete set of single faults* for a circuit with N flops and
a T-cycle testbench therefore has N x T members — 215 x 160 = 34,400 for
the b14 experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import CampaignError
from repro.netlist.netlist import Netlist


@dataclass(frozen=True, order=True)
class SeuFault:
    """One single-event upset: flip flop ``flop_index`` at the start of
    cycle ``cycle`` (i.e. perturb the state the flop holds during that
    cycle).

    ``flop_index`` refers to the netlist's deterministic flop order (the
    same order used for state packing and scan chains).
    """

    cycle: int
    flop_index: int
    flop_name: str = ""

    def __post_init__(self) -> None:
        if self.cycle < 0:
            raise CampaignError(f"fault cycle must be non-negative, got {self.cycle}")
        if self.flop_index < 0:
            raise CampaignError(
                f"fault flop index must be non-negative, got {self.flop_index}"
            )

    def describe(self) -> str:
        """Human-readable fault identity."""
        name = self.flop_name or f"flop[{self.flop_index}]"
        return f"SEU({name} @ cycle {self.cycle})"


def exhaustive_fault_list(
    netlist: Netlist, num_cycles: int, flop_names: Optional[List[str]] = None
) -> List[SeuFault]:
    """The complete single-fault set: every (flop, cycle) pair.

    Faults are ordered cycle-major — the order the time-multiplexed
    technique processes them in, so the golden state only ever advances.
    """
    if num_cycles <= 0:
        raise CampaignError("fault list needs a positive number of cycles")
    names = flop_names if flop_names is not None else netlist.ff_names()
    faults = []
    for cycle in range(num_cycles):
        for flop_index, name in enumerate(names):
            faults.append(SeuFault(cycle=cycle, flop_index=flop_index, flop_name=name))
    return faults


def faults_for_flop(
    netlist: Netlist, flop_index: int, num_cycles: int
) -> List[SeuFault]:
    """All faults targeting one flop (used for per-flop vulnerability
    reports)."""
    names = netlist.ff_names()
    if not 0 <= flop_index < len(names):
        raise CampaignError(f"no flop with index {flop_index}")
    return [
        SeuFault(cycle=cycle, flop_index=flop_index, flop_name=names[flop_index])
        for cycle in range(num_cycles)
    ]
