"""The SEU fault model: a single bit-flip in one flip-flop at one cycle.

The paper adopts the standard bit-flip model for single-event upsets: only
memory elements are affected, and a fault is the pair (flip-flop, clock
cycle). The *complete set of single faults* for a circuit with N flops and
a T-cycle testbench therefore has N x T members — 215 x 160 = 34,400 for
the b14 experiment.

:class:`SeuFault` doubles as the base class for every other fault model
(:mod:`repro.faults.models`): a fault is, generically, a set of one-shot
bit *flips* at its injection cycle plus an optional per-cycle *force* on
its flop. The grading engines consume exactly that protocol
(:meth:`SeuFault.flip_flops`, :meth:`SeuFault.force_value`,
:meth:`SeuFault.force_active`), so plain SEUs keep their original
fast path while multi-bit, stuck-at and intermittent faults share the
same campaign machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import CampaignError
from repro.netlist.netlist import Netlist


@dataclass(frozen=True, order=True)
class SeuFault:
    """One single-event upset: flip flop ``flop_index`` at the start of
    cycle ``cycle`` (i.e. perturb the state the flop holds during that
    cycle).

    ``flop_index`` refers to the netlist's deterministic flop order (the
    same order used for state packing and scan chains).
    """

    cycle: int
    flop_index: int
    flop_name: str = ""

    #: True for models whose effect is re-applied every cycle (stuck-at,
    #: intermittent) rather than a one-shot state perturbation. Persistent
    #: faults can re-diverge after matching the golden state, so engines
    #: must not retire their lanes early.
    persistent = False

    def __post_init__(self) -> None:
        if self.cycle < 0:
            raise CampaignError(f"fault cycle must be non-negative, got {self.cycle}")
        if self.flop_index < 0:
            raise CampaignError(
                f"fault flop index must be non-negative, got {self.flop_index}"
            )

    # ------------------------------------------------------------------
    # the generic injection protocol (overridden by other fault models)
    # ------------------------------------------------------------------
    def flip_flops(self) -> Tuple[int, ...]:
        """Flop indices whose bits are flipped once, at ``self.cycle``."""
        return (self.flop_index,)

    def force_value(self) -> Optional[int]:
        """The value this fault forces onto its flop (None: no forcing)."""
        return None

    def force_active(self, cycle: int) -> bool:
        """Whether the force is applied during ``cycle`` (state held at
        the start of that cycle). Transient faults never force."""
        return False

    def force_events(self, num_cycles: int) -> List[Tuple[int, bool]]:
        """``(cycle, turned_on)`` transitions of the force over cycles
        ``0..num_cycles`` inclusive — ``num_cycles`` covers the state the
        circuit is left in after the bench, which classification compares
        against the golden final state."""
        return []

    def apply_force(self, state: int, cycle: int) -> int:
        """Packed-state helper for the serial reference replay."""
        if not self.force_active(cycle):
            return state
        bit = 1 << self.flop_index
        if self.force_value():
            return state | bit
        return state & ~bit

    def describe(self) -> str:
        """Human-readable fault identity."""
        name = self.flop_name or f"flop[{self.flop_index}]"
        return f"SEU({name} @ cycle {self.cycle})"


def exhaustive_fault_list(
    netlist: Netlist, num_cycles: int, flop_names: Optional[List[str]] = None
) -> List[SeuFault]:
    """The complete single-fault set: every (flop, cycle) pair.

    Faults are ordered cycle-major — the order the time-multiplexed
    technique processes them in, so the golden state only ever advances.
    """
    if num_cycles <= 0:
        raise CampaignError("fault list needs a positive number of cycles")
    names = flop_names if flop_names is not None else netlist.ff_names()
    faults = []
    for cycle in range(num_cycles):
        for flop_index, name in enumerate(names):
            faults.append(SeuFault(cycle=cycle, flop_index=flop_index, flop_name=name))
    return faults


def faults_for_flop(
    netlist: Netlist, flop_index: int, num_cycles: int
) -> List[SeuFault]:
    """All faults targeting one flop (used for per-flop vulnerability
    reports)."""
    names = netlist.ff_names()
    if not 0 <= flop_index < len(names):
        raise CampaignError(f"no flop with index {flop_index}")
    return [
        SeuFault(cycle=cycle, flop_index=flop_index, flop_name=names[flop_index])
        for cycle in range(num_cycles)
    ]
