"""Statistical fault sampling.

Exhaustive injection is the paper's regime, but modern campaigns on larger
circuits (and on the larger fault populations of the non-SEU models)
sample the fault space. This module provides

* reproducible samplers — seeded **uniform** sampling without replacement
  and **stratified-by-flop** sampling with largest-remainder allocation —
  both re-sorted cycle-major so the campaign engines keep their
  contiguous-window sharding;
* binomial confidence intervals — the **Wilson** score interval (default)
  and the exact **Clopper-Pearson** interval (dependency-free regularized
  incomplete beta), selected by name;
* per-fault-class estimates (:func:`classification_estimates`) so a
  sampled campaign reports FAILURE/LATENT/SILENT rates with error bars;
* an **adaptive** mode (:class:`AdaptiveSampler`) that grows the sample
  geometrically until every class interval reaches a target half-width —
  the "sample until the error bars are tight enough" loop DrSEUS-style
  statistical campaigns use.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import CampaignError
from repro.faults.classify import FaultClass, classification_counts
from repro.faults.model import SeuFault
from repro.util.rng import DeterministicRng

SAMPLING_METHODS = ("uniform", "stratified")
CI_METHODS = ("wilson", "clopper_pearson")


# ----------------------------------------------------------------------
# samplers
# ----------------------------------------------------------------------
def sample_fault_list(
    faults: Sequence[SeuFault], count: int, seed: int = 0
) -> List[SeuFault]:
    """Sample ``count`` faults uniformly without replacement,
    deterministically.

    The sample is re-sorted cycle-major so campaign engines (notably
    time-mux, which walks the golden state forward) process it efficiently.
    """
    if count <= 0:
        raise CampaignError("sample size must be positive")
    if count > len(faults):
        raise CampaignError(
            f"cannot sample {count} faults from a population of {len(faults)}"
        )
    rng = DeterministicRng(seed).fork("fault-sample")
    chosen = rng.sample(list(faults), count)
    chosen.sort()
    return chosen


def stratified_sample_fault_list(
    faults: Sequence[SeuFault], count: int, seed: int = 0
) -> List[SeuFault]:
    """Sample ``count`` faults stratified by flip-flop.

    Uniform sampling can leave rarely-hit flops unrepresented in small
    samples; stratifying by flop guarantees proportional coverage of the
    register file. Quotas use largest-remainder (Hamilton) allocation over
    each flop's population share, fractional-remainder ties broken by flop
    index; within a stratum the draw is uniform without replacement, each
    stratum on an independently forked stream so adding flops does not
    perturb other strata. The result is re-sorted cycle-major like the
    uniform sampler.
    """
    if count <= 0:
        raise CampaignError("sample size must be positive")
    if count > len(faults):
        raise CampaignError(
            f"cannot sample {count} faults from a population of {len(faults)}"
        )
    strata: Dict[int, List[SeuFault]] = {}
    for fault in faults:
        strata.setdefault(fault.flop_index, []).append(fault)

    total = len(faults)
    quotas: Dict[int, int] = {}
    remainders: List[Tuple[float, int]] = []
    allocated = 0
    for flop_index in sorted(strata):
        exact = count * len(strata[flop_index]) / total
        quotas[flop_index] = int(exact)
        allocated += int(exact)
        remainders.append((exact - int(exact), flop_index))
    remainders.sort(key=lambda pair: (-pair[0], pair[1]))
    for _, flop_index in remainders[: count - allocated]:
        quotas[flop_index] += 1
    # Integer quotas can exceed a small stratum only if every member is
    # already taken; spill the excess to the largest strata.
    spill = 0
    for flop_index in sorted(strata):
        over = quotas[flop_index] - len(strata[flop_index])
        if over > 0:
            quotas[flop_index] -= over
            spill += over
    while spill:
        for flop_index in sorted(
            strata, key=lambda f: len(strata[f]) - quotas[f], reverse=True
        ):
            if not spill:
                break
            if quotas[flop_index] < len(strata[flop_index]):
                quotas[flop_index] += 1
                spill -= 1

    rng = DeterministicRng(seed)
    chosen: List[SeuFault] = []
    for flop_index in sorted(strata):
        quota = quotas[flop_index]
        if not quota:
            continue
        stream = rng.fork(f"fault-stratum-{flop_index}")
        chosen.extend(stream.sample(strata[flop_index], quota))
    chosen.sort()
    return chosen


def draw_sample(
    faults: Sequence[SeuFault],
    count: int,
    seed: int = 0,
    method: str = "uniform",
) -> List[SeuFault]:
    """Dispatch to a named sampling method."""
    if method == "uniform":
        return sample_fault_list(faults, count, seed=seed)
    if method == "stratified":
        return stratified_sample_fault_list(faults, count, seed=seed)
    raise CampaignError(
        f"unknown sampling method {method!r}; expected one of "
        f"{SAMPLING_METHODS}"
    )


# ----------------------------------------------------------------------
# confidence intervals
# ----------------------------------------------------------------------
def wilson_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> tuple:
    """Wilson score interval for a binomial proportion.

    Returns ``(low, high)`` bounds on the true proportion. Preferred over
    the normal approximation because campaign failure rates near 0 or 1 are
    common (hardened circuits).
    """
    _check_counts(successes, trials)
    z = _z_score(confidence)
    phat = successes / trials
    denominator = 1 + z * z / trials
    centre = phat + z * z / (2 * trials)
    margin = z * math.sqrt(
        phat * (1 - phat) / trials + z * z / (4 * trials * trials)
    )
    low = (centre - margin) / denominator
    high = (centre + margin) / denominator
    return (max(0.0, low), min(1.0, high))


def clopper_pearson_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> tuple:
    """Exact (Clopper-Pearson) binomial interval.

    Conservative by construction — coverage is *at least* the nominal
    confidence for every true proportion, which is what a hardened CI gate
    wants. Bounds are Beta-distribution quantiles, computed with the
    dependency-free regularized incomplete beta below.
    """
    _check_counts(successes, trials)
    if not 0 < confidence < 1:
        raise CampaignError("confidence must be in (0, 1)")
    alpha = 1 - confidence
    if successes == 0:
        low = 0.0
    else:
        low = _beta_quantile(alpha / 2, successes, trials - successes + 1)
    if successes == trials:
        high = 1.0
    else:
        high = _beta_quantile(1 - alpha / 2, successes + 1, trials - successes)
    return (low, high)


def confidence_interval(
    successes: int,
    trials: int,
    confidence: float = 0.95,
    method: str = "wilson",
) -> tuple:
    """Dispatch to a named interval method."""
    if method == "wilson":
        return wilson_interval(successes, trials, confidence)
    if method == "clopper_pearson":
        return clopper_pearson_interval(successes, trials, confidence)
    raise CampaignError(
        f"unknown confidence-interval method {method!r}; expected one of "
        f"{CI_METHODS}"
    )


def _check_counts(successes: int, trials: int) -> None:
    if trials <= 0:
        raise CampaignError("confidence interval needs at least one trial")
    if not 0 <= successes <= trials:
        raise CampaignError("successes must be between 0 and trials")


def _z_score(confidence: float) -> float:
    """Two-sided z score via inverse error function (no scipy needed)."""
    if not 0 < confidence < 1:
        raise CampaignError("confidence must be in (0, 1)")
    # Rational approximation of the probit function (Acklam's algorithm
    # would be overkill; bisection on erf is exact enough and dependency
    # free).
    target = 0.5 * (1 + confidence)
    low, high = 0.0, 10.0
    for _ in range(80):
        mid = (low + high) / 2
        if 0.5 * (1 + math.erf(mid / math.sqrt(2))) < target:
            low = mid
        else:
            high = mid
    return (low + high) / 2


def _log_beta(a: float, b: float) -> float:
    return math.lgamma(a) + math.lgamma(b) - math.lgamma(a + b)


def _betainc(x: float, a: float, b: float) -> float:
    """Regularized incomplete beta I_x(a, b) via Lentz's continued
    fraction (Numerical Recipes ``betacf``), accurate to ~1e-12 for the
    integer shape parameters Clopper-Pearson uses."""
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    front = math.exp(
        a * math.log(x) + b * math.log(1 - x) - _log_beta(a, b)
    )
    # Use the symmetry relation to keep the continued fraction convergent.
    if x < (a + 1) / (a + b + 2):
        return front * _betacf(x, a, b) / a
    return 1.0 - math.exp(
        b * math.log(1 - x) + a * math.log(x) - _log_beta(b, a)
    ) * _betacf(1 - x, b, a) / b


def _betacf(x: float, a: float, b: float) -> float:
    tiny = 1e-30
    qab, qap, qam = a + b, a + 1, a - 1
    c = 1.0
    d = 1 - qab * x / qap
    if abs(d) < tiny:
        d = tiny
    d = 1 / d
    h = d
    for m in range(1, 200):
        m2 = 2 * m
        numerator = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1 + numerator * d
        if abs(d) < tiny:
            d = tiny
        c = 1 + numerator / c
        if abs(c) < tiny:
            c = tiny
        d = 1 / d
        h *= d * c
        numerator = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1 + numerator * d
        if abs(d) < tiny:
            d = tiny
        c = 1 + numerator / c
        if abs(c) < tiny:
            c = tiny
        d = 1 / d
        delta = d * c
        h *= delta
        if abs(delta - 1) < 1e-12:
            break
    return h


def _beta_quantile(p: float, a: float, b: float) -> float:
    """Inverse of I_x(a, b) by bisection (monotone, 90 halvings ≈ 1e-27)."""
    low, high = 0.0, 1.0
    for _ in range(90):
        mid = (low + high) / 2
        if _betainc(mid, a, b) < p:
            low = mid
        else:
            high = mid
    return (low + high) / 2


# ----------------------------------------------------------------------
# estimates
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SampleEstimate:
    """A sampled-campaign estimate of a fault-class proportion."""

    successes: int
    trials: int
    confidence: float = 0.95
    method: str = "wilson"

    @property
    def proportion(self) -> float:
        """Point estimate."""
        return self.successes / self.trials

    @property
    def interval(self) -> tuple:
        """Confidence interval by the estimate's method."""
        return confidence_interval(
            self.successes, self.trials, self.confidence, self.method
        )

    @property
    def half_width(self) -> float:
        """Half the interval width — the adaptive sampler's target metric."""
        low, high = self.interval
        return (high - low) / 2

    def covers(self, proportion: float) -> bool:
        """Whether the interval contains ``proportion``."""
        low, high = self.interval
        return low <= proportion <= high

    def describe(self) -> str:
        """e.g. ``49.3 % [47.1, 51.5] @95%``."""
        low, high = self.interval
        return (
            f"{100 * self.proportion:.1f} % "
            f"[{100 * low:.1f}, {100 * high:.1f}] @{int(self.confidence * 100)}%"
        )


def classification_estimates(
    verdicts: Iterable[FaultClass],
    confidence: float = 0.95,
    method: str = "wilson",
) -> Dict[FaultClass, SampleEstimate]:
    """Per-class proportion estimates for one sampled campaign."""
    counts = classification_counts(verdicts)
    trials = sum(counts.values())
    if trials == 0:
        raise CampaignError("cannot estimate rates from zero verdicts")
    return {
        fault_class: SampleEstimate(
            successes=count,
            trials=trials,
            confidence=confidence,
            method=method,
        )
        for fault_class, count in counts.items()
    }


# ----------------------------------------------------------------------
# adaptive sampling
# ----------------------------------------------------------------------
@dataclass
class AdaptiveSampler:
    """Grow a sample until every class interval is tight enough.

    The driver loop (``CampaignRunner.run_adaptive`` or the CLI's
    ``--ci-target``) grades a sample of :attr:`count` faults, reports the
    per-class estimates, and asks :meth:`next_count` for the next sample
    size; ``None`` means stop. Growth is geometric (``growth`` x per
    round) and capped at the population size, so termination is
    guaranteed: either the intervals reach ``target_half_width`` or the
    campaign becomes exhaustive — at which point the estimate is the true
    proportion and sampling error is moot.
    """

    population: int
    target_half_width: float
    initial: int = 100
    growth: float = 2.0
    max_count: Optional[int] = None
    rounds: List[Tuple[int, float]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.population <= 0:
            raise CampaignError("population must be positive")
        if not 0 < self.target_half_width < 0.5:
            raise CampaignError(
                "target half-width must be in (0, 0.5); got "
                f"{self.target_half_width}"
            )
        if self.initial <= 0:
            raise CampaignError("initial sample size must be positive")
        if self.growth <= 1.0:
            raise CampaignError("growth factor must exceed 1")
        self.count = min(self.initial, self.cap)

    @property
    def cap(self) -> int:
        """Largest sample the sampler will ever request."""
        if self.max_count is None:
            return self.population
        return min(self.max_count, self.population)

    def next_count(
        self, estimates: Dict[FaultClass, SampleEstimate]
    ) -> Optional[int]:
        """Record this round and return the next sample size (None: done)."""
        width = max(estimate.half_width for estimate in estimates.values())
        self.rounds.append((self.count, width))
        if width <= self.target_half_width or self.count >= self.cap:
            return None
        self.count = min(self.cap, max(self.count + 1, int(self.count * self.growth)))
        return self.count

    @property
    def achieved_half_width(self) -> Optional[float]:
        """Worst-class half-width of the last completed round."""
        if not self.rounds:
            return None
        return self.rounds[-1][1]

    @property
    def exhausted(self) -> bool:
        """True when the last round sampled the whole population (the
        estimate is exact, even if wider than the target)."""
        return bool(self.rounds) and self.rounds[-1][0] >= self.population


__all__ = [
    "AdaptiveSampler",
    "CI_METHODS",
    "SAMPLING_METHODS",
    "SampleEstimate",
    "classification_estimates",
    "clopper_pearson_interval",
    "confidence_interval",
    "draw_sample",
    "sample_fault_list",
    "stratified_sample_fault_list",
    "wilson_interval",
]
