"""Statistical fault sampling.

Exhaustive injection is the paper's regime, but modern campaigns on larger
circuits sample the fault space. This module provides reproducible sampling
and Wilson-score confidence intervals so sampled failure rates come with
error bars — an extension the paper lists as enabled by faster emulation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from repro.errors import CampaignError
from repro.faults.model import SeuFault
from repro.util.rng import DeterministicRng


def sample_fault_list(
    faults: Sequence[SeuFault], count: int, seed: int = 0
) -> List[SeuFault]:
    """Sample ``count`` faults without replacement, deterministically.

    The sample is re-sorted cycle-major so campaign engines (notably
    time-mux, which walks the golden state forward) process it efficiently.
    """
    if count <= 0:
        raise CampaignError("sample size must be positive")
    if count > len(faults):
        raise CampaignError(
            f"cannot sample {count} faults from a population of {len(faults)}"
        )
    rng = DeterministicRng(seed).fork("fault-sample")
    chosen = rng.sample(list(faults), count)
    chosen.sort()
    return chosen


def wilson_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> tuple:
    """Wilson score interval for a binomial proportion.

    Returns ``(low, high)`` bounds on the true proportion. Preferred over
    the normal approximation because campaign failure rates near 0 or 1 are
    common (hardened circuits).
    """
    if trials <= 0:
        raise CampaignError("wilson_interval needs at least one trial")
    if not 0 <= successes <= trials:
        raise CampaignError("successes must be between 0 and trials")
    z = _z_score(confidence)
    phat = successes / trials
    denominator = 1 + z * z / trials
    centre = phat + z * z / (2 * trials)
    margin = z * math.sqrt(
        phat * (1 - phat) / trials + z * z / (4 * trials * trials)
    )
    low = (centre - margin) / denominator
    high = (centre + margin) / denominator
    return (max(0.0, low), min(1.0, high))


def _z_score(confidence: float) -> float:
    """Two-sided z score via inverse error function (no scipy needed)."""
    if not 0 < confidence < 1:
        raise CampaignError("confidence must be in (0, 1)")
    # Rational approximation of the probit function (Acklam's algorithm
    # would be overkill; bisection on erf is exact enough and dependency
    # free).
    target = 0.5 * (1 + confidence)
    low, high = 0.0, 10.0
    for _ in range(80):
        mid = (low + high) / 2
        if 0.5 * (1 + math.erf(mid / math.sqrt(2))) < target:
            low = mid
        else:
            high = mid
    return (low + high) / 2


@dataclass(frozen=True)
class SampleEstimate:
    """A sampled-campaign estimate of a fault-class proportion."""

    successes: int
    trials: int
    confidence: float = 0.95

    @property
    def proportion(self) -> float:
        """Point estimate."""
        return self.successes / self.trials

    @property
    def interval(self) -> tuple:
        """Wilson confidence interval."""
        return wilson_interval(self.successes, self.trials, self.confidence)

    def describe(self) -> str:
        """e.g. ``49.3 % [47.1, 51.5] @95%``."""
        low, high = self.interval
        return (
            f"{100 * self.proportion:.1f} % "
            f"[{100 * low:.1f}, {100 * high:.1f}] @{int(self.confidence * 100)}%"
        )
