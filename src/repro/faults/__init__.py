"""Fault models, fault lists, sampling, classification and dictionaries."""

from repro.faults.classify import FaultClass, classification_counts, classify_outcome
from repro.faults.dictionary import FaultDictionary, FaultRecord
from repro.faults.model import SeuFault, exhaustive_fault_list, faults_for_flop
from repro.faults.models import (
    DEFAULT_FAULT_MODEL,
    FaultModel,
    available_models,
    get_fault_model,
)
from repro.faults.sampling import (
    AdaptiveSampler,
    SampleEstimate,
    classification_estimates,
    clopper_pearson_interval,
    confidence_interval,
    draw_sample,
    sample_fault_list,
    stratified_sample_fault_list,
    wilson_interval,
)

__all__ = [
    "AdaptiveSampler",
    "DEFAULT_FAULT_MODEL",
    "FaultClass",
    "FaultDictionary",
    "FaultModel",
    "FaultRecord",
    "SampleEstimate",
    "SeuFault",
    "available_models",
    "classification_counts",
    "classification_estimates",
    "classify_outcome",
    "clopper_pearson_interval",
    "confidence_interval",
    "draw_sample",
    "exhaustive_fault_list",
    "faults_for_flop",
    "get_fault_model",
    "sample_fault_list",
    "stratified_sample_fault_list",
    "wilson_interval",
]
