"""SEU fault model, fault lists, classification and dictionaries."""

from repro.faults.classify import FaultClass, classification_counts, classify_outcome
from repro.faults.dictionary import FaultDictionary, FaultRecord
from repro.faults.model import SeuFault, exhaustive_fault_list, faults_for_flop
from repro.faults.sampling import SampleEstimate, sample_fault_list, wilson_interval

__all__ = [
    "FaultClass",
    "FaultDictionary",
    "FaultRecord",
    "SampleEstimate",
    "SeuFault",
    "classification_counts",
    "classify_outcome",
    "exhaustive_fault_list",
    "faults_for_flop",
    "sample_fault_list",
    "wilson_interval",
]
