"""Fault classification: failure / latent / silent.

The paper grades each injected fault into exactly one of three classes
(the 49.2 % / 4.4 % / 46.4 % split reported for b14):

* **FAILURE** — the faulty run produced a wrong value on a primary output
  at some cycle.
* **LATENT**  — outputs stayed correct for the whole testbench, but the
  circuit state still differs from the golden state at the end: the error
  is stored, and a longer workload might still expose it.
* **SILENT**  — outputs stayed correct and the fault effect disappeared
  (faulty state became equal to the golden state), so the SEU had no
  consequence.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable


class FaultClass(enum.Enum):
    """Grading verdict for a single fault."""

    FAILURE = "failure"
    LATENT = "latent"
    SILENT = "silent"


def classify_outcome(fail_cycle: int, vanish_cycle: int) -> FaultClass:
    """Classify from the two oracle observations.

    ``fail_cycle``: first cycle with an output mismatch, -1 if never.
    ``vanish_cycle``: first cycle at whose end the faulty state equals the
    golden state, -1 if never.

    An output mismatch dominates: even if the state later converges, the
    wrong output was already produced (the paper counts these as failures).
    """
    if fail_cycle != -1:
        return FaultClass.FAILURE
    if vanish_cycle != -1:
        return FaultClass.SILENT
    return FaultClass.LATENT


def classification_counts(classes: Iterable[FaultClass]) -> Dict[FaultClass, int]:
    """Histogram of verdicts."""
    counts = {FaultClass.FAILURE: 0, FaultClass.LATENT: 0, FaultClass.SILENT: 0}
    for verdict in classes:
        counts[verdict] += 1
    return counts


def classification_percentages(
    counts: Dict[FaultClass, int]
) -> Dict[FaultClass, float]:
    """Convert a verdict histogram to percentages (the paper's format)."""
    total = sum(counts.values())
    if total == 0:
        return {key: 0.0 for key in counts}
    return {key: 100.0 * value / total for key, value in counts.items()}
