"""Fault-model interface and registry.

A *fault model* describes what a fault physically is — which state bits it
perturbs, when, and whether the perturbation is re-applied every cycle —
and knows how to enumerate the complete fault population for a circuit
and testbench length. Models register themselves by name so campaign
specs and the CLI can select one with a plain string
(``fault_model="stuck_at_1"``), mirroring the grading-engine registry.

Parameterized models register a *prefix* handler: ``mbu:3`` resolves to a
3-bit multi-bit-upset model, ``intermittent:8:3`` to a duty-cycle fault
active 3 cycles out of every 8. The parsed instances are memoized so two
specs naming the same model share one object.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Dict, List, Optional, Type

from repro.errors import CampaignError
from repro.faults.model import SeuFault
from repro.netlist.netlist import Netlist


class FaultModel(ABC):
    """One injectable fault model.

    Subclasses set ``name`` (the registry key) and ``transient`` (False
    when the model forces state every cycle), and implement
    :meth:`population`. Faults returned by :meth:`population` must be
    cycle-major sorted so cycle windows are contiguous slices (the
    sharded runner and the time-mux engine rely on this).
    """

    #: registry key, e.g. ``"stuck_at_0"``
    name: str = ""

    #: False for models that re-apply a force every cycle (stuck-at,
    #: intermittent); their faults can re-diverge after converging, so
    #: neither the grading engines nor the emulated time-mux controller
    #: may early-exit on state convergence.
    transient: bool = True

    @abstractmethod
    def population(self, netlist: Netlist, num_cycles: int) -> List[SeuFault]:
        """The complete fault set for ``netlist`` over ``num_cycles``."""

    def population_size(self, netlist: Netlist, num_cycles: int) -> int:
        """Size of :meth:`population` without materializing it (models
        with a closed form override this)."""
        return len(self.population(netlist, num_cycles))

    def describe(self) -> str:
        """One-line injection semantics (docs, CLI errors)."""
        return self.name


_REGISTRY: Dict[str, FaultModel] = {}
_PREFIXES: Dict[str, Callable[[str], FaultModel]] = {}
_PREFIX_SYNTAX: Dict[str, str] = {}
_PARSED: Dict[str, FaultModel] = {}


def register_model(model_cls: Type[FaultModel]) -> Type[FaultModel]:
    """Class decorator: instantiate and register a model by its name."""
    model = model_cls()
    if not model.name:
        raise ValueError(f"{model_cls.__name__} must set a name")
    _REGISTRY[model.name] = model
    return model_cls


def register_model_prefix(
    prefix: str,
    factory: Callable[[str], FaultModel],
    syntax: Optional[str] = None,
) -> None:
    """Register a handler for parameterized names ``<prefix>:<params>``.

    ``syntax`` is the human-facing parameter spelling shown by
    :func:`available_models` (CLI help, unknown-model errors), e.g.
    ``"intermittent:<period>:<duty>"``.
    """
    _PREFIXES[prefix] = factory
    _PREFIX_SYNTAX[prefix] = syntax or f"{prefix}:<k>"


def get_fault_model(name: str) -> FaultModel:
    """Look up a fault model by (possibly parameterized) name."""
    model = _REGISTRY.get(name) or _PARSED.get(name)
    if model is not None:
        return model
    prefix = name.split(":", 1)[0]
    factory = _PREFIXES.get(prefix)
    if factory is not None:
        model = factory(name)
        _PARSED[name] = model
        return model
    raise CampaignError(
        f"unknown fault model {name!r}; available models: "
        + ", ".join(available_models())
    )


def available_models() -> List[str]:
    """Sorted names of registered models (parameterized families shown
    with their parameter syntax)."""
    names = sorted(_REGISTRY)
    names.extend(sorted(_PREFIX_SYNTAX.values()))
    return names
