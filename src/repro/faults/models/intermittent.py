"""Intermittent duty-cycle faults.

Intermittent faults — marginal hardware, aging, crosstalk — assert and
release repeatedly: from its onset cycle the fault forces the flop to a
value for ``duty`` cycles out of every ``period``, then releases it. They
are the hardest class for an injection platform because the forcing mask
must be re-applied (and removed) on a schedule, not once; the grading
engines model this with per-cycle force masks, and the emulated mask-scan
instrument with a held force enable.

The population is every (onset cycle, flop) pair, forcing toward the
flop's *inverted reset value* is deliberately avoided: like stuck-at, the
forced value is a model parameter (default 1), so a campaign can probe
both polarities with two runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import CampaignError
from repro.faults.model import SeuFault
from repro.faults.models.base import (
    FaultModel,
    register_model_prefix,
)
from repro.netlist.netlist import Netlist

DEFAULT_PERIOD = 4
DEFAULT_DUTY = 2


@dataclass(frozen=True, order=True)
class IntermittentFault(SeuFault):
    """Force ``flop_index`` to ``value`` during cycles ``t >= cycle``
    where ``(t - cycle) % period < duty``."""

    value: int = 1
    period: int = DEFAULT_PERIOD
    duty: int = DEFAULT_DUTY

    persistent = True

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.value not in (0, 1):
            raise CampaignError(
                f"intermittent value must be 0 or 1, got {self.value}"
            )
        if self.period < 2:
            raise CampaignError(
                f"intermittent period must be at least 2, got {self.period}"
            )
        if not 1 <= self.duty < self.period:
            raise CampaignError(
                f"intermittent duty must be in [1, period), got {self.duty}"
            )

    def flip_flops(self) -> Tuple[int, ...]:
        return ()

    def force_value(self) -> Optional[int]:
        return self.value

    def force_active(self, cycle: int) -> bool:
        if cycle < self.cycle:
            return False
        return (cycle - self.cycle) % self.period < self.duty

    def force_events(self, num_cycles: int) -> List[Tuple[int, bool]]:
        events = []
        start = self.cycle
        while start <= num_cycles:
            events.append((start, True))
            release = start + self.duty
            if release <= num_cycles:
                events.append((release, False))
            start += self.period
        return events

    def describe(self) -> str:
        name = self.flop_name or f"flop[{self.flop_index}]"
        return (
            f"INT{self.value}({name} @ cycle {self.cycle}.., "
            f"{self.duty}/{self.period})"
        )


class IntermittentModel(FaultModel):
    """Duty-cycle forcing fault."""

    transient = False

    def __init__(
        self,
        period: int = DEFAULT_PERIOD,
        duty: int = DEFAULT_DUTY,
        value: int = 1,
    ):
        # Fault construction validates the parameters; build one early so
        # bad model names fail at spec time, not mid-campaign.
        IntermittentFault(cycle=0, flop_index=0, value=value, period=period, duty=duty)
        self.period = period
        self.duty = duty
        self.value = value
        self.name = f"intermittent:{period}:{duty}"

    def population(
        self, netlist: Netlist, num_cycles: int
    ) -> List[IntermittentFault]:
        if num_cycles <= 0:
            raise CampaignError("fault list needs a positive number of cycles")
        names = netlist.ff_names()
        return [
            IntermittentFault(
                cycle=cycle,
                flop_index=index,
                flop_name=name,
                value=self.value,
                period=self.period,
                duty=self.duty,
            )
            for cycle in range(num_cycles)
            for index, name in enumerate(names)
        ]

    def population_size(self, netlist: Netlist, num_cycles: int) -> int:
        return netlist.num_ffs * num_cycles

    def describe(self) -> str:
        return (
            f"intermittent stuck-at-{self.value}: forced {self.duty} of "
            f"every {self.period} cycles from onset"
        )


def _parse_intermittent(name: str) -> IntermittentModel:
    parts = name.split(":")
    if len(parts) == 1:
        return IntermittentModel()
    if len(parts) != 3:
        raise CampaignError(
            f"bad intermittent model {name!r}; expected intermittent or "
            "intermittent:<period>:<duty>"
        )
    try:
        period, duty = int(parts[1]), int(parts[2])
    except ValueError:
        raise CampaignError(
            f"bad intermittent parameters in {name!r}; expected integers"
        ) from None
    return IntermittentModel(period=period, duty=duty)


register_model_prefix(
    "intermittent", _parse_intermittent, syntax="intermittent:<period>:<duty>"
)
