"""Pluggable fault models.

The registry maps model names to :class:`~repro.faults.models.base.FaultModel`
instances:

* ``seu``                        — the paper's transient single-bit flip
* ``mbu`` / ``mbu:<k>``          — transient k-adjacent-bit upset (default 2)
* ``stuck_at_0`` / ``stuck_at_1`` — permanent stuck-at from onset cycle
* ``intermittent`` / ``intermittent:<period>:<duty>``
                                 — duty-cycle forcing fault

Campaign specs, the CLI (``--fault-model``) and the grading engines all
select models through :func:`get_fault_model`. See
``docs/fault_models.md`` for the per-backend injection semantics.
"""

from repro.faults.models.base import (
    FaultModel,
    available_models,
    get_fault_model,
    register_model,
    register_model_prefix,
)
from repro.faults.models.intermittent import IntermittentFault, IntermittentModel
from repro.faults.models.mbu import MbuFault, MbuModel
from repro.faults.models.seu import SeuModel
from repro.faults.models.stuck import StuckAtFault

DEFAULT_FAULT_MODEL = "seu"

__all__ = [
    "DEFAULT_FAULT_MODEL",
    "FaultModel",
    "IntermittentFault",
    "IntermittentModel",
    "MbuFault",
    "MbuModel",
    "SeuModel",
    "StuckAtFault",
    "available_models",
    "get_fault_model",
    "register_model",
    "register_model_prefix",
]
