"""The paper's fault model: transient single-bit SEU.

The population is exactly :func:`repro.faults.model.exhaustive_fault_list`
— the same :class:`~repro.faults.model.SeuFault` objects, in the same
cycle-major order — so campaigns described through the model registry are
bit-exact with the original hard-coded path.
"""

from __future__ import annotations

from typing import List

from repro.faults.model import SeuFault, exhaustive_fault_list
from repro.faults.models.base import FaultModel, register_model
from repro.netlist.netlist import Netlist


@register_model
class SeuModel(FaultModel):
    """Single-event upset: one flop flipped for one cycle."""

    name = "seu"
    transient = True

    def population(self, netlist: Netlist, num_cycles: int) -> List[SeuFault]:
        return exhaustive_fault_list(netlist, num_cycles)

    def population_size(self, netlist: Netlist, num_cycles: int) -> int:
        return netlist.num_ffs * num_cycles

    def describe(self) -> str:
        return "transient single-bit flip: one flop XOR-ed at one cycle"
