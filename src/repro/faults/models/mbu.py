"""Multi-bit upsets: one particle strike flipping k adjacent flops.

MBUs model high-LET strikes (and modern dense SRAM layouts) where one
event corrupts a *run* of physically adjacent memory elements. Adjacency
here is netlist flop order — the same order used for state packing and
scan chains, i.e. the layout proxy the rest of the library already uses.

The population is every (cycle, starting flop) pair whose k-flop run fits
inside the register file: ``(N - k + 1) x T`` faults. Like SEUs the upset
is transient — a one-shot XOR of k bits — so MBU campaigns keep the
engines' early-exit optimizations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import CampaignError
from repro.faults.model import SeuFault
from repro.faults.models.base import (
    FaultModel,
    register_model,
    register_model_prefix,
)
from repro.netlist.netlist import Netlist

DEFAULT_WIDTH = 2


@dataclass(frozen=True, order=True)
class MbuFault(SeuFault):
    """Flip ``width`` adjacent flops (``flop_index`` ..
    ``flop_index + width - 1``) at the start of ``cycle``."""

    width: int = DEFAULT_WIDTH

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.width < 1:
            raise CampaignError(f"MBU width must be positive, got {self.width}")

    def flip_flops(self) -> Tuple[int, ...]:
        return tuple(range(self.flop_index, self.flop_index + self.width))

    def describe(self) -> str:
        name = self.flop_name or f"flop[{self.flop_index}]"
        return f"MBU{self.width}({name}.. @ cycle {self.cycle})"


class MbuModel(FaultModel):
    """k-adjacent-bit transient upset."""

    transient = True

    def __init__(self, width: int = DEFAULT_WIDTH):
        if width < 2:
            raise CampaignError(
                f"MBU width must be at least 2 (got {width}); width 1 is "
                "the seu model"
            )
        self.width = width
        self.name = f"mbu:{width}"

    def population(self, netlist: Netlist, num_cycles: int) -> List[MbuFault]:
        if num_cycles <= 0:
            raise CampaignError("fault list needs a positive number of cycles")
        names = netlist.ff_names()
        if len(names) < self.width:
            raise CampaignError(
                f"{netlist.name!r} has {len(names)} flops; cannot inject "
                f"{self.width}-bit MBUs"
            )
        faults = []
        for cycle in range(num_cycles):
            for start in range(len(names) - self.width + 1):
                faults.append(
                    MbuFault(
                        cycle=cycle,
                        flop_index=start,
                        flop_name=names[start],
                        width=self.width,
                    )
                )
        return faults

    def population_size(self, netlist: Netlist, num_cycles: int) -> int:
        return max(0, netlist.num_ffs - self.width + 1) * num_cycles

    def describe(self) -> str:
        return (
            f"transient {self.width}-adjacent-bit flip at one cycle "
            "(adjacency = flop packing order)"
        )


def _parse_mbu(name: str) -> MbuModel:
    parts = name.split(":")
    if len(parts) == 1:
        return MbuModel()
    if len(parts) != 2:
        raise CampaignError(
            f"bad MBU model {name!r}; expected mbu or mbu:<width>"
        )
    try:
        width = int(parts[1])
    except ValueError:
        raise CampaignError(
            f"bad MBU width in {name!r}; expected an integer"
        ) from None
    return MbuModel(width)


register_model_prefix("mbu", _parse_mbu, syntax="mbu:<width>")
