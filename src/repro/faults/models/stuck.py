"""Permanent stuck-at faults on flip-flops.

A stuck-at fault forces one flop to a constant value from its onset cycle
until the end of the testbench — the classic model for permanent defects
(and for SEUs in configuration memory, which hold until scrubbed). Unlike
the transient models this is *not* a one-shot XOR: the force is
re-applied to the held state every cycle, so a faulty run that happens to
match the golden state can diverge again the next time the golden value
of the stuck flop changes. Grading engines therefore disable their
convergence early-exit and classify SILENT/LATENT from the *final*
converged suffix, not the first match.

The population is every (onset cycle, flop) pair — ``N x T`` faults, like
the SEU set (an onset cycle matters because the flop is fault-free before
it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import CampaignError
from repro.faults.model import SeuFault
from repro.faults.models.base import FaultModel, register_model
from repro.netlist.netlist import Netlist


@dataclass(frozen=True, order=True)
class StuckAtFault(SeuFault):
    """Force ``flop_index`` to ``value`` during every cycle >= ``cycle``."""

    value: int = 0

    persistent = True

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.value not in (0, 1):
            raise CampaignError(
                f"stuck-at value must be 0 or 1, got {self.value}"
            )

    def flip_flops(self) -> Tuple[int, ...]:
        return ()

    def force_value(self) -> Optional[int]:
        return self.value

    def force_active(self, cycle: int) -> bool:
        return cycle >= self.cycle

    def force_events(self, num_cycles: int) -> List[Tuple[int, bool]]:
        if self.cycle > num_cycles:
            return []
        return [(self.cycle, True)]

    def describe(self) -> str:
        name = self.flop_name or f"flop[{self.flop_index}]"
        return f"SA{self.value}({name} @ cycle {self.cycle}..)"


class _StuckAtModel(FaultModel):
    transient = False
    value = 0

    def population(self, netlist: Netlist, num_cycles: int) -> List[StuckAtFault]:
        if num_cycles <= 0:
            raise CampaignError("fault list needs a positive number of cycles")
        names = netlist.ff_names()
        return [
            StuckAtFault(
                cycle=cycle, flop_index=index, flop_name=name, value=self.value
            )
            for cycle in range(num_cycles)
            for index, name in enumerate(names)
        ]

    def population_size(self, netlist: Netlist, num_cycles: int) -> int:
        return netlist.num_ffs * num_cycles

    def describe(self) -> str:
        return (
            f"permanent stuck-at-{self.value}: flop forced to "
            f"{self.value} every cycle from onset to end of bench"
        )


@register_model
class StuckAt0Model(_StuckAtModel):
    name = "stuck_at_0"
    value = 0


@register_model
class StuckAt1Model(_StuckAtModel):
    name = "stuck_at_1"
    value = 1
