"""Sharded, resumable campaign execution.

:class:`CampaignRunner` turns a :class:`~repro.run.spec.CampaignSpec`
into a :class:`~repro.emu.campaign.CampaignResult` by

1. splitting the campaign's fault list into contiguous cycle-window
   shards (fault lists are cycle-major, so windows are contiguous
   slices),
2. grading shards through a pluggable
   :class:`~repro.run.transport.ShardTransport` — in-process
   (``serial``), on the persistent local process pool (``local``), or
   fanned across remote ``repro worker`` daemons (``tcp``). Every
   transport consumes a *dynamic* shard queue: idle workers pull the
   next window, lost workers' windows are re-queued, and records stream
   back in completion order,
3. checkpointing every completed shard to a JSONL
   :class:`~repro.run.store.ResultsStore` (``<store_root>/<campaign-id>/``)
   so an interrupted campaign resumes without re-grading finished
   shards — on *any* transport: shard records are
   transport-independent, and
4. merging shard outcomes back into one
   :class:`~repro.sim.parallel.FaultGradingResult` in fault-list order
   and accounting cycles with the same vectorized functions the serial
   path uses — merged results are bit-exact with
   :func:`repro.emu.campaign.run_campaign`.

Grading dominates campaign cost and is technique-independent, so the
runner shards *grading*; accounting for any technique is a vectorized
reduction over the merged oracle.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.emu.board import BoardModel
from repro.emu.campaign import CampaignResult, run_campaign
from repro.errors import CampaignError
from repro.faults.classify import FaultClass
from repro.faults.model import SeuFault
from repro.faults.sampling import (
    AdaptiveSampler,
    SampleEstimate,
    classification_estimates,
)
from repro.netlist.netlist import Netlist
from repro.run import worker
from repro.run.spec import CampaignSpec, Scenario
from repro.run.store import ResultsStore, ShardRecord
from repro.run.transport import ShardTransport, create_transport
from repro.sim.cache import compiled_for, golden_for
from repro.sim.parallel import (
    DEFAULT_BACKEND,
    FaultGradingResult,
    grade_faults,
)
from repro.sim.vectors import Testbench

#: shards per worker when the caller does not fix a shard count — enough
#: granularity that resume rarely repeats much work, coarse enough that
#: per-shard overhead stays negligible.
SHARDS_PER_WORKER = 4


@dataclass
class AdaptiveCampaign:
    """Outcome of an adaptive sampled campaign.

    ``spec`` is the final round's spec (its ``sample`` field holds the
    terminating sample size); ``estimates`` the per-class proportions
    with confidence intervals at that size; ``rounds`` every
    ``(sample_size, worst_half_width)`` pair the sampler visited; and
    ``exhausted`` whether termination came from sampling the entire
    population rather than reaching the target half-width.
    """

    spec: "CampaignSpec"
    oracle: FaultGradingResult
    estimates: Dict[FaultClass, SampleEstimate]
    rounds: List[Tuple[int, float]]
    target_half_width: float
    exhausted: bool


def default_pool_workers() -> int:
    """Default process-pool size for sweeps and benchmarks: at least 2
    (otherwise it is not a pool), at most 4 (grading saturates memory
    bandwidth before core count on typical hosts)."""
    return max(2, min(4, os.cpu_count() or 2))


@dataclass(frozen=True)
class ShardWindow:
    """One contiguous cycle window of a campaign's fault list."""

    index: int
    start_cycle: int
    end_cycle: int


def plan_windows(num_cycles: int, num_shards: int) -> List[ShardWindow]:
    """Balanced contiguous cycle windows covering [0, num_cycles)."""
    if num_cycles <= 0:
        raise CampaignError("cannot shard a zero-cycle campaign")
    count = max(1, min(num_shards, num_cycles))
    base, extra = divmod(num_cycles, count)
    windows = []
    start = 0
    for index in range(count):
        size = base + (1 if index < extra else 0)
        windows.append(ShardWindow(index, start, start + size))
        start += size
    return windows


class CampaignRunner:
    """Executes campaign specs, sharded and resumable.

    Parameters:
        workers: grading processes for the ``local`` transport. ``<= 1``
            grades in-process (the ``serial`` transport, same code
            path, no pool).
        shards: shard count override; default ``SHARDS_PER_WORKER x
            effective transport workers``, capped at the testbench
            length.
        store_root: directory holding per-campaign stores; ``None``
            disables persistence (grading is kept in memory only).
        resume: reuse completed shards found in the store. ``False``
            drops them and regrades from scratch.
        progress: optional callback receiving one line per completed
            shard (the CLI passes ``print``).
        on_shard: optional *structured* progress callback, called as
            ``on_shard(record, done, total)`` after every newly graded
            shard (``done`` counts completed shards including resumed
            ones, ``total`` the plan size). Unlike ``progress`` — which
            is display text — this is the hook services build live
            status on. Raising from the callback aborts the grade
            between shards with every completed shard already
            checkpointed, which is how the campaign service cancels a
            running campaign without losing work.
        mp_context: multiprocessing start method for the local pool;
            defaults to ``fork`` where available (inherits warm
            caches), else ``spawn``.
        transport: shard transport name (``serial``/``local``/``tcp``);
            default picks ``tcp`` when ``hosts`` is given, else
            ``local`` when ``workers >= 2``, else ``serial``.
        hosts: remote worker addresses for the ``tcp`` transport —
            ``"host:port,host:port"`` or a sequence of such strings.
        shard_timeout: seconds a TCP worker may hold one shard before
            it is declared wedged and the shard re-queued elsewhere
            (``None`` trusts heartbeats alone).
    """

    def __init__(
        self,
        workers: int = 1,
        shards: Optional[int] = None,
        store_root: Optional[str] = None,
        resume: bool = True,
        progress: Optional[Callable[[str], None]] = None,
        mp_context: Optional[str] = None,
        transport: Optional[str] = None,
        hosts=None,
        shard_timeout: Optional[float] = None,
        on_shard: Optional[Callable[[ShardRecord, int, int], None]] = None,
    ):
        if shards is not None and shards < 1:
            raise CampaignError("shards must be at least 1")
        self.workers = max(0, int(workers))
        self.shards = shards
        self.store_root = store_root
        self.resume = resume
        self.progress = progress
        self.on_shard = on_shard
        self.mp_context = mp_context
        self.hosts = hosts
        self.shard_timeout = shard_timeout
        self.transport_name = transport or (
            "tcp" if hosts else ("local" if self.workers >= 2 else "serial")
        )
        self._transport: Optional[ShardTransport] = None

    # ------------------------------------------------------------------
    # transport lifecycle
    # ------------------------------------------------------------------
    def _ensure_transport(self) -> ShardTransport:
        """The persistent shard transport, created on first grade.

        Keeping the transport alive across campaigns is a large share of
        the multi-worker win: repeated ``grade`` calls (sweeps, bench
        repeats, adaptive rounds) reuse warm worker processes — or warm
        remote daemons whose artifact caches already hold this
        campaign's netlist and stimulus — instead of paying startup +
        scenario warmup per call.
        """
        if self._transport is None:
            self._transport = create_transport(
                self.transport_name,
                workers=self.workers,
                mp_context=self.mp_context,
                hosts=self.hosts,
                shard_timeout=self.shard_timeout,
            )
        return self._transport

    def close(self) -> None:
        """Shut the transport (pool / remote connections) down (idempotent)."""
        if self._transport is not None:
            self._transport.close()
            self._transport = None

    def __enter__(self) -> "CampaignRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # best-effort; close() is the supported path
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    def plan(self, spec: CampaignSpec) -> List[ShardWindow]:
        """The shard plan this runner would use for ``spec``."""
        num_shards = self.shards
        if num_shards is None:
            effective = self._ensure_transport().effective_workers()
            num_shards = SHARDS_PER_WORKER * max(1, effective)
        return plan_windows(spec.resolved_cycles(), num_shards)

    # ------------------------------------------------------------------
    # grading
    # ------------------------------------------------------------------
    def grade(self, spec: CampaignSpec) -> FaultGradingResult:
        """Grade one spec's fault list, sharded (and resumed if stored)."""
        _, oracle = self._graded(spec)
        return oracle

    def _graded(self, spec: CampaignSpec) -> Tuple[Scenario, FaultGradingResult]:
        # Prewarm before any pool exists: compiled plan, golden trace,
        # fused program and native kernel land in the session caches
        # (inherited by forked workers) and the disk artifact cache
        # (shared with spawned or recycled workers).
        scenario = worker.prewarm(spec)
        windows = self.plan(spec)
        store = None
        done: Dict[int, ShardRecord] = {}
        if self.store_root is not None:
            store = ResultsStore.open(
                self.store_root,
                spec.oracle_key(),
                spec.campaign_id,
                [(w.start_cycle, w.end_cycle) for w in windows],
                fresh=not self.resume,
                fault_key=spec.fault_key(),
            )
            # A store graded under another plan (e.g. a different worker
            # count last time) keeps its plan; completed shards stay
            # mergeable instead of forcing a regrade.
            windows = [
                ShardWindow(index, start, end)
                for index, (start, end) in enumerate(store.windows)
            ]
            done = store.completed()

        pending = [window for window in windows if window.index not in done]
        if done and self.progress:
            self.progress(
                f"[{spec.campaign_id}] resuming: {len(done)}/{len(windows)} "
                "shards already graded"
            )
        spec_dict = spec.to_dict()
        if self.on_shard is not None and done:
            # Resumed shards count toward progress before grading starts,
            # so a service polling mid-resume never sees progress move
            # backwards. One call carries the whole resumed count.
            self.on_shard(next(iter(done.values())), len(done), len(windows))
        for record in self._grade_shards(spec, spec_dict, pending):
            done[record.index] = record
            if store is not None:
                store.append(record)
            if self.progress:
                self.progress(
                    f"[{spec.campaign_id}] shard {record.index + 1}/"
                    f"{len(windows)}: cycles [{record.start_cycle}, "
                    f"{record.end_cycle}) — {record.num_faults} faults in "
                    f"{record.elapsed_s:.3f}s"
                )
            if self.on_shard is not None:
                self.on_shard(record, len(done), len(windows))
        return scenario, self._merge(spec, scenario, windows, done)

    def _grade_shards(
        self,
        spec: CampaignSpec,
        spec_dict: Dict,
        pending: Sequence[ShardWindow],
    ) -> Iterator[ShardRecord]:
        """Stream completed shard records from the configured transport."""
        if not pending:
            return
        yield from self._ensure_transport().grade_windows(
            spec, spec_dict, pending
        )

    def _merge(
        self,
        spec: CampaignSpec,
        scenario: Scenario,
        windows: Sequence[ShardWindow],
        done: Dict[int, ShardRecord],
    ) -> FaultGradingResult:
        """Concatenate shard outcomes in fault-list order, verified."""
        fail: List[int] = []
        vanish: List[int] = []
        cycles = worker.injection_cycles(spec)
        for window in windows:
            record = done.get(window.index)
            if record is None:
                raise CampaignError(
                    f"shard {window.index} of {spec.campaign_id} missing "
                    "after grading"
                )
            lo, hi = worker.window_slice(
                cycles, window.start_cycle, window.end_cycle
            )
            if (
                record.start_cycle != window.start_cycle
                or record.end_cycle != window.end_cycle
                or record.num_faults != hi - lo
            ):
                raise CampaignError(
                    f"stored shard {window.index} of {spec.campaign_id} "
                    "disagrees with the current shard plan; delete the "
                    "store directory to regrade"
                )
            fail.extend(record.fail_cycles)
            vanish.extend(record.vanish_cycles)
        if len(fail) != len(scenario.faults):
            raise CampaignError(
                f"merged shards cover {len(fail)} faults, campaign has "
                f"{len(scenario.faults)}"
            )
        compiled = compiled_for(scenario.netlist)
        return FaultGradingResult(
            faults=scenario.faults,
            num_cycles=scenario.testbench.num_cycles,
            flop_names=[flop.name for flop in compiled.flops],
            golden=golden_for(compiled, scenario.testbench),
            fail_cycles=fail,
            vanish_cycles=vanish,
        )

    def grade_scenario(
        self,
        netlist: Netlist,
        testbench: Testbench,
        faults: Sequence[SeuFault],
        engine: str = DEFAULT_BACKEND,
    ) -> FaultGradingResult:
        """Grade an explicit (netlist, testbench, faults) scenario.

        Ad-hoc scenarios have no declarative description to ship to
        worker processes or key a store on, so they grade serially
        in-process — the reference path the sharded one is verified
        against.
        """
        return grade_faults(netlist, testbench, faults, backend=engine)

    # ------------------------------------------------------------------
    # campaigns
    # ------------------------------------------------------------------
    def run(
        self,
        spec: CampaignSpec,
        board: Optional[BoardModel] = None,
        oracle: Optional[FaultGradingResult] = None,
    ) -> CampaignResult:
        """Execute one campaign end to end.

        ``board`` overrides the spec's board model (eval experiments
        thread explicit :class:`BoardModel` instances through).
        ``oracle`` skips grading when the caller already holds this
        campaign's merged grading result.
        """
        if oracle is None:
            scenario, oracle = self._graded(spec)
        else:
            scenario = worker.scenario_for(spec)
        return run_campaign(
            scenario.netlist,
            scenario.testbench,
            spec.technique,
            board=board or spec.board_model(),
            faults=scenario.faults,
            oracle=oracle,
            scan_chains=spec.scan_chains,
            engine=spec.engine,
        )

    def run_adaptive(
        self,
        spec: CampaignSpec,
        target_half_width: float,
        confidence: float = 0.95,
        ci_method: str = "wilson",
        initial: int = 100,
        growth: float = 2.0,
        max_sample: Optional[int] = None,
    ) -> AdaptiveCampaign:
        """Sample until every class interval reaches ``target_half_width``.

        Each round grades ``replace(spec, sample=n)`` through the normal
        sharded (and store-backed) path — every round is an ordinary
        campaign with its own campaign id, so interrupted adaptive runs
        resume their current round's shards like any other campaign. The
        sample grows geometrically (see
        :class:`~repro.faults.sampling.AdaptiveSampler`) and is capped at
        the population, so the loop always terminates: with a tight
        target on a small circuit it simply becomes the exhaustive
        campaign, whose "estimate" is the true proportion.
        """
        netlist = spec.build_netlist()
        population = spec.population_size(netlist)
        sampler = AdaptiveSampler(
            population=population,
            target_half_width=target_half_width,
            initial=spec.sample or initial,
            growth=growth,
            max_count=max_sample,
        )
        while True:
            count = sampler.count
            # The exhaustive round is the plain unsampled campaign — it
            # shares its store with any existing exhaustive run.
            current = replace(
                spec, sample=None if count == population else count
            )
            oracle = self.grade(current)
            estimates = classification_estimates(
                oracle.verdicts(), confidence=confidence, method=ci_method
            )
            next_count = sampler.next_count(estimates)
            if self.progress:
                width = sampler.rounds[-1][1]
                self.progress(
                    f"[adaptive] n={count}: worst half-width "
                    f"{width:.4f} (target {target_half_width:.4f})"
                    + ("" if next_count is None else f" -> growing to {next_count}")
                )
            if next_count is None:
                return AdaptiveCampaign(
                    spec=current,
                    oracle=oracle,
                    estimates=estimates,
                    rounds=list(sampler.rounds),
                    target_half_width=target_half_width,
                    exhausted=sampler.exhausted,
                )

    def sweep(
        self,
        specs: Iterable[CampaignSpec],
        board: Optional[BoardModel] = None,
    ) -> List[CampaignResult]:
        """Run many specs, grading each distinct oracle exactly once.

        Specs sharing an oracle key (same circuit/testbench/faults —
        e.g. the three techniques of one Table-2 row, or several
        ``scan_chains`` settings) reuse one merged grading result, like
        the serial experiment harness shares its oracle.
        """
        graded: Dict[Tuple[str, str], Tuple[Scenario, FaultGradingResult]] = {}
        results = []
        for spec in specs:
            key = (spec.campaign_id, spec.engine)
            if key not in graded:
                graded[key] = self._graded(spec)
            scenario, oracle = graded[key]
            results.append(
                run_campaign(
                    scenario.netlist,
                    scenario.testbench,
                    spec.technique,
                    board=board or spec.board_model(),
                    faults=scenario.faults,
                    oracle=oracle,
                    scan_chains=spec.scan_chains,
                    engine=spec.engine,
                )
            )
        return results
