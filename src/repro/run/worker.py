"""Worker-side shard grading for the campaign runner.

Each pool worker receives (spec dict, cycle window) tasks. The scenario —
netlist, testbench, full fault list — is rebuilt from the spec once per
process and memoized here, so the PR-1 session caches
(:mod:`repro.sim.cache`: compiled netlist, golden trace, fused program)
are warm for every subsequent shard the worker grades. Workers return
plain ints/lists only; nothing simulator-side crosses the process
boundary.

The same functions run in-process when the runner is configured with a
single worker, so serial and pooled execution share one code path.
"""

from __future__ import annotations

import sys
import time
from array import array
from bisect import bisect_left
from typing import Dict, List, Optional, Tuple

from repro.run.spec import CampaignSpec, Scenario

#: per-process scenario memo: campaign id -> resolved scenario
_SCENARIOS: Dict[str, Scenario] = {}
#: companion memo: campaign id -> the faults' injection cycles (the
#: bisection key for window slicing, built once per scenario)
_CYCLES: Dict[str, List[int]] = {}
#: memo bound: a scenario pins its full fault list (34,400 objects for
#: b14), so long-lived processes sweeping many scenarios evict oldest-
#: first rather than growing without bound. Rebuilding an evicted
#: scenario is deterministic, so eviction only costs time.
MAX_CACHED_SCENARIOS = 8


def worker_init(path_entry: Optional[str]) -> None:
    """Pool initializer: make the repro package importable in children.

    With the default ``fork`` start method this is a no-op; under
    ``spawn`` the parent's ``sys.path`` manipulations (e.g. a
    ``PYTHONPATH=src`` checkout) are not inherited, so the parent passes
    its own package location along.
    """
    if path_entry and path_entry not in sys.path:
        sys.path.insert(0, path_entry)


def scenario_for(spec: CampaignSpec) -> Scenario:
    """Resolve (and memoize, per process) the spec's scenario."""
    key = spec.campaign_id
    scenario = _SCENARIOS.get(key)
    if scenario is None:
        while len(_SCENARIOS) >= MAX_CACHED_SCENARIOS:
            oldest = next(iter(_SCENARIOS))
            del _SCENARIOS[oldest]
            del _CYCLES[oldest]
        scenario = spec.scenario()
        _SCENARIOS[key] = scenario
        _CYCLES[key] = [fault.cycle for fault in scenario.faults]
    return scenario


def prewarm(spec: CampaignSpec) -> Scenario:
    """Materialize every grading artifact the spec's campaign needs.

    Beyond resolving the scenario, this compiles the netlist, runs the
    golden trace, lowers the fused program and builds the native kernel
    — populating the session caches *and*, for campaign-scale circuits,
    the on-disk artifact cache. The runner calls it once before fanning
    out: forked workers inherit the warm memos directly, spawned (or
    later-recycled) workers hit the disk artifacts instead of
    re-deriving everything per process.
    """
    scenario = scenario_for(spec)
    prewarm_scenario(scenario)
    return scenario


def prewarm_scenario(scenario: Scenario) -> None:
    """Warm the simulation caches for an already-resolved scenario.

    The scenario-level half of :func:`prewarm`, shared with the TCP
    worker daemon — which resolves its scenarios from wire artifacts,
    not from the circuit registry, but warms the same caches.
    """
    from repro.sim.backends._native import native_kernel
    from repro.sim.backends.fused import fused_program_for
    from repro.sim.cache import compiled_for, golden_for

    compiled = compiled_for(scenario.netlist)
    golden_for(compiled, scenario.testbench)
    fused_program_for(compiled)
    native_kernel()


def injection_cycles(spec: CampaignSpec) -> List[int]:
    """The (memoized) injection cycle of every fault, fault-list order."""
    scenario_for(spec)
    return _CYCLES[spec.campaign_id]


def clear_scenarios() -> None:
    """Drop the per-process scenario memo (tests use this)."""
    _SCENARIOS.clear()
    _CYCLES.clear()


def window_slice(
    cycles: List[int], start_cycle: int, end_cycle: int
) -> Tuple[int, int]:
    """Fault-list slice [lo, hi) covering one contiguous cycle window.

    ``cycles`` is the faults' injection cycles in fault-list order.
    Fault lists are cycle-major sorted (exhaustive lists by
    construction, sampled lists re-sorted by
    :func:`repro.faults.sampling.sample_fault_list`), so a cycle window
    is a contiguous slice and shard concatenation reproduces the serial
    fault order exactly.
    """
    return bisect_left(cycles, start_cycle), bisect_left(cycles, end_cycle)


def grade_window(
    spec_dict: Dict, index: int, start_cycle: int, end_cycle: int
) -> Dict:
    """Grade the faults of one cycle window; returns a plain record dict."""
    spec = CampaignSpec.from_dict(spec_dict)
    scenario = scenario_for(spec)
    return grade_scenario_window(
        scenario,
        injection_cycles(spec),
        index,
        start_cycle,
        end_cycle,
        engine=spec.engine,
    )


def grade_scenario_window(
    scenario: Scenario,
    cycles: List[int],
    index: int,
    start_cycle: int,
    end_cycle: int,
    engine: str,
) -> Dict:
    """Grade one cycle window of an already-resolved scenario.

    The shared core of pool-worker and TCP-daemon shard grading:
    ``cycles`` is the faults' injection cycles in fault-list order (the
    window-slicing key). Returns the plain record dict both the store
    and the wire protocol consume.
    """
    from repro.sim.parallel import grade_faults

    lo, hi = window_slice(cycles, start_cycle, end_cycle)
    window_faults = scenario.faults[lo:hi]
    started = time.perf_counter()
    if window_faults:
        result = grade_faults(
            scenario.netlist,
            scenario.testbench,
            window_faults,
            backend=engine,
        )
        # Outcomes cross the process (or network) boundary as packed
        # int32 bytes: one contiguous buffer pickles in microseconds
        # where a list of thousands of Python ints costs milliseconds
        # per shard — measurable against sub-100ms campaigns.
        fail = array("i", map(int, result.fail_cycles)).tobytes()
        vanish = array("i", map(int, result.vanish_cycles)).tobytes()
    else:  # a cycle window no sampled fault landed in
        fail, vanish = b"", b""
    return {
        "index": index,
        "start_cycle": start_cycle,
        "end_cycle": end_cycle,
        "num_faults": len(window_faults),
        "fail_cycles": fail,
        "vanish_cycles": vanish,
        "engine": engine,
        "elapsed_s": time.perf_counter() - started,
    }
