"""The ``python -m repro`` command line.

The subcommands replace the plumbing the example scripts used to carry:

* ``run``    — one campaign: build a spec, grade it sharded (resuming
  from ``runs/<campaign-id>/`` when present), print the paper-style
  summary and cycle breakdown. Sampled campaigns (``--sample`` /
  ``--ci-target``) additionally report per-class confidence intervals.
* ``sweep``  — circuits x techniques x engines; renders a Table-2-style
  table per circuit (with the paper's reference numbers for b14 at
  paper scale) from one shared oracle per circuit.
* ``report`` — the full paper reproduction (Tables 1-2, classification,
  speedup, Figure 1, optional crossover) for any registered circuit;
  ``--hardness`` renders the plain-vs-hardened classification table
  (``eval/hardness.py``) instead.
* ``harden`` — apply a :mod:`repro.hardening` transform (TMR / DWC /
  parity) to a circuit and report, or save, the protected netlist.
* ``optimize`` — the selective-hardening design-space explorer
  (:mod:`repro.optimize`): search flop subsets and mixed schemes under
  an area budget / target rate and print the seeded Pareto front of
  failure rate vs LUT/FF overhead (``--json`` for machines).
* ``sampling-error`` — sampled vs exhaustive classification rates with
  interval-coverage checks (``eval/sampling_error.py``).
* ``circuits`` — every registered + corpus circuit with its size
  statistics (``--json`` for machines).
* ``bench``  — wall-clock of the sharded runner at several worker
  counts; the orchestration-overhead row of the perf trajectory.
* ``worker`` — a shard-grading daemon (``--listen HOST:PORT``) that
  ``run``/``sweep`` on another host dispatch to via ``--hosts``.
* ``workers ping`` — fleet liveness, cache warmth and kernel flags for
  a ``--hosts`` list (``--json`` for machines; exit 1 on any down host).
* ``serve`` — the long-running campaign service: HTTP+JSON submission
  API, bounded queue, SQLite results index and HTML dashboard
  (``docs/service.md``).
* ``db``     — results-database maintenance: ``db import`` indexes the
  JSONL stores into SQLite losslessly, ``db info`` prints row counts.
* ``query``  — cross-campaign aggregates from the SQLite index
  (per-flop failure rates, per-circuit class breakdowns).

Every subcommand accepts the spec fields as flags — including
``--fault-model`` (seu, mbu:<k>, stuck_at_0/1, intermittent[:p:d]) and
``--sampling`` (uniform / stratified) — so any campaign the library can
describe can be launched, resumed and reported from the shell::

    python -m repro run --circuit b04 --technique time_multiplexed
    python -m repro run --circuit b04 --fault-model stuck_at_1 --sample 500
    python -m repro run --circuit hardened:tmr:b04 --sample 500
    python -m repro report --hardness --circuit b04
    python -m repro harden --circuit b04 --scheme tmr -o b04_tmr.bnet
    python -m repro optimize --circuit b04 --max-ff-overhead 100
    python -m repro run --circuit b04 --hardening tmr --hardening-flops 'ff$a+ff$b'
    python -m repro run --circuit b14 --sample 500 --ci-target 0.03
    python -m repro sweep --circuits b14 --workers 4
    python -m repro report --circuit b09 --no-crossover
    python -m repro sampling-error --circuits b04 b06
    python -m repro bench --workers 1 4
    python -m repro worker --listen 0.0.0.0:7400        # on each host
    python -m repro run --circuit b14 --hosts a:7400,b:7400
    python -m repro workers ping --hosts a:7400,b:7400 --json
    python -m repro serve --listen 127.0.0.1:8780
    python -m repro db import && python -m repro query flops --circuit b14
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List, Optional

from repro.emu.board import BOARDS
from repro.emu.instrument import TECHNIQUES
from repro.errors import ReproError
from repro.hardening import available_schemes
from repro.faults.classify import FaultClass
from repro.faults.models import DEFAULT_FAULT_MODEL, available_models
from repro.faults.sampling import (
    CI_METHODS,
    SAMPLING_METHODS,
    SampleEstimate,
)
from repro.run.runner import CampaignRunner, default_pool_workers
from repro.run.spec import TESTBENCH_KINDS, CampaignSpec
from repro.sim.backends import available_engines
from repro.sim.parallel import DEFAULT_BACKEND

DEFAULT_STORE_ROOT = "runs"


# ----------------------------------------------------------------------
# argument plumbing
# ----------------------------------------------------------------------
def _add_spec_arguments(parser: argparse.ArgumentParser, single: bool) -> None:
    """Flags mapping 1:1 onto CampaignSpec fields.

    ``single`` selects one-campaign form (``--circuit``/``--technique``)
    vs sweep form (``--circuits``/``--techniques``/``--engines``).
    """
    if single:
        parser.add_argument(
            "--circuit",
            default="b14",
            help="registered circuit name (also corpus:<name> or "
            "file:<path> for imported netlists)",
        )
        parser.add_argument(
            "--technique",
            default="time_multiplexed",
            choices=TECHNIQUES,
            help="autonomous emulation technique",
        )
        parser.add_argument(
            "--engine",
            default=DEFAULT_BACKEND,
            choices=sorted(available_engines()),
            help="fault-grading backend",
        )
    else:
        parser.add_argument(
            "--circuits",
            nargs="+",
            default=["b14"],
            help="registered circuit names to sweep",
        )
        parser.add_argument(
            "--techniques",
            nargs="+",
            default=list(TECHNIQUES),
            choices=TECHNIQUES,
            help="techniques to sweep",
        )
        parser.add_argument(
            "--engines",
            nargs="+",
            default=[DEFAULT_BACKEND],
            choices=sorted(available_engines()),
            help="grading backends to sweep",
        )
    parser.add_argument(
        "--cycles",
        type=int,
        default=None,
        help="testbench length (default: the circuit's paper/default length)",
    )
    parser.add_argument(
        "--testbench",
        default="auto",
        choices=TESTBENCH_KINDS,
        help="stimulus generator",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--fault-model",
        default=DEFAULT_FAULT_MODEL,
        help="fault model to inject: " + ", ".join(available_models()),
    )
    parser.add_argument(
        "--sample",
        type=int,
        default=None,
        help="grade a deterministic fault sample instead of the complete set",
    )
    parser.add_argument(
        "--sampling",
        default="uniform",
        choices=SAMPLING_METHODS,
        help="how --sample draws faults (stratified = proportional per flop)",
    )
    parser.add_argument("--scan-chains", type=int, default=1)
    parser.add_argument(
        "--board", default="rc1000", choices=sorted(BOARDS)
    )
    parser.add_argument(
        "--hardening",
        default=None,
        choices=available_schemes(),
        help="protect the circuit with a hardening scheme before grading "
        "(equivalent to naming the circuit hardened:<scheme>:<name>)",
    )
    parser.add_argument(
        "--hardening-flops",
        default=None,
        metavar="FLOP[+FLOP...]",
        help="restrict --hardening to a flop subset (selective hardening; "
        "equivalent to the hardened:<scheme>@<flop>+<flop>:<name> spelling)",
    )


def _add_runner_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="grading processes (>=2 enables the process pool)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="shard count (default: 4 per worker)",
    )
    parser.add_argument(
        "--store",
        default=DEFAULT_STORE_ROOT,
        help=f"results-store root (default: {DEFAULT_STORE_ROOT}/)",
    )
    parser.add_argument(
        "--no-store",
        action="store_true",
        help="do not persist shards (disables resume)",
    )
    parser.add_argument(
        "--no-resume",
        action="store_true",
        help="ignore completed shards in the store and regrade",
    )
    parser.add_argument(
        "--transport",
        default=None,
        help="shard transport: serial, local, or tcp (default: tcp when "
        "--hosts is given, local when --workers >= 2, else serial)",
    )
    parser.add_argument(
        "--hosts",
        default=None,
        metavar="HOST:PORT,...",
        help="remote `repro worker` daemons to grade on (enables the tcp "
        "transport)",
    )
    parser.add_argument(
        "--shard-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="re-queue a shard whose TCP worker holds it longer than this "
        "(default: trust heartbeats alone)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-shard progress"
    )


def _runner_from(args: argparse.Namespace) -> CampaignRunner:
    return CampaignRunner(
        workers=args.workers,
        shards=args.shards,
        store_root=None if args.no_store else args.store,
        resume=not args.no_resume,
        progress=None if args.quiet else lambda line: print(line, flush=True),
        transport=getattr(args, "transport", None),
        hosts=getattr(args, "hosts", None),
        shard_timeout=getattr(args, "shard_timeout", None),
    )


def _spec_from(args: argparse.Namespace) -> CampaignSpec:
    return CampaignSpec(
        circuit=args.circuit,
        technique=args.technique,
        board=args.board,
        engine=args.engine,
        num_cycles=args.cycles,
        testbench=args.testbench,
        seed=args.seed,
        sample=args.sample,
        scan_chains=args.scan_chains,
        fault_model=args.fault_model,
        sampling=args.sampling,
        hardening=args.hardening,
        hardening_flops=args.hardening_flops,
    )


def _print_estimates(
    estimates, population: int, spec: CampaignSpec, args
) -> None:
    """Per-class confidence intervals of a sampled campaign."""
    trials = next(iter(estimates.values())).trials
    print(
        f"  sampled {trials}/{population} {spec.fault_model} faults "
        f"({spec.sampling}, {args.ci_method} @"
        f"{int(args.confidence * 100)}%):"
    )
    for fault_class in FaultClass:
        print(f"    {fault_class.value:>8}: {estimates[fault_class].describe()}")


# ----------------------------------------------------------------------
# subcommands
# ----------------------------------------------------------------------
def _cmd_run(args: argparse.Namespace) -> int:
    spec = _spec_from(args)
    runner = _runner_from(args)
    started = time.perf_counter()
    estimates = None
    adaptive_rounds = None
    if args.ci_target is not None:
        adaptive = runner.run_adaptive(
            spec,
            target_half_width=args.ci_target,
            confidence=args.confidence,
            ci_method=args.ci_method,
        )
        spec = adaptive.spec
        estimates = adaptive.estimates
        adaptive_rounds = adaptive.rounds
        oracle = adaptive.oracle
        result = runner.run(spec, oracle=oracle)
    else:
        oracle = runner.grade(spec)
        result = runner.run(spec, oracle=oracle)
    elapsed = time.perf_counter() - started
    breakdown = result.breakdown
    print(result.summary())
    print(
        f"  cycles: prologue={breakdown.prologue:,} setup={breakdown.setup:,} "
        f"run={breakdown.run:,} readback={breakdown.readback:,}"
        + "".join(
            f" {key}={value:,}" for key, value in breakdown.extra.items()
        )
    )
    population = None
    if spec.sample is not None or estimates is not None:
        from repro.run import worker

        population = spec.population_size(worker.scenario_for(spec).netlist)
        if estimates is None:
            estimates = {
                fault_class: SampleEstimate(
                    successes=count,
                    trials=result.num_faults,
                    confidence=args.confidence,
                    method=args.ci_method,
                )
                for fault_class, count in result.dictionary.counts().items()
            }
        _print_estimates(estimates, population, spec, args)
        if adaptive_rounds is not None:
            trail = " -> ".join(
                f"{count} ({width:.4f})" for count, width in adaptive_rounds
            )
            print(
                f"  adaptive: target half-width {args.ci_target:.4f}, "
                f"rounds {trail}"
            )
    if not args.no_store:
        print(f"  store: {os.path.join(args.store, spec.campaign_id)}")
    print(f"  wall clock: {elapsed:.3f}s ({args.workers} worker(s))")
    if args.json:
        payload = {
            "spec": spec.to_dict(),
            "campaign_id": spec.campaign_id,
            "transport": runner.transport_name,
            "oracle_digest": oracle.outcome_digest(),
            "total_cycles": result.total_cycles,
            "emulation_ms": result.timing.milliseconds,
            "us_per_fault": result.timing.us_per_fault,
            "classification": {
                verdict.value: count
                for verdict, count in result.dictionary.counts().items()
            },
            "wall_seconds": round(elapsed, 4),
        }
        if estimates is not None:
            payload["population"] = population
            payload["estimates"] = {
                fault_class.value: {
                    "proportion": round(estimate.proportion, 6),
                    "interval": [round(v, 6) for v in estimate.interval],
                    "confidence": estimate.confidence,
                    "method": estimate.method,
                }
                for fault_class, estimate in estimates.items()
            }
        if adaptive_rounds is not None:
            payload["adaptive_rounds"] = [
                [count, round(width, 6)] for count, width in adaptive_rounds
            ]
        print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.eval.paper import PAPER_TABLE2
    from repro.util.tables import Table

    if len(set(args.engines)) > 1 and not args.no_store:
        # The store is keyed by the oracle (engines are bit-identical),
        # so a stored campaign would satisfy every engine without the
        # later ones ever running; grade fresh so each engine really
        # does the work it is labelled with.
        print("multi-engine sweep: store disabled so every engine grades")
        args.no_store = True
    runner = _runner_from(args)
    for circuit in args.circuits:
        specs = CampaignSpec.matrix(
            circuits=[circuit],
            techniques=args.techniques,
            engines=args.engines,
            board=args.board,
            num_cycles=args.cycles,
            testbench=args.testbench,
            seed=args.seed,
            sample=args.sample,
            scan_chains=args.scan_chains,
            fault_model=args.fault_model,
            sampling=args.sampling,
            hardening=args.hardening,
            hardening_flops=args.hardening_flops,
        )
        results = runner.sweep(specs)
        table = Table(
            ["technique", "engine", "emulation time (ms)",
             "avg speed (us/fault)", "cycles/fault"],
            title=(
                f"Sweep — {specs[0].effective_circuit} "
                f"({results[0].num_faults} faults, "
                f"{results[0].num_cycles} cycles)"
            ),
        )
        for spec, result in zip(specs, results):
            table.add_row(
                [
                    spec.technique,
                    spec.engine,
                    f"{result.timing.milliseconds:.2f}",
                    f"{result.timing.us_per_fault:.2f}",
                    f"{result.timing.cycles_per_fault:.1f}",
                ]
            )
        print(table.render())
        at_paper_scale = (
            circuit == "b14"
            and args.cycles in (None, 160)
            and args.sample is None
            and args.fault_model == "seu"
            and args.testbench in ("auto", "program")
            and args.seed == 0
        )
        if at_paper_scale:
            print("\npaper reference (Table 2):")
            for technique in args.techniques:
                ref = PAPER_TABLE2[technique]
                print(
                    f"  {technique}: {ref['emulation_ms']:.2f} ms, "
                    f"{ref['us_per_fault']:.2f} us/fault"
                )
        print()
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    if args.hardness:
        return _cmd_report_hardness(args)
    from repro.eval.experiments import ExperimentContext, run_all_experiments

    context = ExperimentContext(
        circuit=args.circuit,
        seed=args.seed,
        engine=args.engine,
        include_crossover=not args.no_crossover,
        workers=args.workers,
        shards=args.shards,
        store_root=None if args.no_store else args.store,
        resume=not args.no_resume,
        progress=None if args.quiet else lambda line: print(line, flush=True),
        num_cycles=args.cycles,
    )
    report = run_all_experiments(context)
    print(report.render())
    if report.crossover is not None:
        print("\npaper claim checks:")
        for claim, holds in report.crossover.paper_claims_hold().items():
            print(f"  {claim}: {'HOLDS' if holds else 'VIOLATED'}")
    fastest = report.table2.fastest()
    print(
        f"  fastest technique on {args.circuit}: {fastest} "
        f"({'matches paper' if fastest == 'time_multiplexed' else 'differs!'})"
    )
    return 0


def _cmd_report_hardness(args: argparse.Namespace) -> int:
    from repro.eval.hardness import (
        DEFAULT_FAULT_MODELS,
        DEFAULT_SCHEMES,
        run_hardness_experiment,
    )

    runner = _runner_from(args)
    report = run_hardness_experiment(
        args.circuit,
        schemes=args.schemes or DEFAULT_SCHEMES,
        fault_models=args.fault_models or DEFAULT_FAULT_MODELS,
        engine=args.engine,
        seed=args.seed,
        num_cycles=args.cycles,
        sample=args.sample,
        runner=runner,
    )
    print(report.render())
    return 0


def _cmd_harden(args: argparse.Namespace) -> int:
    from repro.circuits.registry import build_circuit
    from repro.hardening import apply_hardening
    from repro.netlist.textio import dumps_netlist
    from repro.synth.area import area_of

    plain = build_circuit(args.circuit)
    hardened = apply_hardening(args.scheme, plain, flops=args.flops)
    plain_area, hardened_area = area_of(plain), area_of(hardened)
    overhead = hardened_area.overhead_vs(plain_area)

    def _pct_text(pct: Optional[float]) -> str:
        # None = undefined overhead (zero-resource baseline); see area._pct
        return "n/a" if pct is None else f"{pct:+.0f}%"

    if args.output is not None:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(dumps_netlist(hardened))
    if args.json:
        print(
            json.dumps(
                {
                    "circuit": args.circuit,
                    "scheme": args.scheme,
                    "hardened_name": hardened.name,
                    "flops": {"plain": plain.num_ffs, "hardened": hardened.num_ffs},
                    "gates": {"plain": plain.num_gates, "hardened": hardened.num_gates},
                    "luts": {"plain": plain_area.luts, "hardened": hardened_area.luts},
                    "lut_overhead_pct": (
                        None
                        if overhead.lut_overhead_pct is None
                        else round(overhead.lut_overhead_pct, 2)
                    ),
                    "ff_overhead_pct": (
                        None
                        if overhead.ff_overhead_pct is None
                        else round(overhead.ff_overhead_pct, 2)
                    ),
                    "output": args.output,
                },
                indent=2,
                sort_keys=True,
            )
        )
        return 0
    protected = "all flops" if args.flops is None else f"{len(args.flops)} flops"
    print(
        f"{args.scheme} on {args.circuit} ({protected}): "
        f"{plain.num_ffs} -> {hardened.num_ffs} FFs, "
        f"{plain.num_gates} -> {hardened.num_gates} gates, "
        f"{plain_area.luts} -> {hardened_area.luts} LUTs "
        f"({_pct_text(overhead.lut_overhead_pct)} LUTs, "
        f"{_pct_text(overhead.ff_overhead_pct)} FFs)"
    )
    if args.output is not None:
        print(f"wrote {args.output}")
    else:
        print("(pass -o <path.bnet> to save the hardened netlist)")
    return 0


def _pct_value(text: str) -> float:
    """Budget flag value: ``50``, ``50%`` and ``50.5%`` all mean 50(.5)."""
    try:
        return float(text.rstrip("%"))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a percentage (e.g. 50 or 50%), got {text!r}"
        ) from None


def _cmd_optimize(args: argparse.Namespace) -> int:
    from repro.optimize import Evaluator, SearchConfig, explore, pareto_report

    sample = args.sample
    if sample is None and args.adaptive_half_width is None:
        # Exhaustive grading of every candidate is pointlessly slow on
        # anything bigger than the toy circuits; default to the sampled
        # evaluation the acceptance bar (and CI smoke) uses.
        sample = 200
    base = CampaignSpec(
        circuit=args.circuit,
        technique="time_multiplexed",  # does not affect grading outcomes
        engine=args.engine,
        num_cycles=args.cycles,
        testbench=args.testbench,
        seed=args.seed,
        sample=sample,
        fault_model=args.fault_model,
        sampling=args.sampling,
    )
    config = SearchConfig(
        schemes=tuple(args.schemes),
        mixed_scheme=(
            None if args.mixed_scheme == "none" else args.mixed_scheme
        ),
        max_ff_overhead=args.max_ff_overhead,
        max_lut_overhead=args.max_lut_overhead,
        target_rate=args.target_rate,
        sa_iterations=args.sa_iterations,
        seed=args.seed,
    )
    if args.json:
        # progress lines would interleave with the JSON document
        args.quiet = True
    runner = _runner_from(args)
    evaluator = Evaluator(
        base, runner, adaptive_half_width=args.adaptive_half_width
    )
    result = explore(evaluator, config)
    report = pareto_report(base, result)
    if args.json:
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
        return 0
    print(report.render())
    return 0


def _cmd_sampling_error(args: argparse.Namespace) -> int:
    from repro.eval.sampling_error import sampling_error_report

    runner = _runner_from(args)
    report = sampling_error_report(
        circuits=args.circuits,
        samples=args.samples,
        fault_model=args.fault_model,
        sampling=args.sampling,
        seed=args.seed,
        num_cycles=args.cycles,
        confidence=args.confidence,
        ci_method=args.ci_method,
        runner=runner,
    )
    print(report.render())
    return 0


def _cmd_circuits(args: argparse.Namespace) -> int:
    from repro.circuits.registry import available_circuits, build_circuit
    from repro.frontend.corpus import corpus_names
    from repro.netlist.stats import netlist_stats
    from repro.util.tables import Table

    names = list(available_circuits())
    names += [f"corpus:{name}" for name in corpus_names()]
    rows = []
    for name in names:
        stats = netlist_stats(build_circuit(name))
        rows.append(
            {
                "circuit": name,
                "inputs": stats.num_inputs,
                "outputs": stats.num_outputs,
                "gates": stats.num_gates,
                "flops": stats.num_ffs,
                "depth": stats.logic_depth,
                "max_fanout": stats.max_fanout,
            }
        )
    if args.json:
        print(json.dumps(rows, indent=2, sort_keys=True))
        return 0
    table = Table(
        ["circuit", "inputs", "outputs", "gates", "flops", "depth",
         "max fanout"],
        title="Registered + corpus circuits",
    )
    for row in rows:
        table.add_row(
            [row["circuit"], row["inputs"], row["outputs"], row["gates"],
             row["flops"], row["depth"], row["max_fanout"]]
        )
    print(table.render())
    print(
        "\nparameterized families: proc:<flops>, corpus:<name>, "
        "file:<path> (.bench / .blif / .bnet), hardened:<scheme>:<circuit> "
        "(schemes: " + ", ".join(available_schemes()) + ")"
    )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.run.runner import SHARDS_PER_WORKER
    from repro.util.tables import Table

    spec = _spec_from(args)
    if args.quick and args.cycles is None:
        spec = CampaignSpec.from_dict({**spec.to_dict(), "num_cycles": 48})
    # Every worker count grades the same shard plan (the workers=1
    # default). With the per-worker shard policy, workers=2 would grade
    # twice as many shards as workers=1 and the table would conflate
    # per-shard/IPC overhead with process scaling — the very thing it
    # exists to isolate.
    shards = args.shards or SHARDS_PER_WORKER
    rows = []
    baseline = None
    for workers in args.workers_list:
        with CampaignRunner(workers=workers, shards=shards) as runner:
            # First pass is warmup — it pays pool creation, scenario
            # builds, compiles and cache population — and is reported
            # separately, never mixed into the steady-state number.
            started = time.perf_counter()
            oracle = runner.grade(spec)
            warmup = time.perf_counter() - started
            best = float("inf")
            for _ in range(max(1, args.repeats)):
                started = time.perf_counter()
                oracle = runner.grade(spec)
                best = min(best, time.perf_counter() - started)
        if baseline is None:
            baseline = best
        rows.append(
            {
                "workers": workers,
                "warmup_seconds": round(warmup, 4),
                "seconds": round(best, 4),
                "us_per_fault": round(best * 1e6 / oracle.num_faults, 3),
                "speedup_vs_serial": round(baseline / best, 2),
            }
        )
    table = Table(
        ["workers", "warmup (s)", "steady (s)", "us/fault",
         "speedup vs workers=1"],
        title=(
            f"Sharded runner — {spec.effective_circuit}, "
            f"{spec.resolved_cycles()} cycles, {shards} shards"
        ),
    )
    for row in rows:
        table.add_row(
            [
                row["workers"],
                f"{row['warmup_seconds']:.3f}",
                f"{row['seconds']:.3f}",
                f"{row['us_per_fault']:.3f}",
                f"{row['speedup_vs_serial']:.2f}x",
            ]
        )
    print(table.render())
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(
                {"spec": spec.to_dict(), "shards": shards, "rows": rows},
                handle,
                indent=2,
                sort_keys=True,
            )
            handle.write("\n")
        print(f"wrote {args.json}")
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.run.transport.daemon import WorkerDaemon
    from repro.run.transport.wire import parse_host_port

    host, port = parse_host_port(args.listen)
    daemon = WorkerDaemon(host=host, port=port, quiet=args.quiet)
    try:
        daemon.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        daemon.shutdown()
    return 0


def _cmd_workers_ping(args: argparse.Namespace) -> int:
    from repro.run.transport.tcp import ping_hosts
    from repro.util.tables import Table

    statuses = ping_hosts(args.hosts, timeout=args.timeout)
    if args.json:
        print(json.dumps(statuses, indent=2, sort_keys=True))
        return 0 if all(status["alive"] for status in statuses) else 1
    table = Table(
        ["host", "state", "rtt (ms)", "kernel", "campaigns", "digest h/m",
         "shards", "uptime (s)"],
        title=f"Worker fleet ({len(statuses)} host(s))",
    )
    for status in statuses:
        if not status["alive"]:
            table.add_row(
                [status["host"], f"DOWN ({status['error']})",
                 "-", "-", "-", "-", "-", "-"]
            )
            continue
        kernel = status.get("kernel", {})
        kernel_text = (
            ("native" if kernel.get("native") else "python")
            + f" x{kernel.get('threads', 1)}"
        )
        table.add_row(
            [
                status["host"],
                "up",
                f"{status['rtt_ms']:.2f}",
                kernel_text,
                len(status.get("campaigns_cached", [])),
                f"{status.get('digest_hits', 0)}/"
                f"{status.get('digest_misses', 0)}",
                status.get("shards_graded", 0),
                f"{status.get('uptime_s', 0):.0f}",
            ]
        )
    print(table.render())
    down = [status["host"] for status in statuses if not status["alive"]]
    if down:
        print(f"\n{len(down)} worker(s) unreachable: {', '.join(down)}")
        return 1
    return 0


def _default_db_path(args: argparse.Namespace) -> str:
    from repro.service.db import DEFAULT_DB_FILENAME

    if getattr(args, "db", None):
        return args.db
    return os.path.join(args.store, DEFAULT_DB_FILENAME)


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.run.transport.wire import parse_host_port
    from repro.service.app import CampaignService

    if args.no_store:
        print(
            "error: the service requires a results store (--no-store is "
            "incompatible with serve); the JSONL store is the durability "
            "layer the database indexes",
            file=sys.stderr,
        )
        return 1
    host, port = parse_host_port(args.listen)
    runner = CampaignRunner(
        workers=args.workers,
        shards=args.shards,
        store_root=args.store,
        resume=not args.no_resume,
        progress=None if args.quiet else lambda line: print(line, flush=True),
        transport=args.transport,
        hosts=args.hosts,
        shard_timeout=args.shard_timeout,
    )
    db_path = _default_db_path(args)
    service = CampaignService(
        db_path,
        runner,
        host=host,
        port=port,
        queue_limit=args.queue_limit,
        verbose=not args.quiet,
    )
    print(
        f"repro serve listening on {service.host}:{service.port}", flush=True
    )
    print(
        f"  store: {args.store}/  db: {db_path}  "
        f"transport: {runner.transport_name}",
        flush=True,
    )
    try:
        service.serve_forever()
    finally:
        runner.close()
    return 0


def _cmd_db_import(args: argparse.Namespace) -> int:
    from repro.service.db import ResultsDB

    with ResultsDB(_default_db_path(args)) as db:
        results = db.import_root(args.store)
        counts = db.counts()
    if args.json:
        print(json.dumps({"stores": results, "counts": counts}, indent=2))
        return 0
    if not results:
        print(f"no campaign stores under {args.store}/")
        return 0
    for result in results:
        if result["action"] == "imported":
            print(
                f"  imported {result['campaign_id']}: "
                f"{result['faults']} faults in {result['shards']} shards"
            )
        elif result["action"] == "exists":
            print(f"  skipped  {result['campaign_id']}: {result['reason']}")
        else:
            print(f"  refused  {result['campaign_id']}: {result['reason']}")
    print(
        f"database {_default_db_path(args)}: "
        f"{counts['campaigns']} campaigns, {counts['fault_outcomes']:,} "
        "fault outcomes"
    )
    return 0


def _cmd_db_info(args: argparse.Namespace) -> int:
    from repro.service.db import SCHEMA_VERSION, ResultsDB

    path = _default_db_path(args)
    with ResultsDB(path) as db:
        counts = db.counts()
    payload = {
        "path": path,
        "schema_version": SCHEMA_VERSION,
        "counts": counts,
    }
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"{path}: schema v{SCHEMA_VERSION}")
    for table, count in counts.items():
        print(f"  {table}: {count:,}")
    return 0


def _cmd_query_flops(args: argparse.Namespace) -> int:
    from repro.service.db import ResultsDB
    from repro.util.tables import Table

    with ResultsDB(_default_db_path(args)) as db:
        rows = db.flop_failure_rates(
            circuit=args.circuit,
            fault_model=args.fault_model,
            limit=args.limit,
            mode=args.mode,
        )
    if args.json:
        print(json.dumps(rows, indent=2))
        return 0
    scope = f"circuit {args.circuit}" if args.circuit else "all circuits"
    if args.mode is not None:
        scope += f", {args.mode} campaigns only"
    table = Table(
        ["flop", "campaigns", "faults", "failures", "failure rate"],
        title=f"Per-flop failure rate across campaigns ({scope})",
    )
    mixed = False
    for row in rows:
        flop = row["flop"]
        if row["mixed_pool"]:
            mixed = True
            flop += " *"
        table.add_row(
            [flop, row["campaigns"], row["faults"], row["failures"],
             f"{row['failure_rate']:.4f}"]
        )
    print(table.render())
    if mixed:
        print(
            "  * pools sampled and exhaustive campaigns with equal per-fault "
            "weight; scope with --mode sampled|exhaustive for unbiased rates"
        )
    return 0


def _cmd_query_classes(args: argparse.Namespace) -> int:
    from repro.service.db import ResultsDB
    from repro.util.tables import Table

    with ResultsDB(_default_db_path(args)) as db:
        rows = db.class_breakdown(group=args.group)
    if args.json:
        print(json.dumps(rows, indent=2))
        return 0
    table = Table(
        [args.group, "campaigns", "faults", "failures", "latent", "silent",
         "failure rate"],
        title=f"Outcome classes by {args.group}, across campaigns",
    )
    for row in rows:
        table.add_row(
            [row["grp"], row["campaigns"], row["faults"], row["failures"],
             row["latent"], row["silent"], f"{row['failure_rate']:.4f}"]
        )
    print(table.render())
    return 0


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Campaign orchestration for the autonomous-emulation "
        "reproduction.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run_parser = commands.add_parser(
        "run", help="run one campaign (sharded, resumable)"
    )
    _add_spec_arguments(run_parser, single=True)
    _add_runner_arguments(run_parser)
    run_parser.add_argument(
        "--ci-target",
        type=float,
        default=None,
        metavar="HALF_WIDTH",
        help="adaptive sampling: grow the sample until every class "
        "interval's half-width is at most this (e.g. 0.03)",
    )
    run_parser.add_argument(
        "--ci-method",
        default="wilson",
        choices=CI_METHODS,
        help="confidence-interval construction for sampled campaigns",
    )
    run_parser.add_argument(
        "--confidence",
        type=float,
        default=0.95,
        help="confidence level for sampled-campaign intervals",
    )
    run_parser.add_argument(
        "--json", action="store_true", help="also print a JSON record"
    )
    run_parser.set_defaults(func=_cmd_run)

    sweep_parser = commands.add_parser(
        "sweep", help="sweep circuits x techniques x engines"
    )
    _add_spec_arguments(sweep_parser, single=False)
    _add_runner_arguments(sweep_parser)
    # sweeps default to the sharded pool (run stays serial by default)
    sweep_parser.set_defaults(
        func=_cmd_sweep, workers=default_pool_workers()
    )

    report_parser = commands.add_parser(
        "report",
        help="full paper reproduction for one circuit (--hardness: "
        "plain-vs-hardened classification table instead)",
    )
    report_parser.add_argument("--circuit", default="b14")
    report_parser.add_argument(
        "--engine", default=DEFAULT_BACKEND,
        choices=sorted(available_engines()),
    )
    report_parser.add_argument("--cycles", type=int, default=None)
    report_parser.add_argument("--seed", type=int, default=0)
    report_parser.add_argument("--no-crossover", action="store_true")
    report_parser.add_argument(
        "--hardness",
        action="store_true",
        help="render the hardness-evaluation report: per-fault-model "
        "classification rates plain vs hardened, plus area overhead",
    )
    report_parser.add_argument(
        "--schemes",
        nargs="+",
        default=None,
        choices=available_schemes(),
        help="hardening schemes the --hardness report compares",
    )
    report_parser.add_argument(
        "--fault-models",
        nargs="+",
        default=None,
        help="fault models the --hardness report grades "
        "(default: seu, mbu:2, stuck_at_1)",
    )
    report_parser.add_argument(
        "--sample",
        type=int,
        default=None,
        help="sample size per --hardness campaign (default: exhaustive)",
    )
    _add_runner_arguments(report_parser)
    report_parser.set_defaults(func=_cmd_report)

    harden_parser = commands.add_parser(
        "harden",
        help="apply a hardening transform and report (or save) the result",
    )
    harden_parser.add_argument(
        "--circuit", default="b04",
        help="registered circuit name (also corpus:<name>, file:<path>)",
    )
    harden_parser.add_argument(
        "--scheme", required=True, choices=available_schemes(),
        help="hardening transform to apply",
    )
    harden_parser.add_argument(
        "--flops", nargs="+", default=None,
        help="flip-flop names to protect (default: all)",
    )
    harden_parser.add_argument(
        "-o", "--output", default=None,
        help="write the hardened netlist to this .bnet file",
    )
    harden_parser.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    harden_parser.set_defaults(func=_cmd_harden)

    optimize_parser = commands.add_parser(
        "optimize",
        help="search flop subsets / mixed schemes for the best "
        "protection-vs-area trade-off (Pareto front)",
    )
    optimize_parser.add_argument(
        "--circuit", default="b04",
        help="plain circuit to protect (also corpus:<name>, file:<path>)",
    )
    optimize_parser.add_argument(
        "--engine",
        default=DEFAULT_BACKEND,
        choices=sorted(available_engines()),
        help="fault-grading backend",
    )
    optimize_parser.add_argument("--cycles", type=int, default=None)
    optimize_parser.add_argument(
        "--testbench", default="auto", choices=TESTBENCH_KINDS
    )
    optimize_parser.add_argument("--seed", type=int, default=0)
    optimize_parser.add_argument(
        "--fault-model", default=DEFAULT_FAULT_MODEL,
        help="fault model to inject: " + ", ".join(available_models()),
    )
    optimize_parser.add_argument(
        "--sample", type=int, default=None,
        help="faults graded per candidate point (default: 200; the "
        "ranking campaign always grades stratified)",
    )
    optimize_parser.add_argument(
        "--sampling", default="uniform", choices=SAMPLING_METHODS,
        help="how candidate-point campaigns draw their sample",
    )
    optimize_parser.add_argument(
        "--adaptive-half-width", type=float, default=None, metavar="W",
        help="grade each point adaptively until the failure-rate 95%% "
        "interval half-width reaches W (e.g. 0.03) instead of one "
        "fixed-size sample",
    )
    optimize_parser.add_argument(
        "--schemes", nargs="+", default=["tmr"],
        choices=available_schemes(),
        help="masking scheme(s) searched over flop subsets",
    )
    optimize_parser.add_argument(
        "--mixed-scheme", default="parity",
        choices=[*available_schemes(), "none"],
        help="detection scheme layered under the masking prefix in mixed "
        "points (none disables mixed stacks)",
    )
    optimize_parser.add_argument(
        "--max-ff-overhead", "--budget-ffs", type=_pct_value, default=None,
        metavar="PCT",
        help="FF-overhead budget vs the plain circuit (50 or 50%%)",
    )
    optimize_parser.add_argument(
        "--max-lut-overhead", "--budget-luts", type=_pct_value, default=None,
        metavar="PCT",
        help="LUT-overhead budget vs the plain circuit",
    )
    optimize_parser.add_argument(
        "--target-rate", type=_pct_value, default=None, metavar="PCT",
        help="pick the cheapest point at or below this failure rate "
        "instead of the lowest-rate point in budget",
    )
    optimize_parser.add_argument(
        "--sa-iterations", type=int, default=40,
        help="simulated-annealing refinement steps (0 disables)",
    )
    optimize_parser.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    _add_runner_arguments(optimize_parser)
    optimize_parser.set_defaults(func=_cmd_optimize)

    sampling_parser = commands.add_parser(
        "sampling-error",
        help="table: sampled vs exhaustive classification rates",
    )
    sampling_parser.add_argument(
        "--circuits",
        nargs="+",
        default=["b04", "b06", "b14"],
        help="registered circuits to compare on",
    )
    sampling_parser.add_argument(
        "--samples",
        type=int,
        nargs="+",
        default=[200, 500, 1000],
        help="sample sizes to grade against the exhaustive campaign",
    )
    sampling_parser.add_argument(
        "--fault-model", default=DEFAULT_FAULT_MODEL,
        help="fault model to inject",
    )
    sampling_parser.add_argument(
        "--sampling", default="uniform", choices=SAMPLING_METHODS
    )
    sampling_parser.add_argument("--cycles", type=int, default=None)
    sampling_parser.add_argument("--seed", type=int, default=0)
    sampling_parser.add_argument(
        "--ci-method", default="wilson", choices=CI_METHODS
    )
    sampling_parser.add_argument("--confidence", type=float, default=0.95)
    _add_runner_arguments(sampling_parser)
    sampling_parser.set_defaults(func=_cmd_sampling_error)

    circuits_parser = commands.add_parser(
        "circuits",
        help="list registered + corpus circuits with size statistics",
    )
    circuits_parser.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    circuits_parser.set_defaults(func=_cmd_circuits)

    bench_parser = commands.add_parser(
        "bench", help="time the sharded runner at several worker counts"
    )
    _add_spec_arguments(bench_parser, single=True)
    bench_parser.add_argument(
        "--workers",
        dest="workers_list",
        type=int,
        nargs="+",
        default=[1, default_pool_workers()],
        help="worker counts to time",
    )
    bench_parser.add_argument("--shards", type=int, default=None)
    bench_parser.add_argument("--repeats", type=int, default=2)
    bench_parser.add_argument(
        "--quick", action="store_true", help="shrink the campaign for CI"
    )
    bench_parser.add_argument("--json", default=None, help="JSON output path")
    bench_parser.set_defaults(func=_cmd_bench)

    worker_parser = commands.add_parser(
        "worker",
        help="run a shard-grading daemon other hosts dispatch to "
        "(`repro run --hosts ...`)",
    )
    worker_parser.add_argument(
        "--listen",
        default="127.0.0.1:7400",
        metavar="HOST:PORT",
        help="listen address (port 0 binds an ephemeral port, printed on "
        "the startup line)",
    )
    worker_parser.add_argument(
        "--quiet", action="store_true", help="suppress per-event log lines"
    )
    worker_parser.set_defaults(func=_cmd_worker)

    workers_parser = commands.add_parser(
        "workers", help="manage a fleet of worker daemons"
    )
    workers_commands = workers_parser.add_subparsers(
        dest="workers_command", required=True
    )
    ping_parser = workers_commands.add_parser(
        "ping",
        help="probe fleet liveness, cache warmth and kernel flags "
        "(exit 1 if any worker is down)",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="""\
exit codes:
  0  every probed worker answered
  1  at least one worker was unreachable or timed out

--json emits a list with one object per probed host:
  host               "host:port" as given in --hosts
  alive              true when the worker answered the status probe
  error              connect/timeout detail (down hosts only)
  rtt_ms             status-probe round trip in milliseconds
  protocol           wire protocol version the worker speaks
  pid, uptime_s      worker process id and seconds since start
  kernel             {"native": bool, "threads": int} grading kernel
  campaigns_cached   campaign digests held in the artifact cache
  stats              lifetime counters: shards_graded, faults_graded,
                     digest_hits, digest_misses,
                     artifact_bytes_received, connections
Down hosts carry only host/alive/error; the worker-side fields are
whatever `repro worker` returned in its status reply and may grow
keys in later protocol versions.""",
    )
    ping_parser.add_argument(
        "--hosts",
        required=True,
        metavar="HOST:PORT,...",
        help="worker addresses to probe",
    )
    ping_parser.add_argument(
        "--timeout",
        type=float,
        default=5.0,
        help="per-host connect/reply timeout in seconds",
    )
    ping_parser.add_argument(
        "--json",
        action="store_true",
        help="machine-readable output (schema below); the exit code "
        "contract is unchanged",
    )
    ping_parser.set_defaults(func=_cmd_workers_ping)

    serve_parser = commands.add_parser(
        "serve",
        help="long-running campaign service: HTTP+JSON API, SQLite "
        "results index and dashboard (see docs/service.md)",
    )
    serve_parser.add_argument(
        "--listen",
        default="127.0.0.1:8780",
        metavar="HOST:PORT",
        help="listen address (port 0 binds an ephemeral port, printed on "
        "the startup line)",
    )
    serve_parser.add_argument(
        "--db",
        default=None,
        help="SQLite results database path (default: <store>/service.db)",
    )
    serve_parser.add_argument(
        "--queue-limit",
        type=int,
        default=64,
        help="max queued-but-unstarted campaigns before POST returns 503",
    )
    _add_runner_arguments(serve_parser)
    serve_parser.set_defaults(func=_cmd_serve)

    db_parser = commands.add_parser(
        "db", help="maintain the SQLite results database"
    )
    db_commands = db_parser.add_subparsers(dest="db_command", required=True)
    db_import_parser = db_commands.add_parser(
        "import",
        help="index every JSONL campaign store under --store into SQLite "
        "(lossless; skips campaigns already indexed)",
    )
    db_import_parser.add_argument(
        "--store",
        default=DEFAULT_STORE_ROOT,
        help=f"results-store root to import (default: {DEFAULT_STORE_ROOT}/)",
    )
    db_import_parser.add_argument(
        "--db",
        default=None,
        help="SQLite results database path (default: <store>/service.db)",
    )
    db_import_parser.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    db_import_parser.set_defaults(func=_cmd_db_import)
    db_info_parser = db_commands.add_parser(
        "info", help="schema version and row counts of the database"
    )
    db_info_parser.add_argument("--store", default=DEFAULT_STORE_ROOT)
    db_info_parser.add_argument("--db", default=None)
    db_info_parser.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    db_info_parser.set_defaults(func=_cmd_db_info)

    query_parser = commands.add_parser(
        "query",
        help="cross-campaign aggregates from the SQLite results database",
    )
    query_commands = query_parser.add_subparsers(
        dest="query_command", required=True
    )
    flops_parser = query_commands.add_parser(
        "flops",
        help="per-flop failure rate pooled across campaigns",
    )
    flops_parser.add_argument("--store", default=DEFAULT_STORE_ROOT)
    flops_parser.add_argument("--db", default=None)
    flops_parser.add_argument(
        "--circuit", default=None, help="restrict to one circuit"
    )
    flops_parser.add_argument(
        "--fault-model", default=None, help="restrict to one fault model"
    )
    flops_parser.add_argument(
        "--limit", type=int, default=20, help="rows to show (highest first)"
    )
    flops_parser.add_argument(
        "--mode",
        choices=("sampled", "exhaustive"),
        default=None,
        help="pool only sampled or only exhaustive campaigns (default: "
        "pool everything, flagging flops fed by both)",
    )
    flops_parser.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    flops_parser.set_defaults(func=_cmd_query_flops)
    classes_parser = query_commands.add_parser(
        "classes",
        help="failure/latent/silent totals grouped across campaigns",
    )
    classes_parser.add_argument("--store", default=DEFAULT_STORE_ROOT)
    classes_parser.add_argument("--db", default=None)
    classes_parser.add_argument(
        "--group",
        default="effective_circuit",
        choices=["effective_circuit", "circuit", "hardening", "fault_model",
                 "status", "sampling", "testbench"],
        help="campaigns column to group by (hardening = the hardened-vs-"
        "plain failure trend)",
    )
    classes_parser.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    classes_parser.set_defaults(func=_cmd_query_classes)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
