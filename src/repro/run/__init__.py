"""Campaign orchestration: declarative specs, sharded execution, stores.

* :mod:`repro.run.spec` — :class:`CampaignSpec`, the frozen serializable
  description of one campaign, plus the ``matrix()`` sweep expander.
* :mod:`repro.run.runner` — :class:`CampaignRunner`, the sharded,
  transport-pluggable, resumable executor.
* :mod:`repro.run.transport` — shard transports: in-process ``serial``,
  process-pool ``local``, and remote-daemon ``tcp`` (plus the wire
  protocol and the ``repro worker`` daemon).
* :mod:`repro.run.store` — :class:`ResultsStore`, the per-campaign JSONL
  checkpoint store under ``runs/<campaign-id>/``.
* :mod:`repro.run.worker` — worker-process shard grading (per-process
  scenario and simulation caches).
* :mod:`repro.run.cli` — the ``python -m repro`` command line (imported
  lazily by ``repro.__main__``, not re-exported here).
"""

from repro.run.runner import CampaignRunner, ShardWindow, plan_windows
from repro.run.spec import CampaignSpec, Scenario
from repro.run.store import ResultsStore, ShardRecord
from repro.run.transport import (
    ShardTransport,
    available_transports,
    create_transport,
    register_transport,
)

__all__ = [
    "CampaignRunner",
    "CampaignSpec",
    "ResultsStore",
    "Scenario",
    "ShardRecord",
    "ShardTransport",
    "ShardWindow",
    "available_transports",
    "create_transport",
    "plan_windows",
    "register_transport",
]
