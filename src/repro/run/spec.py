"""Declarative campaign descriptions.

A :class:`CampaignSpec` is a frozen, serializable value describing one
fault-injection campaign end to end: which registered circuit, which
autonomous technique, which board and grading engine, how the stimulus is
generated and how the fault list is drawn. Everything downstream — the
sharded :class:`~repro.run.runner.CampaignRunner`, the JSONL
:class:`~repro.run.store.ResultsStore`, the ``python -m repro`` CLI and
the eval tables — consumes specs instead of ad-hoc (netlist, testbench,
faults) plumbing, so any campaign can be named, persisted, resumed and
swept.

The split mirrors config-driven injection frameworks (DAVOS's campaign
configuration, DrSEUs's campaign database): the *description* of a
campaign is data; only the runner turns it into work.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass, fields, replace
from typing import Dict, Iterable, List, Optional, Sequence

from repro.circuits.registry import build_circuit, circuit_source_path
from repro.emu.board import BoardModel, board_by_name
from repro.emu.instrument import TECHNIQUES
from repro.errors import CampaignError
from repro.faults.model import SeuFault
from repro.faults.models import DEFAULT_FAULT_MODEL, FaultModel, get_fault_model
from repro.faults.sampling import SAMPLING_METHODS, draw_sample
from repro.netlist.netlist import Netlist
from repro.sim.parallel import DEFAULT_BACKEND
from repro.sim.vectors import (
    Testbench,
    burst_testbench,
    constant_testbench,
    random_testbench,
    walking_ones_testbench,
)

#: Stimulus generators a spec may name. ``auto`` resolves per circuit:
#: the paper's instruction-shaped program bench for b14, the frontend's
#: synthesized default for imported (``file:``/``corpus:``) circuits,
#: random stimulus otherwise.
TESTBENCH_KINDS = (
    "auto",
    "program",
    "random",
    "burst",
    "walking_ones",
    "constant",
    "imported",
)

#: Default testbench lengths when a spec leaves ``num_cycles`` unset:
#: the paper's 160 stimulus vectors for b14, a short generic bench
#: otherwise.
PAPER_CYCLES = {"b14": 160}
DEFAULT_CYCLES = 64


@dataclass(frozen=True)
class Scenario:
    """A spec resolved into concrete objects, ready to grade."""

    netlist: Netlist
    testbench: Testbench
    faults: List[SeuFault]


def default_testbench_for(
    netlist: Netlist,
    num_cycles: Optional[int] = None,
    seed: int = 0,
    circuit: Optional[str] = None,
) -> Testbench:
    """Default stimulus for a circuit *object*, by the same rule specs
    use for circuit names: b14 gets the paper's instruction-shaped
    program bench at paper length; imported circuits (recognisable only
    when the caller passes the registry ``circuit`` name, e.g.
    ``corpus:s344``) get the frontend's synthesized stimulus; everything
    else — including ad-hoc netlist objects with no name — random
    stimulus. Keeps the explicit-netlist eval path and the spec path
    agreeing on what "default" means for one named circuit.
    """
    cycles = (
        num_cycles
        if num_cycles is not None
        else PAPER_CYCLES.get(netlist.name, DEFAULT_CYCLES)
    )
    if netlist.name == "b14":
        from repro.circuits.itc99.b14 import b14_program_testbench

        return b14_program_testbench(netlist, cycles, seed=seed)
    if circuit is not None and circuit.startswith(("file:", "corpus:")):
        from repro.frontend import synthesize_testbench

        return synthesize_testbench(netlist, cycles, seed=seed)
    return random_testbench(netlist, cycles, seed=seed)


@dataclass(frozen=True)
class CampaignSpec:
    """One campaign, as data.

    ``circuit`` names a :mod:`repro.circuits.registry` entry (including
    the parameterized ``proc:<flops>`` family). ``num_cycles`` of ``None``
    means the circuit's paper/default length. ``fault_model`` names a
    :mod:`repro.faults.models` registry entry (``seu``, ``mbu:<k>``,
    ``stuck_at_0/1``, ``intermittent[:p:d]``). ``sample`` of ``None``
    means the model's complete fault set; a positive value draws that
    many faults deterministically from it with the named ``sampling``
    method (``uniform`` or ``stratified`` by flop). ``hardening`` names a
    :mod:`repro.hardening` scheme applied to the built circuit (``tmr``,
    ``tmr_unvoted``, ``dwc``, ``parity``; ``None`` grades the plain
    netlist) and ``hardening_flops`` optionally restricts it to a flop
    subset (selective hardening; ``None`` protects every flop) —
    spelling the circuit ``hardened:<scheme>[@<flop>+<flop>...]:<base>``
    is equivalent and normalises to the same spec, so both forms share
    one campaign identity. The base of a ``hardened:`` spelling may
    itself be another ``hardened:`` name; only the outermost layer is
    normalised into the spec fields, inner layers stay part of the
    circuit name (mixed-scheme protection, the optimizer's search
    space). Consequently a spec whose ``hardening`` is already set
    treats a ``hardened:`` circuit as its base — the fields always
    describe the *outermost* layer. All fields are plain values so a
    spec round-trips through JSON unchanged.
    """

    circuit: str
    technique: str
    board: str = "rc1000"
    engine: str = DEFAULT_BACKEND
    num_cycles: Optional[int] = None
    testbench: str = "auto"
    seed: int = 0
    sample: Optional[int] = None
    scan_chains: int = 1
    fault_model: str = DEFAULT_FAULT_MODEL
    sampling: str = "uniform"
    hardening: Optional[str] = None
    hardening_flops: Optional[Sequence[str]] = None

    def __post_init__(self) -> None:
        if self.hardening_flops is not None:
            from repro.hardening import canonical_flop_subset

            if isinstance(self.hardening_flops, str):
                # accept the grammar's "+"-joined spelling as a scalar
                flops: Sequence[str] = self.hardening_flops.split("+")
            else:
                flops = self.hardening_flops
            object.__setattr__(
                self, "hardening_flops", canonical_flop_subset(flops)
            )
        if self.circuit.startswith("hardened:") and self.hardening is None:
            # Peel the outermost hardened: layer into the spec fields.
            # Only when ``hardening`` is unset: a set scheme means the
            # fields already describe the outer layer and the circuit
            # name is the (possibly itself hardened) base underneath —
            # the state replace()/from_dict round-trips through, and the
            # normalisation's own fixed point.
            from repro.hardening import parse_hardened_name

            scheme, flops, base = parse_hardened_name(self.circuit)
            if (
                self.hardening_flops is not None
                and flops is not None
                and self.hardening_flops != flops
            ):
                raise CampaignError(
                    f"circuit {self.circuit!r} names flop subset "
                    f"{'+'.join(flops)} but the spec also sets "
                    f"hardening_flops={'+'.join(self.hardening_flops)}; "
                    "pick one spelling"
                )
            object.__setattr__(self, "circuit", base)
            object.__setattr__(self, "hardening", scheme)
            if flops is not None:
                object.__setattr__(self, "hardening_flops", flops)
        if self.hardening_flops is not None and self.hardening is None:
            raise CampaignError(
                "hardening_flops names a protected subset but no hardening "
                "scheme is set; add hardening=<scheme> (CLI: --hardening)"
            )
        if self.hardening is not None:
            from repro.hardening import get_hardening_scheme

            get_hardening_scheme(self.hardening)  # fail early on unknown schemes
        if self.technique not in TECHNIQUES:
            raise CampaignError(
                f"unknown technique {self.technique!r}; expected one of "
                f"{TECHNIQUES}"
            )
        if self.testbench not in TESTBENCH_KINDS:
            raise CampaignError(
                f"unknown testbench kind {self.testbench!r}; expected one "
                f"of {TESTBENCH_KINDS}"
            )
        if self.num_cycles is not None and self.num_cycles <= 0:
            raise CampaignError("num_cycles must be positive")
        if self.sample is not None and self.sample <= 0:
            raise CampaignError("sample must be positive")
        if self.scan_chains < 1:
            raise CampaignError("scan_chains must be at least 1")
        if self.sampling not in SAMPLING_METHODS:
            raise CampaignError(
                f"unknown sampling method {self.sampling!r}; expected one "
                f"of {SAMPLING_METHODS}"
            )
        get_fault_model(self.fault_model)  # fail early on unknown models
        board_by_name(self.board)  # fail early on unknown boards

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------
    @property
    def base_circuit(self) -> str:
        """The circuit name with every ``hardened:`` layer stripped —
        the plain design underneath a (possibly nested) protection
        stack, which is what per-circuit defaults key on."""
        name = self.circuit
        while name.startswith("hardened:"):
            from repro.hardening import parse_hardened_name

            name = parse_hardened_name(name)[2]
        return name

    def resolved_cycles(self) -> int:
        """Testbench length after applying per-circuit defaults."""
        if self.num_cycles is not None:
            return self.num_cycles
        return PAPER_CYCLES.get(self.base_circuit, DEFAULT_CYCLES)

    def is_imported(self) -> bool:
        """True when the circuit comes from a netlist file (``file:`` or
        ``corpus:``) rather than a registered builder."""
        return self.base_circuit.startswith(("file:", "corpus:"))

    def resolved_testbench_kind(self) -> str:
        """Testbench kind after resolving ``auto``."""
        if self.testbench != "auto":
            return self.testbench
        if self.base_circuit == "b14":
            return "program"
        return "imported" if self.is_imported() else "random"

    def board_model(self) -> BoardModel:
        return board_by_name(self.board)

    @property
    def effective_circuit(self) -> str:
        """The circuit's full registry spelling, hardening included."""
        if self.hardening is None:
            return self.circuit
        from repro.hardening import format_scheme_segment

        segment = format_scheme_segment(self.hardening, self.hardening_flops)
        return f"hardened:{segment}:{self.circuit}"

    def build_netlist(self) -> Netlist:
        netlist = build_circuit(self.circuit)
        if self.hardening is not None:
            from repro.hardening import apply_hardening

            netlist = apply_hardening(
                self.hardening, netlist, flops=self.hardening_flops
            )
        return netlist

    def build_testbench(self, netlist: Netlist) -> Testbench:
        kind = self.resolved_testbench_kind()
        cycles = self.resolved_cycles()
        if kind == "program":
            if self.base_circuit != "b14":
                raise CampaignError(
                    "the program testbench is b14's instruction stimulus; "
                    f"circuit {self.circuit!r} cannot use it"
                )
            from repro.circuits.itc99.b14 import b14_program_testbench

            return b14_program_testbench(netlist, cycles, seed=self.seed)
        if kind == "imported":
            from repro.frontend import synthesize_testbench

            return synthesize_testbench(netlist, cycles, seed=self.seed)
        if kind == "random":
            return random_testbench(netlist, cycles, seed=self.seed)
        if kind == "burst":
            return burst_testbench(netlist, cycles, seed=self.seed)
        if kind == "walking_ones":
            return walking_ones_testbench(netlist, cycles)
        return constant_testbench(netlist, cycles)

    def fault_model_obj(self) -> FaultModel:
        """The registered fault model this spec injects."""
        return get_fault_model(self.fault_model)

    def population_size(self, netlist: Netlist) -> int:
        """Size of the complete fault set (before sampling)."""
        return self.fault_model_obj().population_size(
            netlist, self.resolved_cycles()
        )

    def build_faults(self, netlist: Netlist) -> List[SeuFault]:
        faults = self.fault_model_obj().population(
            netlist, self.resolved_cycles()
        )
        if not faults:
            # Fail here, where the cause is nameable, instead of letting
            # a zero-fault campaign die deep in the emulation accounting
            # (combinational imports — e.g. the ISCAS-85 corpus entries —
            # have no flip-flops, so every flop-based model is empty).
            raise CampaignError(
                f"fault model {self.fault_model!r} has an empty population "
                f"on circuit {self.circuit!r} ({netlist.num_ffs} flip-flops, "
                f"{self.resolved_cycles()} cycles); combinational circuits "
                "can be listed and simulated but not campaign-graded"
            )
        if self.sample is not None:
            faults = draw_sample(
                faults, self.sample, seed=self.seed, method=self.sampling
            )
        return faults

    def scenario(self) -> Scenario:
        """Resolve the spec into concrete netlist/testbench/faults."""
        netlist = self.build_netlist()
        return Scenario(
            netlist=netlist,
            testbench=self.build_testbench(netlist),
            faults=self.build_faults(netlist),
        )

    # ------------------------------------------------------------------
    # serialization and identity
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        """Plain-dict form; ``from_dict`` inverts it exactly."""
        data = {
            field.name: getattr(self, field.name) for field in fields(self)
        }
        if data["hardening_flops"] is not None:
            data["hardening_flops"] = list(data["hardening_flops"])
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "CampaignSpec":
        known = {field.name for field in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise CampaignError(
                f"unknown CampaignSpec fields: {', '.join(sorted(unknown))}"
            )
        return cls(**data)

    def oracle_key(self) -> Dict:
        """The fields that determine grading outcomes.

        Technique, board, engine and scan_chains do not change a fault's
        fail/vanish cycles (all grading engines are bit-identical, and the
        other three only affect accounting), so campaigns differing only
        in those share one oracle — and one results store.

        For imported (``file:``/``corpus:``) circuits the key also
        carries a content digest of the netlist file: a circuit *name*
        no longer pins the circuit, so re-importing an unchanged file
        resumes the same store while any edit to the file changes the
        key (and therefore the campaign id) and regrades from scratch.
        """
        key = {
            "circuit": self.circuit,
            "testbench": self.resolved_testbench_kind(),
            "num_cycles": self.resolved_cycles(),
            "seed": self.seed,
            "sample": self.sample,
            "fault_model": self.fault_model,
            "sampling": self.sampling,
        }
        if self.hardening is not None:
            # Only present when set, so pre-hardening stores keep their
            # campaign ids (and resume) across this change.
            key["hardening"] = self.hardening
        if self.hardening_flops is not None:
            # Likewise only when set: all-flops campaigns keep their
            # pre-subset-grammar ids, while every distinct subset gets
            # its own resumable store.
            key["hardening_flops"] = list(self.hardening_flops)
        digest = self.circuit_digest()
        if digest is not None:
            key["circuit_digest"] = digest
        return key

    def circuit_digest(self) -> Optional[str]:
        """Content hash of the netlist file behind an imported circuit
        (``None`` for registered builders, whose identity is their
        name)."""
        source = circuit_source_path(self.circuit)
        if source is None:
            return None
        from repro.frontend import netlist_file_digest

        return netlist_file_digest(source)

    def wire_fields(self) -> Dict:
        """The scalar fields a remote worker needs beside the shipped
        artifacts (netlist text + stimulus) to rebuild this campaign's
        fault population.

        Deliberately *not* the circuit name: the wire protocol is
        content-addressed, so a worker never resolves registry names —
        hardening, imports and parameterized circuits are all already
        folded into the netlist text the client ships.
        """
        return {
            "engine": self.engine,
            "num_cycles": self.resolved_cycles(),
            "seed": self.seed,
            "sample": self.sample,
            "sampling": self.sampling,
            "fault_model": self.fault_model,
        }

    def fault_key(self) -> Dict:
        """The fields determining *which faults* a campaign injects.

        A subset of :meth:`oracle_key`, recorded separately in the
        results-store manifest so a resumed store can refuse — with a
        precise message — to adopt shards graded under a different fault
        model or sampling configuration.
        """
        key = {
            "fault_model": self.fault_model,
            "sampling": self.sampling,
            "sample": self.sample,
            "seed": self.seed,
        }
        if self.hardening is not None:
            # The hardened netlist has a different flop population, so a
            # mismatched resume should name the hardening difference.
            key["hardening"] = self.hardening
        if self.hardening_flops is not None:
            key["hardening_flops"] = list(self.hardening_flops)
        return key

    @property
    def campaign_id(self) -> str:
        """Stable, filesystem-safe identity of this campaign's oracle.

        Selective-subset segments are compacted in the slug (``@3ff``
        instead of the flop names) and the slug is capped, so a
        30-flop-subset campaign still gets a short, filesystem-safe
        directory name; the digest suffix keeps identities distinct.
        """
        canonical = json.dumps(self.oracle_key(), sort_keys=True)
        digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:10]
        name = re.sub(
            r"@[^:]+",
            lambda match: f"@{match.group(0).count('+') + 1}ff",
            self.effective_circuit,
        )
        slug = re.sub(r"[^A-Za-z0-9_.-]+", "-", name)[:96].rstrip("-.")
        return f"{slug}-{digest}"

    def with_technique(self, technique: str) -> "CampaignSpec":
        return replace(self, technique=technique)

    def with_hardening(
        self,
        hardening: Optional[str],
        hardening_flops: Optional[Sequence[str]] = None,
    ) -> "CampaignSpec":
        """The same campaign against a (differently) hardened circuit."""
        return replace(
            self, hardening=hardening, hardening_flops=hardening_flops
        )

    # ------------------------------------------------------------------
    # sweeps
    # ------------------------------------------------------------------
    @classmethod
    def matrix(
        cls,
        circuits: Sequence[str],
        techniques: Optional[Iterable[str]] = None,
        engines: Optional[Iterable[str]] = None,
        **common,
    ) -> List["CampaignSpec"]:
        """Expand circuits x techniques x engines into a scenario sweep.

        ``common`` supplies the remaining spec fields (seed, num_cycles,
        sample, ...). Order is circuit-major, then technique, then engine
        — campaigns sharing an oracle stay adjacent, so a runner sweeping
        the list grades each circuit once.
        """
        technique_list = list(techniques) if techniques else list(TECHNIQUES)
        engine_list = list(engines) if engines else [DEFAULT_BACKEND]
        specs = []
        for circuit in circuits:
            for technique in technique_list:
                for engine in engine_list:
                    specs.append(
                        cls(
                            circuit=circuit,
                            technique=technique,
                            engine=engine,
                            **common,
                        )
                    )
        return specs


def scenario_from_wire(
    netlist_text: str, testbench: Testbench, fields: Dict
) -> Scenario:
    """Rebuild a campaign scenario from shipped wire artifacts.

    The remote half of :meth:`CampaignSpec.wire_fields`: ``netlist_text``
    is the canonical netlist dump, ``testbench`` the reconstructed
    stimulus, ``fields`` the scalar fault-population description. The
    fault list is rebuilt exactly as :meth:`CampaignSpec.build_faults`
    builds it — fault-model population over the netlist, then the
    deterministic sample draw — so a worker that never saw the registry
    grades the *identical* fault list in the identical order, which is
    what makes remote shard records mergeable (and re-runnable) bit-
    exactly.
    """
    from repro.netlist.textio import loads_netlist

    netlist = loads_netlist(netlist_text)
    num_cycles = int(fields["num_cycles"])
    if testbench.num_cycles != num_cycles:
        raise CampaignError(
            f"wire stimulus has {testbench.num_cycles} cycles but the "
            f"campaign declares {num_cycles}"
        )
    model = get_fault_model(str(fields["fault_model"]))
    faults = model.population(netlist, num_cycles)
    if not faults:
        raise CampaignError(
            f"fault model {fields['fault_model']!r} has an empty population "
            f"on the shipped netlist ({netlist.num_ffs} flip-flops, "
            f"{num_cycles} cycles)"
        )
    if fields.get("sample") is not None:
        faults = draw_sample(
            faults,
            int(fields["sample"]),
            seed=int(fields.get("seed", 0)),
            method=str(fields.get("sampling", "uniform")),
        )
    return Scenario(netlist=netlist, testbench=testbench, faults=faults)
