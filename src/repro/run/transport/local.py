"""In-process and local process-pool transports.

``serial`` grades windows inline — the reference path every other
transport is verified against. ``local`` wraps the persistent
``ProcessPoolExecutor`` (PR 6: prewarmed fork inheritance, packed-bytes
IPC) behind the dynamic-queue contract: at most a small multiple of the
worker count is in flight, and the next window is submitted the moment
one completes, so an uneven shard (or an overloaded core) never leaves
the rest of the plan pre-assigned to a straggler. A worker process lost
mid-shard (OOM kill, segfault) breaks the pool; the transport rebuilds
it and re-queues the windows that were in flight — grading is
deterministic, so the retried records are bit-identical.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, Iterator, Optional, Sequence

import repro
from repro.errors import CampaignError
from repro.run import worker
from repro.run.store import ShardRecord
from repro.run.transport.base import ShardTransport

#: rebuilds tolerated per grade_windows call before giving up — repeated
#: pool deaths mean the shard itself kills workers, and retrying forever
#: would loop.
MAX_POOL_REBUILDS = 2


class SerialTransport(ShardTransport):
    """Grade windows inline, one at a time, in this process."""

    name = "serial"

    def grade_windows(self, spec, spec_dict, windows) -> Iterator[ShardRecord]:
        for window in windows:
            record = ShardRecord.from_json_obj(
                worker.grade_window(
                    spec_dict,
                    window.index,
                    window.start_cycle,
                    window.end_cycle,
                )
            )
            record.worker = "inline"
            yield record

    def describe(self) -> str:
        return "serial (in-process)"


class LocalPoolTransport(ShardTransport):
    """Persistent process pool with dynamic window dispatch."""

    name = "local"

    def __init__(
        self,
        workers: int,
        mp_context: Optional[str] = None,
        progress: Optional[Callable[[str], None]] = None,
    ):
        if workers < 2:
            raise CampaignError("the local pool transport needs >= 2 workers")
        self.workers = int(workers)
        self.mp_context = mp_context
        self.progress = progress
        self._pool: Optional[ProcessPoolExecutor] = None

    # -- pool lifecycle ------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        """The persistent worker pool, created on first pooled grade.

        Keeping the executor alive across campaigns is a large share of
        the multi-worker win: repeated grades (sweeps, bench repeats,
        adaptive rounds) reuse warm worker processes instead of paying
        fork + import + scenario warmup per call. The runner prewarms the
        campaign artifacts *before* the first grade, so forked workers
        inherit every session cache.
        """
        if self._pool is None:
            start_method = self.mp_context or (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else "spawn"
            )
            context = multiprocessing.get_context(start_method)
            package_root = os.path.dirname(os.path.dirname(repro.__file__))
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=context,
                initializer=worker.worker_init,
                initargs=(package_root,),
            )
        return self._pool

    def _rebuild_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def effective_workers(self) -> int:
        return self.workers

    def describe(self) -> str:
        return f"local pool ({self.workers} workers)"

    # -- grading -------------------------------------------------------
    def grade_windows(self, spec, spec_dict, windows) -> Iterator[ShardRecord]:
        pending = list(windows)
        attempts: Dict[int, int] = {}
        rebuilds = 0
        # Dynamic queue: keep the pool saturated (one extra window per
        # worker absorbs result-return latency) but never pre-assign the
        # whole plan — an idle worker pulls the next window, a slow one
        # simply pulls fewer.
        max_inflight = self.workers * 2
        inflight: Dict = {}
        while pending or inflight:
            pool = self._ensure_pool()
            try:
                while pending and len(inflight) < max_inflight:
                    window = pending.pop(0)
                    attempts[window.index] = attempts.get(window.index, 0) + 1
                    future = pool.submit(
                        worker.grade_window,
                        spec_dict,
                        window.index,
                        window.start_cycle,
                        window.end_cycle,
                    )
                    inflight[future] = window
                finished, _ = wait(
                    set(inflight), return_when=FIRST_COMPLETED
                )
                for future in finished:
                    window = inflight.pop(future)
                    record = ShardRecord.from_json_obj(future.result())
                    record.worker = f"pool:{self.workers}"
                    record.attempts = attempts[window.index]
                    yield record
            except BrokenProcessPool:
                # A worker died mid-shard. Re-queue everything that was
                # in flight on the broken pool and grade it on a fresh
                # one — determinism makes the retry bit-identical.
                lost = sorted(
                    (window for window in inflight.values()),
                    key=lambda window: window.index,
                )
                inflight.clear()
                self._rebuild_pool()
                rebuilds += 1
                if rebuilds > MAX_POOL_REBUILDS:
                    raise CampaignError(
                        "local worker pool died "
                        f"{rebuilds} times (last while grading shards "
                        f"{[window.index for window in lost]}); the shard "
                        "work itself appears to kill workers"
                    ) from None
                if self.progress:
                    self.progress(
                        f"[transport:local] pool broke; re-queueing "
                        f"{len(lost)} in-flight shard(s) on a fresh pool"
                    )
                pending = lost + pending
                time.sleep(0.05)  # let the dead pool's fds drain
