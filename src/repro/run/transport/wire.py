"""Wire protocol for remote shard dispatch.

Everything a ``repro worker`` daemon and the :class:`TcpTransport`
client exchange travels in *frames*: a 4-byte big-endian payload length,
then the payload — a compact JSON header line (the message kind plus
small scalar fields), a ``\\n`` separator, and an optional binary blob.
Shard outcomes reuse the packed-int32 encoding the local process pool
ships across its IPC boundary (PR 6), so a 10k-fault shard's results are
one 40 KB buffer, not 10k JSON numbers.

The conversation is digest-first: ``prepare`` names the campaign's
netlist and stimulus by content digest only, and the worker answers
``need`` naming what it cannot reconstruct from its caches. Only then
does the client stream the full artifacts (``artifact`` frames), which
the worker persists by digest — so the second campaign against a warm
worker ships a few hundred bytes of header, never the netlist.

Message kinds (client -> worker unless noted)::

    prepare   campaign identity: digests + fault-population fields
    need      (worker) which artifacts the worker is missing
    ready     (worker) scenario resolved, shards may be dispatched
    artifact  one content-addressed payload (netlist text / stimulus)
    shard     grade one cycle window
    result    (worker) packed outcomes of one window
    heartbeat (worker) liveness while a long build/grade is in flight
    ping      liveness + stats probe
    status    (worker) stats reply to ping
    error     (worker) structured failure, connection stays usable
    bye       orderly goodbye

Framing is symmetric, so both sides use :func:`send_msg` /
:func:`recv_msg`.
"""

from __future__ import annotations

import json
import socket
import struct
from array import array
from typing import Dict, List, Optional, Tuple

from repro.errors import CampaignError
from repro.sim.vectors import Testbench

#: bump on any incompatible framing or message-shape change; both sides
#: refuse to talk across versions instead of mis-parsing each other.
PROTOCOL_VERSION = 1

#: refuse absurd frames instead of allocating unbounded buffers from a
#: confused (or hostile) peer — 1 GiB comfortably covers the largest
#: stimulus blob a campaign-scale circuit produces.
MAX_FRAME_BYTES = 1 << 30

_LENGTH = struct.Struct("!I")


class WireError(CampaignError):
    """A peer broke the framing or message contract."""


class PeerGone(CampaignError):
    """The connection died (EOF / reset) mid-conversation."""


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------
def send_msg(
    sock: socket.socket,
    kind: str,
    header: Optional[Dict] = None,
    blob: bytes = b"",
) -> None:
    """Send one frame: length-prefixed JSON header + binary blob."""
    head = dict(header or {})
    head["t"] = kind
    head_bytes = json.dumps(
        head, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    payload_length = len(head_bytes) + 1 + len(blob)
    if payload_length > MAX_FRAME_BYTES:
        raise WireError(f"frame of {payload_length} bytes exceeds the protocol limit")
    sock.sendall(_LENGTH.pack(payload_length) + head_bytes + b"\n" + blob)


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise PeerGone("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_msg(sock: socket.socket) -> Tuple[str, Dict, bytes]:
    """Receive one frame; returns ``(kind, header, blob)``.

    Raises :class:`PeerGone` on EOF and lets ``socket.timeout`` bubble —
    the caller's liveness policy (heartbeats, shard deadlines) decides
    what a silent peer means.
    """
    (payload_length,) = _LENGTH.unpack(_recv_exact(sock, _LENGTH.size))
    if payload_length > MAX_FRAME_BYTES:
        raise WireError(f"peer announced a {payload_length}-byte frame; refusing")
    payload = _recv_exact(sock, payload_length)
    head_bytes, separator, blob = payload.partition(b"\n")
    if not separator:
        raise WireError("frame payload lacks a header/blob separator")
    try:
        header = json.loads(head_bytes.decode("utf-8"))
        kind = header.pop("t")
    except (ValueError, KeyError) as error:
        raise WireError(f"unparseable frame header: {error}") from None
    return str(kind), header, blob


# ----------------------------------------------------------------------
# payload codecs
# ----------------------------------------------------------------------
def pack_cycles(cycles: List[int]) -> bytes:
    """Cycle outcomes as packed int32 bytes (PR 6's shard IPC form)."""
    return array("i", map(int, cycles)).tobytes()


def unpack_cycles(blob: bytes) -> List[int]:
    values = array("i")
    values.frombytes(blob)
    return values.tolist()


def pack_testbench(testbench: Testbench) -> bytes:
    """Serialize a testbench for transfer: input names + hex vectors.

    Vectors are arbitrary-width packed integers (one bit per primary
    input), so hex strings keep wide imported circuits compact and
    JSON-safe without 300-digit decimal literals.
    """
    return json.dumps(
        {
            "input_names": list(testbench.input_names),
            "vectors": [f"{vector:x}" for vector in testbench.vectors],
        },
        sort_keys=True,
        separators=(",", ":"),
    ).encode("utf-8")


def unpack_testbench(blob: bytes) -> Testbench:
    try:
        data = json.loads(blob.decode("utf-8"))
        return Testbench(
            input_names=[str(name) for name in data["input_names"]],
            vectors=[int(vector, 16) for vector in data["vectors"]],
        )
    except (ValueError, KeyError, TypeError) as error:
        raise WireError(f"unparseable stimulus payload: {error}") from None


def parse_host_port(value: str) -> Tuple[str, int]:
    """``HOST:PORT`` -> tuple, with a nameable error for bad spellings."""
    host, separator, port_text = value.rpartition(":")
    if not separator or not host:
        raise CampaignError(
            f"worker address {value!r} is not HOST:PORT (e.g. 127.0.0.1:7400)"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise CampaignError(
            f"worker address {value!r} has a non-numeric port"
        ) from None
    if not 0 <= port <= 65535:
        raise CampaignError(f"worker address {value!r} port is out of range")
    return host, port


def parse_hosts(value) -> List[Tuple[str, int]]:
    """A ``--hosts`` spelling (comma string or iterable) -> address list."""
    if isinstance(value, str):
        parts = [part.strip() for part in value.split(",")]
    else:
        parts = [str(part).strip() for part in value]
    addresses = [parse_host_port(part) for part in parts if part]
    if not addresses:
        raise CampaignError("no worker addresses given")
    return addresses
