"""Transport interface: how shard grading reaches compute.

A :class:`ShardTransport` owns the *where* of shard execution — in this
process, on a local process pool, or on a fleet of remote TCP workers —
while :class:`~repro.run.runner.CampaignRunner` keeps the *what*:
planning windows, checkpointing records, merging outcomes. The contract
every transport honours:

* ``grade_windows`` consumes pending windows from a **dynamic queue**:
  workers pull the next window when idle, so a slow worker (heterogeneous
  cores, a busy remote host) takes fewer shards instead of stalling the
  campaign on its fixed pre-assignment.
* Records are yielded **as they complete**, in any order; the runner
  checkpoints each one immediately, so a crash loses at most in-flight
  work no matter which transport produced the finished shards.
* A lost worker's in-flight window is **re-queued**, not lost; grading
  is deterministic, so a re-run shard is bit-identical and the merge
  invariant survives any interleaving of failures.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Dict, Iterator, Sequence

if TYPE_CHECKING:  # import cycle: runner imports the transport registry
    from repro.run.runner import ShardWindow
    from repro.run.spec import CampaignSpec
    from repro.run.store import ShardRecord


class ShardTransport(ABC):
    """One way of turning pending shard windows into shard records."""

    #: registry name (``serial`` / ``local`` / ``tcp``)
    name: str = ""

    @abstractmethod
    def grade_windows(
        self,
        spec: "CampaignSpec",
        spec_dict: Dict,
        windows: Sequence["ShardWindow"],
    ) -> Iterator["ShardRecord"]:
        """Grade every window, yielding completed records as they finish.

        ``spec_dict`` is the spec's serialized form (what actually
        crosses process/network boundaries); ``spec`` is available for
        planning-side artifacts the transport may need (digests, wire
        fields). Implementations must yield exactly one record per
        window or raise :class:`~repro.errors.CampaignError`.
        """

    def effective_workers(self) -> int:
        """Parallel grading slots, for shard-count planning."""
        return 1

    def describe(self) -> str:
        """One-line human description (progress lines, bench titles)."""
        return self.name or type(self).__name__

    def close(self) -> None:
        """Release pools/connections (idempotent)."""

    def __enter__(self) -> "ShardTransport":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
