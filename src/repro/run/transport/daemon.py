"""The ``repro worker`` daemon: a remote shard-grading server.

One process per host, started as ``repro worker --listen HOST:PORT``.
Accepts any number of client connections (one thread each) and speaks
the :mod:`repro.run.transport.wire` protocol: digest-first campaign
negotiation, then shard grading with the same per-process scenario memo
and simulation caches the local pool workers use — a warm daemon grades
its first shard of a repeat campaign without rebuilding anything.

Artifacts arrive content-addressed. A netlist or stimulus payload is
verified against its announced digest (self-certifying: the digest *is*
the content hash), persisted to the worker's
:class:`~repro.sim.cache.DiskArtifactCache` wire store, and reused for
every later campaign that names the same digest — including after a
daemon restart. Compiled plans and golden traces then flow through the
ordinary two-layer artifact cache exactly as they do locally.

While a slow scenario build or shard grade is in flight the daemon
emits ``heartbeat`` frames every second, so the client can tell
"working" from "wedged" without guessing at shard cost. All state a
connection needs is either per-connection or lock-protected, so a fleet
client, a ``workers ping`` probe and a second campaign can overlap
freely.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from typing import Dict, Optional, Tuple

from repro.errors import CampaignError, ReproError
from repro.run import worker
from repro.run.spec import Scenario, scenario_from_wire
from repro.run.transport import wire
from repro.sim.cache import disk_cache, netlist_text_digest

#: heartbeat cadence while a build/grade is in flight (seconds)
HEARTBEAT_INTERVAL = 1.0
#: bound on the per-daemon scenario memo, matching the pool workers'
MAX_CACHED_SCENARIOS = worker.MAX_CACHED_SCENARIOS

#: test hook: sleep this many seconds before grading each shard, so the
#: fault-tolerance tests can deterministically catch a worker mid-shard
TEST_DELAY_ENV = "REPRO_WORKER_TEST_DELAY"


class _Heartbeat:
    """Context manager: heartbeat frames while a slow section runs."""

    def __init__(self, sock: socket.socket, send_lock: threading.Lock,
                 interval: float = HEARTBEAT_INTERVAL):
        self.sock = sock
        self.send_lock = send_lock
        self.interval = interval
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def __enter__(self) -> "_Heartbeat":
        self._thread = threading.Thread(
            target=self._tick, name="repro-worker-heartbeat", daemon=True
        )
        self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join()

    def _tick(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                with self.send_lock:
                    wire.send_msg(self.sock, "heartbeat")
            except OSError:
                return  # client gone; the main loop will notice on recv


class WorkerDaemon:
    """A shard-grading TCP server.

    Parameters:
        host/port: listen address; port 0 binds an ephemeral port
            (exposed as ``self.port`` after :meth:`bind` — tests and the
            CLI's "listening on" line both rely on it).
        quiet: suppress per-event log lines.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 quiet: bool = False):
        self.host = host
        self.port = port
        self.quiet = quiet
        self.started_at = time.time()
        self._server: Optional[socket.socket] = None
        self._stop = threading.Event()
        self._state_lock = threading.Lock()
        #: campaign id -> (scenario, injection-cycle list)
        self._scenarios: Dict[str, Tuple[Scenario, list]] = {}
        self.stats: Dict[str, int] = {
            "connections": 0,
            "campaigns_prepared": 0,
            "shards_graded": 0,
            "faults_graded": 0,
            "digest_hits": 0,
            "digest_misses": 0,
            "artifact_bytes_received": 0,
        }

    def _log(self, line: str) -> None:
        if not self.quiet:
            print(f"[worker {self.host}:{self.port}] {line}", flush=True)

    # ------------------------------------------------------------------
    # server lifecycle
    # ------------------------------------------------------------------
    def bind(self) -> int:
        """Bind the listen socket; returns the (possibly ephemeral) port."""
        if self._server is None:
            server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            server.bind((self.host, self.port))
            server.listen(16)
            self.port = server.getsockname()[1]
            self._server = server
        return self.port

    def serve_forever(self) -> None:
        """Bind (if needed) and serve until :meth:`shutdown`."""
        self.bind()
        # The parseable startup line: tests and fleet scripts read the
        # bound port from it when --listen used port 0.
        print(f"repro worker listening on {self.host}:{self.port}", flush=True)
        while not self._stop.is_set():
            try:
                sock, address = self._server.accept()
            except OSError:
                break  # listen socket closed by shutdown()
            with self._state_lock:
                self.stats["connections"] += 1
            threading.Thread(
                target=self._serve_connection,
                args=(sock, address),
                name=f"repro-worker-conn-{address[0]}:{address[1]}",
                daemon=True,
            ).start()

    def shutdown(self) -> None:
        self._stop.set()
        if self._server is not None:
            try:
                self._server.close()
            except OSError:
                pass
            self._server = None

    # ------------------------------------------------------------------
    # artifact store
    # ------------------------------------------------------------------
    def _load_artifact(self, kind: str, digest: str) -> Optional[bytes]:
        """A verified wire payload from the disk store, or None.

        The store only promises atomic writes; the digest check here is
        what makes the wire store self-certifying — a corrupted payload
        reads as a miss (the client re-ships it) instead of poisoning
        every later campaign that names the digest.
        """
        disk = disk_cache()
        payload = disk.load_wire(digest) if disk is not None else None
        if payload is None:
            return None
        try:
            if kind == "netlist":
                ok = netlist_text_digest(payload.decode("utf-8")) == digest
            else:
                ok = wire.unpack_testbench(payload).stimulus_digest() == digest
        except (UnicodeDecodeError, wire.WireError):
            ok = False
        return payload if ok else None

    def _store_artifact(self, digest: str, payload: bytes) -> None:
        disk = disk_cache()
        if disk is not None:
            disk.store_wire(digest, payload)

    # ------------------------------------------------------------------
    # campaign negotiation
    # ------------------------------------------------------------------
    def _scenario_from_artifacts(
        self, header: Dict, netlist_blob: bytes, stimulus_blob: bytes
    ) -> Tuple[Scenario, list]:
        netlist_text = netlist_blob.decode("utf-8")
        if netlist_text_digest(netlist_text) != header["netlist_digest"]:
            raise CampaignError(
                "netlist payload does not match its announced digest"
            )
        testbench = wire.unpack_testbench(stimulus_blob)
        if testbench.stimulus_digest() != header["stimulus_digest"]:
            raise CampaignError(
                "stimulus payload does not match its announced digest"
            )
        scenario = scenario_from_wire(netlist_text, testbench, header)
        cycles = [fault.cycle for fault in scenario.faults]
        return scenario, cycles

    def _prepare(self, conn: "_Connection", header: Dict) -> None:
        if header.get("protocol") != wire.PROTOCOL_VERSION:
            raise CampaignError(
                f"protocol version mismatch: client speaks "
                f"{header.get('protocol')}, worker speaks "
                f"{wire.PROTOCOL_VERSION}"
            )
        campaign_id = str(header["campaign_id"])
        with self._state_lock:
            cached = campaign_id in self._scenarios
        if cached:
            with self._state_lock:
                self.stats["digest_hits"] += 2
            conn.active_campaign = campaign_id
            conn.send("ready", {"cached": True})
            return
        # Not memoized: try the content-addressed wire store.
        missing = {}
        blobs = {}
        for kind, digest_field in (
            ("netlist", "netlist_digest"),
            ("stimulus", "stimulus_digest"),
        ):
            payload = self._load_artifact(kind, str(header[digest_field]))
            if payload is None:
                missing[kind] = True
                with self._state_lock:
                    self.stats["digest_misses"] += 1
            else:
                blobs[kind] = payload
                with self._state_lock:
                    self.stats["digest_hits"] += 1
        if missing:
            conn.pending_prepare = (header, blobs)
            conn.send("need", missing)
            self._log(
                f"campaign {campaign_id}: requesting "
                + ", ".join(sorted(missing))
            )
            return
        self._finish_prepare(conn, header, blobs)

    def _finish_prepare(self, conn: "_Connection", header: Dict,
                        blobs: Dict[str, bytes]) -> None:
        campaign_id = str(header["campaign_id"])
        with _Heartbeat(conn.sock, conn.send_lock):
            scenario, cycles = self._scenario_from_artifacts(
                header, blobs["netlist"], blobs["stimulus"]
            )
            # Prewarm exactly like a local pool worker: compile, golden
            # trace, fused program, native kernel — all heartbeat-covered.
            worker.prewarm_scenario(scenario)
        with self._state_lock:
            while len(self._scenarios) >= MAX_CACHED_SCENARIOS:
                del self._scenarios[next(iter(self._scenarios))]
            self._scenarios[campaign_id] = (scenario, cycles)
            self.stats["campaigns_prepared"] += 1
        conn.active_campaign = campaign_id
        conn.pending_prepare = None
        conn.send("ready", {"cached": False})
        self._log(
            f"campaign {campaign_id}: prepared "
            f"({len(scenario.faults)} faults, "
            f"{scenario.testbench.num_cycles} cycles)"
        )

    def _artifact(self, conn: "_Connection", header: Dict, blob: bytes) -> None:
        if conn.pending_prepare is None:
            raise CampaignError("artifact frame outside a prepare handshake")
        kind = str(header.get("kind"))
        digest = str(header.get("digest"))
        prepare_header, blobs = conn.pending_prepare
        expected = {
            "netlist": str(prepare_header["netlist_digest"]),
            "stimulus": str(prepare_header["stimulus_digest"]),
        }.get(kind)
        if expected is None or digest != expected:
            raise CampaignError(
                f"unexpected artifact {kind!r} with digest {digest!r}"
            )
        blobs[kind] = blob
        self._store_artifact(digest, blob)
        with self._state_lock:
            self.stats["artifact_bytes_received"] += len(blob)
        if {"netlist", "stimulus"} <= set(blobs):
            self._finish_prepare(conn, prepare_header, blobs)

    # ------------------------------------------------------------------
    # shard grading
    # ------------------------------------------------------------------
    def _shard(self, conn: "_Connection", header: Dict) -> None:
        if conn.active_campaign is None:
            raise CampaignError("shard frame before a successful prepare")
        with self._state_lock:
            entry = self._scenarios.get(conn.active_campaign)
        if entry is None:
            raise CampaignError(
                f"campaign {conn.active_campaign} evicted from this "
                "worker's memo; re-prepare"
            )
        scenario, cycles = entry
        index = int(header["index"])
        start_cycle = int(header["start_cycle"])
        end_cycle = int(header["end_cycle"])
        with _Heartbeat(conn.sock, conn.send_lock):
            delay = float(os.environ.get(TEST_DELAY_ENV, "0") or 0)
            if delay > 0:
                time.sleep(delay)
            record = worker.grade_scenario_window(
                scenario,
                cycles,
                index,
                start_cycle,
                end_cycle,
                engine=str(header.get("engine") or conn.engine),
            )
        with self._state_lock:
            self.stats["shards_graded"] += 1
            self.stats["faults_graded"] += record["num_faults"]
        fail = record["fail_cycles"]
        vanish = record["vanish_cycles"]
        conn.send(
            "result",
            {
                "index": record["index"],
                "start_cycle": record["start_cycle"],
                "end_cycle": record["end_cycle"],
                "num_faults": record["num_faults"],
                "engine": record["engine"],
                "elapsed_s": record["elapsed_s"],
                "fail_bytes": len(fail),
            },
            fail + vanish,
        )

    # ------------------------------------------------------------------
    # status
    # ------------------------------------------------------------------
    def status(self) -> Dict:
        from repro.sim.backends import get_engine
        from repro.sim.backends._native import native_kernel

        stats = get_engine("fused").last_stats or {}
        native = stats.get("native")
        if native is None:
            native = native_kernel() is not None
        with self._state_lock:
            snapshot = dict(self.stats)
            campaigns = list(self._scenarios)
        return {
            "protocol": wire.PROTOCOL_VERSION,
            "pid": os.getpid(),
            "uptime_s": round(time.time() - self.started_at, 1),
            "kernel": {
                "native": bool(native),
                "threads": int(stats.get("threads", 1) or 1),
            },
            "campaigns_cached": campaigns,
            **snapshot,
        }

    # ------------------------------------------------------------------
    # per-connection loop
    # ------------------------------------------------------------------
    def _serve_connection(self, sock: socket.socket, address) -> None:
        conn = _Connection(sock)
        self._log(f"client {address[0]}:{address[1]} connected")
        try:
            with sock:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                while not self._stop.is_set():
                    kind, header, blob = wire.recv_msg(sock)
                    try:
                        if kind == "prepare":
                            conn.engine = str(header.get("engine", ""))
                            self._prepare(conn, header)
                        elif kind == "artifact":
                            self._artifact(conn, header, blob)
                        elif kind == "shard":
                            self._shard(conn, header)
                        elif kind == "ping":
                            conn.send("status", self.status())
                        elif kind == "bye":
                            return
                        else:
                            raise CampaignError(f"unknown frame kind {kind!r}")
                    except ReproError as error:
                        # Protocol-level failure: report it and keep the
                        # connection usable; the client decides whether
                        # to retry elsewhere.
                        conn.send("error", {"message": str(error)})
        except (wire.PeerGone, OSError):
            pass  # client went away; nothing to clean up beyond the socket
        finally:
            self._log(f"client {address[0]}:{address[1]} disconnected")


class _Connection:
    """Per-connection state: send lock, prepare handshake, campaign."""

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self.send_lock = threading.Lock()
        self.active_campaign: Optional[str] = None
        self.pending_prepare: Optional[Tuple[Dict, Dict[str, bytes]]] = None
        self.engine: str = ""

    def send(self, kind: str, header: Optional[Dict] = None,
             blob: bytes = b"") -> None:
        with self.send_lock:
            wire.send_msg(self.sock, kind, header, blob)
