"""Pluggable shard-execution transports for the campaign runner.

* :mod:`repro.run.transport.base` — the :class:`ShardTransport`
  contract (dynamic shard queue, completion-order yielding, re-queue of
  lost windows).
* :mod:`repro.run.transport.local` — ``serial`` (in-process reference)
  and ``local`` (persistent process pool) transports.
* :mod:`repro.run.transport.tcp` — the ``tcp`` transport: remote
  ``repro worker`` daemons with digest-first artifact negotiation,
  heartbeats and fault-tolerant shard retry.
* :mod:`repro.run.transport.daemon` — the worker-side server.
* :mod:`repro.run.transport.wire` — length-prefixed framing and payload
  codecs shared by both sides.

:func:`create_transport` is the registry the runner (and any future
campaign service) resolves names through; new transports register with
:func:`register_transport`.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.errors import CampaignError
from repro.run.transport.base import ShardTransport


def _make_serial(**options) -> ShardTransport:
    from repro.run.transport.local import SerialTransport

    return SerialTransport()


def _make_local(**options) -> ShardTransport:
    from repro.run.transport.local import LocalPoolTransport

    return LocalPoolTransport(
        workers=max(2, int(options.get("workers") or 2)),
        mp_context=options.get("mp_context"),
        progress=options.get("progress"),
    )


def _make_tcp(**options) -> ShardTransport:
    from repro.run.transport.tcp import TcpTransport

    hosts = options.get("hosts")
    if not hosts:
        raise CampaignError(
            "the tcp transport needs worker addresses (--hosts a:port,b:port)"
        )
    kwargs = {}
    if options.get("heartbeat_timeout") is not None:
        kwargs["heartbeat_timeout"] = options["heartbeat_timeout"]
    if options.get("connect_timeout") is not None:
        kwargs["connect_timeout"] = options["connect_timeout"]
    return TcpTransport(
        hosts,
        shard_timeout=options.get("shard_timeout"),
        progress=options.get("progress"),
        **kwargs,
    )


_TRANSPORTS: Dict[str, Callable[..., ShardTransport]] = {
    "serial": _make_serial,
    "local": _make_local,
    "tcp": _make_tcp,
}


def available_transports():
    """Registered transport names, sorted."""
    return sorted(_TRANSPORTS)


def register_transport(name: str, factory: Callable[..., ShardTransport]) -> None:
    """Register (or replace) a transport factory under ``name``."""
    _TRANSPORTS[name] = factory


def create_transport(name: str, **options) -> ShardTransport:
    """Instantiate a registered transport.

    ``options`` carries whatever the runner knows — ``workers``,
    ``hosts``, ``shard_timeout``, ``mp_context``, ``progress`` — and
    each factory picks the fields it understands.
    """
    try:
        factory = _TRANSPORTS[name]
    except KeyError:
        raise CampaignError(
            f"unknown transport {name!r}; expected one of "
            f"{', '.join(available_transports())}"
        ) from None
    return factory(**options)


__all__ = [
    "ShardTransport",
    "available_transports",
    "create_transport",
    "register_transport",
]
