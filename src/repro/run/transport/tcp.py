"""TCP transport: fan one campaign across remote worker daemons.

The client side of the :mod:`repro.run.transport.wire` protocol. One
dispatcher thread per worker address shares a single dynamic shard
queue: an idle worker pulls the next window, so a fast host grades more
of the campaign than a slow one (work-stealing by construction, no
static pre-assignment). Connections are persistent across ``grade``
calls — a warm worker keeps its scenario and simulation caches, and the
digest-first ``prepare`` handshake means repeat campaigns ship ~200
bytes of header instead of the netlist.

Failure policy, per shard:

* **Connection death** (worker SIGKILLed, network cut): the in-flight
  window is re-queued for the surviving workers; the dead host is
  dropped for the rest of this grade call and re-dialled on the next.
* **Silence** (no heartbeat for ``heartbeat_timeout``): same as death —
  a healthy worker heartbeats every ``HEARTBEAT_INTERVAL`` seconds even
  while a long shard grades.
* **Deadline** (``shard_timeout`` exceeded, heartbeats or not): the
  worker is presumed wedged; its socket is closed and the window
  re-queued.

A window that has been attempted on more hosts than exist fails the
campaign loudly — the shard itself is poisonous, and looping forever
would hide it. Completed records are checkpointed by the runner as they
stream back, so a campaign that dies with every worker lost resumes
from the store (on any transport).
"""

from __future__ import annotations

import queue
import socket
import threading
import time
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import CampaignError
from repro.run import worker
from repro.run.store import ShardRecord
from repro.run.transport import wire
from repro.run.transport.base import ShardTransport
from repro.sim.cache import netlist_digest
from repro.netlist.textio import dumps_netlist

#: how often a healthy worker proves liveness mid-shard
HEARTBEAT_INTERVAL = 1.0
#: silence tolerated before a worker is presumed dead (a few missed
#: heartbeats, not one scheduler hiccup)
DEFAULT_HEARTBEAT_TIMEOUT = 10.0
DEFAULT_CONNECT_TIMEOUT = 5.0


class _WorkerLink:
    """One persistent connection to a worker daemon."""

    def __init__(self, label: str, sock: socket.socket):
        self.label = label
        self.sock = sock
        #: campaign ids this link has completed the prepare handshake for
        self.prepared: Set[str] = set()

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


class _CampaignPayload:
    """Client-side wire artifacts of one campaign, built once."""

    def __init__(self, spec):
        scenario = worker.scenario_for(spec)
        self.campaign_id = spec.campaign_id
        self.netlist_digest = netlist_digest(scenario.netlist)
        self.stimulus_digest = scenario.testbench.stimulus_digest()
        self.netlist_text = dumps_netlist(scenario.netlist).encode("utf-8")
        self.stimulus_blob = wire.pack_testbench(scenario.testbench)
        self.prepare_header = {
            "protocol": wire.PROTOCOL_VERSION,
            "campaign_id": self.campaign_id,
            "netlist_digest": self.netlist_digest,
            "stimulus_digest": self.stimulus_digest,
            **spec.wire_fields(),
        }


class TcpTransport(ShardTransport):
    """Dispatch shards to ``repro worker`` daemons over TCP."""

    name = "tcp"

    def __init__(
        self,
        hosts: Sequence,
        shard_timeout: Optional[float] = None,
        heartbeat_timeout: float = DEFAULT_HEARTBEAT_TIMEOUT,
        connect_timeout: float = DEFAULT_CONNECT_TIMEOUT,
        progress: Optional[Callable[[str], None]] = None,
    ):
        self.addresses: List[Tuple[str, int]] = wire.parse_hosts(hosts)
        self.shard_timeout = shard_timeout
        self.heartbeat_timeout = heartbeat_timeout
        self.connect_timeout = connect_timeout
        self.progress = progress
        self._links: Dict[str, Optional[_WorkerLink]] = {}
        self._payloads: Dict[str, _CampaignPayload] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def effective_workers(self) -> int:
        return len(self.addresses)

    def describe(self) -> str:
        return f"tcp ({len(self.addresses)} hosts)"

    def close(self) -> None:
        with self._lock:
            for link in self._links.values():
                if link is not None:
                    try:
                        wire.send_msg(link.sock, "bye")
                    except OSError:
                        pass
                    link.close()
            self._links.clear()

    # ------------------------------------------------------------------
    # connection + campaign negotiation
    # ------------------------------------------------------------------
    def _connect(self, address: Tuple[str, int]) -> _WorkerLink:
        label = f"{address[0]}:{address[1]}"
        sock = socket.create_connection(address, timeout=self.connect_timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return _WorkerLink(label, sock)

    def _link_for(self, address: Tuple[str, int]) -> _WorkerLink:
        label = f"{address[0]}:{address[1]}"
        with self._lock:
            link = self._links.get(label)
        if link is None:
            link = self._connect(address)
            with self._lock:
                self._links[label] = link
        return link

    def _drop_link(self, link: _WorkerLink) -> None:
        link.close()
        with self._lock:
            if self._links.get(link.label) is link:
                self._links[link.label] = None

    def _await(self, sock: socket.socket, kinds: Tuple[str, ...], deadline=None):
        """Next non-heartbeat message, enforcing liveness and deadline."""
        while True:
            timeout = self.heartbeat_timeout
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError("shard deadline exceeded")
                timeout = min(timeout, remaining)
            sock.settimeout(timeout)
            kind, header, blob = wire.recv_msg(sock)
            if kind == "heartbeat":
                continue
            if kind == "error":
                raise CampaignError(
                    f"worker error: {header.get('message', 'unknown')}"
                )
            if kind not in kinds:
                raise wire.WireError(
                    f"unexpected {kind!r} frame (wanted one of {kinds})"
                )
            return kind, header, blob

    def _prepare(self, link: _WorkerLink, payload: _CampaignPayload) -> None:
        """Digest-first campaign negotiation on one link."""
        if payload.campaign_id in link.prepared:
            return
        wire.send_msg(link.sock, "prepare", payload.prepare_header)
        kind, header, _ = self._await(link.sock, ("ready", "need"))
        if kind == "need":
            # Cold worker: stream exactly the artifacts it asked for.
            if header.get("netlist"):
                wire.send_msg(
                    link.sock,
                    "artifact",
                    {"kind": "netlist", "digest": payload.netlist_digest},
                    payload.netlist_text,
                )
            if header.get("stimulus"):
                wire.send_msg(
                    link.sock,
                    "artifact",
                    {"kind": "stimulus", "digest": payload.stimulus_digest},
                    payload.stimulus_blob,
                )
            self._await(link.sock, ("ready",))
        link.prepared.add(payload.campaign_id)

    # ------------------------------------------------------------------
    # grading
    # ------------------------------------------------------------------
    def _payload_for(self, spec) -> _CampaignPayload:
        payload = self._payloads.get(spec.campaign_id)
        if payload is None:
            payload = _CampaignPayload(spec)
            # Bounded like the worker-side scenario memo: payloads pin
            # netlist text + stimulus, so sweeps evict oldest-first.
            while len(self._payloads) >= worker.MAX_CACHED_SCENARIOS:
                del self._payloads[next(iter(self._payloads))]
            self._payloads[spec.campaign_id] = payload
        return payload

    def _grade_one(
        self, link: _WorkerLink, window, attempt: int
    ) -> ShardRecord:
        deadline = (
            None
            if self.shard_timeout is None
            else time.monotonic() + self.shard_timeout
        )
        wire.send_msg(
            link.sock,
            "shard",
            {
                "index": window.index,
                "start_cycle": window.start_cycle,
                "end_cycle": window.end_cycle,
            },
        )
        _, header, blob = self._await(link.sock, ("result",), deadline)
        fail_bytes = int(header["fail_bytes"])
        record = ShardRecord.from_json_obj(
            {
                "index": header["index"],
                "start_cycle": header["start_cycle"],
                "end_cycle": header["end_cycle"],
                "num_faults": header["num_faults"],
                "fail_cycles": blob[:fail_bytes],
                "vanish_cycles": blob[fail_bytes:],
                "engine": header.get("engine", ""),
                "elapsed_s": header.get("elapsed_s", 0.0),
            }
        )
        record.worker = link.label
        record.attempts = attempt
        return record

    def _dispatcher(self, address: Tuple[str, int], payload, shared) -> None:
        label = f"{address[0]}:{address[1]}"
        try:
            link = self._link_for(address)
            self._prepare(link, payload)
        except (OSError, CampaignError) as error:
            with self._lock:
                existing = self._links.get(label)
            if existing is not None:
                self._drop_link(existing)
            shared["errors"].append(f"{label}: {error}")
            if self.progress:
                self.progress(f"[transport:tcp] worker {label} unavailable: {error}")
            return
        pending: "queue.Queue" = shared["pending"]
        while not shared["done"].is_set():
            try:
                window = pending.get(timeout=0.2)
            except queue.Empty:
                continue
            with shared["state_lock"]:
                shared["attempts"][window.index] = (
                    shared["attempts"].get(window.index, 0) + 1
                )
                attempt = shared["attempts"][window.index]
            if attempt > shared["max_attempts"]:
                shared["results"].put(
                    CampaignError(
                        f"shard {window.index} failed on {attempt - 1} "
                        "workers; giving up (the shard itself appears to "
                        "kill or wedge workers)"
                    )
                )
                return
            try:
                record = self._grade_one(link, window, attempt)
            except (OSError, TimeoutError, wire.WireError, CampaignError,
                    ValueError) as error:
                # Re-queue first so a surviving worker can steal the
                # window immediately; then retire this link.
                pending.put(window)
                self._drop_link(link)
                shared["errors"].append(f"{label}: {error}")
                if self.progress:
                    self.progress(
                        f"[transport:tcp] worker {label} lost shard "
                        f"{window.index} ({type(error).__name__}: {error}); "
                        "re-queued"
                    )
                return
            shared["results"].put(record)

    def grade_windows(self, spec, spec_dict, windows) -> Iterator[ShardRecord]:
        windows = list(windows)
        if not windows:
            return
        payload = self._payload_for(spec)
        shared = {
            "pending": queue.Queue(),
            "results": queue.Queue(),
            "attempts": {},
            "errors": [],
            "state_lock": threading.Lock(),
            "done": threading.Event(),
            "max_attempts": len(self.addresses) + 1,
        }
        for window in windows:
            shared["pending"].put(window)
        threads = [
            threading.Thread(
                target=self._dispatcher,
                args=(address, payload, shared),
                name=f"repro-tcp-{address[0]}:{address[1]}",
                daemon=True,
            )
            for address in self.addresses
        ]
        for thread in threads:
            thread.start()
        yielded: Set[int] = set()
        try:
            while len(yielded) < len(windows):
                try:
                    item = shared["results"].get(timeout=0.25)
                except queue.Empty:
                    if not any(thread.is_alive() for thread in threads):
                        remaining = len(windows) - len(yielded)
                        detail = "; ".join(shared["errors"][-3:]) or "no workers reachable"
                        raise CampaignError(
                            f"all {len(self.addresses)} TCP workers lost "
                            f"with {remaining} shard(s) ungraded ({detail}); "
                            "completed shards are checkpointed — restart "
                            "workers (or rerun without --hosts) to resume"
                        )
                    continue
                if isinstance(item, Exception):
                    raise item
                if item.index in yielded:
                    continue  # a raced duplicate; records are identical
                yielded.add(item.index)
                yield item
        finally:
            shared["done"].set()


# ----------------------------------------------------------------------
# fleet probing
# ----------------------------------------------------------------------
def ping_host(
    address: Tuple[str, int], timeout: float = DEFAULT_CONNECT_TIMEOUT
) -> Dict:
    """One worker's status (``alive`` False + ``error`` when unreachable)."""
    label = f"{address[0]}:{address[1]}"
    started = time.perf_counter()
    try:
        with socket.create_connection(address, timeout=timeout) as sock:
            sock.settimeout(timeout)
            wire.send_msg(sock, "ping")
            while True:
                kind, header, _ = wire.recv_msg(sock)
                if kind == "heartbeat":
                    continue
                if kind != "status":
                    raise wire.WireError(f"unexpected {kind!r} reply to ping")
                break
            try:
                wire.send_msg(sock, "bye")
            except OSError:
                pass
    except (OSError, CampaignError) as error:
        return {"host": label, "alive": False, "error": str(error)}
    header["host"] = label
    header["alive"] = True
    header["rtt_ms"] = round((time.perf_counter() - started) * 1e3, 2)
    return header


def ping_hosts(hosts, timeout: float = DEFAULT_CONNECT_TIMEOUT) -> List[Dict]:
    """Status of every worker in a ``--hosts`` fleet, in given order."""
    return [ping_host(address, timeout) for address in wire.parse_hosts(hosts)]
