"""Resumable campaign results store.

One directory per campaign (``<root>/<campaign-id>/``) holding:

* ``spec.json`` — the manifest: store format version, the spec's oracle
  key and the shard plan. Opening an existing store re-validates the
  manifest so a resumed run cannot silently merge shards graded under a
  different configuration.
* ``shards.jsonl`` — one JSON line per *completed* shard with its
  fail/vanish cycles. Appends are flushed per record, so a campaign
  killed mid-run loses at most the shard being written; a truncated
  final line is detected and ignored on resume.

The store persists grading outcomes only — the expensive, restartable
part of a campaign. Cycle accounting is recomputed from the merged
oracle in microseconds, which keeps the store technique-independent:
one store serves mask-scan, state-scan and time-mux alike (the paper's
oracle-sharing observation, made durable).
"""

from __future__ import annotations

import json
import os
from array import array
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import CampaignError

#: Bumped to 2 when the manifest gained the ``fault`` section (fault
#: model + sampling identity). Older stores predate the fault-model
#: subsystem and cannot prove what they graded, so they are refused.
STORE_VERSION = 2
MANIFEST_FILE = "spec.json"
SHARDS_FILE = "shards.jsonl"


@dataclass
class ShardRecord:
    """Grading outcomes of one contiguous cycle-window of faults.

    ``worker`` names who graded the shard (``inline``, ``pool:<n>`` or a
    TCP worker's ``host:port``) and ``attempts`` how many dispatch tries
    the window took — 1 everywhere except a shard re-queued off a dead
    or hung worker. Both are provenance only: merge semantics depend on
    neither, and records written before these fields existed load with
    the defaults.
    """

    index: int
    start_cycle: int
    end_cycle: int
    num_faults: int
    fail_cycles: List[int] = field(default_factory=list)
    vanish_cycles: List[int] = field(default_factory=list)
    engine: str = ""
    elapsed_s: float = 0.0
    worker: str = ""
    attempts: int = 1

    def to_json_line(self) -> str:
        return json.dumps(
            {
                "index": self.index,
                "start_cycle": self.start_cycle,
                "end_cycle": self.end_cycle,
                "num_faults": self.num_faults,
                "fail_cycles": self.fail_cycles,
                "vanish_cycles": self.vanish_cycles,
                "engine": self.engine,
                "elapsed_s": round(self.elapsed_s, 6),
                "worker": self.worker,
                "attempts": self.attempts,
            },
            sort_keys=True,
        )

    @staticmethod
    def _cycle_list(value) -> List[int]:
        """Cycle outcomes, from JSON lists or the workers' packed-int32
        IPC form (:func:`repro.run.worker.grade_window`)."""
        if isinstance(value, (bytes, bytearray)):
            unpacked = array("i")
            unpacked.frombytes(value)
            return unpacked.tolist()
        return [int(x) for x in value]

    @classmethod
    def from_json_obj(cls, obj: Dict) -> "ShardRecord":
        record = cls(
            index=int(obj["index"]),
            start_cycle=int(obj["start_cycle"]),
            end_cycle=int(obj["end_cycle"]),
            num_faults=int(obj["num_faults"]),
            fail_cycles=cls._cycle_list(obj["fail_cycles"]),
            vanish_cycles=cls._cycle_list(obj["vanish_cycles"]),
            engine=str(obj.get("engine", "")),
            elapsed_s=float(obj.get("elapsed_s", 0.0)),
            worker=str(obj.get("worker", "")),
            attempts=int(obj.get("attempts", 1)),
        )
        if (
            len(record.fail_cycles) != record.num_faults
            or len(record.vanish_cycles) != record.num_faults
        ):
            raise ValueError("shard record arrays disagree with num_faults")
        return record


class ResultsStore:
    """JSONL persistence for one campaign's completed shards."""

    def __init__(self, directory: str):
        self.directory = directory
        #: the shard plan in force, as (start_cycle, end_cycle) pairs —
        #: set by :meth:`open` (the stored plan wins over the proposed
        #: one, so a resumed campaign keeps merging cleanly even when
        #: the caller's worker count changed).
        self.windows: List[Tuple[int, int]] = []

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls,
        root: str,
        oracle_key: Dict,
        campaign_id: str,
        windows: Sequence[Tuple[int, int]],
        fresh: bool = False,
        fault_key: Optional[Dict] = None,
    ) -> "ResultsStore":
        """Open (creating if needed) the store for one campaign.

        ``windows`` is the caller's proposed shard plan as
        ``(start_cycle, end_cycle)`` pairs. A store that already holds a
        *different* plan for the same oracle keeps its own: shard
        records only merge under the plan they were graded with, and a
        changed worker count must not invalidate completed work. The
        adopted plan is exposed as ``store.windows``. ``fresh`` discards
        any existing records and re-pins the proposed plan. A store for
        a different *oracle* (different circuit/stimulus/faults) is an
        error.

        ``fault_key`` (fault model, sampling method, sample size, seed)
        is recorded in the manifest and re-validated field by field on
        resume: shard records are meaningless under a different fault
        population, and the mismatch message must say *what* differs —
        a generic "different configuration" would leave the operator
        diffing JSON by hand.
        """
        directory = os.path.join(root, campaign_id)
        os.makedirs(directory, exist_ok=True)
        store = cls(directory)
        proposed = [(int(start), int(end)) for start, end in windows]
        manifest = {
            "version": STORE_VERSION,
            "oracle": oracle_key,
            "fault": fault_key,
            "windows": [list(pair) for pair in proposed],
        }
        existing = store._read_manifest()
        if existing is None or fresh:
            store.reset()
            store._write_manifest(manifest)
            store.windows = proposed
            return store
        if existing.get("version") != STORE_VERSION:
            raise CampaignError(
                f"results store {directory} was written by store format "
                f"version {existing.get('version')!r} (this build writes "
                f"{STORE_VERSION}); its shards cannot be trusted to match "
                "the current fault population — delete the store directory "
                "or rerun with --no-resume to regrade"
            )
        store._check_fault_key(existing.get("fault"), fault_key, directory)
        if existing.get("oracle") != oracle_key:
            raise CampaignError(
                f"results store {directory} was created for a different "
                "campaign configuration; delete it (or pick another "
                "--store root) to regrade"
            )
        stored = existing.get("windows") or []
        store.windows = [(int(start), int(end)) for start, end in stored]
        return store

    @staticmethod
    def _check_fault_key(
        stored: Optional[Dict], requested: Optional[Dict], directory: str
    ) -> None:
        """Refuse to adopt shards graded under a different fault model or
        sampling configuration, naming each differing field."""
        if stored is None or requested is None:
            if stored != requested:
                raise CampaignError(
                    f"results store {directory} does not record the same "
                    "fault-population identity as this campaign; delete "
                    "the store directory or rerun with --no-resume to "
                    "regrade"
                )
            return
        differing = [
            f"{field_name}: store has {stored.get(field_name)!r}, campaign "
            f"wants {requested.get(field_name)!r}"
            for field_name in sorted(set(stored) | set(requested))
            if stored.get(field_name) != requested.get(field_name)
        ]
        if differing:
            raise CampaignError(
                f"results store {directory} holds shards graded under a "
                "different fault population (" + "; ".join(differing) + "); "
                "its fail/vanish records cannot be merged into this "
                "campaign — delete the store directory, choose another "
                "--store root, or rerun with --no-resume to regrade"
            )

    @property
    def manifest_path(self) -> str:
        return os.path.join(self.directory, MANIFEST_FILE)

    @property
    def shards_path(self) -> str:
        return os.path.join(self.directory, SHARDS_FILE)

    def _read_manifest(self) -> Optional[Dict]:
        try:
            with open(self.manifest_path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except FileNotFoundError:
            return None
        except json.JSONDecodeError:
            raise CampaignError(
                f"corrupt store manifest {self.manifest_path}; delete the "
                "store directory to regrade"
            ) from None

    def _write_manifest(self, manifest: Dict) -> None:
        with open(self.manifest_path, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
            handle.write("\n")

    # ------------------------------------------------------------------
    # shard records
    # ------------------------------------------------------------------
    def completed(self) -> Dict[int, ShardRecord]:
        """All intact shard records, keyed by shard index.

        Tolerates a truncated or garbled trailing line (the signature of
        a kill mid-append): bad lines are skipped, not fatal. Duplicate
        indices keep the last record.
        """
        records: Dict[int, ShardRecord] = {}
        try:
            handle = open(self.shards_path, "r", encoding="utf-8")
        except FileNotFoundError:
            return records
        with handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = ShardRecord.from_json_obj(json.loads(line))
                except (ValueError, KeyError, TypeError):
                    continue  # partial write from an interrupted run
                records[record.index] = record
        return records

    def append(self, record: ShardRecord) -> None:
        """Durably append one completed shard."""
        with open(self.shards_path, "a", encoding="utf-8") as handle:
            handle.write(record.to_json_line() + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def reset(self) -> None:
        """Drop all shard records (keeps the manifest)."""
        try:
            os.remove(self.shards_path)
        except FileNotFoundError:
            pass

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def manifest(self) -> Optional[Dict]:
        """The store manifest (version, oracle key, fault key, windows),
        or ``None`` when the directory holds no ``spec.json``. The read
        side of the export path — consumers that re-derive a campaign
        from a store (``repro db import``) start here."""
        return self._read_manifest()

    def iter_shards(self) -> Iterator[ShardRecord]:
        """Intact shard records in shard-index order.

        The streaming export iterator: same tolerance as
        :meth:`completed` (truncated / garbled lines are skipped,
        duplicate indices keep the last record) but yields in index
        order so consumers rebuilding the fault-list order — the SQLite
        importer — can concatenate windows directly.
        """
        records = self.completed()
        for index in sorted(records):
            yield records[index]


def discover_stores(root: str) -> Iterator["ResultsStore"]:
    """Every campaign store under ``root``, in directory-name order.

    A campaign store is any subdirectory holding a readable
    ``spec.json`` manifest; anything else (stray files, half-created
    directories) is skipped rather than fatal — an export sweep over a
    long-lived store root should report what it *can* read.
    """
    try:
        entries = sorted(os.listdir(root))
    except FileNotFoundError:
        return
    for entry in entries:
        directory = os.path.join(root, entry)
        if not os.path.isdir(directory):
            continue
        store = ResultsStore(directory)
        try:
            manifest = store.manifest()
        except CampaignError:
            continue  # unreadable manifest: not exportable, not fatal
        if manifest is not None:
            yield store
