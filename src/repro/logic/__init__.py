"""Three-valued (0/1/X) logic values, truth tables and boolean expressions.

This is the lowest layer of the stack: everything above (netlists,
simulators, the LUT mapper) evaluates gates through the functions defined
here, so there is exactly one definition of what each cell computes.
"""

from repro.logic.expr import Expr, Lit, Op, Var, cofactor, eval_expr, expr_support
from repro.logic.tables import (
    GATE_ARITY,
    GATE_EVAL,
    GATE_NAMES,
    eval_gate,
    truth_table,
)
from repro.logic.values import X, is_known, resolve3, v3_and, v3_not, v3_or, v3_xor

__all__ = [
    "Expr",
    "GATE_ARITY",
    "GATE_EVAL",
    "GATE_NAMES",
    "Lit",
    "Op",
    "Var",
    "X",
    "cofactor",
    "eval_expr",
    "eval_gate",
    "expr_support",
    "is_known",
    "resolve3",
    "truth_table",
    "v3_and",
    "v3_not",
    "v3_or",
    "v3_xor",
]
