"""A small boolean-expression IR.

The LUT mapper represents each mapped cone as an expression over its cut
leaves, and the RTL layer lowers word operators through expressions before
emitting gates. Expressions are immutable trees of :class:`Var`,
:class:`Lit` and :class:`Op` nodes.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Sequence, Tuple, Union

from repro.logic.tables import eval_gate
from repro.logic.values import Value


class Expr:
    """Base class for boolean expressions. Use the factory helpers below."""

    def __and__(self, other: "Expr") -> "Expr":
        return Op("and", (self, other))

    def __or__(self, other: "Expr") -> "Expr":
        return Op("or", (self, other))

    def __xor__(self, other: "Expr") -> "Expr":
        return Op("xor", (self, other))

    def __invert__(self) -> "Expr":
        return Op("inv", (self,))


class Var(Expr):
    """A free variable, identified by name."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:
        return f"Var({self.name!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Var) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("var", self.name))


class Lit(Expr):
    """A constant 0 or 1."""

    __slots__ = ("value",)

    def __init__(self, value: int):
        if value not in (0, 1):
            raise ValueError(f"literal must be 0 or 1, got {value!r}")
        self.value = value

    def __repr__(self) -> str:
        return f"Lit({self.value})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Lit) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("lit", self.value))


class Op(Expr):
    """A gate application: ``Op('and', (a, b))``."""

    __slots__ = ("gate", "args")

    def __init__(self, gate: str, args: Sequence[Expr]):
        self.gate = gate
        self.args: Tuple[Expr, ...] = tuple(args)

    def __repr__(self) -> str:
        return f"Op({self.gate!r}, {self.args!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Op)
            and other.gate == self.gate
            and other.args == self.args
        )

    def __hash__(self) -> int:
        return hash(("op", self.gate, self.args))


def mux(select: Expr, if0: Expr, if1: Expr) -> Expr:
    """Build a 2:1 mux expression (select==1 picks ``if1``)."""
    return Op("mux2", (select, if0, if1))


def eval_expr(expr: Expr, env: Dict[str, Value]) -> Value:
    """Evaluate an expression under a variable assignment.

    Unbound variables raise ``KeyError`` — an unbound input is a bug at
    every call site we have.
    """
    if isinstance(expr, Lit):
        return expr.value
    if isinstance(expr, Var):
        return env[expr.name]
    if isinstance(expr, Op):
        return eval_gate(expr.gate, [eval_expr(arg, env) for arg in expr.args])
    raise TypeError(f"not an expression: {expr!r}")


def expr_support(expr: Expr) -> FrozenSet[str]:
    """Return the set of variable names the expression depends on
    (syntactic support)."""
    if isinstance(expr, Lit):
        return frozenset()
    if isinstance(expr, Var):
        return frozenset([expr.name])
    if isinstance(expr, Op):
        support: FrozenSet[str] = frozenset()
        for arg in expr.args:
            support |= expr_support(arg)
        return support
    raise TypeError(f"not an expression: {expr!r}")


def cofactor(expr: Expr, name: str, value: int) -> Expr:
    """Shannon cofactor: substitute ``name = value`` and fold constants
    (full evaluation when all inputs are known, plus dominance folding —
    an AND with a 0 input is 0, an OR with a 1 input is 1)."""
    if isinstance(expr, Lit):
        return expr
    if isinstance(expr, Var):
        return Lit(value) if expr.name == name else expr
    if isinstance(expr, Op):
        args = [cofactor(arg, name, value) for arg in expr.args]
        return _fold(expr.gate, args)
    raise TypeError(f"not an expression: {expr!r}")


def _fold(gate: str, args: Sequence[Expr]) -> Expr:
    """Constant-fold one gate application as far as the literals allow."""
    if all(isinstance(arg, Lit) for arg in args):
        result = eval_gate(gate, [arg.value for arg in args])
        if result in (0, 1):
            return Lit(int(result))
    literals = [arg.value for arg in args if isinstance(arg, Lit)]
    unknown = [arg for arg in args if not isinstance(arg, Lit)]
    if gate in ("and", "nand") and 0 in literals:
        return Lit(0 if gate == "and" else 1)
    if gate in ("or", "nor") and 1 in literals:
        return Lit(1 if gate == "or" else 0)
    if gate in ("and", "or") and len(unknown) == 1 and all(
        lit == (1 if gate == "and" else 0) for lit in literals
    ):
        return unknown[0]
    if gate == "mux2" and isinstance(args[0], Lit):
        return args[2] if args[0].value else args[1]
    return Op(gate, args)


def expr_truth_table(expr: Expr, order: Sequence[str]) -> int:
    """Truth table of ``expr`` over variables listed in ``order``
    (``order[0]`` is the least-significant input bit)."""
    table = 0
    width = len(order)
    for row in range(1 << width):
        env = {name: (row >> bit) & 1 for bit, name in enumerate(order)}
        if eval_expr(expr, env) == 1:
            table |= 1 << row
    return table
