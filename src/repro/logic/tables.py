"""Combinational gate semantics.

One table (`GATE_EVAL`) defines the function each gate type computes over
three-valued inputs; everything in the library that needs gate semantics —
the cycle simulator, the event simulator, netlist constant propagation, the
LUT mapper's truth-table extraction — comes through here.

Gate types are lowercase strings. Sequential elements (``dff``) and ports
are *not* listed here; they are handled structurally by the netlist layer.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

from repro.logic.values import X, Value, is_known, v3_and, v3_not, v3_or, v3_xor


def _eval_and(inputs: Sequence[Value]) -> Value:
    result: Value = 1
    for value in inputs:
        result = v3_and(result, value)
        if result == 0:
            return 0
    return result


def _eval_or(inputs: Sequence[Value]) -> Value:
    result: Value = 0
    for value in inputs:
        result = v3_or(result, value)
        if result == 1:
            return 1
    return result


def _eval_nand(inputs: Sequence[Value]) -> Value:
    return v3_not(_eval_and(inputs))


def _eval_nor(inputs: Sequence[Value]) -> Value:
    return v3_not(_eval_or(inputs))


def _eval_xor(inputs: Sequence[Value]) -> Value:
    result: Value = 0
    for value in inputs:
        result = v3_xor(result, value)
    return result


def _eval_xnor(inputs: Sequence[Value]) -> Value:
    return v3_not(_eval_xor(inputs))


def _eval_buf(inputs: Sequence[Value]) -> Value:
    (value,) = inputs
    if value == 0 or value == 1:
        return value
    return X


def _eval_inv(inputs: Sequence[Value]) -> Value:
    (value,) = inputs
    return v3_not(value)


def _eval_mux2(inputs: Sequence[Value]) -> Value:
    """2:1 multiplexer; inputs are (select, d0, d1) -> d1 if select else d0.

    An X select still yields a known output when both data inputs agree —
    the standard optimistic mux semantics.
    """
    select, d0, d1 = inputs
    if select == 0:
        return _eval_buf([d0])
    if select == 1:
        return _eval_buf([d1])
    if is_known(d0) and d0 == d1:
        return d0
    return X


def _eval_const0(inputs: Sequence[Value]) -> Value:
    if inputs:
        raise ValueError("const0 takes no inputs")
    return 0


def _eval_const1(inputs: Sequence[Value]) -> Value:
    if inputs:
        raise ValueError("const1 takes no inputs")
    return 1


GATE_EVAL: Dict[str, Callable[[Sequence[Value]], Value]] = {
    "and": _eval_and,
    "or": _eval_or,
    "nand": _eval_nand,
    "nor": _eval_nor,
    "xor": _eval_xor,
    "xnor": _eval_xnor,
    "buf": _eval_buf,
    "inv": _eval_inv,
    "mux2": _eval_mux2,
    "const0": _eval_const0,
    "const1": _eval_const1,
}

# arity: (min_inputs, max_inputs); None means unbounded.
GATE_ARITY: Dict[str, tuple] = {
    "and": (2, None),
    "or": (2, None),
    "nand": (2, None),
    "nor": (2, None),
    "xor": (2, None),
    "xnor": (2, None),
    "buf": (1, 1),
    "inv": (1, 1),
    "mux2": (3, 3),
    "const0": (0, 0),
    "const1": (0, 0),
}

GATE_NAMES = tuple(sorted(GATE_EVAL))


def eval_gate(gate_type: str, inputs: Sequence[Value]) -> Value:
    """Evaluate one gate over three-valued inputs.

    Raises ``ValueError`` for unknown gate types or arity violations so that
    simulator bugs surface immediately rather than as silent X values.
    """
    try:
        fn = GATE_EVAL[gate_type]
    except KeyError:
        raise ValueError(f"unknown gate type: {gate_type!r}") from None
    low, high = GATE_ARITY[gate_type]
    if len(inputs) < low or (high is not None and len(inputs) > high):
        raise ValueError(
            f"{gate_type} expects between {low} and {high or 'inf'} inputs, "
            f"got {len(inputs)}"
        )
    return fn(inputs)


def truth_table(gate_type: str, arity: int) -> int:
    """Return the truth table of a gate as an integer bitmask.

    Bit ``i`` of the result is the gate output when the inputs spell the
    binary number ``i`` (input 0 is the least-significant bit). Used by the
    LUT mapper to fold mapped cones into single LUT functions.
    """
    low, high = GATE_ARITY[gate_type]
    if arity < low or (high is not None and arity > high):
        raise ValueError(f"{gate_type} cannot have arity {arity}")
    table = 0
    for row in range(1 << arity):
        inputs = [(row >> bit) & 1 for bit in range(arity)]
        if eval_gate(gate_type, inputs) == 1:
            table |= 1 << row
    return table
