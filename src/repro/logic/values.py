"""Three-valued logic: 0, 1 and X (unknown).

The cycle simulator starts every flip-flop at X unless a reset value is
given, exactly like an unconfigured FPGA flop, and X-propagation tells us
which circuit outputs are defined before reset completes. The value X is
represented by the singleton string ``"x"`` so that 0/1 stay plain ints and
the common two-valued fast paths never box values.
"""

from __future__ import annotations

from typing import Iterable, Union

X = "x"
Value = Union[int, str]

_VALID = (0, 1, X)


def is_known(value: Value) -> bool:
    """True when ``value`` is a definite 0 or 1."""
    return value == 0 or value == 1


def _check(value: Value) -> Value:
    if value not in _VALID:
        raise ValueError(f"not a logic value: {value!r}")
    return value


def v3_not(value: Value) -> Value:
    """Three-valued NOT."""
    if value == 0:
        return 1
    if value == 1:
        return 0
    _check(value)
    return X


def v3_and(left: Value, right: Value) -> Value:
    """Three-valued AND: 0 dominates X."""
    if left == 0 or right == 0:
        return 0
    if left == 1 and right == 1:
        return 1
    _check(left), _check(right)
    return X


def v3_or(left: Value, right: Value) -> Value:
    """Three-valued OR: 1 dominates X."""
    if left == 1 or right == 1:
        return 1
    if left == 0 and right == 0:
        return 0
    _check(left), _check(right)
    return X


def v3_xor(left: Value, right: Value) -> Value:
    """Three-valued XOR: any X input makes the result X."""
    if is_known(left) and is_known(right):
        return left ^ right
    _check(left), _check(right)
    return X


def resolve3(values: Iterable[Value]) -> Value:
    """Resolve multiple drivers on a net (used only for validation
    diagnostics — well-formed netlists are single-driver).

    Agreement on a known value resolves to it; any disagreement or any X
    resolves to X.
    """
    result: Value | None = None
    for value in values:
        _check(value)
        if result is None:
            result = value
        elif result != value:
            return X
    if result is None:
        raise ValueError("cannot resolve an empty driver set")
    return result
