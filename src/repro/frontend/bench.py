"""ISCAS-89 ``.bench`` netlist parser.

The ``.bench`` format is the lingua franca of the ISCAS-85/89 benchmark
suites (and of most academic test-generation tools since)::

    # c17 — smallest ISCAS-85 benchmark
    INPUT(1)
    INPUT(2)
    OUTPUT(22)
    10 = NAND(1, 3)
    22 = NAND(10, 16)
    G5 = DFF(G10)

Grammar subset accepted here (everything the ISCAS-85/89 distributions
use): ``INPUT(net)``, ``OUTPUT(net)`` and ``out = OP(in, ...)`` where
``OP`` is one of AND / NAND / OR / NOR / NOT / BUFF / XOR / XNOR / DFF
(case-insensitive; ``BUF`` accepted as an alias). ``#`` starts a
comment. DFFs power up at 0 — the format does not model reset values,
and fault grading needs a known start state.

The parser builds an n-ary :class:`~repro.netlist.netlist.Netlist`
directly (one instance per assignment, named after the driven net) and
leaves arity reduction to :func:`repro.frontend.lower.lower_gates`, so
the raw parse stays a faithful record of the file.
"""

from __future__ import annotations

import re

from repro.errors import NetlistError, ParseError
from repro.netlist.netlist import Netlist

#: .bench operator -> repro gate type. DFF is handled structurally.
BENCH_GATE_TYPES = {
    "AND": "and",
    "NAND": "nand",
    "OR": "or",
    "NOR": "nor",
    "NOT": "inv",
    "BUFF": "buf",
    "BUF": "buf",
    "XOR": "xor",
    "XNOR": "xnor",
}

#: minimum input counts per .bench operator (DFF/NOT/BUFF are unary).
_MIN_INPUTS = {"NOT": 1, "BUFF": 1, "BUF": 1, "DFF": 1}

_PORT_RE = re.compile(r"^(INPUT|OUTPUT)\s*\(\s*([^\s()]+)\s*\)$", re.IGNORECASE)
_ASSIGN_RE = re.compile(
    r"^([^\s=()]+)\s*=\s*([A-Za-z]+)\s*\(\s*([^()]*?)\s*\)$"
)


def parse_bench(text: str, name: str = "bench") -> Netlist:
    """Parse ``.bench`` text into an (unlowered, unvalidated) netlist.

    ``name`` becomes the netlist name — the format itself carries none,
    so callers pass the file stem. Structural errors (double-driven
    nets, duplicate ports) are reported as :class:`ParseError` with the
    offending line.
    """
    netlist = Netlist(name)
    declared_outputs: list[str] = []
    saw_anything = False

    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        saw_anything = True

        port = _PORT_RE.match(line)
        if port is not None:
            keyword, net = port.group(1).upper(), port.group(2)
            try:
                if keyword == "INPUT":
                    netlist.add_input(net)
                else:
                    declared_outputs.append(_checked_output(net, declared_outputs, line_number))
            except NetlistError as error:
                raise ParseError(str(error), line_number) from error
            continue

        assign = _ASSIGN_RE.match(line)
        if assign is None:
            raise ParseError(
                "expected INPUT(net), OUTPUT(net) or net = OP(in, ...)",
                line_number,
                _first_token_column(raw_line),
            )
        output, op, operand_text = assign.groups()
        op_upper = op.upper()
        inputs = [token.strip() for token in operand_text.split(",") if token.strip()]
        if operand_text.strip() and len(inputs) != operand_text.count(",") + 1:
            raise ParseError(
                f"empty operand in {op_upper}(...)",
                line_number,
                raw_line.index("(") + 1,
            )

        if op_upper == "DFF":
            if len(inputs) != 1:
                raise ParseError(
                    f"DFF takes exactly one input, got {len(inputs)}",
                    line_number,
                )
            try:
                netlist.add_dff(f"ff${output}", inputs[0], output, init=0)
            except NetlistError as error:
                raise ParseError(str(error), line_number) from error
            continue

        gate_type = BENCH_GATE_TYPES.get(op_upper)
        if gate_type is None:
            leading = len(raw_line) - len(raw_line.lstrip())
            raise ParseError(
                f"unknown .bench operator {op!r} (expected one of "
                f"{', '.join(sorted(BENCH_GATE_TYPES))} or DFF)",
                line_number,
                leading + assign.start(2) + 1,
            )
        minimum = _MIN_INPUTS.get(op_upper, 2)
        if len(inputs) < minimum:
            raise ParseError(
                f"{op_upper} needs at least {minimum} input(s), got {len(inputs)}",
                line_number,
            )
        if gate_type in ("buf", "inv") and len(inputs) != 1:
            raise ParseError(
                f"{op_upper} takes exactly one input, got {len(inputs)}",
                line_number,
            )
        try:
            netlist.add_gate(f"g${output}", gate_type, inputs, output)
        except NetlistError as error:
            raise ParseError(str(error), line_number) from error

    if not saw_anything:
        raise ParseError("empty .bench file")
    for net in declared_outputs:
        netlist.add_output(net)
    return netlist


def _checked_output(net: str, declared: list, line_number: int) -> str:
    if net in declared:
        raise ParseError(f"duplicate OUTPUT({net})", line_number)
    return net


def _first_token_column(raw_line: str) -> int:
    stripped = raw_line.lstrip()
    return len(raw_line) - len(stripped) + 1


def dumps_bench(netlist: Netlist) -> str:
    """Serialise a netlist as ``.bench`` text.

    Only the gate types the format names survive (``mux2`` and constant
    gates have no .bench spelling); used by the corpus generator and the
    round-trip tests.
    """
    reverse = {"and": "AND", "nand": "NAND", "or": "OR", "nor": "NOR",
               "inv": "NOT", "buf": "BUFF", "xor": "XOR", "xnor": "XNOR"}
    lines = [f"# {netlist.name}"]
    for net in netlist.inputs:
        lines.append(f"INPUT({net})")
    for net in netlist.outputs:
        lines.append(f"OUTPUT({net})")
    for dff in netlist.dffs.values():
        lines.append(f"{dff.q} = DFF({dff.d})")
    for gate in netlist.gates.values():
        op = reverse.get(gate.gate_type)
        if op is None:
            raise ParseError(
                f"gate type {gate.gate_type!r} has no .bench spelling"
            )
        lines.append(f"{gate.output} = {op}({', '.join(gate.inputs)})")
    return "\n".join(lines) + "\n"
