"""Structural BLIF netlist parser (Berkeley Logic Interchange Format).

The subset accepted is the flat, structural core every logic-synthesis
tool emits (SIS, ABC, mockturtle, yosys ``write_blif``)::

    .model s344
    .inputs a b \\
            c
    .outputs y
    .latch d q re clk 0
    .names a b n1     # AND cover
    11 1
    .names n1 c y     # OR cover
    1- 1
    -1 1
    .end

Supported directives: ``.model``, ``.inputs``, ``.outputs``, ``.latch``
(edge-triggered ``re``/``fe`` or the short control-less forms) and
``.names`` with a sum-of-products cover. ``#`` comments and ``\\`` line
continuations are handled. Hierarchy (``.subckt``), a second ``.model``
and level-sensitive latches are rejected with a :class:`ParseError`
naming the line.

Covers lower straight to repro primitives: each cube becomes an AND of
(possibly inverted) literals, cubes OR together, and an off-set cover
(output column ``0``) inverts the result. Degenerate covers map to
``buf``/``inv``/``const0``/``const1``. The resulting gates are already
2-input-or-smaller except the cube AND / cube OR reductions, which
:func:`repro.frontend.lower.lower_gates` then tree-decomposes.

Latch init values follow the BLIF encoding — ``0``, ``1``, ``2``
(don't-care) and ``3`` (unknown) — with one documented deviation: 2, 3
and *unspecified* all power up at 0, because fault grading compares
against a golden run and needs a known start state.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from repro.errors import NetlistError, ParseError
from repro.netlist.netlist import Netlist

_EDGE_LATCH_TYPES = ("re", "fe")
_LEVEL_LATCH_TYPES = ("ah", "al", "as")


def _logical_lines(text: str) -> Iterator[Tuple[int, str]]:
    """Yield (first line number, joined text) after stripping comments
    and folding ``\\`` continuations."""
    pending: List[str] = []
    pending_start = 0
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].rstrip()
        if line.endswith("\\"):
            if not pending:
                pending_start = line_number
            pending.append(line[:-1])
            continue
        if pending:
            pending.append(line)
            yield pending_start, " ".join(pending)
            pending = []
            continue
        yield line_number, line
    if pending:  # trailing continuation: still hand the text over
        yield pending_start, " ".join(pending)


class _CoverBuilder:
    """Accumulates one ``.names`` cover, then lowers it to gates.

    ``inverters`` is a file-wide memo (source net -> inverted net)
    shared across covers, so testing the same input in the 0 polarity
    many times costs one inverter, not one per literal occurrence.
    """

    def __init__(
        self,
        inputs: List[str],
        output: str,
        line_number: int,
        inverters: Dict[str, str],
    ):
        self.inputs = inputs
        self.output = output
        self.line_number = line_number
        self.inverters = inverters
        self.rows: List[Tuple[str, str]] = []

    def add_row(self, tokens: List[str], line_number: int) -> None:
        if len(self.inputs) == 0:
            if len(tokens) != 1 or tokens[0] not in ("0", "1"):
                raise ParseError(
                    "constant cover row must be a single 0 or 1", line_number
                )
            plane, value = "", tokens[0]
        else:
            if len(tokens) != 2:
                raise ParseError(
                    "cover row must be <input-plane> <output-bit>", line_number
                )
            plane, value = tokens
            if len(plane) != len(self.inputs):
                raise ParseError(
                    f"cover row has {len(plane)} literals for "
                    f"{len(self.inputs)} inputs",
                    line_number,
                )
            bad = next((ch for ch in plane if ch not in "01-"), None)
            if bad is not None:
                raise ParseError(
                    f"bad cover literal {bad!r} (expected 0, 1 or -)",
                    line_number,
                    plane.index(bad) + 1,
                )
        if value not in ("0", "1"):
            raise ParseError(f"bad cover output bit {value!r}", line_number)
        if self.rows and self.rows[0][1] != value:
            raise ParseError(
                "cover mixes on-set (1) and off-set (0) rows", line_number
            )
        self.rows.append((plane, value))

    def emit(self, netlist: Netlist) -> None:
        """Lower the accumulated cover into gates driving ``output``."""
        out = self.output
        prefix = f"n${out}"
        try:
            if not self.inputs:
                value = self.rows[0][1] if self.rows else "0"
                netlist.add_gate(
                    f"g${out}", "const1" if value == "1" else "const0", [], out
                )
                return
            if not self.rows:
                netlist.add_gate(f"g${out}", "const0", [], out)
                return
            off_set = self.rows[0][1] == "0"
            cube_nets: List[str] = []
            for cube_index, (plane, _) in enumerate(self.rows):
                literals: List[str] = []
                for position, literal in enumerate(plane):
                    if literal == "-":
                        continue
                    net = self.inputs[position]
                    if literal == "0":
                        inverted = self.inverters.get(net)
                        if inverted is None:
                            inverted = netlist.fresh_net(f"{prefix}.inv")
                            netlist.add_gate(
                                f"g${inverted}", "inv", [net], inverted
                            )
                            self.inverters[net] = inverted
                        net = inverted
                    literals.append(net)
                cube_nets.append(
                    self._reduce(netlist, "and", literals, f"{prefix}.c{cube_index}")
                )
            polarity = "inv" if off_set else "buf"
            if len(cube_nets) == 1:
                netlist.add_gate(f"g${out}", polarity, [cube_nets[0]], out)
            elif off_set:
                netlist.add_gate(f"g${out}", "nor", cube_nets, out)
            else:
                netlist.add_gate(f"g${out}", "or", cube_nets, out)
        except NetlistError as error:
            raise ParseError(str(error), self.line_number) from error

    def _reduce(
        self, netlist: Netlist, gate_type: str, nets: List[str], hint: str
    ) -> str:
        """AND together a cube's literals (or pass a lone literal through);
        an all-don't-care cube is the constant 1."""
        if not nets:
            const = netlist.fresh_net(f"{hint}.one")
            netlist.add_gate(f"g${const}", "const1", [], const)
            return const
        if len(nets) == 1:
            return nets[0]
        out = netlist.fresh_net(hint)
        netlist.add_gate(f"g${out}", gate_type, nets, out)
        return out


def parse_blif(text: str, name: str = "blif") -> Netlist:
    """Parse structural BLIF text into an (unlowered, unvalidated) netlist.

    ``name`` is the fallback netlist name when the file has no
    ``.model`` line.
    """
    netlist: Netlist | None = None
    declared_outputs: List[str] = []
    cover: _CoverBuilder | None = None
    inverters: Dict[str, str] = {}
    ended = False
    saw_anything = False

    def flush_cover() -> None:
        nonlocal cover
        if cover is not None:
            assert netlist is not None
            cover.emit(netlist)
            cover = None

    for line_number, line in _logical_lines(text):
        tokens = line.split()
        if not tokens:
            continue
        saw_anything = True
        keyword = tokens[0]

        if not keyword.startswith("."):
            if cover is None:
                raise ParseError(
                    f"unexpected token {keyword!r} outside a .names cover",
                    line_number,
                    _column_of(line, keyword),
                )
            cover.add_row(tokens, line_number)
            continue

        if ended:
            raise ParseError(
                f"{keyword} after .end (hierarchical BLIF is not supported)",
                line_number,
            )
        flush_cover()

        if keyword == ".model":
            if netlist is not None:
                raise ParseError(
                    "second .model — hierarchical BLIF is not supported",
                    line_number,
                )
            if len(tokens) > 2:
                raise ParseError("expected: .model <name>", line_number)
            netlist = Netlist(tokens[1] if len(tokens) == 2 else name)
            continue

        if netlist is None:
            netlist = Netlist(name)  # headerless BLIF: tolerated

        if keyword == ".inputs":
            for net in tokens[1:]:
                try:
                    netlist.add_input(net)
                except NetlistError as error:
                    raise ParseError(str(error), line_number) from error
        elif keyword == ".outputs":
            for net in tokens[1:]:
                if net in declared_outputs:
                    raise ParseError(f"duplicate output {net!r}", line_number)
                declared_outputs.append(net)
        elif keyword == ".latch":
            _parse_latch(netlist, tokens, line_number)
        elif keyword == ".names":
            if len(tokens) < 2:
                raise ParseError(
                    "expected: .names <inputs...> <output>", line_number
                )
            cover = _CoverBuilder(
                tokens[1:-1], tokens[-1], line_number, inverters
            )
        elif keyword == ".end":
            ended = True
        elif keyword in (".subckt", ".gate", ".mlatch"):
            raise ParseError(
                f"{keyword} is not supported (only flat structural BLIF)",
                line_number,
            )
        else:
            raise ParseError(f"unknown directive {keyword!r}", line_number)

    flush_cover()
    if netlist is None or not saw_anything:
        raise ParseError("empty BLIF file")
    for net in declared_outputs:
        netlist.add_output(net)
    return netlist


def _parse_latch(netlist: Netlist, tokens: List[str], line_number: int) -> None:
    # .latch <input> <output> [<type> <control>] [<init-val>]
    operands = tokens[1:]
    if len(operands) not in (2, 3, 4, 5):
        raise ParseError(
            "expected: .latch <input> <output> [<type> <control>] [<init>]",
            line_number,
        )
    d, q = operands[0], operands[1]
    rest = operands[2:]
    if rest and rest[0] in _LEVEL_LATCH_TYPES:
        raise ParseError(
            f"level-sensitive latch type {rest[0]!r} is not supported "
            "(single-clock edge-triggered model)",
            line_number,
        )
    if rest and rest[0] in _EDGE_LATCH_TYPES:
        if len(rest) < 2:
            raise ParseError(
                f"latch type {rest[0]!r} needs a control signal", line_number
            )
        rest = rest[2:]  # drop type + control: one implicit clock domain
    if len(rest) > 1:
        raise ParseError("too many fields on .latch line", line_number)
    init = 0
    if rest:
        if rest[0] not in ("0", "1", "2", "3"):
            raise ParseError(f"bad latch init value {rest[0]!r}", line_number)
        # 2 (don't-care) and 3 (unknown) power up at 0: grading needs a
        # known start state (documented deviation, see docs/formats.md).
        init = 1 if rest[0] == "1" else 0
    try:
        netlist.add_dff(f"ff${q}", d, q, init=init)
    except NetlistError as error:
        raise ParseError(str(error), line_number) from error


def _column_of(line: str, token: str) -> int:
    index = line.find(token)
    return index + 1 if index >= 0 else 1
