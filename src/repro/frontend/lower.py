"""Gate-arity lowering for imported netlists.

Benchmark files use wide gates freely (ISCAS-85 has 9-input NANDs; BLIF
covers OR dozens of cubes). The repro primitive set is n-ary in the data
model, but the canonical form the rest of the stack is tuned for — and
the form the hand-written ITC'99 builders produce — is 2-input gates.
:func:`lower_gates` rebuilds a netlist so no combinational gate exceeds
``max_arity`` inputs, decomposing wide gates into balanced trees:

* ``and`` / ``or`` / ``xor`` — a tree of the same type.
* ``nand`` / ``nor`` / ``xnor`` — a tree of the *de-inverted* type whose
  root gate carries the inversion (``nand(a,b,c,d)`` becomes
  ``nand(and(a,b), and(c,d))``), so gate count stays minimal and no
  trailing inverter is needed.
* everything else (``buf``, ``inv``, ``mux2``, constants) passes through.

The pass preserves net names (every original net keeps its driver's
output name), instance insertion order (so flop indexing and scan-chain
order are untouched — flops are never rewritten), and determinism
(fresh nets come from :meth:`Netlist.fresh_net` in file order).
"""

from __future__ import annotations

from typing import List

from repro.errors import NetlistError
from repro.netlist.netlist import Netlist

#: inverting gate -> the plain gate its internal tree is built from
_DEINVERTED = {"nand": "and", "nor": "or", "xnor": "xor"}
_TREE_TYPES = ("and", "or", "xor", "nand", "nor", "xnor")


def lower_gates(netlist: Netlist, max_arity: int = 2) -> Netlist:
    """Return a copy of ``netlist`` with every gate at most ``max_arity``
    inputs wide. Returns the input unchanged (same object) when nothing
    needs lowering."""
    if max_arity < 2:
        raise NetlistError("lower_gates: max_arity must be at least 2")
    if all(
        len(gate.inputs) <= max_arity or gate.gate_type not in _TREE_TYPES
        for gate in netlist.gates.values()
    ):
        return netlist

    lowered = Netlist(netlist.name)
    for net in netlist.inputs:
        lowered.add_input(net)
    for gate in netlist.gates.values():
        if len(gate.inputs) <= max_arity or gate.gate_type not in _TREE_TYPES:
            lowered.add_gate(gate.name, gate.gate_type, gate.inputs, gate.output)
            continue
        _emit_tree(lowered, gate.name, gate.gate_type, list(gate.inputs),
                   gate.output, max_arity)
    for dff in netlist.dffs.values():
        lowered.add_dff(dff.name, dff.d, dff.q, dff.init)
    for net in netlist.outputs:
        lowered.add_output(net)
    lowered._fresh_counter = max(lowered._fresh_counter, netlist._fresh_counter)
    return lowered


def _emit_tree(
    netlist: Netlist,
    name: str,
    gate_type: str,
    nets: List[str],
    output: str,
    max_arity: int,
) -> None:
    """Balanced reduction of ``nets`` down to one root gate driving
    ``output``; the root keeps the original instance name (and, for
    inverting types, the inversion)."""
    inner_type = _DEINVERTED.get(gate_type, gate_type)
    level = nets
    counter = 0
    while len(level) > max_arity:
        next_level: List[str] = []
        for start in range(0, len(level), max_arity):
            chunk = level[start : start + max_arity]
            if len(chunk) == 1:
                next_level.append(chunk[0])
                continue
            counter += 1
            fresh = netlist.fresh_net(f"low${output}")
            netlist.add_gate(f"{name}${counter}", inner_type, chunk, fresh)
            next_level.append(fresh)
        level = next_level
    netlist.add_gate(name, gate_type, level, output)
