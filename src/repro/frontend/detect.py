"""Netlist format auto-detection.

Detection is two-stage: the file extension decides when it is one of
the registered ones (``.bench``, ``.blif``, ``.bnet``); otherwise the
content is sniffed — BLIF files open with a dot-directive, ``.bnet``
files with the ``circuit`` keyword, and ``.bench`` files with
``INPUT(...)`` / ``name = OP(...)`` lines. Ambiguous content is a
:class:`ParseError` telling the caller to name the format explicitly.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Optional, Union

from repro.errors import ParseError

#: format name -> file extension(s)
FORMATS = {
    "bench": (".bench",),
    "blif": (".blif",),
    "bnet": (".bnet",),
}

#: a valid .bnet file must open with its ``circuit`` line, so only that
#: keyword discriminates — ``input``/``gate``/``dff`` first tokens are
#: legal .bench spellings (lowercase ports, nets named after keywords)
_BNET_KEYWORDS = ("circuit",)
_BENCH_LINE = re.compile(
    r"^(INPUT|OUTPUT)\s*\(|^[^\s=]+\s*=\s*[A-Za-z]+\s*\(", re.IGNORECASE
)


def detect_format(
    path: Optional[Union[str, Path]] = None, text: Optional[str] = None
) -> str:
    """Return ``"bench"``, ``"blif"`` or ``"bnet"``.

    ``path`` alone decides via extension when recognised; otherwise (or
    for unknown extensions) ``text`` is sniffed.
    """
    if path is not None:
        suffix = Path(path).suffix.lower()
        for format_name, extensions in FORMATS.items():
            if suffix in extensions:
                return format_name
    if text is None:
        raise ParseError(
            f"cannot detect netlist format of {path}: unknown extension "
            f"(expected one of {', '.join(e for v in FORMATS.values() for e in v)})"
        )
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("."):
            return "blif"
        first = line.split()[0]
        if first in _BNET_KEYWORDS:
            return "bnet"
        if _BENCH_LINE.match(line):
            return "bench"
        raise ParseError(
            "cannot detect netlist format from content; pass the format "
            "explicitly (bench, blif or bnet)",
            line_number,
        )
    raise ParseError("cannot detect netlist format of an empty file")
