"""Default testbench synthesis for imported circuits.

Hand-registered circuits ship curated stimulus (b14's instruction-shaped
program bench); a netlist that arrived as a file has none. This module
synthesizes a deterministic default: a short *walking-ones warmup* that
touches every primary input (so no input is provably dead stimulus on
short benches), followed by seeded biased-random vectors.

Everything is drawn from :class:`repro.util.rng.DeterministicRng`
forked on ``(circuit name, seed)``, so the same file + seed always
yields the same stimulus — which is what lets
:meth:`CampaignSpec.oracle_key` treat (content digest, testbench kind,
seed, cycles) as a complete description of an imported campaign's
golden run.
"""

from __future__ import annotations

from repro.netlist.netlist import Netlist
from repro.sim.vectors import Testbench
from repro.util.rng import DeterministicRng

#: fraction of the bench (capped by input count) spent walking a one
#: across the inputs before random stimulus starts.
WARMUP_FRACTION = 4


def synthesize_testbench(
    netlist: Netlist,
    num_cycles: int,
    seed: int = 0,
    probability_of_one: float = 0.5,
) -> Testbench:
    """Deterministic default stimulus for an imported circuit."""
    width = len(netlist.inputs)
    if width == 0:
        return Testbench([], [0] * num_cycles)
    rng = DeterministicRng(seed).fork(f"frontend:{netlist.name}")
    warmup = min(width, num_cycles // WARMUP_FRACTION)
    vectors = [1 << (cycle % width) for cycle in range(warmup)]
    vectors.extend(
        rng.word(width, probability_of_one)
        for _ in range(num_cycles - warmup)
    )
    return Testbench(list(netlist.inputs), vectors)
