"""Benchmark frontend: import standard netlist formats.

The paper's emulation flow is format-agnostic — any gate-level design
can be instrumented and graded — and this package is the input layer
that makes the reproduction match: it parses the standard academic
netlist formats into :class:`~repro.netlist.netlist.Netlist` objects
that every engine, fault model, instrument and eval table downstream
accepts unchanged.

* :func:`load_netlist_file` / :func:`load_netlist` — one call from file
  or text to a validated, arity-lowered netlist, with format
  auto-detection (:mod:`repro.frontend.detect`).
* :mod:`repro.frontend.bench` — ISCAS-89 ``.bench`` parser.
* :mod:`repro.frontend.blif` — structural BLIF subset parser.
* :mod:`repro.frontend.lower` — wide-gate → 2-input-primitive lowering.
* :mod:`repro.frontend.testbench` — deterministic default stimulus for
  circuits that arrive without any.
* :mod:`repro.frontend.corpus` — the bundled ISCAS-85/89-style corpus
  under ``repro/circuits/corpus/``.

All import failures — syntactic or structural — surface as
:class:`~repro.errors.ParseError` with line (and where possible column)
positions, never a raw traceback.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Optional, Union

from repro.errors import ParseError, ValidationError
from repro.frontend.bench import parse_bench
from repro.frontend.blif import parse_blif
from repro.frontend.detect import FORMATS, detect_format
from repro.frontend.lower import lower_gates
from repro.frontend.testbench import synthesize_testbench
from repro.netlist.netlist import Netlist
from repro.netlist.validate import validate_netlist

__all__ = [
    "FORMATS",
    "detect_format",
    "load_netlist",
    "load_netlist_file",
    "lower_gates",
    "netlist_file_digest",
    "parse_bench",
    "parse_blif",
    "synthesize_testbench",
]


def load_netlist(
    text: str,
    fmt: Optional[str] = None,
    name: str = "netlist",
    max_arity: int = 2,
    sweep: bool = True,
    validate: bool = True,
) -> Netlist:
    """Parse netlist ``text`` into a lowered, swept, validated netlist.

    ``fmt`` is ``bench``, ``blif`` or ``bnet``; ``None`` auto-detects
    from content. Gates wider than ``max_arity`` are tree-decomposed
    (:func:`lower_gates`). ``sweep`` removes logic unreachable from any
    primary output — real benchmark files routinely carry unobserved
    logic, and the rest of the stack (instrumentation in particular)
    demands fully-consumed netlists — exactly what a synthesis
    frontend's sweep stage would do. Validation then runs strict;
    failures re-raise as :class:`ParseError` so import failures have one
    exception type.
    """
    if fmt is None:
        fmt = detect_format(text=text)
    if fmt == "bench":
        netlist = parse_bench(text, name=name)
    elif fmt == "blif":
        netlist = parse_blif(text, name=name)
    elif fmt == "bnet":
        from repro.netlist.textio import loads_netlist

        netlist = loads_netlist(text, validate=False)
    else:
        raise ParseError(
            f"unknown netlist format {fmt!r}; expected one of "
            f"{', '.join(sorted(FORMATS))}"
        )
    netlist = lower_gates(netlist, max_arity=max_arity)
    if sweep:
        from repro.netlist.transform import sweep_dead_logic

        netlist = sweep_dead_logic(netlist)
    if validate:
        try:
            validate_netlist(netlist, allow_dangling=not sweep)
        except ValidationError as error:
            raise ParseError(f"invalid {fmt} netlist: {error}") from error
    return netlist


def load_netlist_file(
    path: Union[str, Path],
    fmt: Optional[str] = None,
    max_arity: int = 2,
    sweep: bool = True,
    validate: bool = True,
) -> Netlist:
    """Load a netlist file, auto-detecting the format from its extension
    (falling back to content sniffing). The netlist is named after the
    file stem unless the file carries its own name (BLIF ``.model``,
    ``.bnet`` ``circuit``)."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as error:
        raise ParseError(f"cannot read netlist file {path}: {error}") from error
    if fmt is None:
        fmt = detect_format(path=path, text=text)
    return load_netlist(
        text,
        fmt=fmt,
        name=path.stem,
        max_arity=max_arity,
        sweep=sweep,
        validate=validate,
    )


#: digest memo: path -> ((mtime_ns, size, inode), digest). Re-keyed by
#: stat signature so an edited file re-hashes while repeated
#: oracle_key/campaign_id accesses (every shard progress line of a
#: runner) cost one stat, not a full read+hash.
_DIGEST_CACHE: dict = {}


def netlist_file_digest(path: Union[str, Path]) -> str:
    """Content hash of a netlist file (hex, 16 chars).

    :meth:`CampaignSpec.oracle_key` folds this into the identity of
    every ``file:``/``corpus:`` campaign, so a results store written
    against one version of a file refuses shards for another.

    Known boundary of the stat-keyed memo: an in-place overwrite that
    preserves mtime, size *and* inode (e.g. ``cp -p`` of a same-length
    variant) can serve a stale digest within one process. Ordinary
    edits, saves and re-imports all change the signature and re-hash.
    """
    path = Path(path)
    try:
        stat = path.stat()
        signature = (stat.st_mtime_ns, stat.st_size, stat.st_ino)
        cached = _DIGEST_CACHE.get(str(path))
        if cached is not None and cached[0] == signature:
            return cached[1]
        payload = path.read_bytes()
    except OSError as error:
        raise ParseError(f"cannot read netlist file {path}: {error}") from error
    digest = hashlib.sha256(payload).hexdigest()[:16]
    _DIGEST_CACHE[str(path)] = (signature, digest)
    return digest
