"""Word-level expression IR.

Expressions are immutable trees over named signals (module inputs and
registers). Widths are checked at construction time — width bugs in RTL
are miserable to debug after elaboration, so they are rejected eagerly.

Python operators are overloaded for the common cases::

    total = (a + b)[0:8]          # 8-bit add, keep low bits
    is_zero = total == const(8, 0)
    nxt = mux(is_zero, total, acc ^ b)
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.errors import ElaborationError


class WExpr:
    """Base class for word expressions; every node has a ``width``."""

    width: int

    # -- bitwise -------------------------------------------------------
    def __and__(self, other: "WExpr") -> "WExpr":
        return WBitwise("and", self, other)

    def __or__(self, other: "WExpr") -> "WExpr":
        return WBitwise("or", self, other)

    def __xor__(self, other: "WExpr") -> "WExpr":
        return WBitwise("xor", self, other)

    def __invert__(self) -> "WExpr":
        return WNot(self)

    # -- arithmetic ----------------------------------------------------
    def __add__(self, other: "WExpr") -> "WExpr":
        return WArith("add", self, other)

    def __sub__(self, other: "WExpr") -> "WExpr":
        return WArith("sub", self, other)

    # -- comparison (1-bit results) -------------------------------------
    def __eq__(self, other: object) -> "WExpr":  # type: ignore[override]
        if not isinstance(other, WExpr):
            return NotImplemented
        return WCompare("eq", self, other)

    def __ne__(self, other: object) -> "WExpr":  # type: ignore[override]
        if not isinstance(other, WExpr):
            return NotImplemented
        return WCompare("ne", self, other)

    def __lt__(self, other: "WExpr") -> "WExpr":
        return WCompare("lt", self, other)

    def __ge__(self, other: "WExpr") -> "WExpr":
        return WCompare("ge", self, other)

    def __hash__(self) -> int:
        return id(self)

    # -- structure ------------------------------------------------------
    def __getitem__(self, index) -> "WExpr":
        if isinstance(index, slice):
            start = index.start or 0
            stop = index.stop if index.stop is not None else self.width
            if index.step not in (None, 1):
                raise ElaborationError("slice step must be 1")
            return WSlice(self, start, stop)
        return WSlice(self, index, index + 1)

    def shift_left(self, amount: int) -> "WExpr":
        """Logical shift left by a constant, width preserved."""
        return WShift(self, amount)

    def shift_right(self, amount: int) -> "WExpr":
        """Logical shift right by a constant, width preserved."""
        return WShift(self, -amount)

    def zext(self, width: int) -> "WExpr":
        """Zero-extend to ``width`` bits."""
        if width < self.width:
            raise ElaborationError(
                f"zext target {width} narrower than source {self.width}"
            )
        if width == self.width:
            return self
        return cat(self, WConst(width - self.width, 0))


def _require_same_width(op: str, left: WExpr, right: WExpr) -> int:
    if left.width != right.width:
        raise ElaborationError(
            f"{op}: width mismatch {left.width} vs {right.width}"
        )
    return left.width


class WSig(WExpr):
    """A reference to a named signal (input or register) of a module."""

    def __init__(self, name: str, width: int):
        if width <= 0:
            raise ElaborationError(f"signal {name!r} must have positive width")
        self.name = name
        self.width = width

    def __repr__(self) -> str:
        return f"WSig({self.name!r}, {self.width})"

    __hash__ = WExpr.__hash__


class WConst(WExpr):
    """A constant of explicit width."""

    def __init__(self, width: int, value: int):
        if width <= 0:
            raise ElaborationError("constant width must be positive")
        if value < 0 or value >> width:
            raise ElaborationError(f"value {value} does not fit in {width} bits")
        self.width = width
        self.value = value

    def __repr__(self) -> str:
        return f"WConst({self.width}, {self.value})"

    __hash__ = WExpr.__hash__


class WBitwise(WExpr):
    """Bitwise and/or/xor of equal-width operands."""

    def __init__(self, op: str, left: WExpr, right: WExpr):
        self.op = op
        self.left = left
        self.right = right
        self.width = _require_same_width(op, left, right)

    __hash__ = WExpr.__hash__


class WNot(WExpr):
    """Bitwise complement."""

    def __init__(self, operand: WExpr):
        self.operand = operand
        self.width = operand.width

    __hash__ = WExpr.__hash__


class WArith(WExpr):
    """Add/sub modulo 2^width (ripple-carry at elaboration)."""

    def __init__(self, op: str, left: WExpr, right: WExpr):
        self.op = op
        self.left = left
        self.right = right
        self.width = _require_same_width(op, left, right)

    __hash__ = WExpr.__hash__


class WCompare(WExpr):
    """Comparison; result is 1 bit. ``lt``/``ge`` are unsigned."""

    def __init__(self, op: str, left: WExpr, right: WExpr):
        _require_same_width(op, left, right)
        self.op = op
        self.left = left
        self.right = right
        self.width = 1

    __hash__ = WExpr.__hash__


class WMux(WExpr):
    """2:1 word multiplexer with a 1-bit select."""

    def __init__(self, select: WExpr, if0: WExpr, if1: WExpr):
        if select.width != 1:
            raise ElaborationError("mux select must be 1 bit wide")
        self.select = select
        self.if0 = if0
        self.if1 = if1
        self.width = _require_same_width("mux", if0, if1)

    __hash__ = WExpr.__hash__


class WCat(WExpr):
    """Concatenation; the first argument holds the least-significant bits."""

    def __init__(self, parts: Sequence[WExpr]):
        if not parts:
            raise ElaborationError("cat of zero parts")
        self.parts: Tuple[WExpr, ...] = tuple(parts)
        self.width = sum(part.width for part in parts)

    __hash__ = WExpr.__hash__


class WSlice(WExpr):
    """Bit-range extraction [start, stop)."""

    def __init__(self, operand: WExpr, start: int, stop: int):
        if not (0 <= start < stop <= operand.width):
            raise ElaborationError(
                f"slice [{start}:{stop}) out of range for width {operand.width}"
            )
        self.operand = operand
        self.start = start
        self.stop = stop
        self.width = stop - start

    __hash__ = WExpr.__hash__


class WShift(WExpr):
    """Constant logical shift; positive amounts shift left."""

    def __init__(self, operand: WExpr, amount: int):
        self.operand = operand
        self.amount = amount
        self.width = operand.width

    __hash__ = WExpr.__hash__


class WReduce(WExpr):
    """Reduction (or/and/xor) of all bits of the operand to 1 bit."""

    def __init__(self, op: str, operand: WExpr):
        if op not in ("or", "and", "xor"):
            raise ElaborationError(f"unknown reduction {op!r}")
        self.op = op
        self.operand = operand
        self.width = 1

    __hash__ = WExpr.__hash__


# -----------------------------------------------------------------------
# factory helpers (public API)
# -----------------------------------------------------------------------
def const(width: int, value: int) -> WConst:
    """A ``width``-bit constant."""
    return WConst(width, value)


def mux(select: WExpr, if0: WExpr, if1: WExpr) -> WExpr:
    """Word mux: ``if1`` when ``select`` is 1, else ``if0``."""
    return WMux(select, if0, if1)


def cat(*parts: WExpr) -> WExpr:
    """Concatenate words, first part at the least-significant end."""
    return WCat(parts)


def reduce_or(operand: WExpr) -> WExpr:
    """OR of all bits (non-zero test)."""
    return WReduce("or", operand)


def reduce_and(operand: WExpr) -> WExpr:
    """AND of all bits (all-ones test)."""
    return WReduce("and", operand)


def reduce_xor(operand: WExpr) -> WExpr:
    """Parity of all bits."""
    return WReduce("xor", operand)
