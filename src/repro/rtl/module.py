"""RTL module container: inputs, registers, outputs, next-state logic."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import ElaborationError
from repro.rtl.expr import WExpr, WSig

# Imported lazily inside elaborate() to avoid a circular import.


class RtlModule:
    """A synchronous word-level design.

    Usage::

        m = RtlModule("counter")
        step = m.input("step", 4)
        count = m.register("count", 4, init=0)
        m.next(count, count + step)
        m.output("count_out", count)
        netlist = m.elaborate()

    Each register must receive exactly one ``next`` assignment; use
    :func:`repro.rtl.expr.mux` chains for conditional updates (the
    elaborator lowers them to gate-level muxes).
    """

    def __init__(self, name: str):
        self.name = name
        self._inputs: Dict[str, int] = {}
        self._registers: Dict[str, Tuple[int, int]] = {}  # name -> (width, init)
        self._next: Dict[str, WExpr] = {}
        self._outputs: List[Tuple[str, WExpr]] = []
        self._signal_names: set = set()

    # ------------------------------------------------------------------
    def _claim_name(self, name: str) -> None:
        if name in self._signal_names:
            raise ElaborationError(f"duplicate signal name {name!r} in {self.name}")
        self._signal_names.add(name)

    def input(self, name: str, width: int) -> WSig:
        """Declare a primary input word."""
        self._claim_name(name)
        self._inputs[name] = width
        return WSig(name, width)

    def register(self, name: str, width: int, init: int = 0) -> WSig:
        """Declare a register word with a reset value."""
        self._claim_name(name)
        if init < 0 or init >> width:
            raise ElaborationError(
                f"register {name!r}: init {init} does not fit in {width} bits"
            )
        self._registers[name] = (width, init)
        return WSig(name, width)

    def next(self, register: WSig, value: WExpr) -> None:
        """Set the next-state expression of ``register``."""
        if register.name not in self._registers:
            raise ElaborationError(f"{register.name!r} is not a register")
        if register.name in self._next:
            raise ElaborationError(
                f"register {register.name!r} already has a next-state assignment"
            )
        width, _ = self._registers[register.name]
        if value.width != width:
            raise ElaborationError(
                f"next({register.name}): width {value.width} != register width {width}"
            )
        self._next[register.name] = value

    def output(self, name: str, value: WExpr) -> None:
        """Declare a primary output word driven by ``value``."""
        for existing, _ in self._outputs:
            if existing == name:
                raise ElaborationError(f"duplicate output {name!r}")
        self._outputs.append((name, value))

    # ------------------------------------------------------------------
    @property
    def register_names(self) -> List[str]:
        """Register names in declaration order."""
        return list(self._registers)

    def total_register_bits(self) -> int:
        """Total flip-flop count after elaboration."""
        return sum(width for width, _ in self._registers.values())

    def elaborate(self, sweep: bool = True):
        """Lower to a gate-level :class:`~repro.netlist.Netlist`.

        ``sweep`` removes logic unreachable from the outputs (matching what
        synthesis would do before reporting area).
        """
        from repro.rtl.elaborate import elaborate_module

        return elaborate_module(self, sweep=sweep)
