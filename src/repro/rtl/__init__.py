"""Word-level RTL layer.

Circuits that are easier to describe as registers + word operations (the
ITC'99 benchmarks, the Viper-style b14 processor, the emulation controller)
are written against :class:`RtlModule` and elaborated into gate-level
:class:`~repro.netlist.Netlist` objects through a small structural lowering
library (ripple-carry adders, mux trees, decoders...).
"""

from repro.rtl.expr import WExpr, cat, const, mux, reduce_and, reduce_or, reduce_xor
from repro.rtl.module import RtlModule

__all__ = [
    "RtlModule",
    "WExpr",
    "cat",
    "const",
    "mux",
    "reduce_and",
    "reduce_or",
    "reduce_xor",
]
