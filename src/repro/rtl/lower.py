"""Structural lowering library: word operators as gate networks.

Every function takes a :class:`~repro.netlist.NetlistBuilder` plus operand
bit-vectors (lists of net names, LSB first) and returns result bit-vectors.
The choices here mirror what a straightforward synthesis of the paper-era
flow would produce: ripple-carry arithmetic, mux trees, XNOR/AND
comparators — structures whose LUT counts are representative after
4-LUT mapping.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import ElaborationError
from repro.netlist.builder import NetlistBuilder

Bits = List[str]


def lower_const(builder: NetlistBuilder, width: int, value: int) -> Bits:
    """Constant word as const0/const1 nets (shared per builder call site)."""
    zero = builder.const0() if (value != (1 << width) - 1 or width == 0) else None
    one = builder.const1() if value != 0 else None
    bits: Bits = []
    for index in range(width):
        if (value >> index) & 1:
            if one is None:
                one = builder.const1()
            bits.append(one)
        else:
            if zero is None:
                zero = builder.const0()
            bits.append(zero)
    return bits


def lower_bitwise(builder: NetlistBuilder, op: str, a: Bits, b: Bits) -> Bits:
    """Bitwise and/or/xor."""
    if len(a) != len(b):
        raise ElaborationError("bitwise operand width mismatch")
    emit = {"and": builder.and_, "or": builder.or_, "xor": builder.xor_}[op]
    return [emit(x, y) for x, y in zip(a, b)]


def lower_not(builder: NetlistBuilder, a: Bits) -> Bits:
    """Bitwise complement."""
    return [builder.inv(x) for x in a]


def lower_add(builder: NetlistBuilder, a: Bits, b: Bits, carry_in: str | None = None) -> Bits:
    """Ripple-carry adder, result truncated to operand width."""
    if len(a) != len(b):
        raise ElaborationError("adder operand width mismatch")
    carry = carry_in
    result: Bits = []
    for x, y in zip(a, b):
        if carry is None:
            result.append(builder.xor_(x, y))
            carry = builder.and_(x, y)
        else:
            partial = builder.xor_(x, y)
            result.append(builder.xor_(partial, carry))
            carry = builder.or_(builder.and_(x, y), builder.and_(partial, carry))
    return result


def lower_sub(builder: NetlistBuilder, a: Bits, b: Bits) -> Bits:
    """a - b as a + ~b + 1."""
    return lower_add(builder, a, lower_not(builder, b), carry_in=builder.const1())


def lower_eq(builder: NetlistBuilder, a: Bits, b: Bits) -> str:
    """Equality comparator (1 bit)."""
    return builder.equal(a, b)


def lower_lt(builder: NetlistBuilder, a: Bits, b: Bits) -> str:
    """Unsigned a < b via borrow of a - b."""
    if len(a) != len(b):
        raise ElaborationError("comparator operand width mismatch")
    # Ripple borrow: borrow_{i+1} = ~a&b | (~ (a xor b)) & borrow_i
    borrow = builder.const0()
    for x, y in zip(a, b):
        not_x = builder.inv(x)
        differ = builder.xor_(x, y)
        same = builder.inv(differ)
        borrow = builder.or_(
            builder.and_(not_x, y), builder.and_(same, borrow)
        )
    return borrow


def lower_mux(builder: NetlistBuilder, select: str, if0: Bits, if1: Bits) -> Bits:
    """Word 2:1 mux."""
    if len(if0) != len(if1):
        raise ElaborationError("mux operand width mismatch")
    return [builder.mux(select, x, y) for x, y in zip(if0, if1)]


def lower_shift(builder: NetlistBuilder, a: Bits, amount: int) -> Bits:
    """Constant logical shift (positive = left), width preserved."""
    width = len(a)
    zero = builder.const0()
    if amount >= 0:
        shifted = [zero] * min(amount, width) + a[: max(width - amount, 0)]
    else:
        drop = min(-amount, width)
        shifted = a[drop:] + [zero] * drop
    return shifted[:width]


def lower_reduce(builder: NetlistBuilder, op: str, a: Bits) -> str:
    """Reduce a word to one bit."""
    if op == "or":
        return builder.or_reduce(a)
    if op == "and":
        return builder.and_reduce(a)
    if op == "xor":
        return builder.reduce_tree("xor", a, arity=4)
    raise ElaborationError(f"unknown reduction {op!r}")


def lower_decoder(builder: NetlistBuilder, select: Bits, outputs: int) -> Bits:
    """One-hot decoder: output ``i`` is 1 when select == i.

    Used by the emulation controller to address mask flip-flops.
    """
    lines: Bits = []
    inverted = [builder.inv(bit) for bit in select]
    for index in range(outputs):
        terms = [
            select[bit] if (index >> bit) & 1 else inverted[bit]
            for bit in range(len(select))
        ]
        lines.append(builder.and_reduce(terms))
    return lines


def lower_onehot_mux(builder: NetlistBuilder, selects: Sequence[str], words: Sequence[Bits]) -> Bits:
    """One-hot word multiplexer: OR of (select_i AND word_i)."""
    if not words:
        raise ElaborationError("one-hot mux of zero words")
    width = len(words[0])
    result: Bits = []
    for bit in range(width):
        terms = [builder.and_(sel, word[bit]) for sel, word in zip(selects, words)]
        result.append(builder.or_reduce(terms))
    return result
