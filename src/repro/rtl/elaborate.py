"""Elaboration: RTL modules to gate-level netlists.

The elaborator walks each output and next-state expression bottom-up,
memoising shared subexpressions (by object identity) so diamonds in the
expression DAG elaborate once, and lowers word operators through
:mod:`repro.rtl.lower`.

Interface convention: an input or output named ``w`` of width 1 becomes a
single net ``w``; wider words become nets ``w[0] .. w[n-1]``. Registers map
to flip-flops named ``ff$<reg>[i]`` with q nets ``<reg>[i]`` — this is the
FF naming the fault machinery and scan chains rely on.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import ElaborationError
from repro.netlist.builder import NetlistBuilder
from repro.netlist.netlist import Netlist
from repro.netlist.transform import sweep_dead_logic
from repro.rtl import lower
from repro.rtl.expr import (
    WArith,
    WBitwise,
    WCat,
    WCompare,
    WConst,
    WExpr,
    WMux,
    WNot,
    WReduce,
    WShift,
    WSig,
    WSlice,
)
from repro.rtl.module import RtlModule

Bits = List[str]


def _port_nets(name: str, width: int) -> Bits:
    if width == 1:
        return [name]
    return [f"{name}[{i}]" for i in range(width)]


class _Elaborator:
    def __init__(self, module: RtlModule):
        self.module = module
        self.builder = NetlistBuilder(module.name)
        self.signal_bits: Dict[str, Bits] = {}
        self.memo: Dict[int, Bits] = {}

    def run(self, sweep: bool) -> Netlist:
        module = self.module
        # Ports first: inputs...
        for name, width in module._inputs.items():
            nets = [self.builder.input(net) for net in _port_nets(name, width)]
            self.signal_bits[name] = nets
        # ...then register outputs (q nets exist before next-state logic).
        for name, (width, init) in module._registers.items():
            q_nets = _port_nets(name, width)
            self.signal_bits[name] = q_nets

        # Next-state logic; every register must be assigned.
        d_bits: Dict[str, Bits] = {}
        for name, (width, init) in module._registers.items():
            if name not in module._next:
                raise ElaborationError(
                    f"register {name!r} has no next-state assignment"
                )
            d_bits[name] = self.eval_bits(module._next[name])

        # Instantiate the flip-flops.
        for name, (width, init) in module._registers.items():
            for index, d_net in enumerate(d_bits[name]):
                q_net = self.signal_bits[name][index]
                self.builder.netlist.add_dff(
                    f"ff${name}[{index}]", d_net, q_net, (init >> index) & 1
                )

        # Outputs.
        for name, expr in module._outputs:
            bits = self.eval_bits(expr)
            if expr.width == 1:
                self.builder.output_net(name, bits[0])
            else:
                for index, net in enumerate(bits):
                    self.builder.output_net(f"{name}[{index}]", net)

        netlist = self.builder.build(validate=not sweep, allow_dangling=True)
        if sweep:
            netlist = sweep_dead_logic(netlist)
            from repro.netlist.validate import validate_netlist

            validate_netlist(netlist)
        return netlist

    # ------------------------------------------------------------------
    def eval_bits(self, expr: WExpr) -> Bits:
        key = id(expr)
        if key in self.memo:
            return self.memo[key]
        bits = self._eval(expr)
        if len(bits) != expr.width:
            raise ElaborationError(
                f"internal: lowered width {len(bits)} != declared {expr.width} "
                f"for {type(expr).__name__}"
            )
        self.memo[key] = bits
        return bits

    def _eval(self, expr: WExpr) -> Bits:
        builder = self.builder
        if isinstance(expr, WSig):
            try:
                return self.signal_bits[expr.name]
            except KeyError:
                raise ElaborationError(
                    f"unknown signal {expr.name!r} in {self.module.name}"
                ) from None
        if isinstance(expr, WConst):
            return lower.lower_const(builder, expr.width, expr.value)
        if isinstance(expr, WBitwise):
            return lower.lower_bitwise(
                builder, expr.op, self.eval_bits(expr.left), self.eval_bits(expr.right)
            )
        if isinstance(expr, WNot):
            return lower.lower_not(builder, self.eval_bits(expr.operand))
        if isinstance(expr, WArith):
            a, b = self.eval_bits(expr.left), self.eval_bits(expr.right)
            if expr.op == "add":
                return lower.lower_add(builder, a, b)
            if expr.op == "sub":
                return lower.lower_sub(builder, a, b)
            raise ElaborationError(f"unknown arithmetic op {expr.op!r}")
        if isinstance(expr, WCompare):
            a, b = self.eval_bits(expr.left), self.eval_bits(expr.right)
            if expr.op == "eq":
                return [lower.lower_eq(builder, a, b)]
            if expr.op == "ne":
                return [builder.inv(lower.lower_eq(builder, a, b))]
            if expr.op == "lt":
                return [lower.lower_lt(builder, a, b)]
            if expr.op == "ge":
                return [builder.inv(lower.lower_lt(builder, a, b))]
            raise ElaborationError(f"unknown comparison {expr.op!r}")
        if isinstance(expr, WMux):
            select = self.eval_bits(expr.select)[0]
            return lower.lower_mux(
                builder, select, self.eval_bits(expr.if0), self.eval_bits(expr.if1)
            )
        if isinstance(expr, WCat):
            bits: Bits = []
            for part in expr.parts:
                bits.extend(self.eval_bits(part))
            return bits
        if isinstance(expr, WSlice):
            return self.eval_bits(expr.operand)[expr.start : expr.stop]
        if isinstance(expr, WShift):
            return lower.lower_shift(builder, self.eval_bits(expr.operand), expr.amount)
        if isinstance(expr, WReduce):
            return [lower.lower_reduce(builder, expr.op, self.eval_bits(expr.operand))]
        raise ElaborationError(f"cannot elaborate {type(expr).__name__}")


def elaborate_module(module: RtlModule, sweep: bool = True) -> Netlist:
    """Elaborate ``module`` into a validated gate-level netlist."""
    return _Elaborator(module).run(sweep=sweep)
