"""Scalar cycle-based simulation.

:class:`CycleSimulator` steps a compiled netlist one clock at a time with
plain Python ints. It is the reference implementation: the golden run that
feeds the emulation RAM model, the per-fault replay used to cross-check the
bit-parallel oracle, and the engine behind the examples.

Clocking model (shared by every simulator and by the campaign cycle
accounting): during cycle ``t`` the flops hold state ``s_t``; inputs
``x_t`` are applied; combinational logic settles; outputs ``y_t`` are
observed; the next state ``s_{t+1}`` is latched from the D inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import SimulationError
from repro.netlist.netlist import Netlist
from repro.sim.compile import CompiledNetlist, compile_netlist, eval_program_scalar
from repro.sim.vectors import Testbench


@dataclass
class GoldenTrace:
    """Everything the golden (fault-free) run produces.

    ``states[t]`` is the packed flop state at the *start* of cycle t (so
    ``states[0]`` is the reset state and there are T+1 entries);
    ``outputs[t]`` is the packed primary-output word observed during cycle
    t. This is exactly the data the autonomous emulator keeps in RAM:
    expected outputs for the comparators, per-cycle states for state-scan.
    """

    num_cycles: int
    outputs: List[int] = field(default_factory=list)
    states: List[int] = field(default_factory=list)

    def final_state(self) -> int:
        """Golden state after the last cycle."""
        return self.states[self.num_cycles]


class CycleSimulator:
    """Steps a netlist cycle by cycle; supports state peeking/poking.

    State is exposed packed (bit ``i`` = flop ``i`` in netlist order) — the
    same packing the fault model, scan chains and golden traces use.
    """

    def __init__(self, netlist_or_compiled, x_as_zero: bool = True):
        if isinstance(netlist_or_compiled, Netlist):
            self.compiled: CompiledNetlist = compile_netlist(netlist_or_compiled)
        else:
            self.compiled = netlist_or_compiled
        self._values: List[int] = [0] * self.compiled.num_slots
        self._x_as_zero = x_as_zero
        self._state: int = self.compiled.initial_state(x_as_zero=x_as_zero)
        self.cycle: int = 0

    # ------------------------------------------------------------------
    # state access
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Return every flop to its init value and cycle to 0, honouring
        the ``x_as_zero`` policy chosen at construction."""
        self._state = self.compiled.initial_state(x_as_zero=self._x_as_zero)
        self.cycle = 0

    def get_state(self) -> int:
        """Packed current flop state."""
        return self._state

    def set_state(self, state: int) -> None:
        """Poke the packed flop state (used for fault injection and the
        state-scan protocol)."""
        if state < 0 or state >> self.compiled.num_flops:
            raise SimulationError(
                f"state does not fit in {self.compiled.num_flops} flops"
            )
        self._state = state

    def flip_flop_bit(self, flop_index: int) -> None:
        """Flip one flop — the SEU bit-flip itself."""
        if not 0 <= flop_index < self.compiled.num_flops:
            raise SimulationError(f"no flop with index {flop_index}")
        self._state ^= 1 << flop_index

    def flop_names(self) -> List[str]:
        """Flop names in packing order."""
        return [flop.name for flop in self.compiled.flops]

    # ------------------------------------------------------------------
    # stepping
    # ------------------------------------------------------------------
    def step(self, input_word: int) -> int:
        """Advance one clock cycle; returns the packed output word."""
        values = self._values
        state = self._state
        # Load flop outputs and primary inputs into the value array.
        for position, flop in enumerate(self.compiled.flops):
            values[flop.q_index] = (state >> position) & 1
        for position, slot in enumerate(self.compiled.input_slots):
            values[slot] = (input_word >> position) & 1

        eval_program_scalar(self.compiled, values)

        output_word = 0
        for position, slot in enumerate(self.compiled.output_slots):
            if values[slot]:
                output_word |= 1 << position

        next_state = 0
        for position, flop in enumerate(self.compiled.flops):
            if values[flop.d_index]:
                next_state |= 1 << position
        self._state = next_state
        self.cycle += 1
        return output_word

    def peek_net(self, net: str) -> int:
        """Value of a net as of the end of the last ``step`` call."""
        try:
            slot = self.compiled.net_index[net]
        except KeyError:
            raise SimulationError(f"unknown net {net!r}") from None
        return self._values[slot]

    def run(self, testbench: Testbench) -> List[int]:
        """Run a whole testbench from the current state; returns the output
        word of every cycle."""
        return [self.step(vector) for vector in testbench.vectors]


def run_golden(netlist_or_compiled, testbench: Testbench) -> GoldenTrace:
    """Execute the fault-free run and record the golden trace."""
    simulator = CycleSimulator(netlist_or_compiled)
    trace = GoldenTrace(num_cycles=testbench.num_cycles)
    trace.states.append(simulator.get_state())
    for vector in testbench.vectors:
        trace.outputs.append(simulator.step(vector))
        trace.states.append(simulator.get_state())
    return trace


def replay_fault(
    netlist_or_compiled,
    testbench: Testbench,
    fault,
    golden: Optional[GoldenTrace] = None,
) -> Dict[str, int]:
    """Reference replay for *any* fault model (slow path, one fault).

    Generalizes :func:`replay_single_fault` to the full injection
    protocol of :class:`repro.faults.model.SeuFault`: all of the fault's
    flips are applied at its onset cycle, and its force (if any) is
    re-applied to the held state every cycle it is active — including the
    post-bench state, which decides SILENT vs LATENT for persistent
    faults. ``vanish_cycle`` is the start of the final golden-equal
    suffix (identical to first-match for transient faults, which cannot
    re-diverge).
    """
    if golden is None:
        golden = run_golden(netlist_or_compiled, testbench)
    simulator = CycleSimulator(netlist_or_compiled)
    simulator.set_state(golden.states[fault.cycle])
    fail_cycle = -1
    vanish_cycle = -1
    for cycle in range(fault.cycle, testbench.num_cycles):
        state = simulator.get_state()
        if cycle == fault.cycle:
            for flop_index in fault.flip_flops():
                state ^= 1 << flop_index
        state = fault.apply_force(state, cycle)
        simulator.set_state(state)
        if cycle > fault.cycle:
            # The state held *during* this cycle decides whether the
            # fault effect had disappeared at the end of the previous one.
            if state == golden.states[cycle]:
                if vanish_cycle == -1:
                    vanish_cycle = cycle - 1
            else:
                vanish_cycle = -1
        output = simulator.step(testbench.vectors[cycle])
        if fail_cycle == -1 and output != golden.outputs[cycle]:
            fail_cycle = cycle
    final = fault.apply_force(simulator.get_state(), testbench.num_cycles)
    if final == golden.final_state():
        if vanish_cycle == -1:
            vanish_cycle = testbench.num_cycles - 1
    else:
        vanish_cycle = -1
    return {"fail_cycle": fail_cycle, "vanish_cycle": vanish_cycle}


def replay_single_fault(
    netlist_or_compiled,
    testbench: Testbench,
    flop_index: int,
    inject_cycle: int,
    golden: Optional[GoldenTrace] = None,
) -> Dict[str, int]:
    """Reference (slow-path) single-fault replay used to cross-check the
    bit-parallel oracle.

    Returns a dict with ``fail_cycle`` and ``vanish_cycle`` (-1 when the
    event never happens), matching the oracle's definitions exactly.
    """
    if golden is None:
        golden = run_golden(netlist_or_compiled, testbench)
    simulator = CycleSimulator(netlist_or_compiled)
    # Fast-forward to the injection state using the golden trace.
    simulator.set_state(golden.states[inject_cycle])
    simulator.flip_flop_bit(flop_index)
    fail_cycle = -1
    vanish_cycle = -1
    for cycle in range(inject_cycle, testbench.num_cycles):
        output = simulator.step(testbench.vectors[cycle])
        if fail_cycle == -1 and output != golden.outputs[cycle]:
            fail_cycle = cycle
        if simulator.get_state() == golden.states[cycle + 1]:
            # Once the faulty state equals the golden state the two runs
            # are identical forever: nothing later can change the verdict.
            vanish_cycle = cycle
            break
    return {"fail_cycle": fail_cycle, "vanish_cycle": vanish_cycle}
