"""Netlist simulation.

* :mod:`repro.sim.compile` — levelize a netlist into a flat op program.
* :mod:`repro.sim.cycle` — scalar cycle-based simulator (golden runs,
  single-fault replays, tests).
* :mod:`repro.sim.parallel` — bit-parallel fault simulator: the functional
  oracle for fault grading (64 faults per machine word, numpy backend, with
  a pure-Python bigint backend for cross-checking).
* :mod:`repro.sim.event` — event-driven simulator for debugging.
* :mod:`repro.sim.vectors` — testbench/stimulus containers and generators.
* :mod:`repro.sim.waves` — VCD waveform export.
"""

from repro.sim.compile import CompiledNetlist, compile_netlist
from repro.sim.cycle import CycleSimulator, GoldenTrace, run_golden
from repro.sim.parallel import FaultGradingResult, grade_faults
from repro.sim.vectors import Testbench, random_testbench

__all__ = [
    "CompiledNetlist",
    "CycleSimulator",
    "FaultGradingResult",
    "GoldenTrace",
    "Testbench",
    "compile_netlist",
    "grade_faults",
    "random_testbench",
    "run_golden",
]
