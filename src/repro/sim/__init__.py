"""Netlist simulation.

* :mod:`repro.sim.compile` — levelize a netlist into a flat op program.
* :mod:`repro.sim.cycle` — scalar cycle-based simulator (golden runs,
  single-fault replays, tests).
* :mod:`repro.sim.parallel` — bit-parallel fault simulator: the functional
  oracle for fault grading (64 faults per machine word).
* :mod:`repro.sim.backends` — pluggable grading engines behind the oracle:
  ``fused`` (batched kernels + early exit, the default), ``numpy`` and
  ``bigint``.
* :mod:`repro.sim.cache` — session caches for compiled netlists and
  golden traces.
* :mod:`repro.sim.event` — event-driven simulator for debugging.
* :mod:`repro.sim.vectors` — testbench/stimulus containers and generators.
* :mod:`repro.sim.waves` — VCD waveform export.
"""

from repro.sim.backends import GradingEngine, available_engines, get_engine
from repro.sim.cache import clear_caches, compiled_for, golden_for
from repro.sim.compile import CompiledNetlist, compile_netlist
from repro.sim.cycle import CycleSimulator, GoldenTrace, run_golden
from repro.sim.parallel import DEFAULT_BACKEND, FaultGradingResult, grade_faults
from repro.sim.vectors import Testbench, random_testbench

__all__ = [
    "CompiledNetlist",
    "CycleSimulator",
    "DEFAULT_BACKEND",
    "FaultGradingResult",
    "GoldenTrace",
    "GradingEngine",
    "Testbench",
    "available_engines",
    "clear_caches",
    "compile_netlist",
    "compiled_for",
    "get_engine",
    "golden_for",
    "grade_faults",
    "random_testbench",
    "run_golden",
]
