"""Bit-parallel fault grading: the functional oracle of the library.

Grading 34,400 faults by replaying the circuit one fault at a time is what
makes software fault simulation slow (the paper's 1300 us/fault baseline).
This module packs one fault per bit position and simulates all of them
simultaneously with word-wide logic ops — the classic parallel fault
simulation technique — producing, for every fault:

* ``fail_cycle``   — first cycle with a primary-output mismatch (-1 never),
* ``vanish_cycle`` — first cycle at whose end the faulty state equals the
  golden state (-1 never; once equal, always equal),
* the FAILURE / LATENT / SILENT verdict derived from the two.

These three observations are exactly what the emulation campaign engines
need to count FPGA clock cycles for each technique, and the verdicts are
the classification the autonomous emulator would read back from RAM.

Two backends implement the same algorithm:

* ``numpy``  — nets are rows of uint64 words, 64 faults per word;
* ``bigint`` — nets are arbitrary-precision Python ints, one fault per bit
  (no dependencies; used for cross-checking and small runs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.errors import CampaignError
from repro.faults.classify import FaultClass, classify_outcome
from repro.faults.dictionary import FaultDictionary, FaultRecord
from repro.faults.model import SeuFault
from repro.netlist.netlist import Netlist
from repro.sim.compile import (
    OP_AND,
    OP_BUF,
    OP_CONST0,
    OP_CONST1,
    OP_INV,
    OP_MUX2,
    OP_NAND,
    OP_NOR,
    OP_OR,
    OP_XNOR,
    OP_XOR,
    CompiledNetlist,
    compile_netlist,
)
from repro.sim.cycle import GoldenTrace, run_golden
from repro.sim.vectors import Testbench


@dataclass
class FaultGradingResult:
    """Per-fault grading outcomes for one campaign."""

    faults: List[SeuFault]
    num_cycles: int
    flop_names: List[str]
    golden: GoldenTrace
    fail_cycles: List[int] = field(default_factory=list)
    vanish_cycles: List[int] = field(default_factory=list)

    @property
    def num_faults(self) -> int:
        return len(self.faults)

    def verdict(self, index: int) -> FaultClass:
        """Classification of fault ``index``."""
        return classify_outcome(self.fail_cycles[index], self.vanish_cycles[index])

    def verdicts(self) -> List[FaultClass]:
        """All classifications, fault-list order."""
        return [
            classify_outcome(fail, vanish)
            for fail, vanish in zip(self.fail_cycles, self.vanish_cycles)
        ]

    def to_dictionary(self) -> FaultDictionary:
        """Decode into a queryable :class:`FaultDictionary`."""
        dictionary = FaultDictionary(self.num_cycles, self.flop_names)
        for index, fault in enumerate(self.faults):
            dictionary.add(
                FaultRecord(
                    fault=fault,
                    verdict=self.verdict(index),
                    fail_cycle=self.fail_cycles[index],
                    vanish_cycle=self.vanish_cycles[index],
                )
            )
        return dictionary


def grade_faults(
    netlist_or_compiled,
    testbench: Testbench,
    faults: Sequence[SeuFault],
    backend: str = "numpy",
) -> FaultGradingResult:
    """Grade ``faults`` against ``testbench``; the library's main oracle."""
    if isinstance(netlist_or_compiled, Netlist):
        compiled = compile_netlist(netlist_or_compiled)
    else:
        compiled = netlist_or_compiled
    _check_faults(compiled, testbench, faults)
    golden = run_golden(compiled, testbench)
    if backend == "numpy":
        fail, vanish = _grade_numpy(compiled, testbench, faults, golden)
    elif backend == "bigint":
        fail, vanish = _grade_bigint(compiled, testbench, faults, golden)
    else:
        raise CampaignError(f"unknown backend {backend!r}")
    return FaultGradingResult(
        faults=list(faults),
        num_cycles=testbench.num_cycles,
        flop_names=[flop.name for flop in compiled.flops],
        golden=golden,
        fail_cycles=fail,
        vanish_cycles=vanish,
    )


def _check_faults(
    compiled: CompiledNetlist, testbench: Testbench, faults: Sequence[SeuFault]
) -> None:
    if not faults:
        raise CampaignError("empty fault list")
    for fault in faults:
        if fault.cycle >= testbench.num_cycles:
            raise CampaignError(
                f"{fault.describe()} is beyond the {testbench.num_cycles}-cycle "
                "testbench"
            )
        if fault.flop_index >= compiled.num_flops:
            raise CampaignError(
                f"{fault.describe()}: circuit has only {compiled.num_flops} flops"
            )


# ---------------------------------------------------------------------------
# numpy backend
# ---------------------------------------------------------------------------
def _grade_numpy(
    compiled: CompiledNetlist,
    testbench: Testbench,
    faults: Sequence[SeuFault],
    golden: GoldenTrace,
):
    num_faults = len(faults)
    num_words = (num_faults + 63) // 64
    ones = np.uint64(0xFFFFFFFFFFFFFFFF)

    values = np.zeros((compiled.num_slots, num_words), dtype=np.uint64)

    # Group injections by cycle: cycle -> list of (q_slot, word, bit mask).
    injections: Dict[int, List] = {}
    inject_cycle = np.empty(num_faults, dtype=np.int64)
    for index, fault in enumerate(faults):
        q_slot = compiled.flops[fault.flop_index].q_index
        injections.setdefault(fault.cycle, []).append(
            (q_slot, index // 64, np.uint64(1 << (index % 64)))
        )
        inject_cycle[index] = fault.cycle

    # Load the shared reset state.
    reset = golden.states[0]
    for position, flop in enumerate(compiled.flops):
        values[flop.q_index, :] = ones if (reset >> position) & 1 else 0

    fail_cycle = np.full(num_faults, -1, dtype=np.int64)
    vanish_cycle = np.full(num_faults, -1, dtype=np.int64)

    ops = compiled.ops
    flops = compiled.flops
    output_slots = compiled.output_slots

    for cycle in range(testbench.num_cycles):
        # 1. inject this cycle's faults into the held state
        for q_slot, word, bit in injections.get(cycle, ()):
            values[q_slot, word] ^= bit

        # 2. drive inputs (same golden vector for every fault channel)
        vector = testbench.vectors[cycle]
        for position, slot in enumerate(compiled.input_slots):
            values[slot, :] = ones if (vector >> position) & 1 else 0

        # 3. evaluate combinational logic
        for opcode, in_slots, out_slot in ops:
            if opcode == OP_AND:
                row = values[in_slots[0]].copy()
                for slot in in_slots[1:]:
                    row &= values[slot]
                values[out_slot] = row
            elif opcode == OP_OR:
                row = values[in_slots[0]].copy()
                for slot in in_slots[1:]:
                    row |= values[slot]
                values[out_slot] = row
            elif opcode == OP_NAND:
                row = values[in_slots[0]].copy()
                for slot in in_slots[1:]:
                    row &= values[slot]
                values[out_slot] = ~row
            elif opcode == OP_NOR:
                row = values[in_slots[0]].copy()
                for slot in in_slots[1:]:
                    row |= values[slot]
                values[out_slot] = ~row
            elif opcode == OP_XOR:
                row = values[in_slots[0]].copy()
                for slot in in_slots[1:]:
                    row ^= values[slot]
                values[out_slot] = row
            elif opcode == OP_XNOR:
                row = values[in_slots[0]].copy()
                for slot in in_slots[1:]:
                    row ^= values[slot]
                values[out_slot] = ~row
            elif opcode == OP_BUF:
                values[out_slot] = values[in_slots[0]]
            elif opcode == OP_INV:
                values[out_slot] = ~values[in_slots[0]]
            elif opcode == OP_MUX2:
                select = values[in_slots[0]]
                values[out_slot] = (select & values[in_slots[2]]) | (
                    ~select & values[in_slots[1]]
                )
            elif opcode == OP_CONST0:
                values[out_slot, :] = 0
            else:  # OP_CONST1
                values[out_slot, :] = ones

        # 4. compare outputs against the golden output word
        golden_out = golden.outputs[cycle]
        out_diff = np.zeros(num_words, dtype=np.uint64)
        for position, slot in enumerate(output_slots):
            if (golden_out >> position) & 1:
                out_diff |= ~values[slot]
            else:
                out_diff |= values[slot]

        diff_bits = _unpack_bits(out_diff, num_faults)
        newly_failed = diff_bits & (fail_cycle == -1) & (inject_cycle <= cycle)
        fail_cycle[newly_failed] = cycle

        # 5. latch next state and compare against the golden next state
        next_rows = [values[flop.d_index].copy() for flop in flops]
        golden_next = golden.states[cycle + 1]
        state_diff = np.zeros(num_words, dtype=np.uint64)
        for position, row in enumerate(next_rows):
            if (golden_next >> position) & 1:
                state_diff |= ~row
            else:
                state_diff |= row
        for flop, row in zip(flops, next_rows):
            values[flop.q_index] = row

        same_bits = ~_unpack_bits(state_diff, num_faults)
        newly_vanished = (
            same_bits & (vanish_cycle == -1) & (inject_cycle <= cycle)
        )
        vanish_cycle[newly_vanished] = cycle

    return fail_cycle.tolist(), vanish_cycle.tolist()


def _unpack_bits(words: np.ndarray, num_bits: int) -> np.ndarray:
    """Unpack a uint64 word array into a boolean array of ``num_bits``
    (bit i of word w is fault w*64+i)."""
    as_bytes = words.view(np.uint8)
    bits = np.unpackbits(as_bytes, bitorder="little")
    return bits[:num_bits].astype(bool)


# ---------------------------------------------------------------------------
# bigint backend (dependency-free cross-check)
# ---------------------------------------------------------------------------
def _grade_bigint(
    compiled: CompiledNetlist,
    testbench: Testbench,
    faults: Sequence[SeuFault],
    golden: GoldenTrace,
):
    num_faults = len(faults)
    all_ones = (1 << num_faults) - 1

    values = [0] * compiled.num_slots

    injections: Dict[int, List] = {}
    for index, fault in enumerate(faults):
        q_slot = compiled.flops[fault.flop_index].q_index
        injections.setdefault(fault.cycle, []).append((q_slot, 1 << index))

    injected_mask_by_cycle: List[int] = []
    running = 0
    by_cycle: Dict[int, int] = {}
    for index, fault in enumerate(faults):
        by_cycle[fault.cycle] = by_cycle.get(fault.cycle, 0) | (1 << index)
    for cycle in range(testbench.num_cycles):
        running |= by_cycle.get(cycle, 0)
        injected_mask_by_cycle.append(running)

    reset = golden.states[0]
    for position, flop in enumerate(compiled.flops):
        values[flop.q_index] = all_ones if (reset >> position) & 1 else 0

    fail_cycle = [-1] * num_faults
    vanish_cycle = [-1] * num_faults
    not_failed = all_ones
    not_vanished = all_ones

    for cycle in range(testbench.num_cycles):
        for q_slot, bit in injections.get(cycle, ()):
            values[q_slot] ^= bit

        vector = testbench.vectors[cycle]
        for position, slot in enumerate(compiled.input_slots):
            values[slot] = all_ones if (vector >> position) & 1 else 0

        for opcode, in_slots, out_slot in compiled.ops:
            if opcode == OP_AND:
                row = all_ones
                for slot in in_slots:
                    row &= values[slot]
                values[out_slot] = row
            elif opcode == OP_OR:
                row = 0
                for slot in in_slots:
                    row |= values[slot]
                values[out_slot] = row
            elif opcode == OP_NAND:
                row = all_ones
                for slot in in_slots:
                    row &= values[slot]
                values[out_slot] = row ^ all_ones
            elif opcode == OP_NOR:
                row = 0
                for slot in in_slots:
                    row |= values[slot]
                values[out_slot] = row ^ all_ones
            elif opcode == OP_XOR:
                row = 0
                for slot in in_slots:
                    row ^= values[slot]
                values[out_slot] = row
            elif opcode == OP_XNOR:
                row = 0
                for slot in in_slots:
                    row ^= values[slot]
                values[out_slot] = row ^ all_ones
            elif opcode == OP_BUF:
                values[out_slot] = values[in_slots[0]]
            elif opcode == OP_INV:
                values[out_slot] = values[in_slots[0]] ^ all_ones
            elif opcode == OP_MUX2:
                select = values[in_slots[0]]
                values[out_slot] = (select & values[in_slots[2]]) | (
                    (select ^ all_ones) & values[in_slots[1]]
                )
            elif opcode == OP_CONST0:
                values[out_slot] = 0
            else:  # OP_CONST1
                values[out_slot] = all_ones

        golden_out = golden.outputs[cycle]
        out_diff = 0
        for position, slot in enumerate(compiled.output_slots):
            if (golden_out >> position) & 1:
                out_diff |= values[slot] ^ all_ones
            else:
                out_diff |= values[slot]

        injected = injected_mask_by_cycle[cycle]
        newly_failed = out_diff & not_failed & injected
        while newly_failed:
            low_bit = newly_failed & -newly_failed
            fail_cycle[low_bit.bit_length() - 1] = cycle
            newly_failed ^= low_bit
        not_failed &= ~(out_diff & injected)

        next_rows = [values[flop.d_index] for flop in compiled.flops]
        golden_next = golden.states[cycle + 1]
        state_diff = 0
        for position, row in enumerate(next_rows):
            if (golden_next >> position) & 1:
                state_diff |= row ^ all_ones
            else:
                state_diff |= row
        for flop, row in zip(compiled.flops, next_rows):
            values[flop.q_index] = row

        same = (state_diff ^ all_ones) & all_ones
        newly_vanished = same & not_vanished & injected
        while newly_vanished:
            low_bit = newly_vanished & -newly_vanished
            vanish_cycle[low_bit.bit_length() - 1] = cycle
            newly_vanished ^= low_bit
        not_vanished &= ~(same & injected)

    return fail_cycle, vanish_cycle
