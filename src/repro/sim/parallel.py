"""Bit-parallel fault grading: the functional oracle of the library.

Grading 34,400 faults by replaying the circuit one fault at a time is what
makes software fault simulation slow (the paper's 1300 us/fault baseline).
This module packs one fault per bit position and simulates all of them
simultaneously with word-wide logic ops — the classic parallel fault
simulation technique — producing, for every fault:

* ``fail_cycle``   — first cycle with a primary-output mismatch (-1 never),
* ``vanish_cycle`` — first cycle at whose end the faulty state equals the
  golden state (-1 never; once equal, always equal),
* the FAILURE / LATENT / SILENT verdict derived from the two.

These three observations are exactly what the emulation campaign engines
need to count FPGA clock cycles for each technique, and the verdicts are
the classification the autonomous emulator would read back from RAM.

The execution itself lives in :mod:`repro.sim.backends`: a registry of
interchangeable :class:`~repro.sim.backends.GradingEngine` implementations
(``fused`` — the batched-kernel default, ``numpy``, ``bigint``), selected
with the ``backend`` argument. Compiled netlists and golden traces are
reused through the session caches in :mod:`repro.sim.cache`, so repeated
campaigns on one circuit/testbench pay those costs once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import CampaignError
from repro.faults.classify import FaultClass, classify_outcome
from repro.faults.dictionary import FaultDictionary, FaultRecord
from repro.faults.model import SeuFault
from repro.sim.backends import available_engines, get_engine
from repro.sim.cache import compiled_for, golden_for
from repro.sim.compile import CompiledNetlist
from repro.sim.cycle import GoldenTrace
from repro.sim.vectors import Testbench

#: the engine used when callers do not pick one explicitly
DEFAULT_BACKEND = "fused"


@dataclass
class FaultGradingResult:
    """Per-fault grading outcomes for one campaign."""

    faults: List[SeuFault]
    num_cycles: int
    flop_names: List[str]
    golden: GoldenTrace
    fail_cycles: List[int] = field(default_factory=list)
    vanish_cycles: List[int] = field(default_factory=list)
    _dictionary: Optional[FaultDictionary] = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def num_faults(self) -> int:
        return len(self.faults)

    def verdict(self, index: int) -> FaultClass:
        """Classification of fault ``index``."""
        return classify_outcome(self.fail_cycles[index], self.vanish_cycles[index])

    def verdicts(self) -> List[FaultClass]:
        """All classifications, fault-list order."""
        return [
            classify_outcome(fail, vanish)
            for fail, vanish in zip(self.fail_cycles, self.vanish_cycles)
        ]

    def outcome_digest(self) -> str:
        """Content digest of the per-fault outcomes (fail/vanish cycles).

        Two gradings of the same campaign agree on this hex string iff
        they are bit-exact, which is how the distributed-transport tests
        (and CI's fleet smoke) compare a remote-graded oracle against
        the serial reference without shipping the arrays around.
        """
        import hashlib
        from array import array

        digest = hashlib.blake2b(digest_size=16)
        digest.update(array("i", map(int, self.fail_cycles)).tobytes())
        digest.update(b"|")
        digest.update(array("i", map(int, self.vanish_cycles)).tobytes())
        return digest.hexdigest()

    def to_dictionary(self) -> FaultDictionary:
        """Decode into a queryable :class:`FaultDictionary`.

        The decode is memoized: campaign engines sharing one oracle (the
        normal multi-technique setup) receive the same dictionary object
        instead of re-decoding 34k verdicts per technique.
        """
        if self._dictionary is None:
            dictionary = FaultDictionary(self.num_cycles, self.flop_names)
            for index, fault in enumerate(self.faults):
                dictionary.add(
                    FaultRecord(
                        fault=fault,
                        verdict=self.verdict(index),
                        fail_cycle=self.fail_cycles[index],
                        vanish_cycle=self.vanish_cycles[index],
                    )
                )
            self._dictionary = dictionary
        return self._dictionary


def grade_faults(
    netlist_or_compiled,
    testbench: Testbench,
    faults: Sequence[SeuFault],
    backend: str = DEFAULT_BACKEND,
) -> FaultGradingResult:
    """Grade ``faults`` against ``testbench``; the library's main oracle.

    ``backend`` names a registered grading engine (see
    :func:`repro.sim.backends.available_engines`); all engines produce
    bit-identical results, differing only in speed.
    """
    compiled = compiled_for(netlist_or_compiled)
    _check_faults(compiled, testbench, faults)
    golden = golden_for(compiled, testbench)
    engine = get_engine(backend)
    fail, vanish = engine.grade(compiled, testbench, faults, golden)
    return FaultGradingResult(
        faults=list(faults),
        num_cycles=testbench.num_cycles,
        flop_names=[flop.name for flop in compiled.flops],
        golden=golden,
        fail_cycles=fail,
        vanish_cycles=vanish,
    )


def _check_faults(
    compiled: CompiledNetlist, testbench: Testbench, faults: Sequence[SeuFault]
) -> None:
    """Validate the fault list in bulk (no per-fault Python branching)."""
    if not faults:
        raise CampaignError("empty fault list")
    count = len(faults)
    cycles = np.fromiter(
        (fault.cycle for fault in faults), dtype=np.int64, count=count
    )
    flop_indices = np.fromiter(
        (fault.flop_index for fault in faults), dtype=np.int64, count=count
    )
    late = cycles >= testbench.num_cycles
    if late.any():
        fault = faults[int(np.argmax(late))]
        raise CampaignError(
            f"{fault.describe()} is beyond the {testbench.num_cycles}-cycle "
            "testbench"
        )
    out_of_range = flop_indices >= compiled.num_flops
    if out_of_range.any():
        fault = faults[int(np.argmax(out_of_range))]
        raise CampaignError(
            f"{fault.describe()}: circuit has only {compiled.num_flops} flops"
        )


__all__ = [
    "DEFAULT_BACKEND",
    "FaultGradingResult",
    "available_engines",
    "grade_faults",
]
