"""The classic numpy grading engine: one fault per uint64 bit lane.

This is the original reference backend: nets are rows of uint64 words (64
faults per word) and every op of the levelized program is dispatched
through a Python ``if/elif`` chain each cycle. It is kept as a registered
engine for cross-checking the fused engine and for bisecting perf
regressions; production grading uses ``fused``.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.faults.model import SeuFault
from repro.sim.backends.base import GradingEngine, register_engine
from repro.sim.compile import (
    OP_AND,
    OP_BUF,
    OP_CONST0,
    OP_INV,
    OP_MUX2,
    OP_NAND,
    OP_NOR,
    OP_OR,
    OP_XNOR,
    OP_XOR,
    CompiledNetlist,
)
from repro.sim.cycle import GoldenTrace
from repro.sim.vectors import Testbench


def _unpack_bits(words: np.ndarray, num_bits: int) -> np.ndarray:
    """Unpack a uint64 word array into a boolean array of ``num_bits``
    (bit i of word w is fault w*64+i)."""
    as_bytes = words.view(np.uint8)
    bits = np.unpackbits(as_bytes, bitorder="little")
    return bits[:num_bits].astype(bool)


@register_engine
class NumpyEngine(GradingEngine):
    """Word-parallel grading with per-op Python dispatch."""

    name = "numpy"

    def grade(
        self,
        compiled: CompiledNetlist,
        testbench: Testbench,
        faults: Sequence[SeuFault],
        golden: GoldenTrace,
    ) -> Tuple[List[int], List[int]]:
        num_faults = len(faults)
        num_words = (num_faults + 63) // 64
        ones = np.uint64(0xFFFFFFFFFFFFFFFF)

        values = np.zeros((compiled.num_slots, num_words), dtype=np.uint64)

        # Group injections by cycle: cycle -> list of (q_slot, word, bit).
        injections: Dict[int, List] = {}
        inject_cycle = np.empty(num_faults, dtype=np.int64)
        for index, fault in enumerate(faults):
            q_slot = compiled.flops[fault.flop_index].q_index
            injections.setdefault(fault.cycle, []).append(
                (q_slot, index // 64, np.uint64(1 << (index % 64)))
            )
            inject_cycle[index] = fault.cycle

        # Load the shared reset state.
        reset = golden.states[0]
        for position, flop in enumerate(compiled.flops):
            values[flop.q_index, :] = ones if (reset >> position) & 1 else 0

        fail_cycle = np.full(num_faults, -1, dtype=np.int64)
        vanish_cycle = np.full(num_faults, -1, dtype=np.int64)

        ops = compiled.ops
        flops = compiled.flops
        output_slots = compiled.output_slots

        for cycle in range(testbench.num_cycles):
            # 1. inject this cycle's faults into the held state
            for q_slot, word, bit in injections.get(cycle, ()):
                values[q_slot, word] ^= bit

            # 2. drive inputs (same golden vector for every fault channel)
            vector = testbench.vectors[cycle]
            for position, slot in enumerate(compiled.input_slots):
                values[slot, :] = ones if (vector >> position) & 1 else 0

            # 3. evaluate combinational logic
            for opcode, in_slots, out_slot in ops:
                if opcode == OP_AND:
                    row = values[in_slots[0]].copy()
                    for slot in in_slots[1:]:
                        row &= values[slot]
                    values[out_slot] = row
                elif opcode == OP_OR:
                    row = values[in_slots[0]].copy()
                    for slot in in_slots[1:]:
                        row |= values[slot]
                    values[out_slot] = row
                elif opcode == OP_NAND:
                    row = values[in_slots[0]].copy()
                    for slot in in_slots[1:]:
                        row &= values[slot]
                    values[out_slot] = ~row
                elif opcode == OP_NOR:
                    row = values[in_slots[0]].copy()
                    for slot in in_slots[1:]:
                        row |= values[slot]
                    values[out_slot] = ~row
                elif opcode == OP_XOR:
                    row = values[in_slots[0]].copy()
                    for slot in in_slots[1:]:
                        row ^= values[slot]
                    values[out_slot] = row
                elif opcode == OP_XNOR:
                    row = values[in_slots[0]].copy()
                    for slot in in_slots[1:]:
                        row ^= values[slot]
                    values[out_slot] = ~row
                elif opcode == OP_BUF:
                    values[out_slot] = values[in_slots[0]]
                elif opcode == OP_INV:
                    values[out_slot] = ~values[in_slots[0]]
                elif opcode == OP_MUX2:
                    select = values[in_slots[0]]
                    values[out_slot] = (select & values[in_slots[2]]) | (
                        ~select & values[in_slots[1]]
                    )
                elif opcode == OP_CONST0:
                    values[out_slot, :] = 0
                else:  # OP_CONST1
                    values[out_slot, :] = ones

            # 4. compare outputs against the golden output word
            golden_out = golden.outputs[cycle]
            out_diff = np.zeros(num_words, dtype=np.uint64)
            for position, slot in enumerate(output_slots):
                if (golden_out >> position) & 1:
                    out_diff |= ~values[slot]
                else:
                    out_diff |= values[slot]

            diff_bits = _unpack_bits(out_diff, num_faults)
            newly_failed = diff_bits & (fail_cycle == -1) & (inject_cycle <= cycle)
            fail_cycle[newly_failed] = cycle

            # 5. latch next state and compare against the golden next state
            next_rows = [values[flop.d_index].copy() for flop in flops]
            golden_next = golden.states[cycle + 1]
            state_diff = np.zeros(num_words, dtype=np.uint64)
            for position, row in enumerate(next_rows):
                if (golden_next >> position) & 1:
                    state_diff |= ~row
                else:
                    state_diff |= row
            for flop, row in zip(flops, next_rows):
                values[flop.q_index] = row

            same_bits = ~_unpack_bits(state_diff, num_faults)
            newly_vanished = (
                same_bits & (vanish_cycle == -1) & (inject_cycle <= cycle)
            )
            vanish_cycle[newly_vanished] = cycle

        self.last_stats = {
            "cycles_executed": testbench.num_cycles,
            "num_cycles": testbench.num_cycles,
        }
        return fail_cycle.tolist(), vanish_cycle.tolist()
