"""The classic numpy grading engine: one fault per uint64 bit lane.

This is the original reference backend: nets are rows of uint64 words (64
faults per word) and every op of the levelized program is dispatched
through a Python ``if/elif`` chain each cycle. It is kept as a registered
engine for cross-checking the fused engine and for bisecting perf
regressions; production grading uses ``fused``.

Plain SEU campaigns take the original loop verbatim. Fault lists from the
other models (:mod:`repro.faults.models`) run the generic branch, which
adds multi-flop flips and per-cycle force-mask re-application driven by an
:class:`~repro.sim.inject.InjectionSchedule`.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.faults.model import SeuFault
from repro.sim.backends.base import GradingEngine, register_engine
from repro.sim.compile import (
    OP_AND,
    OP_BUF,
    OP_CONST0,
    OP_INV,
    OP_MUX2,
    OP_NAND,
    OP_NOR,
    OP_OR,
    OP_XNOR,
    OP_XOR,
    CompiledNetlist,
)
from repro.sim.cycle import GoldenTrace
from repro.sim.inject import schedule_for
from repro.sim.vectors import Testbench

_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


def _unpack_bits(words: np.ndarray, num_bits: int) -> np.ndarray:
    """Unpack a uint64 word array into a boolean array of ``num_bits``
    (bit i of word w is fault w*64+i)."""
    as_bytes = words.view(np.uint8)
    bits = np.unpackbits(as_bytes, bitorder="little")
    return bits[:num_bits].astype(bool)


def _eval_ops(values: np.ndarray, ops, ones: np.uint64) -> None:
    """Evaluate the levelized op program over the value array in place."""
    for opcode, in_slots, out_slot in ops:
        if opcode == OP_AND:
            row = values[in_slots[0]].copy()
            for slot in in_slots[1:]:
                row &= values[slot]
            values[out_slot] = row
        elif opcode == OP_OR:
            row = values[in_slots[0]].copy()
            for slot in in_slots[1:]:
                row |= values[slot]
            values[out_slot] = row
        elif opcode == OP_NAND:
            row = values[in_slots[0]].copy()
            for slot in in_slots[1:]:
                row &= values[slot]
            values[out_slot] = ~row
        elif opcode == OP_NOR:
            row = values[in_slots[0]].copy()
            for slot in in_slots[1:]:
                row |= values[slot]
            values[out_slot] = ~row
        elif opcode == OP_XOR:
            row = values[in_slots[0]].copy()
            for slot in in_slots[1:]:
                row ^= values[slot]
            values[out_slot] = row
        elif opcode == OP_XNOR:
            row = values[in_slots[0]].copy()
            for slot in in_slots[1:]:
                row ^= values[slot]
            values[out_slot] = ~row
        elif opcode == OP_BUF:
            values[out_slot] = values[in_slots[0]]
        elif opcode == OP_INV:
            values[out_slot] = ~values[in_slots[0]]
        elif opcode == OP_MUX2:
            select = values[in_slots[0]]
            values[out_slot] = (select & values[in_slots[2]]) | (
                ~select & values[in_slots[1]]
            )
        elif opcode == OP_CONST0:
            values[out_slot, :] = 0
        else:  # OP_CONST1
            values[out_slot, :] = ones


@register_engine
class NumpyEngine(GradingEngine):
    """Word-parallel grading with per-op Python dispatch."""

    name = "numpy"

    def grade(
        self,
        compiled: CompiledNetlist,
        testbench: Testbench,
        faults: Sequence[SeuFault],
        golden: GoldenTrace,
    ) -> Tuple[List[int], List[int]]:
        schedule = schedule_for(faults, testbench.num_cycles, compiled.num_flops)
        if schedule.simple:
            return self._grade_simple(compiled, testbench, faults, golden)
        return self._grade_general(compiled, testbench, golden, schedule)

    # ------------------------------------------------------------------
    # the original SEU loop (one-shot XOR, first-match vanish)
    # ------------------------------------------------------------------
    def _grade_simple(
        self,
        compiled: CompiledNetlist,
        testbench: Testbench,
        faults: Sequence[SeuFault],
        golden: GoldenTrace,
    ) -> Tuple[List[int], List[int]]:
        num_faults = len(faults)
        num_words = (num_faults + 63) // 64
        ones = _ONES

        values = np.zeros((compiled.num_slots, num_words), dtype=np.uint64)

        # Group injections by cycle: cycle -> list of (q_slot, word, bit).
        injections: Dict[int, List] = {}
        inject_cycle = np.empty(num_faults, dtype=np.int64)
        for index, fault in enumerate(faults):
            q_slot = compiled.flops[fault.flop_index].q_index
            injections.setdefault(fault.cycle, []).append(
                (q_slot, index // 64, np.uint64(1 << (index % 64)))
            )
            inject_cycle[index] = fault.cycle

        # Load the shared reset state.
        reset = golden.states[0]
        for position, flop in enumerate(compiled.flops):
            values[flop.q_index, :] = ones if (reset >> position) & 1 else 0

        fail_cycle = np.full(num_faults, -1, dtype=np.int64)
        vanish_cycle = np.full(num_faults, -1, dtype=np.int64)

        ops = compiled.ops
        flops = compiled.flops
        output_slots = compiled.output_slots

        for cycle in range(testbench.num_cycles):
            # 1. inject this cycle's faults into the held state
            for q_slot, word, bit in injections.get(cycle, ()):
                values[q_slot, word] ^= bit

            # 2. drive inputs (same golden vector for every fault channel)
            vector = testbench.vectors[cycle]
            for position, slot in enumerate(compiled.input_slots):
                values[slot, :] = ones if (vector >> position) & 1 else 0

            # 3. evaluate combinational logic
            _eval_ops(values, ops, ones)

            # 4. compare outputs against the golden output word
            golden_out = golden.outputs[cycle]
            out_diff = np.zeros(num_words, dtype=np.uint64)
            for position, slot in enumerate(output_slots):
                if (golden_out >> position) & 1:
                    out_diff |= ~values[slot]
                else:
                    out_diff |= values[slot]

            diff_bits = _unpack_bits(out_diff, num_faults)
            newly_failed = diff_bits & (fail_cycle == -1) & (inject_cycle <= cycle)
            fail_cycle[newly_failed] = cycle

            # 5. latch next state and compare against the golden next state
            next_rows = [values[flop.d_index].copy() for flop in flops]
            golden_next = golden.states[cycle + 1]
            state_diff = np.zeros(num_words, dtype=np.uint64)
            for position, row in enumerate(next_rows):
                if (golden_next >> position) & 1:
                    state_diff |= ~row
                else:
                    state_diff |= row
            for flop, row in zip(flops, next_rows):
                values[flop.q_index] = row

            same_bits = ~_unpack_bits(state_diff, num_faults)
            newly_vanished = (
                same_bits & (vanish_cycle == -1) & (inject_cycle <= cycle)
            )
            vanish_cycle[newly_vanished] = cycle

        self.last_stats = {
            "cycles_executed": testbench.num_cycles,
            "num_cycles": testbench.num_cycles,
        }
        return fail_cycle.tolist(), vanish_cycle.tolist()

    # ------------------------------------------------------------------
    # the generic loop (multi-flop flips, per-cycle force re-application)
    # ------------------------------------------------------------------
    def _grade_general(
        self,
        compiled: CompiledNetlist,
        testbench: Testbench,
        golden: GoldenTrace,
        schedule,
    ) -> Tuple[List[int], List[int]]:
        num_faults = schedule.num_faults
        num_cycles = testbench.num_cycles
        num_words = (num_faults + 63) // 64
        ones = _ONES
        num_flops = compiled.num_flops
        q_slots = [flop.q_index for flop in compiled.flops]

        values = np.zeros((compiled.num_slots, num_words), dtype=np.uint64)
        reset = golden.states[0]
        for position, slot in enumerate(q_slots):
            values[slot, :] = ones if (reset >> position) & 1 else 0

        fail_cycle = np.full(num_faults, -1, dtype=np.int64)
        vanish_cycle = np.full(num_faults, -1, dtype=np.int64)

        # Word-plane bookkeeping (bit i of word w = lane w*64+i).
        injected = np.zeros(num_words, dtype=np.uint64)
        not_failed = np.full(num_words, ones, dtype=np.uint64)
        no_candidate = np.full(num_words, ones, dtype=np.uint64)

        # Per-flop force planes, re-applied to the held state every cycle.
        force_mask = np.zeros((num_flops, num_words), dtype=np.uint64)
        force_set = np.zeros((num_flops, num_words), dtype=np.uint64)
        forced_rows: set = set()

        activations: Dict[int, List[int]] = {}
        for lane, cycle in enumerate(schedule.first_active):
            activations.setdefault(cycle, []).append(lane)

        def lane_bit(lane: int) -> Tuple[int, np.uint64]:
            return lane >> 6, np.uint64(1 << (lane & 63))

        def apply_cycle_events(cycle: int) -> None:
            """Flips, force transitions and plane re-application for
            the state held during ``cycle``."""
            for flop_index, lane in schedule.flips.get(cycle, ()):
                word, bit = lane_bit(lane)
                values[q_slots[flop_index], word] ^= bit
            for flop_index, lane, value in schedule.force_on.get(cycle, ()):
                word, bit = lane_bit(lane)
                force_mask[flop_index, word] |= bit
                if value:
                    force_set[flop_index, word] |= bit
                forced_rows.add(flop_index)
            for flop_index, lane in schedule.force_off.get(cycle, ()):
                word, bit = lane_bit(lane)
                force_mask[flop_index, word] &= ~bit
                force_set[flop_index, word] &= ~bit
            for flop_index in forced_rows:
                slot = q_slots[flop_index]
                values[slot] = (values[slot] & ~force_mask[flop_index]) | (
                    force_set[flop_index]
                )

        def update_vanish(state_word: int, end_cycle: int) -> None:
            """Candidate bookkeeping for "vanished by the end of
            ``end_cycle``", comparing the held q rows to ``state_word``."""
            state_diff = np.zeros(num_words, dtype=np.uint64)
            for position, slot in enumerate(q_slots):
                if (state_word >> position) & 1:
                    state_diff |= ~values[slot]
                else:
                    state_diff |= values[slot]
            conv = ~state_diff & injected
            newly = conv & no_candidate
            if newly.any():
                bits = _unpack_bits(newly, num_faults)
                vanish_cycle[bits] = end_cycle
                np.bitwise_and(no_candidate, ~newly, out=no_candidate)
            lost = state_diff & injected & ~no_candidate
            if lost.any():
                bits = _unpack_bits(lost, num_faults)
                vanish_cycle[bits] = -1
                np.bitwise_or(no_candidate, lost, out=no_candidate)

        for cycle in range(num_cycles):
            apply_cycle_events(cycle)
            if cycle > 0:
                update_vanish(golden.states[cycle], cycle - 1)
            for lane in activations.get(cycle, ()):
                word, bit = lane_bit(lane)
                injected[word] |= bit

            vector = testbench.vectors[cycle]
            for position, slot in enumerate(compiled.input_slots):
                values[slot, :] = ones if (vector >> position) & 1 else 0

            _eval_ops(values, compiled.ops, ones)

            golden_out = golden.outputs[cycle]
            out_diff = np.zeros(num_words, dtype=np.uint64)
            for position, slot in enumerate(compiled.output_slots):
                if (golden_out >> position) & 1:
                    out_diff |= ~values[slot]
                else:
                    out_diff |= values[slot]
            newly_failed = out_diff & not_failed & injected
            if newly_failed.any():
                bits = _unpack_bits(newly_failed, num_faults)
                fail_cycle[bits] = cycle
                not_failed &= ~newly_failed

            next_rows = [values[flop.d_index].copy() for flop in compiled.flops]
            for slot, row in zip(q_slots, next_rows):
                values[slot] = row

        # The post-bench state: force transitions scheduled at num_cycles
        # govern what the circuit is left holding after the last latch.
        apply_cycle_events(num_cycles)
        update_vanish(golden.states[num_cycles], num_cycles - 1)

        self.last_stats = {
            "cycles_executed": num_cycles,
            "num_cycles": num_cycles,
        }
        return fail_cycle.tolist(), vanish_cycle.tolist()
