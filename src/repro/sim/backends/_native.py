"""Optional native cycle kernel for the fused grading engine.

The fused engine's numpy plan is dispatch- and bandwidth-bound: each
batched kernel streams its rows through memory and numpy's per-call
overhead dominates once the active fault window narrows. This module
closes that gap with a small C library, compiled lazily with the system
C compiler on first use, that provides three entry points:

``repro_grade_cycle``
    One full emulation cycle — input drive, the 2-input op program,
    output compare, state latch and compare — over the active column
    range ``[w_start, w_stop)``. Every inner loop is restrict-qualified
    so ``-O3 -march=native`` auto-vectorizes it into full-width SIMD
    (AVX2/AVX-512 where available, NEON on arm); the portable ``-O2``
    fallback build runs the same scalar C. When the persistent thread
    pool is enabled the column range is split into contiguous chunks,
    one per thread: writes are disjoint by construction, so the result
    is bit-exact regardless of thread count.

``repro_set_threads`` / ``repro_threads``
    Configure the persistent pthread worker pool. Pool threads are
    created once and parked on a condition variable between cycles;
    ``REPRO_FUSED_THREADS`` picks the default width (min(4, cpus) when
    unset). A build without pthreads (``-DREPRO_NO_THREADS``) pins the
    width to 1. Fork is detected by pid and the pool is lazily rebuilt
    in the child, so multiprocessing workers stay safe.

``repro_compact_rows``
    Bit-level lane compaction: squeeze the kept bits (per a keep mask,
    one bit per fault lane) of each row to the front, in place, using
    PEXT where BMI2 is available. The fused engine uses this to drop
    re-converged fault lanes mid-campaign so the kernel only streams
    live lanes — the dominant speedup on long convergence tails.

Everything degrades gracefully: no compiler, a failed compile, or
``REPRO_FUSED_NATIVE=0`` in the environment simply returns ``None`` and
the fused engine falls back to its pure-numpy plan (same results,
slower). The compiled library is cached under ``~/.cache`` keyed by a
hash of the source and the CPU identity, so a machine pays the compile
once. No third-party packages are involved — only ``ctypes`` and the
toolchain already present on the host.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import platform
import shutil
import subprocess
import tempfile
from typing import Optional

_SOURCE = r"""
#include <stdint.h>
#include <string.h>

#if defined(__BMI2__)
#include <immintrin.h>
#endif

#ifndef REPRO_NO_THREADS
#include <pthread.h>
#include <unistd.h>
#define REPRO_MAX_THREADS 64
#endif

/* ------------------------------------------------------------------ */
/* one emulation cycle over a column range                             */
/* ------------------------------------------------------------------ */

/* `ops` rows are (code, a, b, c, out): codes 0/1/2 = and/or/xor,
 * 3/4/5 = their inverted forms, 6 = mux (a=select, b=d0, c=d1). */
struct gc_args {
    uint64_t *values;
    long width, w_start, w_stop;
    const int32_t *ops;
    long nops;
    const uint64_t *in_mask;
    long n_in;
    const int32_t *out_slots;
    const uint64_t *out_mask;
    long n_out;
    uint64_t *out_diff;
    const int32_t *d_slots;
    const uint64_t *state_mask;
    long n_ff;
    long q_start;
    uint64_t *state_diff;
    uint64_t *dtmp;
    long parts, chunk;
};

static void run_range(const struct gc_args *A, long lo, long hi,
                      uint64_t *restrict scr)
{
    long width = A->width;
    long wl = hi - lo;
    uint64_t *values = A->values;
    if (wl <= 0) return;

    for (long i = 0; i < A->n_in; i++) {
        uint64_t m = A->in_mask[i];
        uint64_t *restrict r = values + i * width + lo;
        for (long w = 0; w < wl; w++) r[w] = m;
    }
    const int32_t *ops = A->ops;
    for (long o = 0; o < A->nops; o++) {
        const int32_t *p = ops + o * 5;
        const uint64_t *restrict a = values + (long)p[1] * width + lo;
        const uint64_t *restrict b = values + (long)p[2] * width + lo;
        const uint64_t *restrict c = values + (long)p[3] * width + lo;
        uint64_t *restrict out = values + (long)p[4] * width + lo;
        switch (p[0]) {
        case 0: for (long w = 0; w < wl; w++) out[w] = a[w] & b[w]; break;
        case 1: for (long w = 0; w < wl; w++) out[w] = a[w] | b[w]; break;
        case 2: for (long w = 0; w < wl; w++) out[w] = a[w] ^ b[w]; break;
        case 3: for (long w = 0; w < wl; w++) out[w] = ~(a[w] & b[w]); break;
        case 4: for (long w = 0; w < wl; w++) out[w] = ~(a[w] | b[w]); break;
        case 5: for (long w = 0; w < wl; w++) out[w] = ~(a[w] ^ b[w]); break;
        default:
            for (long w = 0; w < wl; w++)
                out[w] = b[w] ^ (a[w] & (b[w] ^ c[w]));
            break;
        }
    }
    uint64_t *restrict od = A->out_diff + lo;
    for (long w = 0; w < wl; w++) od[w] = 0;
    for (long i = 0; i < A->n_out; i++) {
        const uint64_t *restrict r = values + (long)A->out_slots[i] * width + lo;
        uint64_t m = A->out_mask[i];
        for (long w = 0; w < wl; w++) od[w] |= r[w] ^ m;
    }
    /* D values go through scratch first: a flop's D net may alias
     * another flop's Q row, so all reads happen before any Q write. */
    uint64_t *restrict sd = A->state_diff + lo;
    for (long w = 0; w < wl; w++) sd[w] = 0;
    for (long i = 0; i < A->n_ff; i++) {
        const uint64_t *restrict r = values + (long)A->d_slots[i] * width + lo;
        uint64_t *restrict t = scr + i * wl;
        uint64_t m = A->state_mask[i];
        for (long w = 0; w < wl; w++) {
            uint64_t v = r[w];
            t[w] = v;
            sd[w] |= v ^ m;
        }
    }
    for (long i = 0; i < A->n_ff; i++) {
        uint64_t *restrict q = values + (A->q_start + i) * width + lo;
        const uint64_t *restrict t = scr + i * wl;
        for (long w = 0; w < wl; w++) q[w] = t[w];
    }
}

/* ------------------------------------------------------------------ */
/* persistent thread pool                                              */
/* ------------------------------------------------------------------ */

#ifndef REPRO_NO_THREADS
static pthread_mutex_t g_mx;
static pthread_cond_t g_cv_work, g_cv_done;
static int g_sync_init = 0;
static long g_pool_pid = -1;
static long g_threads = 1;   /* configured width */
static long g_spawned = 0;   /* live pool workers (caller excluded) */
static unsigned long g_gen = 0;
static long g_pending = 0;
static struct gc_args g_args;
static struct pool_worker { long idx; unsigned long seen; }
    g_w[REPRO_MAX_THREADS];

static void *pool_main(void *arg)
{
    struct pool_worker *me = arg;
    for (;;) {
        pthread_mutex_lock(&g_mx);
        while (me->seen == g_gen) pthread_cond_wait(&g_cv_work, &g_mx);
        me->seen = g_gen;
        struct gc_args A = g_args;
        pthread_mutex_unlock(&g_mx);
        if (me->idx < A.parts) {
            long lo = A.w_start + me->idx * A.chunk;
            long hi = lo + A.chunk;
            if (hi > A.w_stop) hi = A.w_stop;
            run_range(&A, lo, hi, A.dtmp + me->idx * A.n_ff * A.chunk);
        }
        pthread_mutex_lock(&g_mx);
        if (--g_pending == 0) pthread_cond_signal(&g_cv_done);
        pthread_mutex_unlock(&g_mx);
    }
    return 0;
}

/* Ensure `want - 1` parked workers exist; returns the usable width.
 * After fork() only the calling thread survives, so a pid change means
 * the pool (and possibly the mutex state) is gone: reinitialize. */
static long pool_ensure(long want)
{
    long pid = (long)getpid();
    if (g_pool_pid != pid) {
        g_pool_pid = pid;
        g_spawned = 0;
        g_sync_init = 0;
    }
    if (!g_sync_init) {
        pthread_mutex_init(&g_mx, 0);
        pthread_cond_init(&g_cv_work, 0);
        pthread_cond_init(&g_cv_done, 0);
        g_sync_init = 1;
    }
    while (g_spawned < want - 1) {
        struct pool_worker *w = &g_w[g_spawned];
        w->idx = g_spawned + 1;
        w->seen = g_gen;
        pthread_t t;
        if (pthread_create(&t, 0, pool_main, w) != 0) break;
        pthread_detach(t);
        g_spawned++;
    }
    return g_spawned + 1;
}
#endif

long repro_set_threads(long n)
{
#ifdef REPRO_NO_THREADS
    (void)n;
    return 1;
#else
    if (n < 1) n = 1;
    if (n > REPRO_MAX_THREADS) n = REPRO_MAX_THREADS;
    g_threads = n;
    return n;
#endif
}

long repro_threads(void)
{
#ifdef REPRO_NO_THREADS
    return 1;
#else
    return g_threads;
#endif
}

void repro_grade_cycle(
    uint64_t *values, long width, long w_start, long w_stop,
    const int32_t *ops, long nops,
    const uint64_t *in_mask, long n_in,
    const int32_t *out_slots, const uint64_t *out_mask, long n_out,
    uint64_t *out_diff,
    const int32_t *d_slots, const uint64_t *state_mask, long n_ff,
    long q_start, uint64_t *state_diff, uint64_t *dtmp)
{
    struct gc_args A = {
        values, width, w_start, w_stop, ops, nops, in_mask, n_in,
        out_slots, out_mask, n_out, out_diff, d_slots, state_mask,
        n_ff, q_start, state_diff, dtmp, 1, w_stop - w_start,
    };
    long span = w_stop - w_start;
#ifndef REPRO_NO_THREADS
    long parts = g_threads;
    long maxp = span / 8;  /* at least 8 word columns per thread */
    if (maxp < 1) maxp = 1;
    if (parts > maxp) parts = maxp;
    if (parts > 1) {
        long avail = pool_ensure(parts);
        if (parts > avail) parts = avail;
    }
    if (parts > 1) {
        A.parts = parts;
        A.chunk = (span + parts - 1) / parts;
        pthread_mutex_lock(&g_mx);
        g_args = A;
        g_pending = g_spawned;
        g_gen++;
        pthread_cond_broadcast(&g_cv_work);
        pthread_mutex_unlock(&g_mx);
        long hi0 = w_start + A.chunk;
        if (hi0 > w_stop) hi0 = w_stop;
        run_range(&A, w_start, hi0, dtmp);
        pthread_mutex_lock(&g_mx);
        while (g_pending) pthread_cond_wait(&g_cv_done, &g_mx);
        pthread_mutex_unlock(&g_mx);
        return;
    }
#endif
    run_range(&A, w_start, w_stop, dtmp);
}

/* ------------------------------------------------------------------ */
/* lane compaction                                                     */
/* ------------------------------------------------------------------ */

static inline uint64_t repro_pext(uint64_t x, uint64_t m)
{
#if defined(__BMI2__)
    return _pext_u64(x, m);
#else
    uint64_t r = 0;
    int k = 0;
    while (m) {
        uint64_t lsb = m & (~m + 1);
        if (x & lsb) r |= (uint64_t)1 << k;
        k++;
        m &= m - 1;
    }
    return r;
#endif
}

/* Squeeze the kept bits of rows [row_start, row_stop) to the front, in
 * place, across word columns [0, n_words). keep[w] selects the bits of
 * column w that survive. In-place is safe: the write cursor never gets
 * ahead of the read cursor. Returns the new word count. */
long repro_compact_rows(
    uint64_t *values, long width, long row_start, long row_stop,
    const uint64_t *keep, long n_words)
{
    long out_words = 0;
    for (long r = row_start; r < row_stop; r++) {
        uint64_t *restrict row = values + r * width;
        uint64_t acc = 0;
        long nb = 0;
        long j = 0;
        for (long w = 0; w < n_words; w++) {
            uint64_t k = keep[w];
            if (!k) continue;
            long c = __builtin_popcountll(k);
            uint64_t e = repro_pext(row[w], k);
            acc |= e << nb;
            if (nb + c >= 64) {
                row[j++] = acc;
                long used = 64 - nb;
                acc = (used >= 64) ? 0 : (e >> used);
                nb = nb + c - 64;
            } else {
                nb += c;
            }
        }
        if (nb) row[j++] = acc;
        out_words = j;
    }
    return out_words;
}
"""

#: tri-state: None = not tried yet, False = unavailable, else the kernel
_KERNEL = None


class NativeKernel:
    """ctypes bindings plus the configured thread-pool width."""

    __slots__ = ("grade_cycle", "compact_rows", "threads", "_set_threads")

    def __init__(self, library: ctypes.CDLL):
        longs = ctypes.c_long
        pointer = ctypes.c_void_p

        self.grade_cycle = library.repro_grade_cycle
        self.grade_cycle.restype = None
        self.grade_cycle.argtypes = [
            pointer, longs, longs, longs,  # values, width, w_start, w_stop
            pointer, longs,  # ops, nops
            pointer, longs,  # in_mask, n_in
            pointer, pointer, longs,  # out_slots, out_mask, n_out
            pointer,  # out_diff
            pointer, pointer, longs,  # d_slots, state_mask, n_ff
            longs, pointer, pointer,  # q_start, state_diff, dtmp
        ]

        self.compact_rows = library.repro_compact_rows
        self.compact_rows.restype = longs
        self.compact_rows.argtypes = [
            pointer, longs, longs, longs,  # values, width, row_start, row_stop
            pointer, longs,  # keep, n_words
        ]

        self._set_threads = library.repro_set_threads
        self._set_threads.restype = longs
        self._set_threads.argtypes = [longs]
        self.threads = 1

    def set_threads(self, count: int) -> int:
        """Resize the persistent pool; returns the effective width."""
        self.threads = int(self._set_threads(int(count)))
        return self.threads


def default_threads() -> int:
    """Pool width from ``REPRO_FUSED_THREADS``, else min(4, cpus)."""
    raw = os.environ.get("REPRO_FUSED_THREADS", "")
    try:
        if raw:
            return max(1, int(raw))
    except ValueError:
        pass
    return max(1, min(4, os.cpu_count() or 1))


def native_kernel() -> Optional[NativeKernel]:
    """The compiled cycle kernel, or None when unavailable."""
    global _KERNEL
    if _KERNEL is None:
        _KERNEL = _load() or False
    return _KERNEL or None


def configure_threads(count: int) -> int:
    """Set the kernel pool width; returns the effective width (1 when
    the native kernel is unavailable or built without threads)."""
    kernel = native_kernel()
    if kernel is None:
        return 1
    return kernel.set_threads(count)


def _cpu_tag() -> str:
    """CPU identity folded into the cache key.

    The kernel is built with ``-march=native``, so a cached binary must
    never be loaded on a CPU with a different instruction set (shared
    home directories, restored CI caches) — that would trade a graceful
    fallback for a SIGILL.
    """
    tag = platform.machine()
    try:
        with open("/proc/cpuinfo") as handle:
            for line in handle:
                if line.startswith(("flags", "Features")):
                    tag += line
                    break
    except OSError:
        tag += platform.processor() or ""
    return tag


def _cache_path() -> str:
    digest = hashlib.sha256((_SOURCE + _cpu_tag()).encode()).hexdigest()[:16]
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return os.path.join(base, f"repro-fused-native-{digest}.so")


def _bind(library: ctypes.CDLL) -> NativeKernel:
    kernel = NativeKernel(library)
    kernel.set_threads(default_threads())
    return kernel


def _load():
    if os.environ.get("REPRO_FUSED_NATIVE", "1") == "0":
        return None
    shared_object = _cache_path()
    if os.path.exists(shared_object):
        try:
            return _bind(ctypes.CDLL(shared_object))
        except OSError:
            pass  # stale/foreign-arch cache entry; recompile below
    compiler = shutil.which("cc") or shutil.which("gcc") or shutil.which("clang")
    if compiler is None:
        return None
    try:
        os.makedirs(os.path.dirname(shared_object), exist_ok=True)
        with tempfile.TemporaryDirectory(prefix="repro-native-") as workdir:
            source = os.path.join(workdir, "kernel.c")
            with open(source, "w") as handle:
                handle.write(_SOURCE)
            built = os.path.join(workdir, "kernel.so")
            for flags in (
                ["-O3", "-march=native", "-pthread"],
                ["-O2", "-pthread"],
                ["-O2", "-DREPRO_NO_THREADS"],
            ):
                result = subprocess.run(
                    [compiler, "-shared", "-fPIC", *flags, source, "-o", built],
                    capture_output=True,
                )
                if result.returncode == 0:
                    break
            else:
                return None
            # Atomic publish so concurrent processes never load a torn file.
            temp = shared_object + f".{os.getpid()}.tmp"
            shutil.copy(built, temp)
            os.replace(temp, shared_object)
        return _bind(ctypes.CDLL(shared_object))
    except (OSError, subprocess.SubprocessError):
        return None
