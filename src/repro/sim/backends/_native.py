"""Optional native cycle kernel for the fused grading engine.

The fused engine's numpy plan is memory-bandwidth-bound: each batched
kernel streams its rows through DRAM, and numpy's per-call dispatch makes
cache-blocking (running the whole op program over one small column block
while it is L2-resident) uneconomical. This module closes that gap with a
~60-line C kernel that executes one full emulation cycle — input drive,
the 2-input op program, output compare, state latch and compare — over
column blocks sized to stay in cache.

The kernel is compiled lazily with the system C compiler on first use and
cached under ``~/.cache`` keyed by a hash of the source, so a machine
pays the compile once. Everything degrades gracefully: no compiler, a
failed compile, or ``REPRO_FUSED_NATIVE=0`` in the environment simply
returns ``None`` and the fused engine falls back to its pure-numpy plan
(same results, slower). No third-party packages are involved — only
``ctypes`` and the toolchain already present on the host.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import platform
import shutil
import subprocess
import tempfile
from typing import Optional

_SOURCE = r"""
#include <stdint.h>

/* One emulation cycle over the column range [w_start, w_stop), processed
 * in blocks of `block` words so the working set stays cache-resident.
 * `ops` rows are (code, a, b, c, out): codes 0/1/2 = and/or/xor,
 * 3/4/5 = their inverted forms, 6 = mux (a=select, b=d0, c=d1). */
void repro_grade_cycle(
    uint64_t *values, long width, long w_start, long w_stop, long block,
    const int32_t *ops, long nops,
    const uint64_t *in_mask, long n_in,
    const int32_t *out_slots, const uint64_t *out_mask, long n_out,
    uint64_t *out_diff,
    const int32_t *d_slots, const uint64_t *state_mask, long n_ff,
    long q_start, uint64_t *state_diff, uint64_t *dtmp)
{
    for (long w0 = w_start; w0 < w_stop; w0 += block) {
        long wl = w_stop - w0;
        if (wl > block) wl = block;
        for (long i = 0; i < n_in; i++) {
            uint64_t m = in_mask[i];
            uint64_t *r = values + i * width + w0;
            for (long w = 0; w < wl; w++) r[w] = m;
        }
        for (long o = 0; o < nops; o++) {
            const int32_t *p = ops + o * 5;
            const uint64_t *a = values + (long)p[1] * width + w0;
            const uint64_t *b = values + (long)p[2] * width + w0;
            const uint64_t *c = values + (long)p[3] * width + w0;
            uint64_t *out = values + (long)p[4] * width + w0;
            switch (p[0]) {
            case 0: for (long w = 0; w < wl; w++) out[w] = a[w] & b[w]; break;
            case 1: for (long w = 0; w < wl; w++) out[w] = a[w] | b[w]; break;
            case 2: for (long w = 0; w < wl; w++) out[w] = a[w] ^ b[w]; break;
            case 3: for (long w = 0; w < wl; w++) out[w] = ~(a[w] & b[w]); break;
            case 4: for (long w = 0; w < wl; w++) out[w] = ~(a[w] | b[w]); break;
            case 5: for (long w = 0; w < wl; w++) out[w] = ~(a[w] ^ b[w]); break;
            default:
                for (long w = 0; w < wl; w++)
                    out[w] = b[w] ^ (a[w] & (b[w] ^ c[w]));
                break;
            }
        }
        uint64_t *od = out_diff + w0;
        for (long w = 0; w < wl; w++) od[w] = 0;
        for (long i = 0; i < n_out; i++) {
            const uint64_t *r = values + (long)out_slots[i] * width + w0;
            uint64_t m = out_mask[i];
            for (long w = 0; w < wl; w++) od[w] |= r[w] ^ m;
        }
        uint64_t *sd = state_diff + w0;
        for (long w = 0; w < wl; w++) sd[w] = 0;
        for (long i = 0; i < n_ff; i++) {
            const uint64_t *r = values + (long)d_slots[i] * width + w0;
            uint64_t *t = dtmp + i * block;
            uint64_t m = state_mask[i];
            for (long w = 0; w < wl; w++) {
                uint64_t v = r[w];
                t[w] = v;
                sd[w] |= v ^ m;
            }
        }
        for (long i = 0; i < n_ff; i++) {
            uint64_t *q = values + (q_start + i) * width + w0;
            const uint64_t *t = dtmp + i * block;
            for (long w = 0; w < wl; w++) q[w] = t[w];
        }
    }
}
"""

#: tri-state: None = not tried yet, False = unavailable, else the function
_KERNEL = None


def native_kernel() -> Optional[ctypes._CFuncPtr]:
    """The compiled cycle kernel, or None when unavailable."""
    global _KERNEL
    if _KERNEL is None:
        _KERNEL = _load() or False
    return _KERNEL or None


def _cpu_tag() -> str:
    """CPU identity folded into the cache key.

    The kernel is built with ``-march=native``, so a cached binary must
    never be loaded on a CPU with a different instruction set (shared
    home directories, restored CI caches) — that would trade a graceful
    fallback for a SIGILL.
    """
    tag = platform.machine()
    try:
        with open("/proc/cpuinfo") as handle:
            for line in handle:
                if line.startswith(("flags", "Features")):
                    tag += line
                    break
    except OSError:
        tag += platform.processor() or ""
    return tag


def _cache_path() -> str:
    digest = hashlib.sha256((_SOURCE + _cpu_tag()).encode()).hexdigest()[:16]
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return os.path.join(base, f"repro-fused-native-{digest}.so")


def _bind(library: ctypes.CDLL):
    fn = library.repro_grade_cycle
    fn.restype = None
    longs = ctypes.c_long
    pointer = ctypes.c_void_p
    fn.argtypes = [
        pointer, longs, longs, longs, longs,  # values, width, start, stop, block
        pointer, longs,  # ops, nops
        pointer, longs,  # in_mask, n_in
        pointer, pointer, longs,  # out_slots, out_mask, n_out
        pointer,  # out_diff
        pointer, pointer, longs,  # d_slots, state_mask, n_ff
        longs, pointer, pointer,  # q_start, state_diff, dtmp
    ]
    return fn


def _load():
    if os.environ.get("REPRO_FUSED_NATIVE", "1") == "0":
        return None
    shared_object = _cache_path()
    if os.path.exists(shared_object):
        try:
            return _bind(ctypes.CDLL(shared_object))
        except OSError:
            pass  # stale/foreign-arch cache entry; recompile below
    compiler = shutil.which("cc") or shutil.which("gcc") or shutil.which("clang")
    if compiler is None:
        return None
    try:
        os.makedirs(os.path.dirname(shared_object), exist_ok=True)
        with tempfile.TemporaryDirectory(prefix="repro-native-") as workdir:
            source = os.path.join(workdir, "kernel.c")
            with open(source, "w") as handle:
                handle.write(_SOURCE)
            built = os.path.join(workdir, "kernel.so")
            for flags in (["-O3", "-march=native"], ["-O2"]):
                result = subprocess.run(
                    [compiler, "-shared", "-fPIC", *flags, source, "-o", built],
                    capture_output=True,
                )
                if result.returncode == 0:
                    break
            else:
                return None
            # Atomic publish so concurrent processes never load a torn file.
            temp = shared_object + f".{os.getpid()}.tmp"
            shutil.copy(built, temp)
            os.replace(temp, shared_object)
        return _bind(ctypes.CDLL(shared_object))
    except (OSError, subprocess.SubprocessError):
        return None
