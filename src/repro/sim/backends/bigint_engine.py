"""The dependency-free bigint grading engine: one fault per int bit.

Nets are arbitrary-precision Python ints, one fault per bit position. This
engine needs nothing beyond the standard library, which makes it the
trusted cross-check for the numpy-based engines and the natural choice for
small runs in constrained environments.

Plain SEU campaigns take the original loop verbatim; other fault models
run the generic branch (multi-flop flips, per-cycle force re-application,
final-suffix vanish semantics) — see :mod:`repro.sim.inject`.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.faults.model import SeuFault
from repro.sim.backends.base import GradingEngine, register_engine
from repro.sim.compile import (
    OP_AND,
    OP_BUF,
    OP_CONST0,
    OP_INV,
    OP_MUX2,
    OP_NAND,
    OP_NOR,
    OP_OR,
    OP_XNOR,
    OP_XOR,
    CompiledNetlist,
)
from repro.sim.cycle import GoldenTrace
from repro.sim.inject import schedule_for
from repro.sim.vectors import Testbench


def _eval_ops_int(values: List[int], ops, all_ones: int) -> None:
    """Evaluate the levelized op program over bigint lanes in place."""
    for opcode, in_slots, out_slot in ops:
        if opcode == OP_AND:
            row = all_ones
            for slot in in_slots:
                row &= values[slot]
            values[out_slot] = row
        elif opcode == OP_OR:
            row = 0
            for slot in in_slots:
                row |= values[slot]
            values[out_slot] = row
        elif opcode == OP_NAND:
            row = all_ones
            for slot in in_slots:
                row &= values[slot]
            values[out_slot] = row ^ all_ones
        elif opcode == OP_NOR:
            row = 0
            for slot in in_slots:
                row |= values[slot]
            values[out_slot] = row ^ all_ones
        elif opcode == OP_XOR:
            row = 0
            for slot in in_slots:
                row ^= values[slot]
            values[out_slot] = row
        elif opcode == OP_XNOR:
            row = 0
            for slot in in_slots:
                row ^= values[slot]
            values[out_slot] = row ^ all_ones
        elif opcode == OP_BUF:
            values[out_slot] = values[in_slots[0]]
        elif opcode == OP_INV:
            values[out_slot] = values[in_slots[0]] ^ all_ones
        elif opcode == OP_MUX2:
            select = values[in_slots[0]]
            values[out_slot] = (select & values[in_slots[2]]) | (
                (select ^ all_ones) & values[in_slots[1]]
            )
        elif opcode == OP_CONST0:
            values[out_slot] = 0
        else:  # OP_CONST1
            values[out_slot] = all_ones


def _set_lanes(target: List[int], mask: int, cycle: int) -> None:
    """Assign ``cycle`` to every lane whose bit is set in ``mask``."""
    while mask:
        low_bit = mask & -mask
        target[low_bit.bit_length() - 1] = cycle
        mask ^= low_bit


@register_engine
class BigintEngine(GradingEngine):
    """Bit-parallel grading over Python bigints."""

    name = "bigint"

    def grade(
        self,
        compiled: CompiledNetlist,
        testbench: Testbench,
        faults: Sequence[SeuFault],
        golden: GoldenTrace,
    ) -> Tuple[List[int], List[int]]:
        schedule = schedule_for(faults, testbench.num_cycles, compiled.num_flops)
        if schedule.simple:
            return self._grade_simple(compiled, testbench, faults, golden)
        return self._grade_general(compiled, testbench, golden, schedule)

    # ------------------------------------------------------------------
    # the original SEU loop (one-shot XOR, first-match vanish)
    # ------------------------------------------------------------------
    def _grade_simple(
        self,
        compiled: CompiledNetlist,
        testbench: Testbench,
        faults: Sequence[SeuFault],
        golden: GoldenTrace,
    ) -> Tuple[List[int], List[int]]:
        num_faults = len(faults)
        all_ones = (1 << num_faults) - 1

        values = [0] * compiled.num_slots

        injections: Dict[int, List] = {}
        for index, fault in enumerate(faults):
            q_slot = compiled.flops[fault.flop_index].q_index
            injections.setdefault(fault.cycle, []).append((q_slot, 1 << index))

        injected_mask_by_cycle: List[int] = []
        running = 0
        by_cycle: Dict[int, int] = {}
        for index, fault in enumerate(faults):
            by_cycle[fault.cycle] = by_cycle.get(fault.cycle, 0) | (1 << index)
        for cycle in range(testbench.num_cycles):
            running |= by_cycle.get(cycle, 0)
            injected_mask_by_cycle.append(running)

        reset = golden.states[0]
        for position, flop in enumerate(compiled.flops):
            values[flop.q_index] = all_ones if (reset >> position) & 1 else 0

        fail_cycle = [-1] * num_faults
        vanish_cycle = [-1] * num_faults
        not_failed = all_ones
        not_vanished = all_ones

        for cycle in range(testbench.num_cycles):
            for q_slot, bit in injections.get(cycle, ()):
                values[q_slot] ^= bit

            vector = testbench.vectors[cycle]
            for position, slot in enumerate(compiled.input_slots):
                values[slot] = all_ones if (vector >> position) & 1 else 0

            _eval_ops_int(values, compiled.ops, all_ones)

            golden_out = golden.outputs[cycle]
            out_diff = 0
            for position, slot in enumerate(compiled.output_slots):
                if (golden_out >> position) & 1:
                    out_diff |= values[slot] ^ all_ones
                else:
                    out_diff |= values[slot]

            injected = injected_mask_by_cycle[cycle]
            newly_failed = out_diff & not_failed & injected
            while newly_failed:
                low_bit = newly_failed & -newly_failed
                fail_cycle[low_bit.bit_length() - 1] = cycle
                newly_failed ^= low_bit
            not_failed &= ~(out_diff & injected)

            next_rows = [values[flop.d_index] for flop in compiled.flops]
            golden_next = golden.states[cycle + 1]
            state_diff = 0
            for position, row in enumerate(next_rows):
                if (golden_next >> position) & 1:
                    state_diff |= row ^ all_ones
                else:
                    state_diff |= row
            for flop, row in zip(compiled.flops, next_rows):
                values[flop.q_index] = row

            same = (state_diff ^ all_ones) & all_ones
            newly_vanished = same & not_vanished & injected
            while newly_vanished:
                low_bit = newly_vanished & -newly_vanished
                vanish_cycle[low_bit.bit_length() - 1] = cycle
                newly_vanished ^= low_bit
            not_vanished &= ~(same & injected)

        self.last_stats = {
            "cycles_executed": testbench.num_cycles,
            "num_cycles": testbench.num_cycles,
        }
        return fail_cycle, vanish_cycle

    # ------------------------------------------------------------------
    # the generic loop (multi-flop flips, per-cycle force re-application)
    # ------------------------------------------------------------------
    def _grade_general(
        self,
        compiled: CompiledNetlist,
        testbench: Testbench,
        golden: GoldenTrace,
        schedule,
    ) -> Tuple[List[int], List[int]]:
        num_faults = schedule.num_faults
        num_cycles = testbench.num_cycles
        all_ones = (1 << num_faults) - 1
        q_slots = [flop.q_index for flop in compiled.flops]

        values = [0] * compiled.num_slots
        reset = golden.states[0]
        for position, slot in enumerate(q_slots):
            values[slot] = all_ones if (reset >> position) & 1 else 0

        fail_cycle = [-1] * num_faults
        vanish_cycle = [-1] * num_faults
        not_failed = all_ones

        # Per-flop force lanes, re-applied to the held state every cycle.
        force_mask = [0] * len(q_slots)
        force_set = [0] * len(q_slots)
        forced_rows: set = set()

        activations: Dict[int, int] = {}
        for lane, cycle in enumerate(schedule.first_active):
            activations[cycle] = activations.get(cycle, 0) | (1 << lane)

        state = {"injected": 0, "no_candidate": all_ones}

        def apply_cycle_events(cycle: int) -> None:
            for flop_index, lane in schedule.flips.get(cycle, ()):
                values[q_slots[flop_index]] ^= 1 << lane
            for flop_index, lane, value in schedule.force_on.get(cycle, ()):
                bit = 1 << lane
                force_mask[flop_index] |= bit
                if value:
                    force_set[flop_index] |= bit
                forced_rows.add(flop_index)
            for flop_index, lane in schedule.force_off.get(cycle, ()):
                bit = 1 << lane
                force_mask[flop_index] &= ~bit
                force_set[flop_index] &= ~bit
            for flop_index in forced_rows:
                slot = q_slots[flop_index]
                values[slot] = (values[slot] & ~force_mask[flop_index]) | (
                    force_set[flop_index]
                )

        def update_vanish(state_word: int, end_cycle: int) -> None:
            state_diff = 0
            for position, slot in enumerate(q_slots):
                if (state_word >> position) & 1:
                    state_diff |= values[slot] ^ all_ones
                else:
                    state_diff |= values[slot]
            conv = (state_diff ^ all_ones) & state["injected"]
            newly = conv & state["no_candidate"]
            if newly:
                _set_lanes(vanish_cycle, newly, end_cycle)
                state["no_candidate"] &= ~newly
            lost = state_diff & state["injected"] & ~state["no_candidate"]
            if lost:
                _set_lanes(vanish_cycle, lost, -1)
                state["no_candidate"] |= lost

        for cycle in range(num_cycles):
            apply_cycle_events(cycle)
            if cycle > 0:
                update_vanish(golden.states[cycle], cycle - 1)
            state["injected"] |= activations.get(cycle, 0)

            vector = testbench.vectors[cycle]
            for position, slot in enumerate(compiled.input_slots):
                values[slot] = all_ones if (vector >> position) & 1 else 0

            _eval_ops_int(values, compiled.ops, all_ones)

            golden_out = golden.outputs[cycle]
            out_diff = 0
            for position, slot in enumerate(compiled.output_slots):
                if (golden_out >> position) & 1:
                    out_diff |= values[slot] ^ all_ones
                else:
                    out_diff |= values[slot]
            newly_failed = out_diff & not_failed & state["injected"]
            if newly_failed:
                _set_lanes(fail_cycle, newly_failed, cycle)
                not_failed &= ~newly_failed

            next_rows = [values[flop.d_index] for flop in compiled.flops]
            for slot, row in zip(q_slots, next_rows):
                values[slot] = row

        apply_cycle_events(num_cycles)
        update_vanish(golden.states[num_cycles], num_cycles - 1)

        self.last_stats = {
            "cycles_executed": num_cycles,
            "num_cycles": num_cycles,
        }
        return fail_cycle, vanish_cycle
