"""Pluggable grading engines for the bit-parallel fault oracle.

The oracle's algorithm (parallel-pattern SEU grading producing
``fail_cycle`` / ``vanish_cycle`` per fault) is fixed; *engines* are
interchangeable executors of that algorithm, registered by name:

* ``fused``  — batched per-opcode numpy kernels, active-lane windowing
  and resolved-fault early exit (the default; see
  :mod:`repro.sim.backends.fused`);
* ``numpy``  — the classic row-per-net uint64 implementation with per-op
  Python dispatch;
* ``bigint`` — dependency-free Python-int lanes, the trusted cross-check.

Third-party engines can subclass :class:`GradingEngine` and decorate with
:func:`register_engine`; ``grade_faults(..., backend=<name>)`` then picks
them up with no further wiring.
"""

from repro.sim.backends.base import (
    GradingEngine,
    available_engines,
    get_engine,
    register_engine,
)

# Importing the engine modules registers the built-in engines.
from repro.sim.backends import bigint_engine as _bigint_engine  # noqa: F401
from repro.sim.backends import fused as _fused  # noqa: F401
from repro.sim.backends import numpy_engine as _numpy_engine  # noqa: F401
from repro.sim.backends.fused import FusedProgram, build_fused_program

__all__ = [
    "GradingEngine",
    "available_engines",
    "get_engine",
    "register_engine",
    "FusedProgram",
    "build_fused_program",
]
