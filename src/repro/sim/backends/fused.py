"""The fused grading engine: batched opcode kernels with early exit.

This is the default oracle backend. It removes the costs that make the
classic numpy engine the wall-clock bottleneck of b14-scale campaigns:

* **Compilation** — the levelized op program is precompiled once per
  netlist into struct-of-arrays *op groups*: buffers alias away, gates
  are rewritten to 2-input form, inverting gates (nand/nor/xnor and inv)
  fold into their base op plus a per-row invert mask, and a stage
  scheduler packs independent gates of the same base op into one group
  (b14: 1738 interpreted ops become a few hundred batched groups). The
  same pass emits a flat ``(code, a, b, c, out)`` table for the native
  kernel. Programs are cached per :class:`CompiledNetlist`.
* **Golden re-unpacking** — golden input/output/state words are
  pre-expanded once into uint64 mask rows (0 or ~0 per bit), so per-cycle
  compares are one XOR and an OR-reduction, with ``np.unpackbits`` only
  on the (usually sparse) newly-resolved words — not over every fault
  lane every cycle.
* **Dead lanes and dead cycles** — fault lanes are (stably) sorted by
  injection cycle and simulated through a sliding window of active
  64-lane word columns: columns activate when their first fault is
  injected (seeded from the golden state) and retire once every lane in
  them has re-converged. When every injected fault has vanished and no
  injections remain, the cycle loop exits early — resolved campaigns do
  not pay for the tail of the testbench.
* **Memory locality** — when a C compiler is available, the per-cycle
  inner loop runs in a lazily compiled native kernel
  (:mod:`repro.sim.backends._native`) that executes the whole op program
  over cache-sized column blocks; the bit-parallel simulation then runs
  at cache bandwidth instead of DRAM bandwidth. Without a compiler the
  engine transparently falls back to a pure-numpy *plan*: the program
  instantiated against a value array with every operand resolved once
  into zero-copy views or shared gather scratch, executed as a flat list
  of in-place (``out=``) batched calls — no ``.copy()`` per gate, no
  per-cycle view construction.

Both execution paths produce bit-identical results; every other engine
(``numpy``, ``bigint``) and the serial replay are cross-checked against
them in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple
from weakref import WeakKeyDictionary

import numpy as np

from repro.faults.model import SeuFault
from repro.sim.backends._native import native_kernel
from repro.sim.backends.base import GradingEngine, register_engine
from repro.sim.inject import schedule_for
from repro.sim.compile import (
    OP_AND,
    OP_BUF,
    OP_CONST0,
    OP_CONST1,
    OP_INV,
    OP_MUX2,
    OP_NAND,
    OP_NOR,
    OP_OR,
    OP_XNOR,
    OP_XOR,
    CompiledNetlist,
)
from repro.sim.cycle import GoldenTrace
from repro.sim.vectors import Testbench

_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)

# Kernel shapes a group can take.
_K_BIN = 0  # base 2-input gate (+ optional per-row invert mask)
_K_MUX = 1  # 2:1 mux

# Operand-block fetch modes.
_F_SLICE = 0  # contiguous slot run -> zero-copy view
_F_ROW = 1  # one slot for every gate -> broadcast row view
_F_GATHER = 2  # general case -> fancy-index gather

# Instantiated plan step tags (ordered by execution frequency).
_P_BIN = 0  # ufunc(a, b, out=view)
_P_GATHER = 1  # values.take(index, 0, buffer)
_P_BININV = 2  # ufunc(a, b, out=view); view ^= inv_col
_P_MUX = 3  # view = d0 ^ (select & (d0 ^ d1))

#: base (non-inverting) op of every 2-input gate family
_BASE_OP = {
    OP_AND: OP_AND,
    OP_NAND: OP_AND,
    OP_OR: OP_OR,
    OP_NOR: OP_OR,
    OP_XOR: OP_XOR,
    OP_XNOR: OP_XOR,
}
_INVERTING = frozenset((OP_NAND, OP_NOR, OP_XNOR))
_UFUNC_OF = {
    OP_AND: np.bitwise_and,
    OP_OR: np.bitwise_or,
    OP_XOR: np.bitwise_xor,
}
#: native op table codes: base code + 3 when inverted; 6 = mux
_NATIVE_CODE = {OP_AND: 0, OP_OR: 1, OP_XOR: 2}
_NATIVE_MUX = 6

#: instantiated numpy plans kept per program (keyed by word count)
_MAX_CACHED_PLANS = 4


@dataclass
class FusedProgram:
    """A compiled netlist lowered to batched struct-of-arrays kernels.

    ``groups`` holds ``(kind, base_op, operands, out_start, out_stop,
    inv_col, size)`` tuples in execution order; ``operands`` is one fetch
    descriptor per input block (2 for binary kernels; select/d0/d1 for
    muxes) — ``(_F_SLICE, start, stop)``, ``(_F_ROW, slot, 0)`` or
    ``(_F_GATHER, index_array, 0)``. Outputs occupy the contiguous slot
    range ``[out_start, out_stop)`` so kernels compute straight into the
    value array. ``inv_col`` is a ``(size, 1)`` uint64 mask (~0 on rows
    whose gate inverts) or None. ``native_ops`` is the same program as a
    flat ``(code, a, b, c, out)`` int32 table for the C kernel. Slots are
    renumbered: primary inputs first, then flop q's, then the remaining
    source slots, then one produced slot per gate in group order.
    """

    num_slots: int
    groups: List[tuple]
    native_ops: np.ndarray
    zero_rows: np.ndarray  # rows held at 0 (const0 gates)
    ones_rows: np.ndarray  # rows held at ~0 (const1 gates)
    num_inputs: int
    q_start: int
    q_stop: int
    input_slots: np.ndarray
    output_slots: np.ndarray
    d_slots: np.ndarray
    q_slots: np.ndarray
    #: instantiated (values, plan, ...) per word count — see _instantiate
    plans: Dict[int, tuple] = field(default_factory=dict, repr=False)
    #: golden mask rows per stimulus digest — see _masks_for
    masks: Dict[str, tuple] = field(default_factory=dict, repr=False)


_PROGRAM_CACHE: "WeakKeyDictionary[CompiledNetlist, FusedProgram]" = (
    WeakKeyDictionary()
)


def clear_program_cache() -> None:
    """Drop all cached fused programs (used by benchmarks and tests)."""
    _PROGRAM_CACHE.clear()


def fused_program_for(compiled: CompiledNetlist) -> FusedProgram:
    """Session-cached :class:`FusedProgram` for ``compiled``."""
    try:
        return _PROGRAM_CACHE[compiled]
    except KeyError:
        program = build_fused_program(compiled)
        _PROGRAM_CACHE[compiled] = program
        return program


def _operand_descriptor(block: List[int]) -> tuple:
    """Pick the cheapest fetch mode for one operand block."""
    first = block[0]
    if all(slot == first for slot in block):
        return (_F_ROW, first, 0)
    if all(slot == first + offset for offset, slot in enumerate(block)):
        return (_F_SLICE, first, first + len(block))
    return (_F_GATHER, np.array(block, dtype=np.int64), 0)


def build_fused_program(compiled: CompiledNetlist) -> FusedProgram:
    """Lower the levelized op list into batched per-opcode groups."""
    next_slot = compiled.num_slots
    const0_old: List[int] = []
    const1_old: List[int] = []
    alias = {}  # buf output -> the slot it forwards
    entries: List[Tuple[int, Tuple[int, ...], int]] = []

    def resolve(slot: int) -> int:
        while slot in alias:
            slot = alias[slot]
        return slot

    # ---- pass 1: 2-input normal form ---------------------------------
    # Buffers (and degenerate 1-input and/or/xor) alias to their input;
    # inverters (and 1-input inverting gates) become NOR(a, a) so they
    # ride the OR family with just an invert-mask row; multi-input
    # associative gates become chains through temp slots.
    for opcode, in_slots, out_slot in compiled.ops:
        in_slots = tuple(resolve(slot) for slot in in_slots)
        if opcode == OP_CONST0:
            const0_old.append(out_slot)
            continue
        if opcode == OP_CONST1:
            const1_old.append(out_slot)
            continue
        if opcode == OP_MUX2:
            entries.append((OP_MUX2, in_slots, out_slot))
            continue
        if opcode == OP_BUF or (
            len(in_slots) == 1 and opcode not in _INVERTING and opcode != OP_INV
        ):
            alias[out_slot] = in_slots[0]
            continue
        if opcode == OP_INV or len(in_slots) == 1:
            entries.append((OP_NOR, (in_slots[0], in_slots[0]), out_slot))
            continue
        chain_op = _BASE_OP[opcode]
        accumulator = in_slots[0]
        for middle in in_slots[1:-1]:
            temp = next_slot
            next_slot += 1
            entries.append((chain_op, (accumulator, middle), temp))
            accumulator = temp
        entries.append((opcode, (accumulator, in_slots[-1]), out_slot))

    # ---- pass 2: stage scheduling ------------------------------------
    # Every gate lands in stage 1 + max(stage of producers); gates of one
    # base-op family at the same stage share a group. Groups of a stage
    # are mutually independent, so executing groups in (stage, family)
    # order preserves dataflow while batching far below the op count.
    slot_stage = {}  # produced slot -> pipeline stage
    stage_groups: dict = {}  # (stage, family) -> group index
    groups_members: List[List[Tuple[int, Tuple[int, ...], int]]] = []
    groups_key: List[tuple] = []

    for opcode, in_slots, out_slot in entries:
        stage = 0
        for slot in in_slots:
            producer = slot_stage.get(slot, -1)
            if producer >= stage:
                stage = producer + 1
        family = (
            (_K_MUX, OP_MUX2)
            if opcode == OP_MUX2
            else (_K_BIN, _BASE_OP[opcode])
        )
        key = (stage, family)
        group_index = stage_groups.get(key)
        if group_index is None:
            group_index = len(groups_members)
            stage_groups[key] = group_index
            groups_members.append([])
            groups_key.append(key)
        groups_members[group_index].append((opcode, in_slots, out_slot))
        slot_stage[out_slot] = stage

    group_order = sorted(range(len(groups_members)), key=lambda i: groups_key[i])
    groups_members = [groups_members[i] for i in group_order]
    groups_family = [groups_key[i][1] for i in group_order]

    # ---- pass 3: slot renumbering ------------------------------------
    # Sources keep their relative order (inputs, then q's, then the
    # rest); each group's outputs become one contiguous range.
    skip = set(const0_old)
    skip.update(const1_old)
    skip.update(alias)
    new_of = {}
    for slot in range(compiled.num_slots):
        if slot not in slot_stage and slot not in skip:
            new_of[slot] = len(new_of)
    for old in const0_old:
        new_of[old] = len(new_of)
    for old in const1_old:
        new_of[old] = len(new_of)
    out_ranges: List[Tuple[int, int]] = []
    cursor = len(new_of)
    for members in groups_members:
        # Sort members by their operands' already-renumbered slots: buses
        # that flow through the circuit in order keep their outputs in
        # order too, turning downstream operand blocks into zero-copy
        # slices instead of gathers (every producer ran in an earlier
        # group, so its new ids are known here).
        members.sort(
            key=lambda member: tuple(new_of[slot] for slot in member[1])
        )
        start = cursor
        for _, _, out_slot in members:
            new_of[out_slot] = cursor
            cursor += 1
        out_ranges.append((start, cursor))
    num_slots = cursor

    # ---- pass 4: emit struct-of-arrays groups + the native op table ---
    groups: List[tuple] = []
    native_rows: List[Tuple[int, int, int, int, int]] = []
    for (kind, base_key), members, (start, stop) in zip(
        groups_family, groups_members, out_ranges
    ):
        size = len(members)
        num_blocks = 3 if kind == _K_MUX else 2
        operands = tuple(
            _operand_descriptor(
                [new_of[member[1][block]] for member in members]
            )
            for block in range(num_blocks)
        )
        inv_col = None
        base_op = OP_MUX2 if kind == _K_MUX else base_key
        if kind == _K_BIN:
            inverts = [member[0] in _INVERTING for member in members]
            base_code = _NATIVE_CODE[base_key]
            for offset, member in enumerate(members):
                first = new_of[member[1][0]]
                second = new_of[member[1][1]]
                native_rows.append(
                    (
                        base_code + (3 if inverts[offset] else 0),
                        first,
                        second,
                        second,
                        start + offset,
                    )
                )
            if any(inverts):
                inv_col = np.fromiter(
                    (_ONES if invert else 0 for invert in inverts),
                    dtype=np.uint64,
                    count=size,
                ).reshape(size, 1)
        else:
            for offset, member in enumerate(members):
                native_rows.append(
                    (
                        _NATIVE_MUX,
                        new_of[member[1][0]],
                        new_of[member[1][1]],
                        new_of[member[1][2]],
                        start + offset,
                    )
                )
        groups.append((kind, base_op, operands, start, stop, inv_col, size))

    def renumber(slot: int) -> int:
        return new_of[resolve(slot)]

    input_slots = np.array(
        [renumber(slot) for slot in compiled.input_slots], dtype=np.int64
    )
    q_slots = np.array(
        [renumber(flop.q_index) for flop in compiled.flops], dtype=np.int64
    )
    num_inputs = len(input_slots)
    num_flops = len(q_slots)
    # compile_netlist assigns inputs then q's first; renumbering keeps
    # source order, so both blocks stay contiguous at the front.
    assert list(input_slots) == list(range(num_inputs))
    assert list(q_slots) == list(range(num_inputs, num_inputs + num_flops))

    return FusedProgram(
        num_slots=num_slots,
        groups=groups,
        native_ops=np.array(native_rows, dtype=np.int32).reshape(-1, 5),
        zero_rows=np.array(
            [new_of[slot] for slot in const0_old], dtype=np.int64
        ),
        ones_rows=np.array(
            [new_of[slot] for slot in const1_old], dtype=np.int64
        ),
        num_inputs=num_inputs,
        q_start=num_inputs,
        q_stop=num_inputs + num_flops,
        input_slots=input_slots,
        output_slots=np.array(
            [renumber(slot) for slot in compiled.output_slots], dtype=np.int64
        ),
        d_slots=np.array(
            [renumber(flop.d_index) for flop in compiled.flops], dtype=np.int64
        ),
        q_slots=q_slots,
    )


def _instantiate(program: FusedProgram, num_words: int) -> tuple:
    """Bind the numpy plan to a value array of ``num_words`` columns.

    Returns ``(values, plan, out_buffer, d_buffer)`` where ``plan`` is
    the flat list of prepared kernel steps the fallback cycle loop
    executes. Cached on the program: views and buffers are preallocated,
    so repeated grade calls of the same shape skip straight to
    simulation.
    """
    try:
        return program.plans[num_words]
    except KeyError:
        pass

    values = np.zeros((program.num_slots, num_words), dtype=np.uint64)
    if len(program.ones_rows):
        values[program.ones_rows, :] = _ONES

    plan: List[tuple] = []

    # One shared scratch arena per operand position: gather buffers are
    # views into it, so every step reuses the same few cache-hot rows
    # instead of dragging hundreds of cold buffers through memory.
    scratch_rows = [0, 0, 0]
    for _, _, operands, _, _, _, _ in program.groups:
        for position, (mode, payload, _) in enumerate(operands):
            if mode == _F_GATHER and len(payload) > scratch_rows[position]:
                scratch_rows[position] = len(payload)
    scratch = [
        np.empty((rows, num_words), dtype=np.uint64) if rows else None
        for rows in scratch_rows
    ]

    def fetch(descriptor: tuple, position: int):
        mode, payload, stop = descriptor
        if mode == _F_SLICE:
            return values[payload:stop]
        if mode == _F_ROW:
            return values[payload]
        buffer = scratch[position][: len(payload)]
        plan.append((_P_GATHER, payload, buffer))
        return buffer

    for kind, base_op, operands, out_start, out_stop, inv_col, _ in program.groups:
        view = values[out_start:out_stop]
        if kind == _K_BIN:
            a = fetch(operands[0], 0)
            b = fetch(operands[1], 1)
            if inv_col is None:
                plan.append((_P_BIN, _UFUNC_OF[base_op], a, b, view))
            else:
                plan.append(
                    (_P_BININV, _UFUNC_OF[base_op], a, b, view, inv_col)
                )
        else:
            select = fetch(operands[0], 0)
            d0 = fetch(operands[1], 1)
            d1 = fetch(operands[2], 2)
            plan.append((_P_MUX, select, d0, d1, view))

    out_buffer = np.empty((len(program.output_slots), num_words), dtype=np.uint64)
    d_buffer = np.empty((len(program.d_slots), num_words), dtype=np.uint64)

    if len(program.plans) >= _MAX_CACHED_PLANS:
        program.plans.clear()
    instance = (values, plan, out_buffer, d_buffer)
    program.plans[num_words] = instance
    return instance


def _exec_plan(plan: List[tuple], values: np.ndarray) -> None:
    """Execute one cycle's worth of prepared kernel steps."""
    bitwise_xor = np.bitwise_xor
    bitwise_and = np.bitwise_and
    for step in plan:
        tag = step[0]
        if tag == _P_BIN:
            step[1](step[2], step[3], out=step[4])
        elif tag == _P_GATHER:
            values.take(step[1], 0, step[2])
        elif tag == _P_BININV:
            view = step[4]
            step[1](step[2], step[3], out=view)
            bitwise_xor(view, step[5], out=view)
        else:  # _P_MUX: out = d0 ^ (select & (d0 ^ d1))
            view = step[4]
            bitwise_xor(step[2], step[3], out=view)
            bitwise_and(view, step[1], out=view)
            bitwise_xor(view, step[2], out=view)


def _mask_rows(words: Sequence[int], num_bits: int) -> np.ndarray:
    """Expand packed golden words into per-bit uint64 mask rows (0 / ~0)."""
    rows = np.zeros((len(words), num_bits), dtype=np.uint64)
    for index, word in enumerate(words):
        row = rows[index]
        position = 0
        while word:
            if word & 1:
                row[position] = _ONES
            word >>= 1
            position += 1
    return rows


#: golden mask-row sets kept per program (keyed by stimulus digest)
_MAX_CACHED_MASKS = 4


def _masks_for(
    program: FusedProgram, testbench: Testbench, golden: GoldenTrace
) -> tuple:
    """The (input, output, state) mask rows, cached on the program.

    The expansion is pure Python over every golden word and costs
    milliseconds at b14 scale — a fixed per-grade-call tax that the
    sharded runner would otherwise pay once per shard. The golden trace
    is a function of (netlist, stimulus) and the program is per-netlist,
    so the stimulus digest alone keys the memo.
    """
    key = testbench.stimulus_digest()
    masks = program.masks.get(key)
    if masks is None:
        masks = (
            _mask_rows(testbench.vectors, program.num_inputs),
            _mask_rows(golden.outputs, len(program.output_slots)),
            _mask_rows(golden.states, len(program.q_slots)),
        )
        if len(program.masks) >= _MAX_CACHED_MASKS:
            program.masks.clear()
        program.masks[key] = masks
    return masks


class _LaneOrder:
    """Fault lanes stably sorted by injection cycle.

    Sorting makes the injected lane set a prefix at every cycle, which
    keeps the active word window contiguous and lets injections index the
    per-cycle slice ``[starts[t], ends[t])``.
    """

    def __init__(self, program: FusedProgram, faults, num_cycles: int):
        num_faults = len(faults)
        cycles = np.fromiter(
            (fault.cycle for fault in faults), dtype=np.int64, count=num_faults
        )
        flop_indices = np.fromiter(
            (fault.flop_index for fault in faults),
            dtype=np.int64,
            count=num_faults,
        )
        self.order = np.argsort(cycles, kind="stable")
        sorted_cycles = cycles[self.order]
        self.lane_q = program.q_slots[flop_indices[self.order]]
        self.lane_word = np.arange(num_faults, dtype=np.int64) // 64
        self.lane_bit = np.left_shift(
            np.uint64(1), (np.arange(num_faults) % 64).astype(np.uint64)
        )
        span = np.arange(num_cycles)
        self.starts = np.searchsorted(sorted_cycles, span, side="left")
        self.ends = np.searchsorted(sorted_cycles, span, side="right")


@register_engine
class FusedEngine(GradingEngine):
    """Batched-kernel grading with lane windowing and early exit."""

    name = "fused"

    #: set False to force the pure-numpy plan path (tests, diagnostics)
    use_native = True

    def grade(
        self,
        compiled: CompiledNetlist,
        testbench: Testbench,
        faults: Sequence[SeuFault],
        golden: GoldenTrace,
    ) -> Tuple[List[int], List[int]]:
        program = fused_program_for(compiled)
        num_faults = len(faults)
        num_words = (num_faults + 63) // 64
        num_cycles = testbench.num_cycles

        schedule = schedule_for(faults, num_cycles, len(program.q_slots))
        if not schedule.simple:
            return self._grade_general(program, testbench, golden, schedule)

        lanes = _LaneOrder(program, faults, num_cycles)

        # Golden words pre-unpacked to mask rows, cached per stimulus.
        in_masks, out_masks, state_masks = _masks_for(
            program, testbench, golden
        )

        # Valid-lane mask per word (the last word may be partial).
        valid = np.full(num_words, _ONES, dtype=np.uint64)
        if num_faults % 64:
            valid[-1] = np.uint64((1 << (num_faults % 64)) - 1)

        fail_sorted = np.full(num_faults, -1, dtype=np.int64)
        vanish_sorted = np.full(num_faults, -1, dtype=np.int64)

        kernel = native_kernel() if self.use_native else None
        runner = self._run_native if kernel is not None else self._run_plan
        executed, extra = runner(
            kernel,
            program,
            lanes,
            (in_masks, out_masks, state_masks),
            valid,
            (num_faults, num_words, num_cycles),
            fail_sorted,
            vanish_sorted,
        )

        self.last_stats = {
            "cycles_executed": executed,
            "num_cycles": num_cycles,
            "num_words": num_words,
            "num_groups": len(program.groups),
            "native": kernel is not None,
            **extra,
        }

        fail_cycle = np.empty(num_faults, dtype=np.int64)
        vanish_cycle = np.empty(num_faults, dtype=np.int64)
        fail_cycle[lanes.order] = fail_sorted
        vanish_cycle[lanes.order] = vanish_sorted
        return fail_cycle.tolist(), vanish_cycle.tolist()

    # ------------------------------------------------------------------
    # generic path: non-SEU fault models (multi-flop flips, per-cycle
    # force re-application, final-suffix vanish semantics)
    # ------------------------------------------------------------------
    def _grade_general(
        self,
        program: FusedProgram,
        testbench: Testbench,
        golden: GoldenTrace,
        schedule,
    ) -> Tuple[List[int], List[int]]:
        """Full-width grading over the prepared numpy plan.

        Persistent faults are incompatible with the legacy path's two
        core optimizations — lane retirement (a forced lane can
        re-diverge) and the one-shot injection XOR — so this branch runs
        every fault lane through every cycle, re-applying the force
        bit-planes to the held state each cycle, and tracks vanish as the
        start of the final golden-equal suffix. Transient (MBU) schedules
        still early-exit once every lane has re-converged.
        """
        num_faults = schedule.num_faults
        num_cycles = testbench.num_cycles
        num_words = (num_faults + 63) // 64
        num_flops = len(program.q_slots)

        in_masks, out_masks, state_masks = _masks_for(
            program, testbench, golden
        )

        values, plan, out_buffer, d_buffer = _instantiate(program, num_words)
        input_view = values[0 : program.num_inputs]
        q_view = values[program.q_start : program.q_stop]
        q_view[:] = state_masks[0][:, None]

        valid = np.full(num_words, _ONES, dtype=np.uint64)
        if num_faults % 64:
            valid[-1] = np.uint64((1 << (num_faults % 64)) - 1)

        fail_cycle = np.full(num_faults, -1, dtype=np.int64)
        vanish_cycle = np.full(num_faults, -1, dtype=np.int64)
        injected = np.zeros(num_words, dtype=np.uint64)
        not_failed = valid.copy()
        no_candidate = valid.copy()

        force_mask = np.zeros((num_flops, num_words), dtype=np.uint64)
        force_set = np.zeros((num_flops, num_words), dtype=np.uint64)
        forcing = False

        activations: Dict[int, np.ndarray] = {}
        lane_groups: Dict[int, List[int]] = {}
        for lane, cycle in enumerate(schedule.first_active):
            lane_groups.setdefault(cycle, []).append(lane)
        for cycle, lanes_at in lane_groups.items():
            mask = np.zeros(num_words, dtype=np.uint64)
            for lane in lanes_at:
                mask[lane >> 6] |= np.uint64(1 << (lane & 63))
            activations[cycle] = mask
        last_activation = max(lane_groups) if lane_groups else -1

        bitwise_xor = np.bitwise_xor
        bitwise_or_reduce = np.bitwise_or.reduce

        def apply_cycle_events(cycle: int) -> None:
            nonlocal forcing
            for flop_index, lane in schedule.flips.get(cycle, ()):
                q_view[flop_index, lane >> 6] ^= np.uint64(1 << (lane & 63))
            for flop_index, lane, value in schedule.force_on.get(cycle, ()):
                bit = np.uint64(1 << (lane & 63))
                force_mask[flop_index, lane >> 6] |= bit
                if value:
                    force_set[flop_index, lane >> 6] |= bit
                forcing = True
            for flop_index, lane in schedule.force_off.get(cycle, ()):
                bit = np.uint64(1 << (lane & 63))
                force_mask[flop_index, lane >> 6] &= ~bit
                force_set[flop_index, lane >> 6] &= ~bit
            if forcing:
                np.bitwise_and(q_view, ~force_mask, out=q_view)
                np.bitwise_or(q_view, force_set, out=q_view)

        def update_vanish(cycle: int, end_cycle: int) -> None:
            """Vanished-by-``end_cycle`` bookkeeping: compare the state
            held during ``cycle`` against its golden counterpart."""
            bitwise_xor(q_view, state_masks[cycle][:, None], out=d_buffer)
            state_diff = bitwise_or_reduce(d_buffer, axis=0)
            conv = ~state_diff & injected
            newly = conv & no_candidate
            if newly.any():
                bits = np.unpackbits(newly.view(np.uint8), bitorder="little")
                vanish_cycle[np.nonzero(bits)[0]] = end_cycle
                np.bitwise_and(no_candidate, ~newly, out=no_candidate)
            lost = state_diff & injected & ~no_candidate
            if lost.any():
                bits = np.unpackbits(lost.view(np.uint8), bitorder="little")
                vanish_cycle[np.nonzero(bits)[0]] = -1
                np.bitwise_or(no_candidate, lost, out=no_candidate)

        for cycle in range(num_cycles):
            apply_cycle_events(cycle)
            if cycle > 0:
                update_vanish(cycle, cycle - 1)
            mask = activations.get(cycle)
            if mask is not None:
                np.bitwise_or(injected, mask, out=injected)

            input_view[:] = in_masks[cycle][:, None]
            _exec_plan(plan, values)

            values.take(program.output_slots, 0, out_buffer)
            bitwise_xor(out_buffer, out_masks[cycle][:, None], out=out_buffer)
            out_diff = bitwise_or_reduce(out_buffer, axis=0)
            newly_failed = out_diff & not_failed & injected
            if newly_failed.any():
                bits = np.unpackbits(
                    newly_failed.view(np.uint8), bitorder="little"
                )
                fail_cycle[np.nonzero(bits)[0]] = cycle
                np.bitwise_and(not_failed, ~newly_failed, out=not_failed)

            values.take(program.d_slots, 0, d_buffer)
            q_view[:] = d_buffer

            if (
                not schedule.persistent
                and cycle >= last_activation
                and not no_candidate.any()
            ):
                # Transient faults cannot re-diverge: every lane has
                # converged and no injection remains, so fail/vanish are
                # final — skip the tail (and the post-bench compare).
                self.last_stats = {
                    "cycles_executed": cycle + 1,
                    "num_cycles": num_cycles,
                    "num_words": num_words,
                    "num_groups": len(program.groups),
                    "native": False,
                }
                return fail_cycle.tolist(), vanish_cycle.tolist()

        apply_cycle_events(num_cycles)
        update_vanish(num_cycles, num_cycles - 1)

        self.last_stats = {
            "cycles_executed": num_cycles,
            "num_cycles": num_cycles,
            "num_words": num_words,
            "num_groups": len(program.groups),
            "native": False,
        }
        return fail_cycle.tolist(), vanish_cycle.tolist()

    # ------------------------------------------------------------------
    # native path: C cycle kernel over a compacting packed lane window
    # ------------------------------------------------------------------
    @staticmethod
    def _run_native(
        kernel,
        program: FusedProgram,
        lanes: _LaneOrder,
        masks: tuple,
        valid: np.ndarray,
        shape: tuple,
        fail_sorted: np.ndarray,
        vanish_sorted: np.ndarray,
    ) -> tuple:
        """Simulate only live lanes, repacking them as they resolve.

        Lanes occupy *packed positions*: injections append at the packed
        end (so before any repack, position == sorted lane index), and
        once enough lanes have re-converged the kept bits of every flop
        row are squeezed to the front by the native PEXT compactor. The
        ``lane_map`` indirection (packed position -> sorted lane index)
        keeps fail/vanish writes exact across repacks. On convergence-
        heavy campaigns this cuts the streamed word columns by ~2x over
        the old contiguous word window, because a word column stayed
        active while *any* of its 64 lanes was unresolved.
        """
        del valid  # per-lane bookkeeping makes the word mask redundant
        in_masks, out_masks, state_masks = masks
        num_faults, num_words, num_cycles = shape
        q_start = program.q_start
        q_stop = program.q_stop
        ops = np.ascontiguousarray(program.native_ops)
        out_slots = program.output_slots.astype(np.int32)
        d_slots = program.d_slots.astype(np.int32)
        num_flops = len(d_slots)
        nthreads = kernel.threads

        values = np.zeros((program.num_slots, num_words), dtype=np.uint64)
        if len(program.ones_rows):
            values[program.ones_rows, :] = _ONES
        out_diff = np.zeros(num_words, dtype=np.uint64)
        state_diff = np.zeros(num_words, dtype=np.uint64)
        d_scratch = np.empty(
            num_flops * (num_words + nthreads), dtype=np.uint64
        )

        # per packed position: does the lane still await fail / vanish?
        not_failed = np.zeros(num_words, dtype=np.uint64)
        not_vanished = np.zeros(num_words, dtype=np.uint64)
        lane_map = np.empty(num_words * 64, dtype=np.int64)

        grade_cycle = kernel.grade_cycle
        compact_rows = kernel.compact_rows
        starts = lanes.starts
        ends = lanes.ends
        lane_q = lanes.lane_q
        one = np.uint64(1)

        packed = 0  # packed positions in use (live + not-yet-compacted)
        live = 0  # unresolved lanes among them
        n_act = 0  # active word columns: ceil(packed / 64)
        repacks = 0
        executed = 0

        for cycle in range(num_cycles):
            # plain ints: numpy scalars would poison the shift arithmetic
            first, last = int(starts[cycle]), int(ends[cycle])
            count = last - first
            if count:
                # Seed the new positions with this cycle's golden state
                # (mask-merged: boundary words may hold live lanes),
                # then flip each injected flop bit.
                new_packed = packed + count
                lo_word = packed >> 6
                n_act = (new_packed + 63) >> 6
                golden_col = state_masks[cycle]
                for word in range(lo_word, n_act):
                    lo_bit = max(packed - (word << 6), 0)
                    hi_bit = min(new_packed - (word << 6), 64)
                    new_bits = np.uint64(
                        ((1 << hi_bit) - (1 << lo_bit))
                        & 0xFFFFFFFFFFFFFFFF
                    )
                    column = values[q_start:q_stop, word]
                    values[q_start:q_stop, word] = (column & ~new_bits) | (
                        golden_col & new_bits
                    )
                    not_failed[word] |= new_bits
                    not_vanished[word] |= new_bits
                positions = np.arange(packed, new_packed, dtype=np.int64)
                np.bitwise_xor.at(
                    values,
                    (lane_q[first:last], positions >> 6),
                    np.left_shift(one, (positions & 63).astype(np.uint64)),
                )
                lane_map[packed:new_packed] = np.arange(first, last, dtype=np.int64)
                packed = new_packed
                live += count

            if live == 0:
                if last == num_faults:
                    executed = cycle
                    break
                continue
            executed = cycle + 1

            grade_cycle(
                values.ctypes.data,
                num_words,
                0,
                n_act,
                ops.ctypes.data,
                len(ops),
                in_masks[cycle].ctypes.data,
                program.num_inputs,
                out_slots.ctypes.data,
                out_masks[cycle].ctypes.data,
                len(out_slots),
                out_diff.ctypes.data,
                d_slots.ctypes.data,
                state_masks[cycle + 1].ctypes.data,
                num_flops,
                q_start,
                state_diff.ctypes.data,
                d_scratch.ctypes.data,
            )

            window_nf = not_failed[:n_act]
            newly_failed = out_diff[:n_act] & window_nf
            if newly_failed.any():
                bits = np.unpackbits(
                    newly_failed.view(np.uint8), bitorder="little"
                )
                fail_sorted[lane_map[np.nonzero(bits)[0]]] = cycle
                window_nf &= ~newly_failed

            window_nv = not_vanished[:n_act]
            newly_vanished = ~state_diff[:n_act] & window_nv
            if newly_vanished.any():
                bits = np.unpackbits(
                    newly_vanished.view(np.uint8), bitorder="little"
                )
                hits = np.nonzero(bits)[0]
                vanish_sorted[lane_map[hits]] = cycle
                window_nv &= ~newly_vanished
                # A vanished lane tracks golden forever, so it can never
                # fail later — clearing it here keeps its (now possibly
                # stale) bits inert through skipped cycles and repacks.
                window_nf &= ~newly_vanished
                live -= len(hits)

            if live == 0 and last == num_faults:
                break

            # Repack once 1/16 of the packed lanes (and at least a
            # word's worth) have resolved: squeeze the kept bits of the
            # flop rows and the fail bookkeeping to the front, remap.
            dead = packed - live
            if dead >= 64 and dead * 16 >= packed:
                bits = np.unpackbits(
                    window_nv.view(np.uint8), bitorder="little"
                )
                kept = np.nonzero(bits)[0]
                compact_rows(
                    values.ctypes.data,
                    num_words,
                    q_start,
                    q_stop,
                    not_vanished.ctypes.data,
                    n_act,
                )
                compact_rows(
                    not_failed.ctypes.data,
                    n_act,
                    0,
                    1,
                    not_vanished.ctypes.data,
                    n_act,
                )
                lane_map[: len(kept)] = lane_map[kept]
                packed = live
                old_n_act = n_act
                n_act = (packed + 63) >> 6
                not_failed[n_act:old_n_act] = 0
                not_vanished[:n_act] = _ONES
                if packed & 63:
                    not_vanished[n_act - 1] = np.uint64(
                        (1 << (packed & 63)) - 1
                    )
                not_vanished[n_act:old_n_act] = 0
                repacks += 1
        return executed, {"repacks": repacks, "threads": nthreads}

    # ------------------------------------------------------------------
    # fallback path: prepared full-width numpy plan
    # ------------------------------------------------------------------
    @staticmethod
    def _run_plan(
        kernel,
        program: FusedProgram,
        lanes: _LaneOrder,
        masks: tuple,
        valid: np.ndarray,
        shape: tuple,
        fail_sorted: np.ndarray,
        vanish_sorted: np.ndarray,
    ) -> tuple:
        del kernel  # unused; same signature as _run_native
        in_masks, out_masks, state_masks = masks
        num_faults, num_words, num_cycles = shape

        values, plan, out_buffer, d_buffer = _instantiate(program, num_words)
        input_view = values[0 : program.num_inputs]
        q_view = values[program.q_start : program.q_stop]
        q_view[:] = state_masks[0][:, None]

        injected = np.zeros(num_words, dtype=np.uint64)
        not_failed = valid.copy()
        not_vanished = valid.copy()

        bitwise_xor = np.bitwise_xor
        bitwise_or_reduce = np.bitwise_or.reduce
        starts = lanes.starts
        ends = lanes.ends
        executed = num_cycles

        for cycle in range(num_cycles):
            if ends[cycle] > starts[cycle]:
                sl = slice(starts[cycle], ends[cycle])
                np.bitwise_or.at(injected, lanes.lane_word[sl], lanes.lane_bit[sl])
                np.bitwise_xor.at(
                    values,
                    (lanes.lane_q[sl], lanes.lane_word[sl]),
                    lanes.lane_bit[sl],
                )

            input_view[:] = in_masks[cycle][:, None]

            _exec_plan(plan, values)

            values.take(program.output_slots, 0, out_buffer)
            bitwise_xor(out_buffer, out_masks[cycle][:, None], out=out_buffer)
            out_diff = bitwise_or_reduce(out_buffer, axis=0)
            newly_failed = out_diff & not_failed & injected
            if newly_failed.any():
                bits = np.unpackbits(
                    newly_failed.view(np.uint8), bitorder="little"
                )
                fail_sorted[np.nonzero(bits)[0]] = cycle
                not_failed &= ~newly_failed

            values.take(program.d_slots, 0, d_buffer)
            q_view[:] = d_buffer
            bitwise_xor(d_buffer, state_masks[cycle + 1][:, None], out=d_buffer)
            state_diff = bitwise_or_reduce(d_buffer, axis=0)
            np.invert(state_diff, out=state_diff)
            newly_vanished = state_diff & not_vanished & injected
            if newly_vanished.any():
                bits = np.unpackbits(
                    newly_vanished.view(np.uint8), bitorder="little"
                )
                vanish_sorted[np.nonzero(bits)[0]] = cycle
                not_vanished &= ~newly_vanished

            if ends[cycle] == num_faults and not not_vanished.any():
                executed = cycle + 1
                break
        return executed, {}
