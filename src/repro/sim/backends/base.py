"""Grading-engine interface and registry.

A grading engine is one implementation of the bit-parallel fault oracle:
given a compiled netlist, a testbench, a fault list and the golden trace,
it produces each fault's ``fail_cycle`` and ``vanish_cycle``. All engines
implement the same algorithm (the definitions in
:mod:`repro.sim.parallel`); they differ only in how the word-wide logic is
executed. Engines register themselves by name so
:func:`repro.sim.parallel.grade_faults` and the campaign layers can select
one with a plain string (``backend="fused"``).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Sequence, Tuple, Type

from repro.errors import CampaignError
from repro.faults.model import SeuFault
from repro.sim.compile import CompiledNetlist
from repro.sim.cycle import GoldenTrace
from repro.sim.vectors import Testbench


class GradingEngine(ABC):
    """One backend of the fault-grading oracle.

    Subclasses set ``name`` (the registry key) and implement
    :meth:`grade`. Engines must be stateless across calls except for
    opt-in diagnostics such as :attr:`last_stats`.
    """

    #: registry key, e.g. ``"fused"``
    name: str = ""

    #: diagnostics of the most recent :meth:`grade` call (engine-specific
    #: keys; the fused engine reports early-exit and windowing counters).
    last_stats: Dict[str, int]

    def __init__(self) -> None:
        self.last_stats = {}

    @abstractmethod
    def grade(
        self,
        compiled: CompiledNetlist,
        testbench: Testbench,
        faults: Sequence[SeuFault],
        golden: GoldenTrace,
    ) -> Tuple[List[int], List[int]]:
        """Return ``(fail_cycles, vanish_cycles)`` in fault-list order."""


_REGISTRY: Dict[str, GradingEngine] = {}


def register_engine(engine_cls: Type[GradingEngine]) -> Type[GradingEngine]:
    """Class decorator: instantiate and register an engine by its name."""
    engine = engine_cls()
    if not engine.name:
        raise ValueError(f"{engine_cls.__name__} must set a name")
    _REGISTRY[engine.name] = engine
    return engine_cls


def get_engine(name: str) -> GradingEngine:
    """Look up a registered engine; raise :class:`CampaignError` if absent."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise CampaignError(
            f"unknown backend {name!r}; available engines: "
            + ", ".join(available_engines())
        ) from None


def available_engines() -> List[str]:
    """Sorted names of every registered grading engine."""
    return sorted(_REGISTRY)
