"""Session-scoped simulation caches.

Every experiment in the repo grades the same circuit/testbench pair
several times (Table 2, the classification split, the speed comparison,
then any campaign a caller runs on top). Compiling the netlist and
re-running the golden trace each time is pure waste: both depend only on
the netlist (and, for the trace, the stimulus), not on the fault list or
the technique.

This module keeps both artifacts in weak, identity-keyed caches:

* :func:`compiled_for`   — netlist -> :class:`CompiledNetlist`
* :func:`golden_for`     — (netlist, stimulus vectors) -> :class:`GoldenTrace`

Keys are *identities*: mutating a netlist after it has been compiled will
serve stale entries, so treat netlists as frozen once simulation starts
(the rest of the library already does). Entries die with their netlist;
:func:`clear_caches` drops everything eagerly (benchmarks use it to
measure cold paths).
"""

from __future__ import annotations

from typing import Dict
from weakref import WeakKeyDictionary

from repro.netlist.netlist import Netlist
from repro.sim.compile import CompiledNetlist, compile_netlist
from repro.sim.cycle import GoldenTrace, run_golden
from repro.sim.vectors import Testbench

_COMPILED: "WeakKeyDictionary[Netlist, CompiledNetlist]" = WeakKeyDictionary()
_GOLDEN: "WeakKeyDictionary[Netlist, Dict[str, GoldenTrace]]" = (
    WeakKeyDictionary()
)


def compiled_for(netlist_or_compiled) -> CompiledNetlist:
    """Compile ``netlist_or_compiled`` once per session.

    Accepts either a :class:`Netlist` (cached by identity) or an existing
    :class:`CompiledNetlist` (returned unchanged), mirroring the calling
    convention of :func:`repro.sim.parallel.grade_faults`.
    """
    if isinstance(netlist_or_compiled, CompiledNetlist):
        return netlist_or_compiled
    try:
        return _COMPILED[netlist_or_compiled]
    except KeyError:
        compiled = compile_netlist(netlist_or_compiled)
        _COMPILED[netlist_or_compiled] = compiled
        return compiled


def golden_for(compiled: CompiledNetlist, testbench: Testbench) -> GoldenTrace:
    """Run (or reuse) the golden trace for ``compiled`` under ``testbench``.

    Cached per source netlist and exact stimulus, so campaigns, eval
    tables and benchmarks sharing one circuit/testbench pay for a single
    golden run per session. The stimulus key is
    :meth:`Testbench.stimulus_digest` — computed once per testbench
    object and memoized there — rather than a per-lookup
    ``tuple(vectors)`` (which rebuilt and re-hashed the entire stimulus,
    thousands of ints for paper-scale benches, on every cache hit).
    """
    per_netlist = _GOLDEN.setdefault(compiled.source, {})
    key = testbench.stimulus_digest()
    try:
        return per_netlist[key]
    except KeyError:
        golden = run_golden(compiled, testbench)
        per_netlist[key] = golden
        return golden


def clear_caches() -> None:
    """Drop every cached compiled netlist, golden trace and fused program."""
    from repro.sim.backends.fused import clear_program_cache

    _COMPILED.clear()
    _GOLDEN.clear()
    clear_program_cache()
