"""Simulation artifact caches: per-session and process-shared on disk.

Every experiment in the repo grades the same circuit/testbench pair
several times (Table 2, the classification split, the speed comparison,
then any campaign a caller runs on top). Compiling the netlist and
re-running the golden trace each time is pure waste: both depend only on
the netlist (and, for the trace, the stimulus), not on the fault list or
the technique.

Two layers share one key space:

* **Session caches** — :func:`compiled_for` and :func:`golden_for`
  memoize per process, keyed by *content digests*: the netlist's
  canonical text (:func:`netlist_digest`) and the testbench's
  :meth:`~repro.sim.vectors.Testbench.stimulus_digest`. Digest keys mean
  two distinct :class:`Netlist` objects describing the same circuit hit
  the same entry — the property the pooled runner relies on. Both caches
  evict oldest-first past a bound, so long sweeps over many circuits
  don't pin every artifact forever. Treat netlists as frozen once
  simulation starts (the rest of the library already does): mutating one
  after its digest is memoized serves stale entries.
* **Disk cache** — :class:`DiskArtifactCache` persists compiled plans
  and golden traces under a content-keyed directory tree (netlist digest
  x stimulus digest), so pool workers and repeated runs skip the warmup
  instead of re-deriving it per process. Golden traces are stored as
  ``.npy`` byte matrices and opened read-only with ``mmap``; every
  payload carries a SHA-256 in a sidecar ``meta.json`` and a corrupted
  or truncated entry is silently rebuilt, never trusted. Artifacts
  below :data:`DISK_MIN_CYCLES` / :data:`DISK_MIN_FLOPS` stay
  session-only — the disk layer exists for campaign-scale circuits, not
  for the thousands of tiny randomized netlists the test suite makes.

``REPRO_CACHE_DIR`` overrides the cache root (default
``$XDG_CACHE_HOME/repro`` or ``~/.cache/repro``); ``REPRO_DISK_CACHE=0``
disables the disk layer entirely. :func:`clear_caches` drops the
session layer only.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from typing import Dict, Optional, Tuple
from weakref import WeakKeyDictionary

from repro.netlist.netlist import Netlist
from repro.netlist.textio import dumps_netlist
from repro.sim.compile import CompiledNetlist, compile_netlist
from repro.sim.cycle import GoldenTrace, run_golden
from repro.sim.vectors import Testbench

#: bump to invalidate every persisted artifact (format or semantics change)
CACHE_SCHEMA = 1

#: disk-layer thresholds: smaller scenarios stay session-only
DISK_MIN_CYCLES = 32
DISK_MIN_FLOPS = 8

#: session bounds (entries, oldest evicted first)
_MAX_COMPILED = 64
_MAX_GOLDEN = 256

_DIGESTS: "WeakKeyDictionary[Netlist, str]" = WeakKeyDictionary()
_COMPILED: Dict[str, CompiledNetlist] = {}
_GOLDEN: Dict[Tuple[str, str], GoldenTrace] = {}


def netlist_text_digest(text: str) -> str:
    """Content digest of a netlist's canonical text form.

    Split out of :func:`netlist_digest` so the wire protocol can verify
    a shipped netlist payload against its announced digest without
    parsing it first — the digest *is* the hash of the text a peer
    sends, schema-prefixed like every other cache key.
    """
    payload = f"schema{CACHE_SCHEMA}\n{text}"
    return hashlib.sha256(payload.encode()).hexdigest()


def netlist_digest(netlist: Netlist) -> str:
    """Content digest of a netlist's canonical text, memoized per object."""
    try:
        return _DIGESTS[netlist]
    except KeyError:
        digest = netlist_text_digest(dumps_netlist(netlist))
        _DIGESTS[netlist] = digest
        return digest


def _evict_oldest(cache: Dict, bound: int) -> None:
    while len(cache) >= bound:
        del cache[next(iter(cache))]


# ----------------------------------------------------------------------
# disk layer
# ----------------------------------------------------------------------


def _ints_to_matrix(words, row_bytes: int) -> "np.ndarray":  # noqa: F821
    import numpy as np

    matrix = np.empty((len(words), row_bytes), dtype=np.uint8)
    for index, word in enumerate(words):
        matrix[index] = np.frombuffer(
            word.to_bytes(row_bytes, "little"), dtype=np.uint8
        )
    return matrix


def _matrix_to_ints(matrix) -> list:
    return [
        int.from_bytes(matrix[index].tobytes(), "little")
        for index in range(matrix.shape[0])
    ]


def _sha256_file(path: str) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _atomic_write(path: str, payload: bytes) -> None:
    handle, temp = tempfile.mkstemp(
        dir=os.path.dirname(path), prefix=".tmp-", suffix=os.path.basename(path)
    )
    try:
        with os.fdopen(handle, "wb") as stream:
            stream.write(payload)
        os.replace(temp, path)
    except OSError:
        try:
            os.unlink(temp)
        except OSError:
            pass
        raise


class DiskArtifactCache:
    """Content-keyed on-disk store for compiled plans and golden traces.

    Layout (under ``root``)::

        <nd[:2]>/<nd>/compiled.pkl + compiled.meta.json
        <nd[:2]>/<nd>/<sd>/golden_{outputs,states}.npy + meta.json
        wire/<d[:2]>/<d>                      (content-addressed payloads)

    where ``nd`` is the netlist digest and ``sd`` the stimulus digest.
    The ``wire/`` namespace holds raw payloads the TCP worker daemon
    received (netlist text, packed stimulus), keyed by the digest they
    were announced under — a restarted worker answers "have it" for any
    campaign it has ever been shipped.
    Loads verify payload SHA-256s against the sidecar metadata and
    return ``None`` on any mismatch, unreadable file or schema change —
    callers then rebuild and overwrite. Writes are atomic
    (write-to-temp + rename), so concurrent workers never observe torn
    artifacts; last writer wins with identical content.
    """

    def __init__(self, root: str):
        self.root = root

    # -- paths ---------------------------------------------------------
    def _netlist_dir(self, nd: str) -> str:
        return os.path.join(self.root, nd[:2], nd)

    def _golden_dir(self, nd: str, sd: str) -> str:
        return os.path.join(self._netlist_dir(nd), sd)

    # -- golden traces -------------------------------------------------
    def load_golden(self, nd: str, sd: str) -> Optional[GoldenTrace]:
        """The stored golden trace, or None when absent/corrupt."""
        import numpy as np

        directory = self._golden_dir(nd, sd)
        meta_path = os.path.join(directory, "meta.json")
        try:
            with open(meta_path) as handle:
                meta = json.load(handle)
        except (OSError, ValueError):
            return None
        if meta.get("schema") != CACHE_SCHEMA:
            return None
        try:
            trace = GoldenTrace(num_cycles=int(meta["num_cycles"]))
            for name, target in (("outputs", trace.outputs),
                                 ("states", trace.states)):
                path = os.path.join(directory, f"golden_{name}.npy")
                if _sha256_file(path) != meta[f"{name}_sha256"]:
                    return None
                matrix = np.load(path, mmap_mode="r")
                target.extend(_matrix_to_ints(matrix))
            if (
                len(trace.outputs) != trace.num_cycles
                or len(trace.states) != trace.num_cycles + 1
            ):
                return None
            return trace
        except (OSError, ValueError, KeyError):
            return None

    def store_golden(self, nd: str, sd: str, golden: GoldenTrace) -> None:
        """Persist a golden trace; failures are silently ignored."""
        import io

        import numpy as np

        directory = self._golden_dir(nd, sd)
        try:
            os.makedirs(directory, exist_ok=True)
            meta = {"schema": CACHE_SCHEMA, "num_cycles": golden.num_cycles}
            for name, words in (("outputs", golden.outputs),
                                ("states", golden.states)):
                row_bytes = max(
                    1, (max(words, default=0).bit_length() + 7) // 8
                )
                buffer = io.BytesIO()
                np.save(buffer, _ints_to_matrix(words, row_bytes))
                payload = buffer.getvalue()
                meta[f"{name}_sha256"] = hashlib.sha256(payload).hexdigest()
                _atomic_write(
                    os.path.join(directory, f"golden_{name}.npy"), payload
                )
            _atomic_write(
                os.path.join(directory, "meta.json"),
                json.dumps(meta, indent=2).encode(),
            )
        except OSError:
            pass

    # -- compiled plans ------------------------------------------------
    def load_compiled(self, nd: str) -> Optional[CompiledNetlist]:
        """The stored compiled plan, or None when absent/corrupt."""
        directory = self._netlist_dir(nd)
        meta_path = os.path.join(directory, "compiled.meta.json")
        pkl_path = os.path.join(directory, "compiled.pkl")
        try:
            with open(meta_path) as handle:
                meta = json.load(handle)
        except (OSError, ValueError):
            return None
        if meta.get("schema") != CACHE_SCHEMA:
            return None
        try:
            if _sha256_file(pkl_path) != meta["sha256"]:
                return None
            with open(pkl_path, "rb") as handle:
                compiled = pickle.load(handle)
        except (OSError, ValueError, KeyError, pickle.UnpicklingError,
                AttributeError, ImportError):
            return None
        return compiled if isinstance(compiled, CompiledNetlist) else None

    # -- wire artifacts ------------------------------------------------
    def _wire_path(self, digest: str) -> str:
        return os.path.join(self.root, "wire", digest[:2], digest)

    def load_wire(self, digest: str) -> Optional[bytes]:
        """A content-addressed wire payload (netlist text / stimulus),
        or None when absent.

        No sidecar hash: wire payloads are *named by* their content
        digest, so the caller re-derives the digest from the loaded
        bytes and discards any mismatch — the store itself only promises
        atomic writes.
        """
        try:
            with open(self._wire_path(digest), "rb") as handle:
                return handle.read()
        except OSError:
            return None

    def store_wire(self, digest: str, payload: bytes) -> None:
        """Persist one wire payload; failures are silently ignored."""
        path = self._wire_path(digest)
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            _atomic_write(path, payload)
        except OSError:
            pass

    def store_compiled(self, nd: str, compiled: CompiledNetlist) -> None:
        """Persist a compiled plan; failures are silently ignored."""
        directory = self._netlist_dir(nd)
        try:
            os.makedirs(directory, exist_ok=True)
            payload = pickle.dumps(compiled, protocol=pickle.HIGHEST_PROTOCOL)
            _atomic_write(os.path.join(directory, "compiled.pkl"), payload)
            _atomic_write(
                os.path.join(directory, "compiled.meta.json"),
                json.dumps(
                    {
                        "schema": CACHE_SCHEMA,
                        "sha256": hashlib.sha256(payload).hexdigest(),
                    }
                ).encode(),
            )
        except (OSError, pickle.PicklingError):
            pass


def cache_root() -> str:
    """The artifact cache root directory (not created by this call)."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return os.path.join(override, "artifacts")
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return os.path.join(base, "repro", "artifacts")


def disk_cache() -> Optional[DiskArtifactCache]:
    """The process-wide disk cache, or None when disabled.

    Re-resolved on every call so tests (and callers) can repoint
    ``REPRO_CACHE_DIR`` without reloading the module; construction is
    just a path join, so there is nothing worth memoizing.
    """
    if os.environ.get("REPRO_DISK_CACHE", "1") == "0":
        return None
    return DiskArtifactCache(cache_root())


# ----------------------------------------------------------------------
# session layer
# ----------------------------------------------------------------------


def compiled_for(netlist_or_compiled) -> CompiledNetlist:
    """Compile ``netlist_or_compiled`` once per content digest.

    Accepts either a :class:`Netlist` (cached by digest, backed by the
    disk layer for campaign-scale circuits) or an existing
    :class:`CompiledNetlist` (returned unchanged), mirroring the calling
    convention of :func:`repro.sim.parallel.grade_faults`.
    """
    if isinstance(netlist_or_compiled, CompiledNetlist):
        return netlist_or_compiled
    netlist = netlist_or_compiled
    digest = netlist_digest(netlist)
    try:
        return _COMPILED[digest]
    except KeyError:
        pass
    disk = disk_cache() if netlist.num_ffs >= DISK_MIN_FLOPS else None
    compiled = disk.load_compiled(digest) if disk is not None else None
    if compiled is None:
        compiled = compile_netlist(netlist)
        if disk is not None:
            disk.store_compiled(digest, compiled)
    _evict_oldest(_COMPILED, _MAX_COMPILED)
    _COMPILED[digest] = compiled
    return compiled


def golden_for(compiled: CompiledNetlist, testbench: Testbench) -> GoldenTrace:
    """Run (or reuse) the golden trace for ``compiled`` under ``testbench``.

    Keyed by (netlist digest, stimulus digest) — the exact key the disk
    layer uses, so in-process callers, pooled workers and separate runs
    of the same campaign all resolve to one artifact.
    """
    key = (netlist_digest(compiled.source), testbench.stimulus_digest())
    try:
        return _GOLDEN[key]
    except KeyError:
        pass
    disk = (
        disk_cache()
        if testbench.num_cycles >= DISK_MIN_CYCLES
        and compiled.num_flops >= DISK_MIN_FLOPS
        else None
    )
    golden = disk.load_golden(*key) if disk is not None else None
    if golden is None:
        golden = run_golden(compiled, testbench)
        if disk is not None:
            disk.store_golden(key[0], key[1], golden)
    _evict_oldest(_GOLDEN, _MAX_GOLDEN)
    _GOLDEN[key] = golden
    return golden


def clear_caches() -> None:
    """Drop every session-cached compiled netlist, golden trace and fused
    program (the disk layer is untouched)."""
    from repro.sim.backends.fused import clear_program_cache

    _COMPILED.clear()
    _GOLDEN.clear()
    clear_program_cache()
