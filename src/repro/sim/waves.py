"""VCD (Value Change Dump) waveform export.

Attached to an :class:`~repro.sim.event.EventSimulator`, records every net
change and writes a standard VCD file viewable in GTKWave — the debugging
workflow for inspecting how a single SEU propagates through a circuit.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Tuple, Union

from repro.logic.values import X, Value
from repro.netlist.netlist import Netlist


class VcdRecorder:
    """Collects value changes and serialises them as VCD."""

    def __init__(self, netlist: Netlist, timescale: str = "1 ns"):
        self.netlist = netlist
        self.timescale = timescale
        self._changes: List[Tuple[int, str, Value]] = []
        self._identifiers: Dict[str, str] = {}
        for index, net in enumerate(sorted(netlist.all_referenced_nets())):
            self._identifiers[net] = self._short_id(index)

    @staticmethod
    def _short_id(index: int) -> str:
        # VCD identifier characters: printable ASCII 33..126
        chars = []
        index += 1
        while index:
            index, digit = divmod(index - 1, 94)
            chars.append(chr(33 + digit))
        return "".join(chars)

    def on_change(self, cycle: int, net: str, value: Value) -> None:
        """Observer callback for :meth:`EventSimulator.observe`."""
        self._changes.append((cycle, net, value))

    def dumps(self) -> str:
        """Serialise everything recorded so far to VCD text."""
        lines = [
            "$date repro fault-grading run $end",
            f"$timescale {self.timescale} $end",
            f"$scope module {_sanitise(self.netlist.name)} $end",
        ]
        for net, identifier in sorted(self._identifiers.items()):
            lines.append(f"$var wire 1 {identifier} {_sanitise(net)} $end")
        lines.append("$upscope $end")
        lines.append("$enddefinitions $end")

        current_time = None
        for cycle, net, value in self._changes:
            if cycle != current_time:
                lines.append(f"#{cycle}")
                current_time = cycle
            symbol = "x" if value == X else str(value)
            lines.append(f"{symbol}{self._identifiers[net]}")
        return "\n".join(lines) + "\n"

    def write(self, path: Union[str, Path]) -> None:
        """Write the VCD file."""
        Path(path).write_text(self.dumps())


def _sanitise(name: str) -> str:
    """VCD identifiers cannot contain whitespace; map brackets for
    readability in viewers."""
    return name.replace(" ", "_").replace("[", "(").replace("]", ")")
