"""Model-agnostic injection schedules for the grading engines.

The engines' original inner loops assume every fault is a plain SEU: one
XOR into one flop at one cycle, after which the lane evolves freely. The
other fault models break both assumptions — MBUs flip several flops at
once, stuck-at and intermittent faults *force* a flop every cycle — so
each engine gains a generic execution branch driven by the
:class:`InjectionSchedule` built here:

* ``flips``      — per-cycle one-shot XOR events ``(flop_index, lane)``;
* ``force_on`` / ``force_off`` — per-cycle transitions of the per-lane
  force masks ``(flop_index, lane, value)`` / ``(flop_index, lane)``;
  engines accumulate them into ``(mask, set)`` bit-planes and re-apply
  those planes to the held state every cycle — the per-cycle mask
  re-application that one-shot XOR cannot express. Cycle ``num_cycles``
  carries the transitions governing the *post-bench* state, which the
  final SILENT/LATENT compare uses;
* ``first_active`` — each lane's injection cycle (fail/vanish gating).

When every fault is a plain transient single-flip (``simple``), engines
skip all of this and run their original fast path on the original arrays
— the seed SEU results stay bit-exact by construction.

Vanish semantics differ for persistent schedules: a forced lane that
matches the golden state can diverge again, so ``vanish_cycle`` is the
start of the lane's *final* golden-equal suffix (candidate set on
convergence, reset on re-divergence) rather than the first match. For
transient faults the two definitions coincide.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.errors import CampaignError
from repro.faults.model import SeuFault


@dataclass
class InjectionSchedule:
    """Per-cycle injection work for one graded fault list."""

    num_faults: int
    num_cycles: int
    #: every fault is a plain one-flop transient flip (legacy fast path)
    simple: bool
    #: at least one fault re-applies a force each cycle
    persistent: bool
    #: cycle -> [(flop_index, lane)]: one-shot XOR flips
    flips: Dict[int, List[Tuple[int, int]]] = field(default_factory=dict)
    #: cycle -> [(flop_index, lane, value)]: force becomes active
    force_on: Dict[int, List[Tuple[int, int, int]]] = field(default_factory=dict)
    #: cycle -> [(flop_index, lane)]: force releases
    force_off: Dict[int, List[Tuple[int, int]]] = field(default_factory=dict)
    #: per-lane injection cycle, fault-list order
    first_active: List[int] = field(default_factory=list)


def schedule_for(
    faults: Sequence[SeuFault], num_cycles: int, num_flops: int
) -> InjectionSchedule:
    """Build the schedule for ``faults`` (validating flip/force targets).

    The common all-SEU case is detected without materializing any event
    lists, so the legacy engine paths pay one ``type`` check per fault and
    nothing else.
    """
    if all(type(fault) is SeuFault for fault in faults):
        return InjectionSchedule(
            num_faults=len(faults),
            num_cycles=num_cycles,
            simple=True,
            persistent=False,
        )

    schedule = InjectionSchedule(
        num_faults=len(faults),
        num_cycles=num_cycles,
        simple=False,
        persistent=any(fault.persistent for fault in faults),
        first_active=[fault.cycle for fault in faults],
    )
    simple = True
    for lane, fault in enumerate(faults):
        flips = fault.flip_flops()
        force = fault.force_value()
        if force is None and len(flips) == 1:
            pass  # still expressible by the legacy path
        else:
            simple = False
        for flop_index in flips:
            if not 0 <= flop_index < num_flops:
                raise CampaignError(
                    f"{fault.describe()} flips flop {flop_index}; circuit "
                    f"has only {num_flops} flops"
                )
            schedule.flips.setdefault(fault.cycle, []).append(
                (flop_index, lane)
            )
        if force is not None:
            if not 0 <= fault.flop_index < num_flops:
                raise CampaignError(
                    f"{fault.describe()}: circuit has only {num_flops} flops"
                )
            for cycle, turned_on in fault.force_events(num_cycles):
                if turned_on:
                    schedule.force_on.setdefault(cycle, []).append(
                        (fault.flop_index, lane, force)
                    )
                else:
                    schedule.force_off.setdefault(cycle, []).append(
                        (fault.flop_index, lane)
                    )
    schedule.simple = simple and not schedule.persistent
    return schedule


__all__ = ["InjectionSchedule", "schedule_for"]
