"""Testbenches: the stimulus applied during a fault-grading campaign.

A :class:`Testbench` is an ordered list of input vectors, one per emulation
clock cycle, packed as integers (bit ``i`` drives ``netlist.inputs[i]``).
The paper's b14 experiment uses 160 vectors; generators here produce
reproducible random and structured stimulus.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence

from repro.errors import SimulationError
from repro.netlist.netlist import Netlist
from repro.util.bitops import mask
from repro.util.rng import DeterministicRng


@dataclass
class Testbench:
    """Stimulus for one campaign.

    Attributes:
        input_names: the circuit's primary inputs, in port order.
        vectors: one packed input word per cycle.
    """

    input_names: List[str]
    vectors: List[int] = field(default_factory=list)

    __test__ = False  # starts with "Test" but is not a pytest class

    def __post_init__(self) -> None:
        limit = mask(len(self.input_names)) if self.input_names else 0
        for cycle, vector in enumerate(self.vectors):
            if vector < 0 or vector & ~limit:
                raise SimulationError(
                    f"vector {cycle} does not fit in {len(self.input_names)} inputs"
                )

    @property
    def num_cycles(self) -> int:
        """Testbench length in clock cycles (the paper's parameter T)."""
        return len(self.vectors)

    @property
    def num_inputs(self) -> int:
        return len(self.input_names)

    def bit(self, cycle: int, input_index: int) -> int:
        """Value of one input at one cycle."""
        return (self.vectors[cycle] >> input_index) & 1

    def as_dicts(self) -> Iterator[Dict[str, int]]:
        """Iterate vectors as name->bit mappings (for the event simulator)."""
        for vector in self.vectors:
            yield {
                name: (vector >> index) & 1
                for index, name in enumerate(self.input_names)
            }

    def stimulus_bits(self) -> int:
        """RAM bits needed to store this stimulus (cycles x inputs)."""
        return self.num_cycles * self.num_inputs

    def truncated(self, cycles: int) -> "Testbench":
        """A copy with only the first ``cycles`` vectors."""
        return Testbench(list(self.input_names), list(self.vectors[:cycles]))

    def stimulus_digest(self) -> str:
        """Stable content hash of (input names, vectors), memoized on the
        object.

        The golden-trace cache keys on this instead of materialising a
        ``tuple(vectors)`` mega-key per lookup, so the digest is computed
        once per testbench object no matter how many campaigns reuse it.
        Like the netlist caches, this treats a testbench as frozen once
        simulation starts: mutate ``vectors`` afterwards and the memo
        (and any cached golden trace) goes stale.
        """
        digest = self.__dict__.get("_stimulus_digest")
        if digest is None:
            hasher = hashlib.blake2b(digest_size=16)
            hasher.update(b"%d\x1f" % len(self.input_names))
            hasher.update("\x1f".join(self.input_names).encode("utf-8"))
            hasher.update(b"\x00")  # terminate the names section: a name
            # ending in hex digits must not absorb vector framing
            for vector in self.vectors:
                hasher.update(b"%x/" % vector)
            digest = hasher.hexdigest()
            self.__dict__["_stimulus_digest"] = digest
        return digest


def random_testbench(
    netlist: Netlist,
    num_cycles: int,
    seed: int = 0,
    probability_of_one: float = 0.5,
) -> Testbench:
    """Uniform random stimulus, reproducible from ``seed``."""
    rng = DeterministicRng(seed).fork(f"tb:{netlist.name}")
    width = len(netlist.inputs)
    vectors = [rng.word(width, probability_of_one) for _ in range(num_cycles)]
    return Testbench(list(netlist.inputs), vectors)


def burst_testbench(
    netlist: Netlist,
    num_cycles: int,
    seed: int = 0,
    burst_length: int = 8,
) -> Testbench:
    """Stimulus with temporal correlation: values held for short bursts.

    CPU-style circuits see correlated inputs (an instruction bus holds the
    same opcode class for several cycles); burst stimulus exercises longer
    fault-latency behaviour than white noise.
    """
    rng = DeterministicRng(seed).fork(f"burst:{netlist.name}")
    width = len(netlist.inputs)
    vectors: List[int] = []
    current = rng.word(width)
    remaining = burst_length
    for _ in range(num_cycles):
        if remaining == 0:
            # Flip a random subset of bits rather than redrawing everything.
            flip = rng.word(width, probability_of_one=0.25)
            current ^= flip
            remaining = rng.integer(1, burst_length)
        vectors.append(current)
        remaining -= 1
    return Testbench(list(netlist.inputs), vectors)


def walking_ones_testbench(netlist: Netlist, num_cycles: int) -> Testbench:
    """Deterministic walking-ones pattern (good for connectivity tests)."""
    width = len(netlist.inputs)
    if width == 0:
        return Testbench([], [0] * num_cycles)
    vectors = [1 << (cycle % width) for cycle in range(num_cycles)]
    return Testbench(list(netlist.inputs), vectors)


def constant_testbench(netlist: Netlist, num_cycles: int, value: int = 0) -> Testbench:
    """Hold a constant input word for every cycle."""
    return Testbench(list(netlist.inputs), [value] * num_cycles)


def concat_testbenches(parts: Sequence[Testbench]) -> Testbench:
    """Concatenate testbenches over the same input list."""
    if not parts:
        raise SimulationError("cannot concatenate zero testbenches")
    names = parts[0].input_names
    for part in parts[1:]:
        if part.input_names != names:
            raise SimulationError("testbench input lists differ")
    vectors: List[int] = []
    for part in parts:
        vectors.extend(part.vectors)
    return Testbench(list(names), vectors)
