"""Compilation of netlists into flat evaluation programs.

A :class:`CompiledNetlist` assigns every driven net a dense index and
levelizes the combinational gates into a straight-line list of ops. Both
the scalar cycle simulator and the bit-parallel fault simulator execute
this program; compiling once and simulating many times is what makes
34,400-fault campaigns tractable in Python.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import SimulationError
from repro.logic.values import X, Value
from repro.netlist.netlist import Netlist
from repro.netlist.topo import levelize

# Opcode numbers: dense ints so backends can dispatch on them cheaply.
OP_AND = 0
OP_OR = 1
OP_NAND = 2
OP_NOR = 3
OP_XOR = 4
OP_XNOR = 5
OP_BUF = 6
OP_INV = 7
OP_MUX2 = 8
OP_CONST0 = 9
OP_CONST1 = 10

_OPCODE_OF = {
    "and": OP_AND,
    "or": OP_OR,
    "nand": OP_NAND,
    "nor": OP_NOR,
    "xor": OP_XOR,
    "xnor": OP_XNOR,
    "buf": OP_BUF,
    "inv": OP_INV,
    "mux2": OP_MUX2,
    "const0": OP_CONST0,
    "const1": OP_CONST1,
}


@dataclass(frozen=True)
class FlipFlopSlot:
    """Compiled view of one flip-flop."""

    name: str
    d_index: int
    q_index: int
    init: Value


@dataclass(eq=False)
class CompiledNetlist:
    """A netlist lowered to a dense, levelized op program.

    Compared and hashed by identity (``eq=False``) so engines can key
    weak caches of derived artifacts (fused programs, golden traces) on
    the compiled object itself.

    Attributes:
        net_index: net name -> dense value-array slot.
        ops: ``(opcode, input_slots, output_slot)`` in topological order.
        input_slots / output_slots: slots of the primary I/O in port order.
        flops: compiled flip-flops in netlist (scan-chain) order.
    """

    source: Netlist
    net_index: Dict[str, int]
    num_slots: int
    ops: List[Tuple[int, Tuple[int, ...], int]]
    input_slots: List[int]
    output_slots: List[int]
    flops: List[FlipFlopSlot]

    @property
    def num_inputs(self) -> int:
        return len(self.input_slots)

    @property
    def num_outputs(self) -> int:
        return len(self.output_slots)

    @property
    def num_flops(self) -> int:
        return len(self.flops)

    def initial_state(self, x_as_zero: bool = True) -> int:
        """Packed reset state (bit i = flop i in chain order).

        X inits become 0 when ``x_as_zero`` (an FPGA flop powers up to 0),
        otherwise they raise — the grading oracle needs definite values.
        """
        state = 0
        for position, flop in enumerate(self.flops):
            if flop.init == X:
                if not x_as_zero:
                    raise SimulationError(
                        f"flop {flop.name} has X init; grading needs a reset value"
                    )
                continue
            if flop.init:
                state |= 1 << position
        return state


def compile_netlist(netlist: Netlist) -> CompiledNetlist:
    """Compile ``netlist`` into a :class:`CompiledNetlist`."""
    net_index: Dict[str, int] = {}

    def slot(net: str) -> int:
        if net not in net_index:
            net_index[net] = len(net_index)
        return net_index[net]

    # Inputs and flop outputs first: they are the program's live-in values.
    input_slots = [slot(net) for net in netlist.inputs]
    for dff in netlist.dffs.values():
        slot(dff.q)

    ops: List[Tuple[int, Tuple[int, ...], int]] = []
    for gate in levelize(netlist):
        in_slots = tuple(slot(net) for net in gate.inputs)
        out_slot = slot(gate.output)
        ops.append((_OPCODE_OF[gate.gate_type], in_slots, out_slot))

    output_slots = [slot(net) for net in netlist.outputs]
    flops = [
        FlipFlopSlot(
            name=dff.name,
            d_index=slot(dff.d),
            q_index=net_index[dff.q],
            init=dff.init,
        )
        for dff in netlist.dffs.values()
    ]

    return CompiledNetlist(
        source=netlist,
        net_index=net_index,
        num_slots=len(net_index),
        ops=ops,
        input_slots=input_slots,
        output_slots=output_slots,
        flops=flops,
    )


def eval_program_scalar(
    compiled: CompiledNetlist, values: List[int]
) -> None:
    """Run the op program over two-valued scalars in place.

    ``values`` holds one int (0/1) per slot; inputs and flop q slots must
    be set by the caller before the call. This is the inner loop of the
    scalar simulator — kept free of attribute lookups on purpose.
    """
    for opcode, in_slots, out_slot in compiled.ops:
        if opcode == OP_AND:
            result = 1
            for index in in_slots:
                result &= values[index]
            values[out_slot] = result
        elif opcode == OP_OR:
            result = 0
            for index in in_slots:
                result |= values[index]
            values[out_slot] = result
        elif opcode == OP_NAND:
            result = 1
            for index in in_slots:
                result &= values[index]
            values[out_slot] = result ^ 1
        elif opcode == OP_NOR:
            result = 0
            for index in in_slots:
                result |= values[index]
            values[out_slot] = result ^ 1
        elif opcode == OP_XOR:
            result = 0
            for index in in_slots:
                result ^= values[index]
            values[out_slot] = result
        elif opcode == OP_XNOR:
            result = 0
            for index in in_slots:
                result ^= values[index]
            values[out_slot] = result ^ 1
        elif opcode == OP_BUF:
            values[out_slot] = values[in_slots[0]]
        elif opcode == OP_INV:
            values[out_slot] = values[in_slots[0]] ^ 1
        elif opcode == OP_MUX2:
            select, d0, d1 = in_slots
            values[out_slot] = values[d1] if values[select] else values[d0]
        elif opcode == OP_CONST0:
            values[out_slot] = 0
        elif opcode == OP_CONST1:
            values[out_slot] = 1
        else:  # pragma: no cover - compile_netlist only emits known opcodes
            raise SimulationError(f"bad opcode {opcode}")
