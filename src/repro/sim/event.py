"""Event-driven simulation.

Where the compiled cycle simulator evaluates every gate every cycle, the
event-driven simulator only re-evaluates fanout of changed nets. It is
slower per event in Python but supports three-valued values, per-net
observation callbacks and waveform capture — the debugging companion to
the production simulators, and an independent implementation used to
cross-check them in tests.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, List, Optional

from repro.errors import SimulationError
from repro.logic.tables import eval_gate
from repro.logic.values import X, Value
from repro.netlist.netlist import Dff, Gate, Netlist
from repro.sim.vectors import Testbench

Observer = Callable[[int, str, Value], None]


class EventSimulator:
    """Three-valued, event-driven netlist simulator.

    Values start at X (except flop outputs, which start at their init
    value); ``step`` applies one input vector and settles all events.
    """

    def __init__(self, netlist: Netlist):
        self.netlist = netlist
        self.values: Dict[str, Value] = {}
        self._fanout: Dict[str, List[Gate]] = {}
        for gate in netlist.gates.values():
            for net in gate.inputs:
                self._fanout.setdefault(net, []).append(gate)
        self.cycle = 0
        self._observers: List[Observer] = []
        self.events_processed = 0
        self.reset()

    def reset(self) -> None:
        """Initialise all nets to X and flops to their init values."""
        self.values = {net: X for net in self.netlist.all_referenced_nets()}
        for dff in self.netlist.dffs.values():
            self.values[dff.q] = dff.init
        self.cycle = 0
        # settle constants and logic fed only by constants/flops
        self._settle(list(self.netlist.gates.values()))

    def observe(self, observer: Observer) -> None:
        """Register a callback invoked as ``observer(cycle, net, value)``
        on every net change (used by the VCD writer)."""
        self._observers.append(observer)

    # ------------------------------------------------------------------
    def _set(self, net: str, value: Value) -> List[Gate]:
        if self.values.get(net) == value:
            return []
        self.values[net] = value
        for observer in self._observers:
            observer(self.cycle, net, value)
        return self._fanout.get(net, [])

    def _settle(self, initial: List[Gate]) -> None:
        queue = deque(initial)
        queued = {gate.name for gate in initial}
        guard = 0
        limit = 50 * max(1, len(self.netlist.gates))
        while queue:
            gate = queue.popleft()
            queued.discard(gate.name)
            guard += 1
            if guard > limit:
                raise SimulationError(
                    f"event simulation did not settle in {limit} events "
                    f"(oscillation in {self.netlist.name}?)"
                )
            inputs = [self.values.get(net, X) for net in gate.inputs]
            new_value = eval_gate(gate.gate_type, inputs)
            for consumer in self._set(gate.output, new_value):
                if consumer.name not in queued:
                    queue.append(consumer)
                    queued.add(consumer.name)
            self.events_processed += 1

    # ------------------------------------------------------------------
    def step(self, inputs: Dict[str, Value]) -> Dict[str, Value]:
        """Apply one input assignment, settle, clock the flops.

        Returns the primary-output values observed this cycle.
        """
        changed: List[Gate] = []
        for net, value in inputs.items():
            if not self.netlist.is_input(net):
                raise SimulationError(f"{net!r} is not a primary input")
            changed.extend(self._set(net, value))
        # Deduplicate initial gate list.
        unique: Dict[str, Gate] = {gate.name: gate for gate in changed}
        self._settle(list(unique.values()))

        outputs = {net: self.values.get(net, X) for net in self.netlist.outputs}

        # Clock edge: sample all D inputs simultaneously, then update Qs.
        sampled = {
            dff.name: self.values.get(dff.d, X) for dff in self.netlist.dffs.values()
        }
        self.cycle += 1
        flop_changes: List[Gate] = []
        for dff in self.netlist.dffs.values():
            flop_changes.extend(self._set(dff.q, sampled[dff.name]))
        unique = {gate.name: gate for gate in flop_changes}
        self._settle(list(unique.values()))
        return outputs

    def run(self, testbench: Testbench) -> List[Dict[str, Value]]:
        """Run a whole testbench, returning per-cycle output dicts."""
        return [self.step(vector) for vector in testbench.as_dicts()]

    def flop_state(self) -> Dict[str, Value]:
        """Current value of every flop output net."""
        return {dff.q: self.values.get(dff.q, X) for dff in self.netlist.dffs.values()}

    def poke_flop(self, name: str, value: Value) -> None:
        """Force a flop output (fault injection for debugging); fanout is
        re-settled immediately."""
        dff: Optional[Dff] = self.netlist.dffs.get(name)
        if dff is None:
            raise SimulationError(f"no flop named {name!r}")
        changed = self._set(dff.q, value)
        unique = {gate.name: gate for gate in changed}
        self._settle(list(unique.values()))
