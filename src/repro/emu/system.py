"""The :class:`AutonomousEmulator` facade.

Ties together instrumentation, controller generation, RAM layout, area
measurement and campaign execution — the library's main entry point::

    from repro.circuits import build_circuit
    from repro.emu import AutonomousEmulator
    from repro.circuits.itc99.b14 import b14_program_testbench

    b14 = build_circuit("b14")
    emulator = AutonomousEmulator(b14, technique="time_multiplexed")
    synthesis = emulator.synthesize()        # Table-1-style area rows
    testbench = b14_program_testbench(b14, 160)
    result = emulator.run_campaign(testbench)  # Table-2-style timing
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.emu.board import RC1000, BoardModel
from repro.emu.campaign import CampaignResult, run_campaign
from repro.emu.controller import build_controller
from repro.emu.instrument import TECHNIQUES, InstrumentedCircuit, instrument_circuit
from repro.emu.ram import RamLayout, ram_layout_for
from repro.errors import CampaignError
from repro.faults.model import SeuFault, exhaustive_fault_list
from repro.netlist.netlist import Netlist
from repro.sim.parallel import FaultGradingResult
from repro.sim.vectors import Testbench
from repro.synth.area import AreaReport, area_of


@dataclass
class SynthesisSummary:
    """One technique's Table-1 row set: original, modified, full system."""

    technique: str
    original: AreaReport
    modified: AreaReport
    controller: AreaReport
    system: AreaReport
    ram: RamLayout

    def describe(self) -> str:
        """Text rendering mirroring the paper's Table 1 columns."""
        modified = self.modified.overhead_vs(self.original)
        system = self.system.overhead_vs(self.original)
        return (
            f"{self.technique}: RAM {self.ram.board_kbits:,.0f} / "
            f"{self.ram.fpga_kbits:.1f} kbits | modified "
            f"{modified.lut_cell()} LUTs, {modified.ff_cell()} FFs | system "
            f"{system.lut_cell()} LUTs, {system.ff_cell()} FFs"
        )


class AutonomousEmulator:
    """An autonomous fault-emulation system for one circuit + technique."""

    def __init__(
        self,
        netlist: Netlist,
        technique: str,
        board: BoardModel = RC1000,
        campaign_cycles: int = 0,
        campaign_faults: int = 0,
    ):
        if technique not in TECHNIQUES:
            raise CampaignError(
                f"unknown technique {technique!r}; expected one of {TECHNIQUES}"
            )
        self.netlist = netlist
        self.technique = technique
        self.board = board
        # Controller sizing defaults: counters are dimensioned for the
        # campaign; synthesize() before run_campaign() uses these hints.
        self._campaign_cycles = campaign_cycles
        self._campaign_faults = campaign_faults
        self._instrumented: Optional[InstrumentedCircuit] = None
        self._controller: Optional[Netlist] = None

    # ------------------------------------------------------------------
    @property
    def instrumented(self) -> InstrumentedCircuit:
        """The instrumented circuit (built on first use)."""
        if self._instrumented is None:
            self._instrumented = instrument_circuit(self.netlist, self.technique)
        return self._instrumented

    def controller_netlist(
        self, num_cycles: Optional[int] = None, num_faults: Optional[int] = None
    ) -> Netlist:
        """The generated emulation controller netlist."""
        cycles = num_cycles or self._campaign_cycles or 256
        faults = num_faults or self._campaign_faults or (
            self.netlist.num_ffs * cycles
        )
        if self._controller is None:
            ram = self._ram_layout(cycles, faults)
            self._controller = build_controller(
                self.technique,
                num_inputs=len(self.netlist.inputs),
                num_outputs=len(self.netlist.outputs),
                num_flops=self.netlist.num_ffs,
                num_cycles=cycles,
                num_faults=faults,
                ram_words=ram.total_words(),
            )
        return self._controller

    def _ram_layout(self, num_cycles: int, num_faults: int) -> RamLayout:
        return ram_layout_for(
            self.technique,
            num_inputs=len(self.netlist.inputs),
            num_outputs=len(self.netlist.outputs),
            num_flops=self.netlist.num_ffs,
            num_cycles=num_cycles,
            num_faults=num_faults,
        )

    # ------------------------------------------------------------------
    def synthesize(
        self, num_cycles: Optional[int] = None, num_faults: Optional[int] = None
    ) -> SynthesisSummary:
        """Measure the Table-1 areas: original, modified, full system.

        The system row is the modified circuit plus the generated
        controller (the paper's "Emulator System"); RAM is reported
        separately, as in the paper.
        """
        cycles = num_cycles or self._campaign_cycles or 256
        faults = num_faults or self._campaign_faults or (
            self.netlist.num_ffs * cycles
        )
        original = area_of(self.netlist)
        modified = area_of(self.instrumented.netlist)
        controller = area_of(self.controller_netlist(cycles, faults))
        system = modified.plus(
            controller, name=f"{self.netlist.name}.{self.technique}.system"
        )
        return SynthesisSummary(
            technique=self.technique,
            original=original,
            modified=modified,
            controller=controller,
            system=system,
            ram=self._ram_layout(cycles, faults),
        )

    def run_campaign(
        self,
        testbench: Testbench,
        faults: Optional[Sequence[SeuFault]] = None,
        oracle: Optional[FaultGradingResult] = None,
    ) -> CampaignResult:
        """Execute the fault-grading campaign and count FPGA cycles."""
        return run_campaign(
            self.netlist,
            testbench,
            self.technique,
            board=self.board,
            faults=faults,
            oracle=oracle,
        )

    # ------------------------------------------------------------------
    def merged_system_netlist(
        self, num_cycles: Optional[int] = None, num_faults: Optional[int] = None
    ) -> Netlist:
        """One flat netlist containing instrumented circuit + controller.

        Controller outputs drive the instrument's control inputs and the
        circuit's stimulus inputs; circuit outputs feed the controller's
        observation inputs. RAM ports and ``start``/``done`` remain the
        primary interface — exactly the autonomous system's boundary
        (host talks to RAM and the start/done handshake only).
        """
        instrument = self.instrumented
        controller = self.controller_netlist(num_cycles, num_faults)
        return merge_system(instrument, controller)


def merge_system(instrument: InstrumentedCircuit, controller: Netlist) -> Netlist:
    """Flatten controller + instrumented circuit into one netlist."""
    circuit = instrument.netlist
    merged = Netlist(f"{circuit.name}.system")

    # Controller nets are prefixed to avoid collisions; connection points
    # are resolved through this renaming.
    def ctrl_net(net: str) -> str:
        return f"ctl.{net}"

    # --- primary inputs of the merged system: controller's RAM/start
    for net in controller.inputs:
        if net.startswith(("obs[", "circ_state[", "state_diff", "scan_out_bit")):
            continue  # driven internally
        merged.add_input(ctrl_net(net))

    # --- controller gates and flops (renamed)
    for gate in controller.gates.values():
        merged.add_gate(
            f"ctl.{gate.name}",
            gate.gate_type,
            [ctrl_net(n) for n in gate.inputs],
            ctrl_net(gate.output),
        )
    for dff in controller.dffs.values():
        merged.add_dff(f"ctl.{dff.name}", ctrl_net(dff.d), ctrl_net(dff.q), dff.init)

    # Controller primary outputs are driven by internal nets named after
    # the output with a buffer; map output name -> its driving net.
    # (Controller netlists come from the elaborator, where outputs are
    # buf-driven nets with the port name itself.)

    # --- instrumented circuit, unprefixed
    for gate in circuit.gates.values():
        merged.add_gate(gate.name, gate.gate_type, gate.inputs, gate.output)
    for dff in circuit.dffs.values():
        merged.add_dff(dff.name, dff.d, dff.q, dff.init)

    # --- wire controller outputs to circuit inputs
    original_inputs = instrument.original.inputs
    connected = set()
    for index, net in enumerate(original_inputs):
        source = ctrl_net(f"stim[{index}]" if len(original_inputs) > 1 else "stim")
        merged.add_gate(f"link.stim[{index}]", "buf", [source], net)
        connected.add(net)
    for role_net in instrument.control_inputs.values():
        source = ctrl_net(role_net)
        if role_net in connected:
            continue
        merged.add_gate(f"link.{role_net}", "buf", [source], role_net)
        connected.add(role_net)

    # --- wire circuit outputs to controller observation inputs
    for index, net in enumerate(instrument.original.outputs):
        name = f"obs[{index}]" if len(instrument.original.outputs) > 1 else "obs"
        merged.add_gate(f"link.obs[{index}]", "buf", [net], ctrl_net(name))
    if "state_diff" in controller.inputs or any(
        n == "state_diff" for n in controller.inputs
    ):
        merged.add_gate(
            "link.state_diff",
            "buf",
            [instrument.control_outputs["state_diff"]],
            ctrl_net("state_diff"),
        )
    for net in controller.inputs:
        if net.startswith("circ_state["):
            index = int(net[len("circ_state[") : -1])
            flop_name = instrument.flop_order[index]
            q_net = instrument.original.dffs[flop_name].q
            merged.add_gate(f"link.{net}", "buf", [q_net], ctrl_net(net))
        elif net == "scan_out_bit":
            merged.add_gate(
                "link.scan_out",
                "buf",
                [instrument.control_outputs["scan_out"]],
                ctrl_net(net),
            )

    # --- merged primary outputs: the RAM interface and the done flag are
    # the functional boundary; the remaining controller/instrument status
    # nets are exported too so no logic is dangling (and so waveforms of
    # the merged system show the protocol signals).
    for net in controller.outputs:
        merged.add_output(ctrl_net(net))
    for net in instrument.control_outputs.values():
        merged.add_output(f"dbg.{net}")
        merged.add_gate(f"link.dbg.{net}", "buf", [net], f"dbg.{net}")
    return merged
