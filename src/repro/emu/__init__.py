"""The autonomous emulation system — the paper's core contribution.

Subpackages/modules:

* :mod:`repro.emu.instrument` — the three fault-injection instrumentation
  transforms (mask-scan, state-scan, time-multiplexed / Figure 1).
* :mod:`repro.emu.controller` — generates the on-FPGA emulation controller
  as a real netlist (its size scales with flop count, testbench length and
  I/O width, as the paper notes).
* :mod:`repro.emu.ram` — emulation RAM layout (stimuli, expected outputs,
  faulty states, classification results).
* :mod:`repro.emu.board` — board model (clock, RAM, host-link latencies);
  the Celoxica RC1000 profile used by the paper.
* :mod:`repro.emu.campaign` — cycle-accurate campaign engines: the
  per-technique protocols that turn grading outcomes into FPGA cycle
  counts and emulation times.
* :mod:`repro.emu.hostlink` — the host-driven emulation baseline [Civera
  et al. 2001] and the software fault-simulation baseline.
* :mod:`repro.emu.system` — :class:`AutonomousEmulator`, the facade tying
  everything together.
"""

from repro.emu.board import BoardModel, RC1000
from repro.emu.campaign import CampaignResult, run_campaign
from repro.emu.hostlink import HostLinkModel, SoftwareFaultSimModel
from repro.emu.instrument import (
    TECHNIQUES,
    InstrumentedCircuit,
    instrument_circuit,
)
from repro.emu.ram import RamLayout, ram_layout_for
from repro.emu.system import AutonomousEmulator, SynthesisSummary

__all__ = [
    "AutonomousEmulator",
    "BoardModel",
    "CampaignResult",
    "HostLinkModel",
    "InstrumentedCircuit",
    "RC1000",
    "RamLayout",
    "SoftwareFaultSimModel",
    "SynthesisSummary",
    "TECHNIQUES",
    "instrument_circuit",
    "ram_layout_for",
]
