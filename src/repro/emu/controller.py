"""Emulation controller netlist generator.

The autonomous system's controller sequences the whole campaign inside the
FPGA: it addresses RAM, applies stimuli, programs masks / scans states,
pulses the injection, compares outputs against expected values and writes
the 2-bit verdict per fault back to RAM. The paper notes its overhead
"depends on the flip-flop number, test bench cycles and circuit inputs and
outputs" — which is exactly how the register widths below scale.

The controller is generated as *real RTL* and elaborated/LUT-mapped like
any other circuit; its area is what Table 1's "Emulator System" rows add
on top of the modified circuit. (Campaign *timing* is computed by the
cycle-accurate protocol engines in :mod:`repro.emu.campaign`; the
controller netlist is the area/structure model of the same protocol.)

Port contract (used when merging controller + instrumented circuit into
one system netlist):

* inputs: ``start``, ``ram_rdata[w]``, ``obs[i]`` (circuit outputs),
  technique-specific observation ports (``state_diff`` for time-mux,
  ``circ_state[i]`` for mask-scan's final-state compare);
* outputs: ``stim[i]`` (circuit inputs), ``ram_addr``, ``ram_wdata[w]``,
  ``ram_we``, ``done`` and one output per instrument control port, named
  exactly like the instrument's control input net.
"""

from __future__ import annotations

from repro.emu.instrument.base import grid_shape
from repro.errors import InstrumentationError
from repro.netlist.netlist import Netlist
from repro.rtl import RtlModule, cat, const, mux, reduce_or
from repro.rtl.expr import WExpr
from repro.util.bitops import clog2


def build_controller(
    technique: str,
    num_inputs: int,
    num_outputs: int,
    num_flops: int,
    num_cycles: int,
    num_faults: int,
    ram_words: int,
    ram_width: int = 32,
) -> Netlist:
    """Generate the controller netlist for one technique and campaign."""
    if technique == "mask_scan":
        builder = _MaskScanController
    elif technique == "state_scan":
        builder = _StateScanController
    elif technique == "time_multiplexed":
        builder = _TimeMuxController
    else:
        raise InstrumentationError(f"unknown technique {technique!r}")
    return builder(
        num_inputs=num_inputs,
        num_outputs=num_outputs,
        num_flops=num_flops,
        num_cycles=num_cycles,
        num_faults=num_faults,
        ram_words=ram_words,
        ram_width=ram_width,
    ).build()


class _ControllerBase:
    """Shared skeleton: counters, RAM addressing, stimulus register."""

    #: port-name prefix of the matching instrument ("ms", "ss", "tm")
    prefix = ""

    def __init__(
        self,
        num_inputs: int,
        num_outputs: int,
        num_flops: int,
        num_cycles: int,
        num_faults: int,
        ram_words: int,
        ram_width: int,
    ):
        self.num_inputs = num_inputs
        self.num_outputs = num_outputs
        self.num_flops = num_flops
        self.num_cycles = num_cycles
        self.num_faults = num_faults
        self.ram_width = ram_width

        self.cycle_bits = max(1, clog2(num_cycles + 1))
        self.fault_bits = max(1, clog2(num_faults + 1))
        self.addr_bits = max(1, clog2(max(2, ram_words)))

        name = f"ctrl.{self.technique_name()}"
        self.m = RtlModule(name)

    def technique_name(self) -> str:
        return type(self).__name__.strip("_").lower()

    # ------------------------------------------------------------------
    def build(self) -> Netlist:
        m = self.m
        self.start = m.input("start", 1)
        self.ram_rdata = m.input("ram_rdata", self.ram_width)
        self.obs = m.input("obs", self.num_outputs)

        # Common sequencing state.
        self.fsm = m.register("fsm", 3, init=0)
        self.cycle = m.register("cycle", self.cycle_bits, init=0)
        self.fault = m.register("fault", self.fault_bits, init=0)
        self.ram_addr = m.register("ram_addr", self.addr_bits, init=0)
        self.verdict = m.register("verdict", 2, init=0)

        running = self.fsm == const(3, 1)
        finishing = self.fault == const(self.fault_bits, self.num_faults)
        m.next(
            self.fsm,
            mux(
                self.start[0],
                mux(
                    (running & finishing)[0],
                    self.fsm,
                    const(3, 2),
                ),
                const(3, 1),
            ),
        )

        cycle_wrap = self.cycle == const(self.cycle_bits, self.num_cycles - 1)
        m.next(
            self.cycle,
            mux(
                running[0],
                self.cycle,
                mux(cycle_wrap[0], self.cycle + const(self.cycle_bits, 1),
                    const(self.cycle_bits, 0)),
            ),
        )
        m.next(
            self.fault,
            mux(
                (running & cycle_wrap)[0],
                self.fault,
                self.fault + const(self.fault_bits, 1),
            ),
        )
        m.next(self.ram_addr, self.ram_addr + const(self.addr_bits, 1))

        # Stimuli are applied straight from the RAM data bus (the RC1000
        # SRAM is synchronous to the emulation clock); no input register.
        m.output("stim", self._stim_source())

        # Output comparator feeds the verdict.
        mismatch = self._output_mismatch()
        m.next(
            self.verdict,
            mux(mismatch[0], self.verdict, const(2, 1)),
        )

        self._technique_logic(running, cycle_wrap, mismatch)

        m.output("ram_addr_out", self.ram_addr)
        m.output("ram_wdata", self.verdict.zext(self.ram_width))
        m.output("ram_we", running & cycle_wrap)
        m.output("done", self.fsm == const(3, 2))
        return m.elaborate()

    # ------------------------------------------------------------------
    def _stim_source(self) -> WExpr:
        """Next stimulus word, assembled from RAM read data."""
        if self.num_inputs <= self.ram_width:
            return self.ram_rdata[0 : self.num_inputs]
        chunks = []
        remaining = self.num_inputs
        while remaining > 0:
            take = min(remaining, self.ram_width)
            chunks.append(self.ram_rdata[0:take])
            remaining -= take
        return cat(*chunks)

    def _expected_outputs(self) -> WExpr:
        """Expected output word, compared straight off the RAM stream."""
        if self.num_outputs <= self.ram_width:
            return self.ram_rdata[0 : self.num_outputs]
        return cat(
            *[
                self.ram_rdata[0 : min(self.ram_width, self.num_outputs - i)]
                for i in range(0, self.num_outputs, self.ram_width)
            ]
        )

    def _output_mismatch(self) -> WExpr:
        """1 when the circuit outputs differ from expectation."""
        raise NotImplementedError

    def _technique_logic(self, running, cycle_wrap, mismatch) -> None:
        """Technique-specific registers, ports and control outputs."""
        raise NotImplementedError

    # helpers ----------------------------------------------------------
    def _mask_address_ports(self, prefix: str) -> None:
        """Row/col address registers driving the instrument's mask
        decoder, plus set/rst/inject pulses."""
        m = self.m
        rows, cols = grid_shape(self.num_flops)
        row_bits = max(1, clog2(rows))
        col_bits = max(1, clog2(cols))
        row_reg = m.register("ff_row", row_bits, init=0)
        col_reg = m.register("ff_col", col_bits, init=0)
        # The fault counter's low bits walk the flop grid; registered
        # address keeps the decoder stable during the injection cycle.
        m.next(row_reg, self.fault[0:row_bits])
        col_take = min(col_bits, max(1, self.fault_bits - row_bits))
        m.next(
            col_reg,
            self.fault[row_bits : row_bits + col_take].zext(col_bits),
        )
        for bit in range(row_bits):
            m.output(f"{prefix}_row[{bit}]", row_reg[bit])
        for bit in range(col_bits):
            m.output(f"{prefix}_col[{bit}]", col_reg[bit])

        inject_at = m.register("inject_at", self.cycle_bits, init=0)
        m.next(inject_at, mux(self.start[0], inject_at, self.fault[0 : self.cycle_bits]))
        inject_now = self.cycle == inject_at
        m.output(f"{prefix}_set", self.cycle == const(self.cycle_bits, 0))
        m.output(f"{prefix}_rst", self.fsm == const(3, 0))
        m.output(f"{prefix}_inject", inject_now)


class _MaskScanController(_ControllerBase):
    """Controller for mask-scan: expected-output compare from RAM plus a
    golden-final-state register bank for the silent/latent decision."""

    prefix = "ms"

    def technique_name(self) -> str:
        return "mask_scan"

    def _output_mismatch(self) -> WExpr:
        expected = self._expected_outputs()
        return reduce_or(self.obs ^ expected)

    def _technique_logic(self, running, cycle_wrap, mismatch) -> None:
        m = self.m
        # Final-state comparator: golden final state captured once during
        # the prologue (num_flops register bits — the dominant controller
        # cost the paper's mask-scan system row shows).
        circ_state = m.input("circ_state", self.num_flops)
        golden_final = m.register("golden_final", self.num_flops, init=0)
        in_prologue = self.fsm == const(3, 0)
        m.next(golden_final, mux(in_prologue[0], golden_final, circ_state))
        state_clean = golden_final == circ_state
        m.output("state_clean", state_clean)
        self._mask_address_ports("ms")


class _StateScanController(_ControllerBase):
    """Controller for state-scan: a scan-bit counter and serial compare —
    no wide register banks, which is why its controller is the smallest."""

    prefix = "ss"

    def technique_name(self) -> str:
        return "state_scan"

    def _output_mismatch(self) -> WExpr:
        expected = self._expected_outputs()
        return reduce_or(self.obs ^ expected)

    def _technique_logic(self, running, cycle_wrap, mismatch) -> None:
        m = self.m
        scan_bits = max(1, clog2(self.num_flops + 1))
        scan_count = m.register("scan_count", scan_bits, init=0)
        scanning = scan_count == const(scan_bits, self.num_flops)
        m.next(
            scan_count,
            mux(
                scanning[0],
                scan_count + const(scan_bits, 1),
                const(scan_bits, 0),
            ),
        )
        # Serial state insertion from the RAM stream; the final-state
        # verdict comes from comparing the scan-out bit against the
        # golden stream, one bit per cycle (registered accumulator).
        scan_out_bit = m.input("scan_out_bit", 1)
        serial_match = m.register("serial_match", 1, init=1)
        golden_bit = self.ram_rdata[0]
        m.next(serial_match, serial_match & ~(scan_out_bit ^ golden_bit))
        m.output("state_clean", serial_match)
        m.output("ss_si", self.ram_rdata[1])
        m.output("ss_shift", ~scanning)
        m.output("ss_load", scanning)


class _TimeMuxController(_ControllerBase):
    """Controller for time-mux: golden-output capture register, phase
    toggling, and the disappearance detector input."""

    prefix = "tm"

    def technique_name(self) -> str:
        return "time_multiplexed"

    def _output_mismatch(self) -> WExpr:
        # Golden outputs are captured on-chip during golden phases and
        # compared during faulty phases — no expected-output RAM stream.
        m = self.m
        phase = m.register("phase", 1, init=0)
        m.next(phase, ~phase)
        self.phase = phase
        golden_out = m.register("golden_out", self.num_outputs, init=0)
        m.next(golden_out, mux(phase[0], self.obs, golden_out))
        self.golden_out = golden_out
        return reduce_or(self.obs ^ golden_out) & phase

    def _technique_logic(self, running, cycle_wrap, mismatch) -> None:
        m = self.m
        state_diff = m.input("state_diff", 1)
        # Fault disappeared: no state difference at the end of a faulty
        # phase and no failure recorded -> classify silent, stop early.
        disappeared = ~state_diff & self.phase
        m.output("fault_disappeared", disappeared)
        m.output("tm_ena_golden", ~self.phase)
        m.output("tm_ena_faulty", self.phase)
        m.output("tm_save_state", cycle_wrap & ~self.phase)
        m.output("tm_load_state", self.cycle == const(self.cycle_bits, 0))
        self._mask_address_ports("tm")
