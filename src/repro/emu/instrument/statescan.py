"""State-scan instrumentation.

Instead of marking a flop and replaying from cycle zero, state-scan
inserts the *entire faulty state* — the golden state at the injection
cycle with one bit flipped, precomputed during the golden run and stored
in emulation RAM — directly into the circuit, and runs only the remaining
testbench cycles.

Per original flop ``i`` the transform adds:

* a shadow scan flop ``sscan$i`` forming one long shift chain
  (``ss_si -> ... -> ss_so``): the controller shifts the next faulty
  state in while the circuit is paused;
* a parallel-load mux in front of the circuit flop:
  ``d = load_state ? shadow_q : D``.

This doubles the flip-flop count and adds two mux-class gates per flop —
the structure behind the paper's Table 1 state-scan row (433 FFs / +40 %
LUTs on b14).

Control ports added: ``ss_si``, ``ss_shift``, ``ss_load``; output
``ss_so``.
"""

from __future__ import annotations

from repro.emu.instrument.base import (
    Emitter,
    InstrumentedCircuit,
    clone_interface,
    copy_combinational,
)
from repro.errors import InstrumentationError
from repro.netlist.netlist import Netlist
from repro.netlist.validate import validate_netlist


def chain_of(flop_index: int, num_flops: int, num_chains: int) -> tuple:
    """Map a flop position to its (chain, position-within-chain).

    Flops are split into ``num_chains`` contiguous chains; the last chain
    may be shorter. Scan-in time is the longest chain's length,
    ``ceil(num_flops / num_chains)``.
    """
    from repro.util.bitops import ceil_div

    chain_length = ceil_div(num_flops, num_chains)
    return flop_index // chain_length, flop_index % chain_length


def instrument_state_scan(
    original: Netlist, num_chains: int = 1
) -> InstrumentedCircuit:
    """Apply the state-scan transform.

    ``num_chains`` splits the shadow register into parallel scan chains —
    an extension beyond the paper (which uses one chain): scan-in time
    drops to ``ceil(N / num_chains)`` cycles per fault at the cost of one
    extra scan-in port (and RAM port bit) per chain. The campaign engine
    and protocol driver accept the same parameter.
    """
    if original.num_ffs == 0:
        raise InstrumentationError(
            f"{original.name!r} has no flip-flops; nothing to instrument"
        )
    if num_chains < 1:
        raise InstrumentationError("num_chains must be at least 1")
    flop_order = original.ff_names()
    count = len(flop_order)
    num_chains = min(num_chains, count)

    netlist = clone_interface(
        original,
        f"{original.name}.state_scan"
        + (f"x{num_chains}" if num_chains > 1 else ""),
    )
    copy_combinational(original, netlist)
    emitter = Emitter(netlist, "ss")

    def port(base: str, chain: int) -> str:
        return base if num_chains == 1 else f"{base}[{chain}]"

    scan_ins = [netlist.add_input(port("ss_si", c)) for c in range(num_chains)]
    shift = netlist.add_input("ss_shift")
    load = netlist.add_input("ss_load")

    previous = list(scan_ins)
    for index, name in enumerate(flop_order):
        dff = original.dffs[name]
        chain, _position = chain_of(index, count, num_chains)

        # shadow scan flop: shifts when ss_shift, holds otherwise
        shadow_q = netlist.fresh_net(f"ss.shadow[{index}]")
        shadow_d = emitter.gate("mux2", [shift, shadow_q, previous[chain]])
        netlist.add_dff(f"ss$shadow[{index}]", shadow_d, shadow_q, 0)
        previous[chain] = shadow_q

        # circuit flop with parallel-load from the shadow chain
        loaded_d = emitter.gate("mux2", [load, dff.d, shadow_q])
        netlist.add_dff(name, loaded_d, dff.q, dff.init)

    for net in original.outputs:
        netlist.add_output(net)
    control_outputs = {}
    for chain in range(num_chains):
        out_net = port("ss_so", chain)
        netlist.add_output(emitter.gate("buf", [previous[chain]], output=out_net))
        control_outputs["scan_out" if num_chains == 1 else f"scan_out[{chain}]"] = out_net

    validate_netlist(netlist)
    control_inputs = {"shift": shift, "load": load}
    for chain, net in enumerate(scan_ins):
        control_inputs["scan_in" if num_chains == 1 else f"scan_in[{chain}]"] = net
    return InstrumentedCircuit(
        technique="state_scan",
        netlist=netlist,
        original=original,
        control_inputs=control_inputs,
        control_outputs=control_outputs,
        flop_order=flop_order,
        num_chains=num_chains,
    )
