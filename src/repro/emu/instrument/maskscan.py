"""Mask-scan instrumentation.

Derived from the host-driven injector of [Civera et al. 2001] (the paper's
reference [2]) with the additions that make the system autonomous: every
circuit flip-flop gets a companion *mask* flip-flop marking it as the
injection target, and the mask array is written by the on-FPGA controller
through a row/column address decoder (two cycles per fault: clear + set)
instead of by the host.

Per original flop ``i`` the transform adds:

* a mask flop ``mask$i`` with ``d = (q | set_here) & ~mask_rst``;
* the injection gate ``q_eff = q_raw XOR (mask & inject)`` — consumers of
  the original q net see ``q_eff``, so pulsing ``inject`` for one cycle
  while mask bit ``i`` is set flips exactly that flop for that cycle: the
  SEU bit-flip model in hardware.

With ``persistent=True`` (stuck-at and intermittent fault models) each
flop additionally gets a *force override*: while ``ms_force`` is held and
mask bit ``i`` is set, consumers see ``ms_force_val`` instead of the flop
value. The mask flop holds the target across cycles, so a stuck-at fault
costs the same two programming cycles as an SEU and the controller simply
holds ``ms_force`` for the rest of the replay (toggling it per the duty
pattern for intermittent faults) — per-cycle mask re-application in
hardware, for the price of one control line.

Control ports added: ``ms_row/ms_col`` (mask address), ``ms_set``,
``ms_rst``, ``ms_inject`` (+ ``ms_force``/``ms_force_val`` when
``persistent``).
"""

from __future__ import annotations

from repro.emu.instrument.base import (
    Emitter,
    InstrumentedCircuit,
    build_mask_address_decoder,
    clone_interface,
    copy_combinational,
)
from repro.errors import InstrumentationError
from repro.netlist.netlist import Netlist
from repro.netlist.validate import validate_netlist


def instrument_mask_scan(
    original: Netlist, persistent: bool = False
) -> InstrumentedCircuit:
    """Apply the mask-scan transform.

    ``persistent`` adds the force-override path (``ms_force`` /
    ``ms_force_val``) required by the stuck-at and intermittent fault
    models; the default instrument is unchanged, keeping the paper's
    Table 1 area numbers for SEU campaigns.
    """
    if original.num_ffs == 0:
        raise InstrumentationError(
            f"{original.name!r} has no flip-flops; nothing to instrument"
        )
    flop_order = original.ff_names()
    count = len(flop_order)

    netlist = clone_interface(original, f"{original.name}.mask_scan")
    copy_combinational(original, netlist)
    emitter = Emitter(netlist, "ms")

    set_enable = netlist.add_input("ms_set")
    selects, address_inputs = build_mask_address_decoder(
        emitter, count, "ms", enable=set_enable
    )
    reset_all = netlist.add_input("ms_rst")
    inject = netlist.add_input("ms_inject")
    force_enable = force_value = ""
    if persistent:
        force_enable = netlist.add_input("ms_force")
        force_value = netlist.add_input("ms_force_val")
    not_reset = emitter.gate("inv", [reset_all])

    mask_qs = []
    for index, name in enumerate(flop_order):
        dff = original.dffs[name]
        raw_q = f"{dff.q}#raw"

        # circuit flop, q renamed so we can interpose the injection XOR
        netlist.add_dff(name, dff.d, raw_q, dff.init)

        # mask flop: set when addressed, cleared by the global reset
        mask_q = netlist.fresh_net(f"ms.mask[{index}]")
        held_or_set = emitter.gate("or", [mask_q, selects[index]])
        mask_d = emitter.gate("and", [held_or_set, not_reset])
        netlist.add_dff(f"ms$mask[{index}]", mask_d, mask_q, 0)
        mask_qs.append(mask_q)

        # inject: consumers of the original q net see the flipped value
        flip = emitter.gate("and", [mask_q, inject])
        if persistent:
            # force override: q_eff = flipped XOR (forced AND (flipped
            # XOR force_val)) — substitutes ms_force_val while the mask
            # bit and ms_force are both high, leaves q untouched otherwise.
            flipped = emitter.gate("xor", [raw_q, flip])
            forced = emitter.gate("and", [mask_q, force_enable])
            delta = emitter.gate("xor", [flipped, force_value])
            override = emitter.gate("and", [forced, delta])
            emitter.gate("xor", [flipped, override], output=dff.q)
        else:
            emitter.gate("xor", [raw_q, flip], output=dff.q)

    for net in original.outputs:
        netlist.add_output(net)
    # Expose the OR of all mask bits so the controller (and tests) can
    # check that exactly the intended mask survives a program sequence.
    any_mask = emitter.or_tree(mask_qs)
    netlist.add_output(emitter.gate("buf", [any_mask], output="ms_mask_armed"))

    validate_netlist(netlist)
    control_inputs = {
        "set": set_enable,
        "reset": reset_all,
        "inject": inject,
    }
    if persistent:
        control_inputs["force"] = force_enable
        control_inputs["force_value"] = force_value
    for net in address_inputs:
        control_inputs[net] = net
    return InstrumentedCircuit(
        technique="mask_scan",
        netlist=netlist,
        original=original,
        control_inputs=control_inputs,
        control_outputs={"mask_armed": "ms_mask_armed"},
        flop_order=flop_order,
    )
