"""Fault-injection instrumentation transforms.

Each transform takes the circuit under evaluation and returns an
:class:`InstrumentedCircuit`: a *real netlist* in which every flip-flop
has been augmented (mask-scan, state-scan) or replaced by the Figure-1
instrument (time-multiplexed), plus added control ports. Table 1's
"Modified circuit" rows are produced by LUT-mapping these netlists.
"""

from repro.emu.instrument.base import InstrumentedCircuit
from repro.emu.instrument.maskscan import instrument_mask_scan
from repro.emu.instrument.statescan import instrument_state_scan
from repro.emu.instrument.timemux import instrument_time_multiplexed

from repro.errors import InstrumentationError

TECHNIQUES = ("mask_scan", "state_scan", "time_multiplexed")


def instrument_circuit(netlist, technique: str) -> InstrumentedCircuit:
    """Apply the named technique's transform to ``netlist``."""
    if technique == "mask_scan":
        return instrument_mask_scan(netlist)
    if technique == "state_scan":
        return instrument_state_scan(netlist)
    if technique == "time_multiplexed":
        return instrument_time_multiplexed(netlist)
    raise InstrumentationError(
        f"unknown technique {technique!r}; expected one of {TECHNIQUES}"
    )


__all__ = [
    "InstrumentedCircuit",
    "TECHNIQUES",
    "instrument_circuit",
    "instrument_mask_scan",
    "instrument_state_scan",
    "instrument_time_multiplexed",
]
