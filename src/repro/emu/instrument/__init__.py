"""Fault-injection instrumentation transforms.

Each transform takes the circuit under evaluation and returns an
:class:`InstrumentedCircuit`: a *real netlist* in which every flip-flop
has been augmented (mask-scan, state-scan) or replaced by the Figure-1
instrument (time-multiplexed), plus added control ports. Table 1's
"Modified circuit" rows are produced by LUT-mapping these netlists.
"""

from repro.emu.instrument.base import InstrumentedCircuit
from repro.emu.instrument.maskscan import instrument_mask_scan
from repro.emu.instrument.statescan import instrument_state_scan
from repro.emu.instrument.timemux import instrument_time_multiplexed

from repro.errors import InstrumentationError

TECHNIQUES = ("mask_scan", "state_scan", "time_multiplexed")


def instrument_circuit(
    netlist, technique: str, fault_model: str = "seu"
) -> InstrumentedCircuit:
    """Apply the named technique's transform to ``netlist``.

    ``fault_model`` names a :mod:`repro.faults.models` registry entry;
    persistent models (stuck-at, intermittent) make the mask-based
    transforms emit their force-override hardware. State-scan needs no
    extra gates — it emulates persistence by re-scanning the forced
    state every cycle, which the campaign accounting charges for.
    """
    from repro.faults.models import get_fault_model

    persistent = not get_fault_model(fault_model).transient
    if technique == "mask_scan":
        return instrument_mask_scan(netlist, persistent=persistent)
    if technique == "state_scan":
        return instrument_state_scan(netlist)
    if technique == "time_multiplexed":
        return instrument_time_multiplexed(netlist, persistent=persistent)
    raise InstrumentationError(
        f"unknown technique {technique!r}; expected one of {TECHNIQUES}"
    )


__all__ = [
    "InstrumentedCircuit",
    "TECHNIQUES",
    "instrument_circuit",
    "instrument_mask_scan",
    "instrument_state_scan",
    "instrument_time_multiplexed",
]
