"""Shared structure for instrumentation transforms."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import InstrumentationError
from repro.netlist.netlist import Netlist


@dataclass
class InstrumentedCircuit:
    """A circuit prepared for autonomous fault emulation.

    Attributes:
        technique: ``mask_scan`` / ``state_scan`` / ``time_multiplexed``.
        netlist: the instrumented netlist (original I/O preserved, control
            ports added).
        original: the unmodified circuit.
        control_inputs: added input nets, by role (e.g. ``"inject"`` ->
            net name).
        control_outputs: added output nets, by role (e.g. ``"scan_out"``).
        flop_order: original flop names in scan/packing order — position
            ``i`` corresponds to fault model flop index ``i``.
    """

    technique: str
    netlist: Netlist
    original: Netlist
    control_inputs: Dict[str, str] = field(default_factory=dict)
    control_outputs: Dict[str, str] = field(default_factory=dict)
    flop_order: List[str] = field(default_factory=list)
    num_chains: int = 1  # parallel scan chains (state-scan extension)

    @property
    def num_original_flops(self) -> int:
        return len(self.flop_order)

    def control_input(self, role: str) -> str:
        """Net name of a control input by role; raises for unknown roles."""
        try:
            return self.control_inputs[role]
        except KeyError:
            raise InstrumentationError(
                f"{self.technique} has no control input {role!r}; "
                f"available: {sorted(self.control_inputs)}"
            ) from None

    def original_output_positions(self) -> List[int]:
        """Positions of the original circuit's outputs within the
        instrumented netlist's output list (control outputs come after)."""
        index_of = {net: pos for pos, net in enumerate(self.netlist.outputs)}
        return [index_of[net] for net in self.original.outputs]


def clone_interface(source: Netlist, name: str) -> Netlist:
    """Start a new netlist with the same primary inputs as ``source``."""
    result = Netlist(name)
    for net in source.inputs:
        result.add_input(net)
    return result


def copy_combinational(source: Netlist, target: Netlist) -> None:
    """Copy every gate of ``source`` into ``target`` unchanged.

    Transforms call this first, then re-create flip-flops around the
    copied logic; gate output nets keep their names so the combinational
    fabric is bit-identical.
    """
    for gate in source.gates.values():
        target.add_gate(gate.name, gate.gate_type, gate.inputs, gate.output)


class Emitter:
    """Small helper for adding uniquely-named gates to an existing netlist
    (instrumentation works on netlists directly, not through the builder,
    because it must weave around pre-existing net names)."""

    def __init__(self, netlist: Netlist, prefix: str):
        self.netlist = netlist
        self.prefix = prefix
        self._counter = 0

    def gate(self, gate_type: str, inputs, output: str = "") -> str:
        """Add one gate; returns its output net (fresh unless given)."""
        self._counter += 1
        name = f"{self.prefix}${gate_type}{self._counter}"
        out = output or self.netlist.fresh_net(f"{self.prefix}.{gate_type}")
        self.netlist.add_gate(name, gate_type, list(inputs), out)
        return out

    def or_tree(self, nets, arity: int = 4) -> str:
        """Balanced OR reduction (the disappearance/compare trees)."""
        level = list(nets)
        if not level:
            raise InstrumentationError("or_tree over zero nets")
        while len(level) > 1:
            next_level = []
            for start in range(0, len(level), arity):
                chunk = level[start : start + arity]
                if len(chunk) == 1:
                    next_level.append(chunk[0])
                else:
                    next_level.append(self.gate("or", chunk))
            level = next_level
        return level[0]


def grid_shape(count: int) -> tuple:
    """Rows/cols of the near-square mask-address grid for ``count`` flops."""
    from repro.util.bitops import ceil_div

    rows = max(1, int(count**0.5))
    cols = ceil_div(count, rows)
    return rows, cols


def build_mask_address_decoder(
    emitter: Emitter, count: int, port_prefix: str, enable: str = ""
):
    """Add row/column address inputs and decoders for a ``count``-entry
    mask array.

    Returns ``(select_nets, input_names)``: per-flop select lines (1 when
    the address points at that flop, gated by ``enable`` when given) and
    the list of added input nets.

    A two-level row x column decode keeps the per-flop cost at one AND
    gate — this is what keeps the mask-scan area overhead near the paper's
    +41 % rather than the cost of a flat 215-way decoder. The enable
    signal is folded into the row lines so it costs rows, not count, extra
    gates.
    """
    from repro.util.bitops import clog2

    netlist = emitter.netlist
    rows, cols = grid_shape(count)
    row_bits = max(1, clog2(rows))
    col_bits = max(1, clog2(cols))

    added_inputs = []
    row_addr = []
    for bit in range(row_bits):
        net = netlist.add_input(f"{port_prefix}_row[{bit}]")
        row_addr.append(net)
        added_inputs.append(net)
    col_addr = []
    for bit in range(col_bits):
        net = netlist.add_input(f"{port_prefix}_col[{bit}]")
        col_addr.append(net)
        added_inputs.append(net)

    row_lines = _decode(emitter, row_addr, rows)
    col_lines = _decode(emitter, col_addr, cols)
    if enable:
        row_lines = [emitter.gate("and", [line, enable]) for line in row_lines]

    selects = []
    for index in range(count):
        row, col = index % rows, index // rows
        selects.append(emitter.gate("and", [row_lines[row], col_lines[col]]))
    return selects, added_inputs


def _decode(emitter: Emitter, addr, lines: int):
    inverted = [emitter.gate("inv", [net]) for net in addr]
    outputs = []
    for index in range(lines):
        terms = [
            addr[bit] if (index >> bit) & 1 else inverted[bit]
            for bit in range(len(addr))
        ]
        if len(terms) == 1:
            outputs.append(terms[0])
        else:
            outputs.append(emitter.gate("and", terms))
    return outputs
