"""Time-multiplexed instrumentation — the paper's Figure 1 instrument.

Every circuit flip-flop is replaced by a four-flop instrument:

* **GOLDEN** — runs the fault-free circuit when ``ena_golden`` pulses;
* **FAULTY** — runs the faulty circuit when ``ena_faulty`` pulses, and is
  (re)loaded from STATE xor (MASK and inject) when ``load_state`` pulses;
* **MASK** — marks the injection target (written through the same
  row/column address decoder as mask-scan);
* **STATE** — checkpoints the golden state when ``save_state`` pulses, so
  each new fault starts from the golden state at its injection cycle
  instead of replaying the testbench from the beginning.

The combinational fabric is shared: an output mux per flop feeds it the
GOLDEN or FAULTY value depending on the phase, so golden and faulty runs
alternate on the same logic — *time multiplexing*. An XOR per flop plus an
OR tree raises ``tm_state_diff`` whenever the two runs differ; the moment
it falls back to 0 the fault effect has *disappeared* and the controller
can classify the fault silent without finishing the testbench. This early
termination is why the technique is the fastest of the three.

Control ports added: ``tm_ena_golden``, ``tm_ena_faulty``,
``tm_save_state``, ``tm_load_state``, ``tm_inject``, ``tm_row/tm_col``,
``tm_set``, ``tm_rst``; output ``tm_state_diff``.
"""

from __future__ import annotations

from repro.emu.instrument.base import (
    Emitter,
    InstrumentedCircuit,
    build_mask_address_decoder,
    clone_interface,
    copy_combinational,
)
from repro.errors import InstrumentationError
from repro.netlist.netlist import Netlist
from repro.netlist.validate import validate_netlist


def instrument_time_multiplexed(
    original: Netlist, persistent: bool = False
) -> InstrumentedCircuit:
    """Apply the time-multiplexed (Figure 1) transform.

    ``persistent`` adds a force override on the FAULTY flop
    (``tm_force`` / ``tm_force_val``): while held with the mask bit set,
    the faulty run sees the forced value every faulty phase — the
    stuck-at / intermittent models in hardware. The default instrument
    is byte-identical to the paper's Figure 1.
    """
    if original.num_ffs == 0:
        raise InstrumentationError(
            f"{original.name!r} has no flip-flops; nothing to instrument"
        )
    flop_order = original.ff_names()
    count = len(flop_order)

    netlist = clone_interface(original, f"{original.name}.time_multiplexed")
    copy_combinational(original, netlist)
    emitter = Emitter(netlist, "tm")

    set_enable = netlist.add_input("tm_set")
    selects, address_inputs = build_mask_address_decoder(
        emitter, count, "tm", enable=set_enable
    )
    ena_golden = netlist.add_input("tm_ena_golden")
    ena_faulty = netlist.add_input("tm_ena_faulty")
    save_state = netlist.add_input("tm_save_state")
    load_state = netlist.add_input("tm_load_state")
    inject = netlist.add_input("tm_inject")
    reset_all = netlist.add_input("tm_rst")
    force_enable = force_value = ""
    if persistent:
        force_enable = netlist.add_input("tm_force")
        force_value = netlist.add_input("tm_force_val")
    not_reset = emitter.gate("inv", [reset_all])

    diff_bits = []
    for index, name in enumerate(flop_order):
        dff = original.dffs[name]

        golden_q = netlist.fresh_net(f"tm.golden[{index}]")
        faulty_q = netlist.fresh_net(f"tm.faulty[{index}]")
        state_q = netlist.fresh_net(f"tm.state[{index}]")
        mask_q = netlist.fresh_net(f"tm.mask[{index}]")

        # GOLDEN: advances only during golden phases.
        golden_d = emitter.gate("mux2", [ena_golden, golden_q, dff.d])
        netlist.add_dff(f"tm$golden[{index}]", golden_d, golden_q, dff.init)

        # STATE: checkpoints the golden value on save_state.
        state_d = emitter.gate("mux2", [save_state, state_q, golden_q])
        netlist.add_dff(f"tm$state[{index}]", state_d, state_q, dff.init)

        # MASK: addressed write, global clear (same array as mask-scan).
        held_or_set = emitter.gate("or", [mask_q, selects[index]])
        mask_d = emitter.gate("and", [held_or_set, not_reset])
        netlist.add_dff(f"tm$mask[{index}]", mask_d, mask_q, 0)

        # FAULTY: runs during faulty phases; on load_state it restarts
        # from the checkpoint with the masked bit flipped when inject is
        # raised — the SEU itself.
        flip = emitter.gate("and", [mask_q, inject])
        injected_state = emitter.gate("xor", [state_q, flip])
        faulty_run = emitter.gate("mux2", [ena_faulty, faulty_q, dff.d])
        faulty_d = emitter.gate("mux2", [load_state, faulty_run, injected_state])
        if persistent:
            # force override: the FAULTY flop captures tm_force_val
            # while the mask bit and tm_force are both high.
            forced = emitter.gate("and", [mask_q, force_enable])
            faulty_d = emitter.gate("mux2", [forced, faulty_d, force_value])
        netlist.add_dff(f"tm$faulty[{index}]", faulty_d, faulty_q, dff.init)

        # The shared combinational fabric sees golden or faulty values
        # depending on the phase.
        emitter.gate("mux2", [ena_faulty, golden_q, faulty_q], output=dff.q)

        diff_bits.append(emitter.gate("xor", [golden_q, faulty_q]))

    for net in original.outputs:
        netlist.add_output(net)
    diff_any = emitter.or_tree(diff_bits)
    netlist.add_output(emitter.gate("buf", [diff_any], output="tm_state_diff"))

    validate_netlist(netlist)
    control_inputs = {
        "ena_golden": ena_golden,
        "ena_faulty": ena_faulty,
        "save_state": save_state,
        "load_state": load_state,
        "inject": inject,
        "set": set_enable,
        "reset": reset_all,
    }
    if persistent:
        control_inputs["force"] = force_enable
        control_inputs["force_value"] = force_value
    for net in address_inputs:
        control_inputs[net] = net
    return InstrumentedCircuit(
        technique="time_multiplexed",
        netlist=netlist,
        original=original,
        control_inputs=control_inputs,
        control_outputs={"state_diff": "tm_state_diff"},
        flop_order=flop_order,
    )
