"""Cycle accounting containers shared by the campaign engines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.emu.board import BoardModel


@dataclass
class CycleBreakdown:
    """Where the FPGA clock cycles of a campaign went.

    ``prologue`` — golden run / RAM preparation before the first fault;
    ``setup`` — per-fault mask programming / state scan-in / state load;
    ``run`` — emulation cycles executing the (golden+)faulty circuit;
    ``readback`` — verdict writes and end-of-run bookkeeping.
    """

    prologue: int = 0
    setup: int = 0
    run: int = 0
    readback: int = 0
    extra: Dict[str, int] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return (
            self.prologue
            + self.setup
            + self.run
            + self.readback
            + sum(self.extra.values())
        )

    def add(self, other: "CycleBreakdown") -> None:
        """Accumulate another breakdown into this one."""
        self.prologue += other.prologue
        self.setup += other.setup
        self.run += other.run
        self.readback += other.readback
        for key, value in other.extra.items():
            self.extra[key] = self.extra.get(key, 0) + value


@dataclass(frozen=True)
class EmulationTiming:
    """A cycle count turned into wall-clock figures on a board."""

    cycles: int
    board: BoardModel
    num_faults: int

    @property
    def seconds(self) -> float:
        """Total emulation time."""
        return self.board.cycles_to_seconds(self.cycles)

    @property
    def milliseconds(self) -> float:
        """Total emulation time in ms (Table 2's first column)."""
        return self.seconds * 1e3

    @property
    def us_per_fault(self) -> float:
        """Average speed in microseconds per fault (Table 2's second
        column)."""
        if self.num_faults == 0:
            return 0.0
        return self.seconds * 1e6 / self.num_faults

    @property
    def cycles_per_fault(self) -> float:
        """Average FPGA cycles per fault."""
        if self.num_faults == 0:
            return 0.0
        return self.cycles / self.num_faults
