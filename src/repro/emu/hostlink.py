"""Baselines: host-driven emulation and software fault simulation.

The paper quotes two baselines for the speed comparison (our experiment
C2): the host-in-the-loop FPGA injector of Civera et al. 2001 (~100
microseconds per fault, dominated by host<->board transactions) and plain
software fault simulation (~1300 microseconds per fault). Both are
modelled here — the host-link model from explicit per-fault transaction
counts, the simulation baseline both analytically and by *measuring* our
own serial fault simulator.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.emu.board import RC1000, BoardModel
from repro.errors import CampaignError
from repro.faults.model import SeuFault
from repro.netlist.netlist import Netlist
from repro.sim.cache import compiled_for, golden_for
from repro.sim.cycle import replay_single_fault
from repro.sim.vectors import Testbench


@dataclass
class HostLinkModel:
    """Timing model of a host-driven FPGA injection campaign [2].

    Per fault the host must (a) send the injection command (which flop,
    which cycle), (b) let the board run — or, in the slower variants,
    feed stimuli cycle by cycle — and (c) read the verdict back. Each
    interaction costs one bus transaction; the defaults reflect a PCI
    board of the paper's era and land at the ~100 us/fault the paper
    quotes for [2].
    """

    board: BoardModel = RC1000
    transactions_per_fault: int = 2  # inject command + result readback
    per_vector_io: bool = False  # stimuli applied from the host each cycle

    def seconds_per_fault(self, num_cycles: int) -> float:
        """Average time per fault for a ``num_cycles``-long testbench."""
        transaction = self.board.pci_transaction_us * 1e-6
        run = self.board.cycles_to_seconds(num_cycles)
        if self.per_vector_io:
            # one transaction per applied vector: the fully host-driven mode
            return num_cycles * transaction + run
        return self.transactions_per_fault * transaction + run

    def campaign_seconds(self, num_faults: int, num_cycles: int) -> float:
        """Whole-campaign time."""
        if num_faults <= 0:
            raise CampaignError("campaign needs at least one fault")
        return num_faults * self.seconds_per_fault(num_cycles)

    def us_per_fault(self, num_cycles: int) -> float:
        """Average speed in us/fault (the paper's unit)."""
        return self.seconds_per_fault(num_cycles) * 1e6


@dataclass
class SoftwareFaultSimModel:
    """Software fault-simulation baseline.

    Two modes:

    * **analytic** — ``gates x cycles-simulated x seconds-per-gate-eval``
      with a per-gate-evaluation cost typical of the paper era
      (event-driven commercial simulators, ~5-10 ns effective per gate
      evaluation after event filtering);
    * **measured** — wall-clock of our own compiled serial replay over a
      fault sample, which is an *actual* software fault simulator.
    """

    seconds_per_gate_eval: float = 8e-9

    def seconds_per_fault_analytic(self, netlist: Netlist, num_cycles: int) -> float:
        """Analytic per-fault simulation time (full-testbench replay)."""
        return netlist.num_gates * num_cycles * self.seconds_per_gate_eval

    def seconds_per_fault_measured(
        self,
        netlist: Netlist,
        testbench: Testbench,
        sample: Sequence[SeuFault],
        repetitions: int = 1,
    ) -> float:
        """Measure our serial fault simulator over a fault sample."""
        if not sample:
            raise CampaignError("need at least one fault to measure")
        compiled = compiled_for(netlist)
        golden = golden_for(compiled, testbench)
        started = time.perf_counter()
        for _ in range(max(1, repetitions)):
            for fault in sample:
                replay_single_fault(
                    compiled, testbench, fault.flop_index, fault.cycle, golden
                )
        elapsed = time.perf_counter() - started
        return elapsed / (len(sample) * max(1, repetitions))


@dataclass(frozen=True)
class SpeedComparison:
    """One row of the speed-comparison table (experiment C2)."""

    method: str
    us_per_fault: float

    def speedup_vs(self, other: "SpeedComparison") -> float:
        """How many times faster ``self`` is than ``other``."""
        if self.us_per_fault == 0:
            return float("inf")
        return other.us_per_fault / self.us_per_fault


def reference_baselines(
    netlist: Netlist,
    num_cycles: int,
    board: Optional[BoardModel] = None,
) -> list:
    """The two paper baselines as :class:`SpeedComparison` rows."""
    host = HostLinkModel(board=board or RC1000)
    sim = SoftwareFaultSimModel()
    return [
        SpeedComparison(
            "fault simulation (software)",
            sim.seconds_per_fault_analytic(netlist, num_cycles) * 1e6,
        ),
        SpeedComparison(
            "host-driven emulation [2]", host.us_per_fault(num_cycles)
        ),
    ]
