"""Executable injection protocols on instrumented netlists.

The campaign engines (:mod:`repro.emu.campaign`) count cycles from the
oracle's observations; this module is the other half of the story: it
*drives the instrumented netlists themselves* through each technique's
hardware protocol, clock edge by clock edge, acting as the emulation
controller. It exists for two reasons:

1. **Verification** — the test suite injects faults through these drivers
   and checks that the instrumented hardware produces exactly the verdict
   the functional oracle predicts (hardware == model);
2. **Fidelity** — it demonstrates that the instrumented netlists are
   complete, working designs, not just area mock-ups.

The drivers are pure-Python reference implementations and therefore slow;
production grading goes through :func:`repro.sim.parallel.grade_faults`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.emu.instrument.base import InstrumentedCircuit, grid_shape
from repro.errors import CampaignError
from repro.faults.classify import FaultClass
from repro.faults.model import SeuFault
from repro.netlist.netlist import Netlist
from repro.sim.compile import compile_netlist
from repro.sim.cycle import CycleSimulator, GoldenTrace, run_golden
from repro.sim.vectors import Testbench


@dataclass
class ProtocolOutcome:
    """What one protocol-level injection observed."""

    verdict: FaultClass
    fail_cycle: int  # first output mismatch, -1 if none
    emulation_cycles: int  # FPGA clock edges the protocol spent


class _Driver:
    """Shared machinery: builds input words for the instrumented netlist."""

    def __init__(self, instrumented: InstrumentedCircuit, testbench: Testbench):
        self.instrumented = instrumented
        self.testbench = testbench
        self.netlist: Netlist = instrumented.netlist
        self.compiled = compile_netlist(self.netlist)
        self._input_position: Dict[str, int] = {
            net: index for index, net in enumerate(self.netlist.inputs)
        }
        self._original_positions = [
            self._input_position[net] for net in instrumented.original.inputs
        ]
        index_of_output = {
            net: pos for pos, net in enumerate(self.netlist.outputs)
        }
        self._original_output_mask = 0
        self._original_output_positions = []
        for net in instrumented.original.outputs:
            self._original_output_positions.append(index_of_output[net])
        self.golden: GoldenTrace = run_golden(
            instrumented.original, testbench
        )

    def input_word(self, cycle_vector: int, controls: Dict[str, int]) -> int:
        """Pack original stimulus bits + control bits into one word."""
        word = 0
        for source_bit, position in enumerate(self._original_positions):
            if (cycle_vector >> source_bit) & 1:
                word |= 1 << position
        for net, value in controls.items():
            if value:
                word |= 1 << self._input_position[net]
        return word

    def original_outputs(self, output_word: int) -> int:
        """Extract the original circuit's output bits from the
        instrumented netlist's output word."""
        value = 0
        for bit, position in enumerate(self._original_output_positions):
            if (output_word >> position) & 1:
                value |= 1 << bit
        return value

    def mask_address_controls(self, prefix: str, flop_index: int) -> Dict[str, int]:
        """Row/col address bits selecting ``flop_index`` in the mask grid."""
        rows, _cols = grid_shape(self.instrumented.num_original_flops)
        row, col = flop_index % rows, flop_index // rows
        controls: Dict[str, int] = {}
        bit = 0
        while f"{prefix}_row[{bit}]" in self._input_position:
            controls[f"{prefix}_row[{bit}]"] = (row >> bit) & 1
            bit += 1
        bit = 0
        while f"{prefix}_col[{bit}]" in self._input_position:
            controls[f"{prefix}_col[{bit}]"] = (col >> bit) & 1
            bit += 1
        return controls


# ---------------------------------------------------------------------------
# mask-scan
# ---------------------------------------------------------------------------
def drive_mask_scan(
    instrumented: InstrumentedCircuit,
    testbench: Testbench,
    fault: SeuFault,
    driver: Optional[_Driver] = None,
) -> ProtocolOutcome:
    """Execute one mask-scan injection on the instrumented netlist.

    Protocol: clear the mask array, program the target flop's mask bit
    through the address decoder, replay the testbench from cycle 0 with
    ``inject`` pulsed at the fault cycle, compare outputs against the
    golden trace every cycle, and resolve silent/latent from the final
    state.
    """
    if instrumented.technique != "mask_scan":
        raise CampaignError("drive_mask_scan needs a mask-scan instrument")
    driver = driver or _Driver(instrumented, testbench)
    simulator = CycleSimulator(driver.compiled)

    spent = 0
    # 1. clear the mask array
    simulator.step(driver.input_word(0, {"ms_rst": 1}))
    spent += 1
    # 2. program the target mask bit
    controls = driver.mask_address_controls("ms", fault.flop_index)
    controls["ms_set"] = 1
    simulator.step(driver.input_word(0, controls))
    spent += 1

    # The two programming steps advanced the circuit flops; restore reset
    # state (hardware holds the circuit in reset while programming).
    _reset_circuit_flops(simulator, instrumented)

    fail_cycle = -1
    for cycle, vector in enumerate(testbench.vectors):
        inject_now = 1 if cycle == fault.cycle else 0
        outputs = simulator.step(
            driver.input_word(vector, {"ms_inject": inject_now})
        )
        spent += 1
        observed = driver.original_outputs(outputs)
        if observed != driver.golden.outputs[cycle]:
            fail_cycle = cycle
            break

    if fail_cycle != -1:
        return ProtocolOutcome(FaultClass.FAILURE, fail_cycle, spent)
    # final-state comparator (combinational in hardware)
    final = _circuit_state(simulator, instrumented)
    if final == driver.golden.final_state():
        return ProtocolOutcome(FaultClass.SILENT, -1, spent)
    return ProtocolOutcome(FaultClass.LATENT, -1, spent)


# ---------------------------------------------------------------------------
# state-scan
# ---------------------------------------------------------------------------
def drive_state_scan(
    instrumented: InstrumentedCircuit,
    testbench: Testbench,
    fault: SeuFault,
    driver: Optional[_Driver] = None,
) -> ProtocolOutcome:
    """Execute one state-scan injection on the instrumented netlist.

    Protocol: serially scan the faulty state (golden state at the fault
    cycle with the target bit flipped) into the shadow chain, pulse
    ``load`` to parallel-transfer it into the circuit flops, then run the
    remaining testbench cycles with output compare.
    """
    if instrumented.technique != "state_scan":
        raise CampaignError("drive_state_scan needs a state-scan instrument")
    driver = driver or _Driver(instrumented, testbench)
    simulator = CycleSimulator(driver.compiled)
    count = instrumented.num_original_flops
    num_chains = instrumented.num_chains

    from repro.emu.instrument.statescan import chain_of
    from repro.util.bitops import ceil_div

    faulty_state = driver.golden.states[fault.cycle] ^ (1 << fault.flop_index)
    spent = 0
    # 1. scan all chains in parallel, deepest chain position first
    # (shadow[first-of-chain] is nearest its scan-in, so the bit for the
    # highest-index flop of each chain goes first).
    chain_length = ceil_div(count, num_chains)
    chain_bits: dict = {chain: [] for chain in range(num_chains)}
    for position in range(count):
        chain, _ = chain_of(position, count, num_chains)
        chain_bits[chain].append((faulty_state >> position) & 1)

    def si_port(chain: int) -> str:
        return "ss_si" if num_chains == 1 else f"ss_si[{chain}]"

    for step_index in range(chain_length):
        controls = {"ss_shift": 1}
        for chain in range(num_chains):
            bits = chain_bits[chain]
            # A bit fed at step s ends up at chain position
            # (chain_length - 1 - s) after all shifts; short chains get
            # their padding first so the real bits land at 0..len-1.
            offset = chain_length - 1 - step_index
            controls[si_port(chain)] = bits[offset] if offset < len(bits) else 0
        simulator.step(driver.input_word(0, controls))
        spent += 1
    # 2. parallel load into the circuit flops
    simulator.step(driver.input_word(0, {"ss_load": 1}))
    spent += 1

    fail_cycle = -1
    for cycle in range(fault.cycle, testbench.num_cycles):
        outputs = simulator.step(
            driver.input_word(testbench.vectors[cycle], {})
        )
        spent += 1
        observed = driver.original_outputs(outputs)
        if observed != driver.golden.outputs[cycle]:
            fail_cycle = cycle
            break

    if fail_cycle != -1:
        return ProtocolOutcome(FaultClass.FAILURE, fail_cycle, spent)
    final = _circuit_state(simulator, instrumented)
    if final == driver.golden.final_state():
        return ProtocolOutcome(FaultClass.SILENT, -1, spent)
    return ProtocolOutcome(FaultClass.LATENT, -1, spent)


# ---------------------------------------------------------------------------
# time-multiplexed
# ---------------------------------------------------------------------------
def drive_time_mux(
    instrumented: InstrumentedCircuit,
    testbench: Testbench,
    fault: SeuFault,
    driver: Optional[_Driver] = None,
) -> ProtocolOutcome:
    """Execute one time-multiplexed injection on the instrumented netlist.

    Protocol: advance the golden flops to the fault cycle (golden phases
    only), checkpoint into the STATE flops, program the mask, pulse
    ``load_state``+``inject`` to start the faulty run from the flipped
    checkpoint, then interleave golden/faulty phases; stop at the first
    output mismatch (failure) or when ``state_diff`` returns to 0
    (silent) or at testbench end (latent).
    """
    if instrumented.technique != "time_multiplexed":
        raise CampaignError("drive_time_mux needs a time-mux instrument")
    driver = driver or _Driver(instrumented, testbench)
    simulator = CycleSimulator(driver.compiled)
    diff_position = instrumented.netlist.outputs.index(
        instrumented.control_outputs["state_diff"]
    )

    spent = 0
    # 0. clear the mask array, program the target bit
    simulator.step(driver.input_word(0, {"tm_rst": 1}))
    controls = driver.mask_address_controls("tm", fault.flop_index)
    controls["tm_set"] = 1
    simulator.step(driver.input_word(0, controls))
    spent += 2

    # 1. golden-only phases up to the fault cycle (checkpoint at t).
    for cycle in range(fault.cycle):
        simulator.step(
            driver.input_word(testbench.vectors[cycle], {"tm_ena_golden": 1})
        )
        spent += 1
    # 2. checkpoint the golden state, then load the flipped checkpoint
    # into the faulty flops.
    simulator.step(driver.input_word(0, {"tm_save_state": 1}))
    simulator.step(
        driver.input_word(0, {"tm_load_state": 1, "tm_inject": 1})
    )
    spent += 2

    fail_cycle = -1
    verdict: Optional[FaultClass] = None
    for cycle in range(fault.cycle, testbench.num_cycles):
        vector = testbench.vectors[cycle]
        golden_out = simulator.step(
            driver.input_word(vector, {"tm_ena_golden": 1})
        )
        spent += 1
        # The golden-phase observation is the *aligned* comparison point:
        # both flop banks hold end-of-previous-cycle values here (during
        # the faulty phase the golden bank has already advanced one
        # cycle, so its state_diff reading is skewed by one cycle). The
        # controller therefore samples "fault disappeared" at the start
        # of each golden phase.
        if cycle > fault.cycle and not (golden_out >> diff_position) & 1:
            verdict = FaultClass.SILENT
            break
        faulty_out = simulator.step(
            driver.input_word(vector, {"tm_ena_faulty": 1})
        )
        spent += 1
        if driver.original_outputs(faulty_out) != driver.original_outputs(
            golden_out
        ):
            fail_cycle = cycle
            verdict = FaultClass.FAILURE
            break
    if verdict is None:
        # End of testbench: one idle observation (no enables, no state
        # change) resolves silent vs latent from the final alignment.
        final_out = simulator.step(driver.input_word(0, {}))
        spent += 1
        if not (final_out >> diff_position) & 1:
            verdict = FaultClass.SILENT
    if verdict is None:
        verdict = FaultClass.LATENT
    return ProtocolOutcome(verdict, fail_cycle, spent)


# ---------------------------------------------------------------------------
def _circuit_state(simulator: CycleSimulator, instrumented: InstrumentedCircuit) -> int:
    """Packed state of the *original* flops inside the instrumented
    netlist (instrument flops excluded), in original flop order."""
    names = [flop.name for flop in simulator.compiled.flops]
    state = simulator.get_state()
    packed = 0
    for position, name in enumerate(instrumented.flop_order):
        bit = (state >> names.index(name)) & 1
        packed |= bit << position
    return packed


def _reset_circuit_flops(
    simulator: CycleSimulator, instrumented: InstrumentedCircuit
) -> None:
    """Force the original circuit's flops back to their init values,
    leaving instrument flops (masks!) untouched."""
    names = [flop.name for flop in simulator.compiled.flops]
    inits = {flop.name: flop.init for flop in simulator.compiled.flops}
    state = simulator.get_state()
    for name in instrumented.flop_order:
        position = names.index(name)
        init = inits[name]
        init_bit = 0 if init not in (0, 1) else init
        state = (state & ~(1 << position)) | (init_bit << position)
    simulator.set_state(state)
