"""Cycle-accurate campaign engines.

Each engine models one technique's hardware protocol *per fault*, using
the functional oracle (:func:`repro.sim.parallel.grade_faults`) for the
circuit behaviour — which cycle the fault first corrupts an output
(``fail``), and which cycle its effect disappears (``vanish``). The engine
then counts exactly the FPGA clock cycles the autonomous controller would
spend, which is what the paper's Table 2 reports (time = cycles / 25 MHz).

Protocols (N = flip-flops, T = testbench cycles, fault injected at t):

* **mask-scan** — golden prologue ``T``; per fault: 2 cycles of mask
  programming (global clear + addressed set), replay from cycle 0 with
  the on-chip expected-output comparator, stop at ``min(fail+1, T)``,
  1 cycle verdict write. Silent vs latent comes from the final-state
  comparator (combinational, no extra cycles).
* **state-scan** — golden prologue ``T`` (streaming per-cycle states to
  RAM); per fault: ``N`` scan-in cycles, 1 parallel load, run the tail
  ``min(fail+1, T) - t``, 1 verdict write (the final-state serial compare
  overlaps the next fault's scan-in). Worse than mask-scan exactly when
  ``N`` dominates the average replay length — the paper's b14 case.
* **time-multiplexed** — no RAM prologue (the golden run happens on-chip,
  interleaved); the golden state is walked across the testbench once
  (2 cycles per testbench cycle, including the ``save_state``
  checkpoint); per fault: 2 cycles mask programming + 1 ``load_state``
  (which injects), then 2 FPGA cycles per emulated cycle until the fault
  is classified: ``stop = min(fail, vanish, T-1)``. The ``vanish`` term —
  detecting that the fault effect disappeared — is the early exit the
  other techniques cannot take, and the source of the order-of-magnitude
  win.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.emu.board import RC1000, BoardModel
from repro.emu.ram import RamLayout, ram_layout_for
from repro.emu.timing import CycleBreakdown, EmulationTiming
from repro.errors import CampaignError
from repro.faults.classify import FaultClass
from repro.faults.dictionary import FaultDictionary
from repro.faults.model import SeuFault, exhaustive_fault_list
from repro.netlist.netlist import Netlist
from repro.sim.parallel import DEFAULT_BACKEND, FaultGradingResult, grade_faults
from repro.sim.vectors import Testbench
from repro.util.bitops import ceil_div

#: fixed per-fault overhead cycles
MASK_PROGRAM_CYCLES = 2  # global clear + addressed set
VERDICT_WRITE_CYCLES = 1
STATE_LOAD_CYCLES = 1


@dataclass
class CampaignResult:
    """Everything one emulated campaign produces."""

    technique: str
    circuit_name: str
    num_faults: int
    num_cycles: int
    breakdown: CycleBreakdown
    timing: EmulationTiming
    dictionary: FaultDictionary
    ram: RamLayout

    @property
    def total_cycles(self) -> int:
        return self.breakdown.total

    def summary(self) -> str:
        """Text summary in the paper's Table 2 terms."""
        counts = self.dictionary.counts()
        return (
            f"{self.technique} on {self.circuit_name}: "
            f"{self.num_faults} faults, {self.total_cycles:,} cycles -> "
            f"{self.timing.milliseconds:.2f} ms "
            f"({self.timing.us_per_fault:.2f} us/fault) | "
            f"F/L/S = {counts[FaultClass.FAILURE]}/"
            f"{counts[FaultClass.LATENT]}/{counts[FaultClass.SILENT]}"
        )


def run_campaign(
    netlist: Netlist,
    testbench: Testbench,
    technique: str,
    board: BoardModel = RC1000,
    faults: Optional[Sequence[SeuFault]] = None,
    oracle: Optional[FaultGradingResult] = None,
    scan_chains: int = 1,
    engine: str = DEFAULT_BACKEND,
) -> CampaignResult:
    """Run one autonomous-emulation campaign and account its cycles.

    ``faults`` defaults to the complete single-fault set (every flop at
    every cycle). A precomputed ``oracle`` may be passed when several
    techniques are evaluated on the same circuit/testbench (the oracle is
    technique-independent); otherwise ``engine`` selects the grading
    backend (see :func:`repro.sim.backends.available_engines`).
    ``scan_chains`` (state-scan only) splits the shadow register into
    parallel chains, dividing the per-fault scan-in cost — our extension
    beyond the paper's single chain.
    """
    if faults is None:
        faults = exhaustive_fault_list(netlist, testbench.num_cycles)
    if oracle is None:
        oracle = grade_faults(netlist, testbench, faults, backend=engine)
    else:
        _validate_oracle(oracle, faults)
    if scan_chains < 1:
        raise CampaignError("scan_chains must be at least 1")

    breakdown = technique_breakdown(
        technique,
        fault_cycles=[fault.cycle for fault in oracle.faults],
        fail_cycles=oracle.fail_cycles,
        vanish_cycles=oracle.vanish_cycles,
        num_cycles=testbench.num_cycles,
        scan_in_cycles=scan_in_cost(netlist.num_ffs, scan_chains),
        persistent=any(fault.persistent for fault in faults),
    )

    ram = ram_layout_for(
        technique,
        num_inputs=len(netlist.inputs),
        num_outputs=len(netlist.outputs),
        num_flops=netlist.num_ffs,
        num_cycles=testbench.num_cycles,
        num_faults=len(faults),
    )
    timing = EmulationTiming(
        cycles=breakdown.total, board=board, num_faults=len(faults)
    )
    return CampaignResult(
        technique=technique,
        circuit_name=netlist.name,
        num_faults=len(faults),
        num_cycles=testbench.num_cycles,
        breakdown=breakdown,
        timing=timing,
        dictionary=oracle.to_dictionary(),
        ram=ram,
    )


def _fault_columns(faults: Sequence[SeuFault]):
    count = len(faults)
    cycles = np.fromiter(
        (fault.cycle for fault in faults), dtype=np.int64, count=count
    )
    flops = np.fromiter(
        (fault.flop_index for fault in faults), dtype=np.int64, count=count
    )
    return cycles, flops


def _validate_oracle(
    oracle: FaultGradingResult, faults: Sequence[SeuFault]
) -> None:
    """The oracle must grade exactly the given fault sequence, in order.

    A length check alone would let a mismatched fault list (different
    flops, different cycles, different order) silently produce a wrong
    dictionary and wrong cycle accounting. Identity is compared on the
    (cycle, flop_index) columns, vectorized — ``flop_name`` is derived
    labelling, not identity.
    """
    if len(oracle.faults) != len(faults):
        raise CampaignError(
            f"oracle covers {len(oracle.faults)} faults, campaign has "
            f"{len(faults)}"
        )
    if oracle.faults is faults:
        return
    graded_cycles, graded_flops = _fault_columns(oracle.faults)
    wanted_cycles, wanted_flops = _fault_columns(faults)
    mismatch = (graded_cycles != wanted_cycles) | (graded_flops != wanted_flops)
    if mismatch.any():
        index = int(np.argmax(mismatch))
        raise CampaignError(
            f"oracle fault {index} is {oracle.faults[index].describe()}, "
            f"campaign expects {faults[index].describe()}"
        )


def scan_in_cost(num_ffs: int, scan_chains: int) -> int:
    """Per-fault state-insertion cycles: the longest chain's length
    (N for the paper's single chain; ceil(N/K) for K parallel chains)."""
    if num_ffs == 0:
        return 0
    return ceil_div(num_ffs, min(scan_chains, num_ffs))


def technique_prologue(technique: str, num_cycles: int) -> CycleBreakdown:
    """The once-per-campaign cycles a technique spends before (or, for
    time-mux, interleaved with) the first fault.

    Kept separate from :func:`technique_per_fault_cycles` so a sharded
    runner can account each fault shard independently and add the
    prologue exactly once at merge time.
    """
    breakdown = CycleBreakdown()
    if technique in ("mask_scan", "state_scan"):
        breakdown.prologue = num_cycles  # golden run filling the RAM
    elif technique == "time_multiplexed":
        # Walking the golden state across the testbench: one golden phase
        # and one checkpoint slot per testbench cycle.
        breakdown.extra["golden_walk"] = 2 * num_cycles
    else:
        raise CampaignError(f"unknown technique {technique!r}")
    return breakdown


def technique_per_fault_cycles(
    technique: str,
    fault_cycles,
    fail_cycles,
    vanish_cycles,
    num_cycles: int,
    scan_in_cycles: int = 0,
    persistent: bool = False,
) -> CycleBreakdown:
    """Vectorized per-fault cycle accounting for one technique.

    Takes parallel sequences (injection cycle, fail cycle, vanish cycle —
    -1 for "never") and reduces them with numpy; at b14 scale the previous
    per-fault Python loops walked 34,400 faults per technique. The inputs
    may be any slice of a campaign's fault list, so shards account
    independently and their breakdowns sum to the serial result exactly
    (integer arithmetic throughout).

    ``persistent`` marks campaigns whose fault model re-applies a force
    every cycle (stuck-at, intermittent). Two protocol consequences:

    * **time-multiplexed** loses its disappearance early exit — a forced
      flop that momentarily matches the golden state can diverge again,
      so the on-chip detector cannot retire the fault; every persistent
      fault runs to its fail cycle or the end of the bench.
    * **state-scan** must re-insert the forced state every emulated
      cycle (the scanned-in corruption would otherwise be overwritten at
      the next clock), multiplying its run phase by ``1 + scan_in``
      cycles per emulated cycle — the per-cycle mask re-application cost
      the mask-based techniques get for free from their held mask flops.
    """
    injected = np.asarray(fault_cycles, dtype=np.int64)
    fail = np.asarray(fail_cycles, dtype=np.int64)
    vanish = np.asarray(vanish_cycles, dtype=np.int64)
    count = len(fail)
    breakdown = CycleBreakdown()
    if technique == "mask_scan":
        # Replay from cycle 0 with the on-chip comparator: stop one cycle
        # after the first mismatch, or run the whole testbench. The mask
        # flops hold the target (and, for persistent models, the force)
        # for the whole replay, so persistence costs no extra cycles.
        stop = np.where(fail < 0, num_cycles, np.minimum(fail + 1, num_cycles))
        breakdown.setup = MASK_PROGRAM_CYCLES * count
        breakdown.run = int(stop.sum())
        breakdown.readback = VERDICT_WRITE_CYCLES * count
    elif technique == "state_scan":
        stop = np.where(fail < 0, num_cycles, np.minimum(fail + 1, num_cycles))
        breakdown.setup = (scan_in_cycles + STATE_LOAD_CYCLES) * count
        run_cycles = stop - injected
        if persistent:
            run_cycles = run_cycles * (1 + scan_in_cycles)
        breakdown.run = int(run_cycles.sum())
        breakdown.readback = VERDICT_WRITE_CYCLES * count
    elif technique == "time_multiplexed":
        last = num_cycles - 1
        fail_stop = np.where(fail < 0, last, fail)
        if persistent:
            stop = np.minimum(fail_stop, last)
        else:
            stop = np.minimum(
                fail_stop, np.where(vanish < 0, last, vanish)
            )
            np.minimum(stop, last, out=stop)
        breakdown.setup = (MASK_PROGRAM_CYCLES + STATE_LOAD_CYCLES) * count
        breakdown.run = int(2 * (stop - injected + 1).sum())
        breakdown.readback = VERDICT_WRITE_CYCLES * count
    else:
        raise CampaignError(f"unknown technique {technique!r}")
    return breakdown


def technique_breakdown(
    technique: str,
    fault_cycles,
    fail_cycles,
    vanish_cycles,
    num_cycles: int,
    scan_in_cycles: int = 0,
    persistent: bool = False,
) -> CycleBreakdown:
    """Full campaign accounting: prologue + per-fault cycles."""
    breakdown = technique_prologue(technique, num_cycles)
    breakdown.add(
        technique_per_fault_cycles(
            technique,
            fault_cycles,
            fail_cycles,
            vanish_cycles,
            num_cycles,
            scan_in_cycles,
            persistent,
        )
    )
    return breakdown
