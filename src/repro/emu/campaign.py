"""Cycle-accurate campaign engines.

Each engine models one technique's hardware protocol *per fault*, using
the functional oracle (:func:`repro.sim.parallel.grade_faults`) for the
circuit behaviour — which cycle the fault first corrupts an output
(``fail``), and which cycle its effect disappears (``vanish``). The engine
then counts exactly the FPGA clock cycles the autonomous controller would
spend, which is what the paper's Table 2 reports (time = cycles / 25 MHz).

Protocols (N = flip-flops, T = testbench cycles, fault injected at t):

* **mask-scan** — golden prologue ``T``; per fault: 2 cycles of mask
  programming (global clear + addressed set), replay from cycle 0 with
  the on-chip expected-output comparator, stop at ``min(fail+1, T)``,
  1 cycle verdict write. Silent vs latent comes from the final-state
  comparator (combinational, no extra cycles).
* **state-scan** — golden prologue ``T`` (streaming per-cycle states to
  RAM); per fault: ``N`` scan-in cycles, 1 parallel load, run the tail
  ``min(fail+1, T) - t``, 1 verdict write (the final-state serial compare
  overlaps the next fault's scan-in). Worse than mask-scan exactly when
  ``N`` dominates the average replay length — the paper's b14 case.
* **time-multiplexed** — no RAM prologue (the golden run happens on-chip,
  interleaved); the golden state is walked across the testbench once
  (2 cycles per testbench cycle, including the ``save_state``
  checkpoint); per fault: 2 cycles mask programming + 1 ``load_state``
  (which injects), then 2 FPGA cycles per emulated cycle until the fault
  is classified: ``stop = min(fail, vanish, T-1)``. The ``vanish`` term —
  detecting that the fault effect disappeared — is the early exit the
  other techniques cannot take, and the source of the order-of-magnitude
  win.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.emu.board import RC1000, BoardModel
from repro.emu.ram import RamLayout, ram_layout_for
from repro.emu.timing import CycleBreakdown, EmulationTiming
from repro.errors import CampaignError
from repro.faults.classify import FaultClass
from repro.faults.dictionary import FaultDictionary
from repro.faults.model import SeuFault, exhaustive_fault_list
from repro.netlist.netlist import Netlist
from repro.sim.parallel import DEFAULT_BACKEND, FaultGradingResult, grade_faults
from repro.sim.vectors import Testbench

#: fixed per-fault overhead cycles
MASK_PROGRAM_CYCLES = 2  # global clear + addressed set
VERDICT_WRITE_CYCLES = 1
STATE_LOAD_CYCLES = 1


@dataclass
class CampaignResult:
    """Everything one emulated campaign produces."""

    technique: str
    circuit_name: str
    num_faults: int
    num_cycles: int
    breakdown: CycleBreakdown
    timing: EmulationTiming
    dictionary: FaultDictionary
    ram: RamLayout

    @property
    def total_cycles(self) -> int:
        return self.breakdown.total

    def summary(self) -> str:
        """Text summary in the paper's Table 2 terms."""
        counts = self.dictionary.counts()
        return (
            f"{self.technique} on {self.circuit_name}: "
            f"{self.num_faults} faults, {self.total_cycles:,} cycles -> "
            f"{self.timing.milliseconds:.2f} ms "
            f"({self.timing.us_per_fault:.2f} us/fault) | "
            f"F/L/S = {counts[FaultClass.FAILURE]}/"
            f"{counts[FaultClass.LATENT]}/{counts[FaultClass.SILENT]}"
        )


def run_campaign(
    netlist: Netlist,
    testbench: Testbench,
    technique: str,
    board: BoardModel = RC1000,
    faults: Optional[Sequence[SeuFault]] = None,
    oracle: Optional[FaultGradingResult] = None,
    scan_chains: int = 1,
    engine: str = DEFAULT_BACKEND,
) -> CampaignResult:
    """Run one autonomous-emulation campaign and account its cycles.

    ``faults`` defaults to the complete single-fault set (every flop at
    every cycle). A precomputed ``oracle`` may be passed when several
    techniques are evaluated on the same circuit/testbench (the oracle is
    technique-independent); otherwise ``engine`` selects the grading
    backend (see :func:`repro.sim.backends.available_engines`).
    ``scan_chains`` (state-scan only) splits the shadow register into
    parallel chains, dividing the per-fault scan-in cost — our extension
    beyond the paper's single chain.
    """
    if faults is None:
        faults = exhaustive_fault_list(netlist, testbench.num_cycles)
    if oracle is None:
        oracle = grade_faults(netlist, testbench, faults, backend=engine)
    elif len(oracle.faults) != len(faults):
        raise CampaignError("oracle does not cover the given fault list")
    if scan_chains < 1:
        raise CampaignError("scan_chains must be at least 1")

    if technique == "mask_scan":
        breakdown = _cycles_mask_scan(oracle, testbench.num_cycles)
    elif technique == "state_scan":
        from repro.util.bitops import ceil_div

        scan_cost = ceil_div(netlist.num_ffs, min(scan_chains, netlist.num_ffs))
        breakdown = _cycles_state_scan(
            oracle, testbench.num_cycles, scan_cost
        )
    elif technique == "time_multiplexed":
        breakdown = _cycles_time_multiplexed(oracle, testbench.num_cycles)
    else:
        raise CampaignError(f"unknown technique {technique!r}")

    ram = ram_layout_for(
        technique,
        num_inputs=len(netlist.inputs),
        num_outputs=len(netlist.outputs),
        num_flops=netlist.num_ffs,
        num_cycles=testbench.num_cycles,
        num_faults=len(faults),
    )
    timing = EmulationTiming(
        cycles=breakdown.total, board=board, num_faults=len(faults)
    )
    return CampaignResult(
        technique=technique,
        circuit_name=netlist.name,
        num_faults=len(faults),
        num_cycles=testbench.num_cycles,
        breakdown=breakdown,
        timing=timing,
        dictionary=oracle.to_dictionary(),
        ram=ram,
    )


def _stop_cycle(fail: int, num_cycles: int) -> int:
    """Replay length with the on-chip output comparator: stop one cycle
    after the first mismatch, or run the whole testbench."""
    if fail == -1:
        return num_cycles
    return min(fail + 1, num_cycles)


def _cycles_mask_scan(oracle: FaultGradingResult, num_cycles: int) -> CycleBreakdown:
    breakdown = CycleBreakdown()
    breakdown.prologue = num_cycles  # golden run filling the RAM
    for index, fault in enumerate(oracle.faults):
        del fault  # replay always starts from cycle 0
        breakdown.setup += MASK_PROGRAM_CYCLES
        breakdown.run += _stop_cycle(oracle.fail_cycles[index], num_cycles)
        breakdown.readback += VERDICT_WRITE_CYCLES
    return breakdown


def _cycles_state_scan(
    oracle: FaultGradingResult, num_cycles: int, scan_in_cycles: int
) -> CycleBreakdown:
    """``scan_in_cycles`` is the per-fault state-insertion cost: the
    longest chain's length (N for the paper's single chain)."""
    breakdown = CycleBreakdown()
    breakdown.prologue = num_cycles  # golden run streaming states to RAM
    for index, fault in enumerate(oracle.faults):
        stop = _stop_cycle(oracle.fail_cycles[index], num_cycles)
        breakdown.setup += scan_in_cycles + STATE_LOAD_CYCLES
        breakdown.run += stop - fault.cycle
        breakdown.readback += VERDICT_WRITE_CYCLES
    return breakdown


def _cycles_time_multiplexed(
    oracle: FaultGradingResult, num_cycles: int
) -> CycleBreakdown:
    breakdown = CycleBreakdown()
    # Walking the golden state across the testbench: one golden phase and
    # one checkpoint slot per testbench cycle.
    breakdown.extra["golden_walk"] = 2 * num_cycles
    for index, fault in enumerate(oracle.faults):
        fail = oracle.fail_cycles[index]
        vanish = oracle.vanish_cycles[index]
        stop_candidates = [num_cycles - 1]
        if fail != -1:
            stop_candidates.append(fail)
        if vanish != -1:
            stop_candidates.append(vanish)
        stop = min(stop_candidates)
        breakdown.setup += MASK_PROGRAM_CYCLES + STATE_LOAD_CYCLES
        breakdown.run += 2 * (stop - fault.cycle + 1)
        breakdown.readback += VERDICT_WRITE_CYCLES
    return breakdown
