"""Emulation board models.

The paper runs on a Celoxica RC1000 (Xilinx Virtex-2000E, 8 MB onboard
SRAM, 25 MHz emulation clock, PCI host interface). :class:`BoardModel`
captures the parameters the timing and RAM models need; absolute paper
times are cycle counts divided by the board clock, so the clock frequency
is the only knob that affects Table 2's absolute numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError
from repro.synth.area import DeviceModel, VIRTEX_2000E


@dataclass(frozen=True)
class BoardModel:
    """One emulation board.

    ``pci_transaction_us`` is the round-trip cost of one host<->board
    interaction (command or readback); ``pci_bandwidth_mbps`` the bulk
    transfer rate. Both only matter for the *host-driven* baseline and the
    start/end transfers of the autonomous system.
    """

    name: str
    clock_hz: float
    device: DeviceModel
    board_ram_kbits: float
    pci_transaction_us: float = 40.0
    pci_bandwidth_mbps: float = 33.0

    def cycles_to_seconds(self, cycles: int) -> float:
        """Convert an FPGA cycle count to seconds at the board clock."""
        return cycles / self.clock_hz

    def transfer_seconds(self, kbits: float) -> float:
        """Bulk-transfer time for ``kbits`` over the host link."""
        return (kbits * 1000.0) / (self.pci_bandwidth_mbps * 1e6)


#: The paper's board: Celoxica RC1000 with a Virtex-2000E and 8 MB SRAM.
RC1000 = BoardModel(
    name="Celoxica RC1000",
    clock_hz=25e6,
    device=VIRTEX_2000E,
    board_ram_kbits=8 * 1024 * 8.0,  # 8 MB expressed in kbits
)

#: Boards addressable by short name (campaign specs store the key, not
#: the model, so a spec stays a plain serializable dict).
BOARDS = {
    "rc1000": RC1000,
}


def board_by_name(name: str) -> BoardModel:
    """Resolve a registered board key (see :data:`BOARDS`)."""
    try:
        return BOARDS[name]
    except KeyError:
        raise ReproError(
            f"unknown board {name!r}; available: {', '.join(sorted(BOARDS))}"
        ) from None
