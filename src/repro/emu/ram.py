"""Emulation RAM layout.

The autonomous system keeps everything a campaign needs in RAM so the host
is only involved before and after the run (paper section II):

* **stimuli** — one input vector per testbench cycle (all techniques);
* **expected outputs** — the golden output vector per cycle, for the
  on-chip comparators (mask-scan and state-scan; time-mux computes the
  golden run on-chip, which is why its RAM budget is the smallest — the
  effect visible in the paper's Table 1 RAM column);
* **faulty states** — state-scan's per-fault insertion states (golden
  state at the injection cycle with the fault bit flipped); the dominant
  term, ~``faults x flops`` bits (7.2 Mbit for b14, matching the order of
  the paper's 7,289 figure);
* **results** — the 2-bit verdict per fault the host reads back.

Small regions are placed in on-FPGA block RAM, large ones in board SRAM,
mirroring the RC1000 arrangement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.errors import CampaignError
from repro.util.bitops import ceil_div


@dataclass(frozen=True)
class RamRegion:
    """One logically contiguous region of emulation RAM."""

    name: str
    bits: int
    location: str  # "fpga" (block RAM) or "board" (external SRAM)

    @property
    def kbits(self) -> float:
        return self.bits / 1000.0

    def words(self, width: int = 32) -> int:
        """Region size in ``width``-bit RAM words."""
        return ceil_div(self.bits, width)


@dataclass
class RamLayout:
    """The full RAM map of one campaign configuration."""

    technique: str
    regions: List[RamRegion] = field(default_factory=list)
    word_width: int = 32

    def _bits(self, location: str) -> int:
        return sum(r.bits for r in self.regions if r.location == location)

    @property
    def fpga_kbits(self) -> float:
        """On-chip block RAM demand (the paper's second RAM figure)."""
        return self._bits("fpga") / 1000.0

    @property
    def board_kbits(self) -> float:
        """External SRAM demand (dominant for state-scan)."""
        return self._bits("board") / 1000.0

    @property
    def total_kbits(self) -> float:
        return (self._bits("fpga") + self._bits("board")) / 1000.0

    def total_words(self) -> int:
        """Total size in RAM words of ``word_width`` bits."""
        return sum(r.words(self.word_width) for r in self.regions)

    def region(self, name: str) -> RamRegion:
        """Look up a region by name."""
        for candidate in self.regions:
            if candidate.name == name:
                return candidate
        raise CampaignError(f"no RAM region named {name!r}")

    def summary(self) -> str:
        """Multi-line text rendering of the layout."""
        lines = [f"RAM layout ({self.technique}):"]
        for region in self.regions:
            lines.append(
                f"  {region.name:<18} {region.kbits:10.1f} kbit  [{region.location}]"
            )
        lines.append(
            f"  {'total':<18} {self.total_kbits:10.1f} kbit "
            f"(fpga {self.fpga_kbits:.1f} / board {self.board_kbits:.1f})"
        )
        return "\n".join(lines)


def ram_layout_for(
    technique: str,
    num_inputs: int,
    num_outputs: int,
    num_flops: int,
    num_cycles: int,
    num_faults: int,
) -> RamLayout:
    """Compute the RAM map for one technique and campaign size."""
    if num_cycles <= 0 or num_faults <= 0:
        raise CampaignError("RAM layout needs positive cycle and fault counts")
    regions = [
        RamRegion("stimuli", num_cycles * num_inputs, "fpga"),
        RamRegion("results", 2 * num_faults, "board"),
    ]
    if technique in ("mask_scan", "state_scan"):
        regions.insert(
            1, RamRegion("expected_outputs", num_cycles * num_outputs, "fpga")
        )
    if technique == "mask_scan":
        # golden final state for the silent/latent decision, kept in a
        # controller register bank but accounted here as storage
        regions.append(RamRegion("golden_final_state", num_flops, "fpga"))
    if technique == "state_scan":
        regions.append(
            RamRegion("faulty_states", num_faults * num_flops, "board")
        )
        regions.append(
            RamRegion("golden_final_state_stream", num_flops, "fpga")
        )
    if technique not in ("mask_scan", "state_scan", "time_multiplexed"):
        raise CampaignError(f"unknown technique {technique!r}")
    return RamLayout(technique=technique, regions=regions)
