"""Plain-text table rendering for experiment reports.

The evaluation harness prints tables in the same row/column layout as the
paper's Table 1 and Table 2; this module provides the small formatter they
share. No third-party dependency — reports must render anywhere.
"""

from __future__ import annotations

from typing import Sequence


def format_si(value: float, unit: str = "", precision: int = 2) -> str:
    """Format ``value`` with an SI prefix (e.g. ``3400 -> '3.40 k'``).

    Used for RAM bit counts and fault rates in reports.
    """
    prefixes = [(1e9, "G"), (1e6, "M"), (1e3, "k"), (1.0, ""), (1e-3, "m"), (1e-6, "u")]
    for scale, prefix in prefixes:
        if abs(value) >= scale or (scale == 1e-6):
            return f"{value / scale:.{precision}f} {prefix}{unit}".rstrip()
    return f"{value:.{precision}f} {unit}".rstrip()


class Table:
    """A minimal column-aligned text table.

    >>> t = Table(["technique", "LUTs"])
    >>> t.add_row(["mask-scan", 1657])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, headers: Sequence[str], title: str = ""):
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: list[list[str]] = []

    def add_row(self, cells: Sequence[object]) -> None:
        """Append a row; cells are stringified with ``str``."""
        row = [str(cell) for cell in cells]
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(row)

    def _column_widths(self) -> list[int]:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        return widths

    def render(self) -> str:
        """Render the table as an aligned multi-line string."""
        widths = self._column_widths()
        lines: list[str] = []
        if self.title:
            lines.append(self.title)
        header = " | ".join(h.ljust(w) for h, w in zip(self.headers, widths))
        lines.append(header)
        lines.append("-+-".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
