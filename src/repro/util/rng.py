"""Deterministic random number generation.

Every stochastic choice in the library (stimulus generation, fault sampling,
synthetic circuit generation) goes through :class:`DeterministicRng` so that
experiments are exactly reproducible from a seed, which the benchmark
harness relies on when comparing against the paper's numbers.
"""

from __future__ import annotations

import random
from typing import Sequence, TypeVar

T = TypeVar("T")


class DeterministicRng:
    """A seeded random source with the handful of draws the library needs.

    Thin wrapper over :class:`random.Random`; exists so call sites never
    touch the global ``random`` module and so the seed travels with the
    object in reports.
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._rng = random.Random(seed)

    def bit(self, probability_of_one: float = 0.5) -> int:
        """Draw a single bit; ``probability_of_one`` biases toward 1."""
        return 1 if self._rng.random() < probability_of_one else 0

    def word(self, width: int, probability_of_one: float = 0.5) -> int:
        """Draw a ``width``-bit word with independently biased bits."""
        value = 0
        for position in range(width):
            if self._rng.random() < probability_of_one:
                value |= 1 << position
        return value

    def integer(self, low: int, high: int) -> int:
        """Uniform integer in the inclusive range [low, high]."""
        return self._rng.randint(low, high)

    def choice(self, options: Sequence[T]) -> T:
        """Pick one element of a non-empty sequence."""
        return self._rng.choice(options)

    def sample(self, population: Sequence[T], count: int) -> list[T]:
        """Sample ``count`` distinct elements without replacement."""
        return self._rng.sample(population, count)

    def shuffle(self, items: list) -> None:
        """Shuffle a list in place."""
        self._rng.shuffle(items)

    def fork(self, label: str) -> "DeterministicRng":
        """Derive an independent stream keyed by ``label``.

        Forking keeps unrelated consumers (e.g. stimulus vs fault sampling)
        from perturbing each other's sequences when one of them changes how
        many draws it makes. The derivation uses a stable hash (zlib.crc32),
        never Python's salted ``hash()``, so forked streams are identical
        across processes and runs.
        """
        import zlib

        digest = zlib.crc32(f"{self.seed}:{label}".encode("utf-8"))
        return DeterministicRng(digest & 0x7FFFFFFF)
