"""Bit-manipulation helpers used across the library.

The simulators pack one fault per bit position inside machine words, and the
netlist/RTL layers constantly convert between integers and bit vectors, so
these helpers are deliberately tiny and allocation-free where possible.
"""

from __future__ import annotations

from typing import Iterator, Sequence


def clog2(value: int) -> int:
    """Return ``ceil(log2(value))``; the number of bits needed to count
    ``value`` distinct states.

    ``clog2(1)`` is 0 (a single state needs no bits). Raises ``ValueError``
    for non-positive inputs.
    """
    if value <= 0:
        raise ValueError(f"clog2 requires a positive value, got {value}")
    return (value - 1).bit_length()


def ceil_div(numerator: int, denominator: int) -> int:
    """Integer division rounding toward positive infinity."""
    if denominator <= 0:
        raise ValueError(f"denominator must be positive, got {denominator}")
    return -(-numerator // denominator)


def mask(width: int) -> int:
    """Return an integer with the ``width`` least-significant bits set."""
    if width < 0:
        raise ValueError(f"width must be non-negative, got {width}")
    return (1 << width) - 1


def bit_count(value: int) -> int:
    """Population count of a non-negative integer."""
    if value < 0:
        raise ValueError("bit_count requires a non-negative integer")
    return bin(value).count("1")


def iter_set_bits(value: int) -> Iterator[int]:
    """Yield the positions of the set bits of ``value``, lowest first."""
    if value < 0:
        raise ValueError("iter_set_bits requires a non-negative integer")
    position = 0
    while value:
        if value & 1:
            yield position
        value >>= 1
        position += 1


def bits_from_int(value: int, width: int) -> list[int]:
    """Expand ``value`` into a list of ``width`` bits, LSB first."""
    if value < 0:
        raise ValueError("bits_from_int requires a non-negative integer")
    if value >> width:
        raise ValueError(f"value {value} does not fit in {width} bits")
    return [(value >> i) & 1 for i in range(width)]


def bits_to_int(bits: Sequence[int]) -> int:
    """Pack a bit sequence (LSB first) into an integer."""
    value = 0
    for index, bit in enumerate(bits):
        if bit not in (0, 1):
            raise ValueError(f"bit {index} is {bit!r}, expected 0 or 1")
        value |= bit << index
    return value
