"""Small shared utilities: bit manipulation, deterministic RNG, tables."""

from repro.util.bitops import (
    bit_count,
    bits_from_int,
    bits_to_int,
    ceil_div,
    clog2,
    iter_set_bits,
    mask,
)
from repro.util.rng import DeterministicRng
from repro.util.tables import Table, format_si

__all__ = [
    "DeterministicRng",
    "Table",
    "bit_count",
    "bits_from_int",
    "bits_to_int",
    "ceil_div",
    "clog2",
    "format_si",
    "iter_set_bits",
    "mask",
]
