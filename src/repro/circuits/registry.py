"""Name-based circuit lookup for examples, tests and benchmarks."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.errors import ReproError
from repro.netlist.netlist import Netlist

_REGISTRY: Dict[str, Callable[[], Netlist]] = {}


def _register(name: str, factory: Callable[[], Netlist]) -> None:
    _REGISTRY[name] = factory


def _populate() -> None:
    if _REGISTRY:
        return
    from repro.circuits import generators
    from repro.circuits.itc99 import (
        build_b01,
        build_b02,
        build_b03,
        build_b04,
        build_b06,
        build_b09,
        build_b14,
    )

    _register("b01", build_b01)
    _register("b02", build_b02)
    _register("b03", build_b03)
    _register("b04", build_b04)
    _register("b06", build_b06)
    _register("b09", build_b09)
    _register("b14", build_b14)
    _register("counter_bank", generators.build_counter_bank)
    _register("lfsr", generators.build_lfsr)
    _register("pipeline", generators.build_pipeline)
    _register("fsm_grid", generators.build_fsm_grid)


def available_circuits() -> List[str]:
    """Names accepted by :func:`build_circuit`."""
    _populate()
    return sorted(_REGISTRY)


def circuit_source_path(name: str) -> Optional[str]:
    """The netlist file behind a ``file:``/``corpus:`` circuit name, or
    ``None`` for built circuits. Campaign specs content-hash this file
    into their oracle identity. ``hardened:<scheme>:<base>`` delegates to
    its base circuit — the transform is deterministic, so the base file
    pins the hardened netlist too."""
    if name.startswith("hardened:"):
        from repro.hardening import split_hardened_name

        return circuit_source_path(split_hardened_name(name)[1])
    if name.startswith("file:"):
        return name.split(":", 1)[1]
    if name.startswith("corpus:"):
        from repro.frontend.corpus import corpus_path

        return str(corpus_path(name.split(":", 1)[1]))
    return None


def build_circuit(name: str) -> Netlist:
    """Build a registered circuit by name.

    Besides the fixed registry, three parameterized families are
    accepted:

    * ``proc:<N>`` — :func:`repro.circuits.generators.build_scaled_processor`
      with an ``N``-flop budget (the crossover sweep's circuit family);
    * ``file:<path>`` — any netlist file the frontend can import
      (``.bench``, BLIF, ``.bnet``; format auto-detected);
    * ``corpus:<name>`` — a bundled benchmark from
      :mod:`repro.frontend.corpus` (e.g. ``corpus:s298``);
    * ``hardened:<scheme>[@<flop>+<flop>...]:<base>`` — any of the above
      protected by a :mod:`repro.hardening` transform, over all flops
      (``hardened:tmr:b04``, ``hardened:dwc:corpus:s298``) or a
      selective subset (``hardened:tmr@state_reg+count0:b04``). The base
      may itself be a ``hardened:`` name, composing mixed protections
      (``hardened:tmr@ff1:hardened:parity@ff2+ff3:b04``).
    """
    _populate()
    if name.startswith("hardened:"):
        from repro.hardening import apply_hardening, parse_hardened_name

        scheme, flops, base = parse_hardened_name(name)
        return apply_hardening(scheme, build_circuit(base), flops=flops)
    if name.startswith("proc:"):
        from repro.circuits import generators

        budget = name.split(":", 1)[1]
        if not budget.isdigit() or int(budget) <= 0:
            raise ReproError(
                f"bad parameterized circuit {name!r}; expected proc:<flops>"
            )
        return generators.build_scaled_processor(int(budget))
    if name.startswith("file:"):
        from repro import frontend

        return frontend.load_netlist_file(name.split(":", 1)[1])
    if name.startswith("corpus:"):
        from repro.frontend.corpus import load_corpus_circuit

        return load_corpus_circuit(name.split(":", 1)[1])
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ReproError(
            f"unknown circuit {name!r}; available: {', '.join(available_circuits())}"
            " (plus the parameterized proc:<flops>, corpus:<name>, "
            "file:<path> and hardened:<scheme>:<circuit> families)"
        ) from None
    return factory()
