"""Parametric synthetic circuits.

The crossover experiment (paper's in-text claim C3: state-scan wins when
testbench cycles exceed the flip-flop count) needs circuits whose flip-flop
count is a free parameter; these generators produce families of realistic
structures at any size.
"""

from __future__ import annotations

from repro.errors import ElaborationError
from repro.netlist.netlist import Netlist
from repro.rtl import RtlModule, cat, const, mux, reduce_xor
from repro.util.bitops import clog2


def build_counter_bank(num_counters: int = 4, width: int = 8) -> Netlist:
    """A bank of enabled counters with a comparator tree.

    FF count = ``num_counters * width``. Counters only change when
    enabled, so many upsets persist (latent-heavy fault profile).
    """
    if num_counters < 1 or width < 2:
        raise ElaborationError("counter bank needs >=1 counters of width >=2")
    m = RtlModule(f"ctrbank_{num_counters}x{width}")
    enables = [m.input(f"en{i}", 1) for i in range(num_counters)]
    counters = [
        m.register(f"ctr{i}", width, init=i % (1 << width))
        for i in range(num_counters)
    ]
    one = const(width, 1)
    for counter, enable in zip(counters, enables):
        m.next(counter, mux(enable[0], counter, counter + one))
    # Outputs: low bits of each counter + pairwise equality flags.
    for index, counter in enumerate(counters):
        m.output(f"low{index}", counter[0:2])
    for index in range(num_counters - 1):
        m.output(f"eq{index}", counters[index] == counters[index + 1])
    return m.elaborate()


def build_lfsr(width: int = 16) -> Netlist:
    """A Galois-style LFSR with a parity output.

    FF count = ``width``. Every state bit shifts through the feedback
    path, so upsets rarely vanish — failure-heavy fault profile.
    """
    if width < 4:
        raise ElaborationError("lfsr width must be >= 4")
    m = RtlModule(f"lfsr_{width}")
    seed_in = m.input("seed_in", 1)
    state = m.register("state", width, init=1)
    feedback = state[width - 1] ^ seed_in
    # Taps at fixed small offsets (maximal polynomials differ per width;
    # any dense feedback serves the purpose here).
    shifted = cat(feedback, state[0 : width - 1])
    tapped = shifted ^ cat(
        const(2, 0), state[width - 1].zext(width - 2)
    )
    m.next(state, tapped)
    m.output("serial", state[width - 1])
    m.output("parity", reduce_xor(state))
    return m.elaborate()


def build_pipeline(stages: int = 4, width: int = 8) -> Netlist:
    """A feed-forward arithmetic pipeline.

    FF count = ``stages * width``. Data flushes through in ``stages``
    cycles, so every upset either reaches an output quickly (failure) or
    is flushed out (silent) — the profile where time-mux early termination
    shines.
    """
    if stages < 1 or width < 2:
        raise ElaborationError("pipeline needs >=1 stages of width >=2")
    m = RtlModule(f"pipe_{stages}x{width}")
    data = m.input("data", width)
    registers = [m.register(f"stage{i}", width, init=0) for i in range(stages)]
    previous = data
    for index, register in enumerate(registers):
        if index % 2 == 0:
            m.next(register, previous + const(width, (index + 1) % (1 << width)))
        else:
            m.next(register, previous ^ cat(previous[1:width], previous[0]))
        previous = register
    m.output("result", registers[-1])
    return m.elaborate()


def build_fsm_grid(num_machines: int = 4, state_bits: int = 3) -> Netlist:
    """A row of coupled FSMs: each machine's advance is gated by its left
    neighbour, giving long fault-propagation chains (latent-prone).

    FF count = ``num_machines * state_bits``.
    """
    if num_machines < 1 or state_bits < 2:
        raise ElaborationError("fsm grid needs >=1 machines of >=2 state bits")
    m = RtlModule(f"fsmgrid_{num_machines}x{state_bits}")
    step = m.input("step", 1)
    machines = [
        m.register(f"fsm{i}", state_bits, init=0) for i in range(num_machines)
    ]
    one = const(state_bits, 1)
    gate = step
    for index, machine in enumerate(machines):
        advance = gate[0] if index == 0 else (gate & step)[0]
        m.next(machine, mux(advance, machine, machine + one))
        gate = machine == const(state_bits, (1 << state_bits) - 1)
    m.output("done", gate)
    m.output("tip", machines[-1])
    return m.elaborate()


def build_scaled_processor(ff_budget: int) -> Netlist:
    """A b14-flavoured datapath sized to roughly ``ff_budget`` flip-flops.

    Used by sweeps that vary circuit size while keeping a processor-like
    fault profile: an accumulator, a rotating register file and an FSM,
    with widths derived from the budget.
    """
    if ff_budget < 16:
        raise ElaborationError("scaled processor needs a budget of >= 16 flops")
    # Budget split: 2 wide registers + file of 4 + pc + 3-bit state.
    width = max(4, ff_budget // 8)
    pc_width = max(4, clog2(max(16, width * 4)))
    m = RtlModule(f"proc_{ff_budget}")
    data_in = m.input("data_in", width)
    acc = m.register("acc", width, init=0)
    breg = m.register("breg", width, init=0)
    file_registers = [m.register(f"r{i}", width, init=0) for i in range(4)]
    pc = m.register("pc", pc_width, init=0)
    state = m.register("state", 3, init=0)

    fetch = state == const(3, 0)
    execute = state == const(3, 1)
    write = state == const(3, 2)
    m.next(
        state,
        mux(fetch[0], mux(execute[0], const(3, 0), const(3, 2)), const(3, 1)),
    )
    opcode = data_in[0:2]
    m.next(pc, mux(fetch[0], pc, pc + const(pc_width, 1)))
    alu = mux(
        opcode[0],
        mux(opcode[1], acc ^ breg, acc + breg),
        mux(opcode[1], acc - breg, acc & breg),
    )
    m.next(acc, mux(execute[0], acc, alu))
    m.next(breg, mux((execute & (data_in[2] == const(1, 1)))[0], breg, data_in))
    file_select = data_in[width - 2 : width]
    for index, register in enumerate(file_registers):
        select = write & (file_select == const(2, index))
        m.next(register, mux(select[0], register, acc))
    m.output("acc_out", acc[0 : min(width, 8)])
    m.output("pc_out", pc[0 : min(pc_width, 8)])
    m.output("flag", file_registers[0] == file_registers[1])
    return m.elaborate()
