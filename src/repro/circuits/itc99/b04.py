"""b04 — min/max tracker (11 inputs, 8 outputs, 66 flip-flops).

Streams 8-bit data words and maintains the running minimum and maximum,
with a short input pipeline and a registered output that reports either
the delayed data stream or the min/max midpoint. Matches the documented
b04 interface shape: control inputs ``restart``/``enable``/``average``,
an 8-bit ``data_in`` bus and an 8-bit ``data_out`` word.
"""

from __future__ import annotations

from repro.netlist.netlist import Netlist
from repro.rtl import RtlModule, const, mux


def build_b04() -> Netlist:
    """Build the b04-style min/max tracker."""
    m = RtlModule("b04")
    restart = m.input("restart", 1)
    enable = m.input("enable", 1)
    average = m.input("average", 1)
    data_in = m.input("data_in", 8)

    # 66 flops: rmax/rmin/rlast (24) + 3-stage input pipeline (24) +
    # midpoint register (8) + registered output (8) + 2-bit FSM state.
    rmax = m.register("rmax", 8, init=0)
    rmin = m.register("rmin", 8, init=255)
    rlast = m.register("rlast", 8, init=0)
    reg1 = m.register("reg1", 8, init=0)
    reg2 = m.register("reg2", 8, init=0)
    reg3 = m.register("reg3", 8, init=0)
    rmid = m.register("rmid", 8, init=0)
    data_out = m.register("data_out", 8, init=0)
    state = m.register("state", 2, init=0)

    IDLE, TRACK, HOLD = const(2, 0), const(2, 1), const(2, 2)
    in_track = state == TRACK
    step = enable & in_track

    # Extremes update while tracking; restart reseeds both from the bus.
    grew = rmax < data_in
    shrank = data_in < rmin
    next_max = mux(step, rmax, mux(grew, rmax, data_in))
    next_min = mux(step, rmin, mux(shrank, rmin, data_in))
    m.next(rmax, mux(restart, next_max, data_in))
    m.next(rmin, mux(restart, next_min, data_in))

    # Input pipeline: data_in -> reg1 -> reg2 -> reg3 -> rlast.
    m.next(reg1, mux(step, reg1, data_in))
    m.next(reg2, mux(step, reg2, reg1))
    m.next(reg3, mux(step, reg3, reg2))
    m.next(rlast, mux(step, rlast, reg3))

    # Midpoint of the tracked range (truncating halves, no carry chain).
    m.next(rmid, mux(step, rmid, rmax.shift_right(1) + rmin.shift_right(1)))
    m.next(data_out, mux(average, rlast, rmid))

    # FSM: idle until the first restart, then track; ``average`` without
    # enable parks the tracker in HOLD until the next restart.
    hold_next = mux(average & ~enable, TRACK, HOLD)
    m.next(state, mux(restart, mux(in_track, state, hold_next), TRACK))

    m.output("data_out", data_out)

    netlist = m.elaborate()
    assert len(netlist.inputs) == 11, len(netlist.inputs)
    assert len(netlist.outputs) == 8, len(netlist.outputs)
    assert netlist.num_ffs == 66, netlist.num_ffs
    return netlist
