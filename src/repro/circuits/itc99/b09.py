"""b09 — serial-to-serial converter (1 input, 1 output, 28 flip-flops).

Receives a serial word, re-times it and retransmits it with a recomputed
parity bit — a shift-register-heavy circuit (like the original b09), which
gives it very different fault-latency behaviour from FSM-dominated
circuits: most upsets get shifted out and become failures or vanish fast.
"""

from __future__ import annotations

from repro.netlist.netlist import Netlist
from repro.rtl import RtlModule, cat, const, mux, reduce_xor


def build_b09() -> Netlist:
    """Build the b09-style serial converter."""
    m = RtlModule("b09")
    x = m.input("x", 1)

    # 28 flops: 12-bit receive shift register, 12-bit transmit shift
    # register, 4-bit bit counter.
    rx = m.register("rx", 12, init=0)
    tx = m.register("tx", 12, init=0)
    count = m.register("count", 4, init=0)

    word_done = count == const(4, 11)
    m.next(count, mux(word_done[0], count + const(4, 1), const(4, 0)))

    # Receive: shift in continuously.
    m.next(rx, cat(rx[1:12], x))

    # Transmit: reload from rx (with parity in the MSB) at word boundary,
    # otherwise shift out.
    parity = reduce_xor(rx[0:11])
    reloaded = cat(rx[0:11], parity)
    shifted = cat(tx[1:12], const(1, 0))
    m.next(tx, mux(word_done[0], shifted, reloaded))

    m.output("y", tx[0])
    return m.elaborate()
