"""b03 — resource arbiter (4 inputs, 4 outputs, 30 flip-flops).

Four requesters compete for one resource; requests are queued in a small
FIFO and grants rotate with round-robin priority. Matches the documented
b03 interface shape: request inputs ``request0..3``, grant outputs packed
as ``grant[0..3]``.
"""

from __future__ import annotations

from repro.netlist.netlist import Netlist
from repro.rtl import RtlModule, cat, const, mux, reduce_or


def build_b03() -> Netlist:
    """Build the b03-style round-robin arbiter with request queue."""
    m = RtlModule("b03")
    requests = [m.input(f"request{i}", 1) for i in range(4)]

    # 30 flops: 4-deep x 4-wide FIFO (16) + head/tail pointers (2x2) +
    # grant register (4) + rotating priority (2) + occupancy counter (3)
    # + busy flag (1).
    fifo = [m.register(f"fifo{i}", 4, init=0) for i in range(4)]
    head = m.register("head", 2, init=0)
    tail = m.register("tail", 2, init=0)
    grant = m.register("grant", 4, init=0)
    priority = m.register("priority", 2, init=0)
    count = m.register("count", 3, init=0)
    busy = m.register("busy", 1, init=0)

    request_word = cat(requests[0], requests[1], requests[2], requests[3])
    any_request = reduce_or(request_word)

    full = count == const(3, 4)
    empty = count == const(3, 0)

    push = any_request & ~full
    pop = ~empty & ~busy

    # FIFO write at tail.
    for index, slot in enumerate(fifo):
        write_here = push & (tail == const(2, index))
        m.next(slot, mux(write_here[0], slot, request_word))

    # FIFO read at head: one-hot select of the head slot.
    head_value = mux(
        head[1],
        mux(head[0], fifo[0], fifo[1]),
        mux(head[0], fifo[2], fifo[3]),
    )

    one2 = const(2, 1)
    m.next(tail, mux(push[0], tail, tail + one2))
    m.next(head, mux(pop[0], head, head + one2))

    one3 = const(3, 1)
    count_up = count + one3
    count_down = count - one3
    m.next(
        count,
        mux(
            push[0],
            mux(pop[0], count, count_down),
            mux(pop[0], count_up, count),
        ),
    )

    # Round-robin: rotate the popped request word by the priority counter
    # and grant the lowest set bit of the rotated word, then rotate back.
    rotated = mux(
        priority[1],
        mux(priority[0], head_value, cat(head_value[1:4], head_value[0])),
        mux(
            priority[0],
            cat(head_value[2:4], head_value[0:2]),
            cat(head_value[3], head_value[0:3]),
        ),
    )
    lowest = rotated & ((~rotated) + const(4, 1))  # isolate lowest set bit
    unrotated = mux(
        priority[1],
        mux(priority[0], lowest, cat(lowest[3], lowest[0:3])),
        mux(priority[0], cat(lowest[2:4], lowest[0:2]), cat(lowest[1:4], lowest[0])),
    )

    m.next(grant, mux(pop[0], const(4, 0), unrotated))
    m.next(priority, mux(pop[0], priority, priority + one2))
    # Resource is held for one cycle after a grant.
    m.next(busy, mux(busy[0], pop, const(1, 0)))

    m.output("grant", grant)
    return m.elaborate()
