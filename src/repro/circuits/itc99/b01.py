"""b01 — serial flow comparator (2 inputs, 2 outputs, 5 flip-flops).

An FSM that watches two serial bit streams and flags when the running
difference between them overflows a small window. Matches the documented
b01 interface: inputs ``line1``/``line2``, outputs ``outp``/``overflw``.
"""

from __future__ import annotations

from repro.netlist.netlist import Netlist
from repro.rtl import RtlModule, const, mux


def build_b01() -> Netlist:
    """Build the b01-style serial flow comparator."""
    m = RtlModule("b01")
    line1 = m.input("line1", 1)
    line2 = m.input("line2", 1)

    # 3-bit state counter tracks the signed difference of the two streams
    # (biased at 4); 2 output registers.
    diff = m.register("diff", 3, init=4 & 7)
    outp = m.register("outp", 1, init=0)
    overflw = m.register("overflw", 1, init=0)

    one = const(3, 1)
    up = line1 & ~line2  # stream 1 pulled ahead
    down = line2 & ~line1  # stream 2 pulled ahead

    inc = diff + one
    dec = diff - one
    stay = diff

    next_diff = mux(up[0], mux(down[0], stay, dec), inc)

    at_top = diff == const(3, 7)
    at_bottom = diff == const(3, 0)
    overflow_now = (at_top & up) | (at_bottom & down)

    # On overflow, recentre the window.
    m.next(diff, mux(overflow_now[0], next_diff, const(3, 4)))
    # outp mirrors whether the streams agreed this cycle.
    m.next(outp, ~(line1 ^ line2))
    m.next(overflw, overflow_now)

    m.output("outp", outp)
    m.output("overflw", overflw)
    return m.elaborate()
