"""b14 — Viper-style accumulator processor (32 in / 54 out / 215 FFs).

The paper's evaluation circuit is ITC'99 b14, "a subset of the Viper
processor" with 32 inputs, 54 outputs and 215 flip-flops. This module
builds an interface-identical processor:

* **Inputs (32):** ``data_in`` — the memory/instruction bus.
* **Outputs (54):** ``addr`` (20) + ``data_out`` (32) + ``rd`` + ``wr``.
* **Flip-flops (215):** acc/breg/mdr/ir (4 x 32) + pc/mar/xreg/yreg
  (4 x 20) + 3-bit FSM state + z/b flags + registered rd/wr = 215 exactly.

Like the real Viper, it is an accumulator machine with index registers and
a memory-mapped world: a five-phase FSM fetches an instruction word from
``data_in``, decodes a 4-bit opcode, executes ALU/move/branch/memory
operations and drives the address/data/control outputs. Fault behaviour is
processor-shaped: upsets in pc/ir/state reach the address bus within a few
cycles (failures), upsets in rarely-read registers linger (latent) or get
overwritten (silent).
"""

from __future__ import annotations

from typing import Dict

from repro.netlist.netlist import Netlist
from repro.rtl import RtlModule, cat, const, mux, reduce_or
from repro.sim.vectors import Testbench
from repro.util.rng import DeterministicRng

#: Documented interface of the original b14 (and of this re-implementation).
B14_SPEC: Dict[str, int] = {"inputs": 32, "outputs": 54, "flip_flops": 215}

# FSM states
_FETCH, _LOADIR, _EXEC, _MEMR, _MEMW = range(5)

# Opcodes
OP_NOP = 0
OP_LOADA = 1
OP_STOREA = 2
OP_ADD = 3
OP_SUB = 4
OP_AND = 5
OP_OR = 6
OP_XOR = 7
OP_NOT = 8
OP_MOVB = 9
OP_MOVX = 10
OP_MOVY = 11
OP_JMP = 12
OP_JZ = 13
OP_INCX = 14
OP_CMP = 15


def build_b14() -> Netlist:
    """Build the Viper-style b14 processor netlist."""
    m = RtlModule("b14")
    data_in = m.input("data_in", 32)

    acc = m.register("acc", 32, init=0)
    breg = m.register("breg", 32, init=0)
    mdr = m.register("mdr", 32, init=0)
    ir = m.register("ir", 32, init=0)
    pc = m.register("pc", 20, init=0)
    mar = m.register("mar", 20, init=0)
    xreg = m.register("xreg", 20, init=0)
    yreg = m.register("yreg", 20, init=0)
    state = m.register("state", 3, init=_FETCH)
    flag_z = m.register("flag_z", 1, init=0)
    flag_b = m.register("flag_b", 1, init=0)
    rd = m.register("rd", 1, init=0)
    wr = m.register("wr", 1, init=0)

    in_fetch = state == const(3, _FETCH)
    in_loadir = state == const(3, _LOADIR)
    in_exec = state == const(3, _EXEC)
    in_memr = state == const(3, _MEMR)
    in_memw = state == const(3, _MEMW)

    opcode = ir[28:32]
    indexed = ir[27]
    stride = ir[20:27]  # 7-bit immediate used by INCX
    operand = ir[0:20]

    def op_is(code: int):
        return opcode == const(4, code)

    # Effective address: operand, optionally indexed by X (or Y when the
    # B flag is set — Viper's B flag selects the alternate bank).
    index_value = mux(flag_b[0], xreg, yreg)
    effective = operand + mux(indexed[0], const(20, 0), index_value)

    # ------------------------------------------------------------------
    # ALU
    # ------------------------------------------------------------------
    alu_add = acc + breg
    alu_sub = acc - breg
    alu_and = acc & breg
    alu_or = acc | breg
    alu_xor = acc ^ breg
    alu_not = ~acc

    is_add, is_sub = op_is(OP_ADD), op_is(OP_SUB)
    is_and, is_or, is_xor, is_not = (
        op_is(OP_AND),
        op_is(OP_OR),
        op_is(OP_XOR),
        op_is(OP_NOT),
    )

    alu_result = mux(
        is_add[0],
        mux(
            is_sub[0],
            mux(
                is_and[0],
                mux(is_or[0], mux(is_xor[0], alu_not, alu_xor), alu_or),
                alu_and,
            ),
            alu_sub,
        ),
        alu_add,
    )
    alu_writes_acc = is_add | is_sub | is_and | is_or | is_xor | is_not

    # ------------------------------------------------------------------
    # register updates
    # ------------------------------------------------------------------
    exec_alu = in_exec & alu_writes_acc
    acc_after_exec = mux(exec_alu[0], acc, alu_result)
    m.next(acc, mux(in_memr[0], acc_after_exec, data_in))

    m.next(breg, mux((in_exec & op_is(OP_MOVB))[0], breg, acc))

    load_x = in_exec & op_is(OP_MOVX)
    inc_x = in_exec & op_is(OP_INCX)
    m.next(
        xreg,
        mux(
            load_x[0],
            mux(inc_x[0], xreg, xreg + stride.zext(20)),
            acc[0:20],
        ),
    )
    m.next(yreg, mux((in_exec & op_is(OP_MOVY))[0], yreg, acc[0:20]))

    m.next(ir, mux(in_loadir[0], ir, data_in))
    m.next(mdr, mux((in_exec & op_is(OP_STOREA))[0], mdr, acc))

    # PC: +1 after fetch; branch targets in EXEC.
    take_jmp = in_exec & op_is(OP_JMP)
    take_jz = in_exec & op_is(OP_JZ) & flag_z
    branch = take_jmp | take_jz
    pc_incremented = mux(in_loadir[0], pc, pc + const(20, 1))
    m.next(pc, mux(branch[0], pc_incremented, effective))

    # MAR: pc during fetch, effective address for memory ops.
    mem_op = in_exec & (op_is(OP_LOADA) | op_is(OP_STOREA))
    m.next(mar, mux(in_fetch[0], mux(mem_op[0], mar, effective), pc))

    # Flags.
    alu_zero = ~reduce_or(alu_result)
    memr_zero = ~reduce_or(data_in)
    m.next(
        flag_z,
        mux(exec_alu[0], mux(in_memr[0], flag_z, memr_zero), alu_zero),
    )
    m.next(flag_b, mux((in_exec & op_is(OP_CMP))[0], flag_b, acc < breg))

    # Memory control: rd pulses in FETCH (instruction) and for LOADA;
    # wr pulses for STOREA.
    m.next(rd, in_fetch | (in_exec & op_is(OP_LOADA)))
    m.next(wr, in_exec & op_is(OP_STOREA))

    # FSM.
    after_exec = mux(
        op_is(OP_LOADA)[0],
        mux(op_is(OP_STOREA)[0], const(3, _FETCH), const(3, _MEMW)),
        const(3, _MEMR),
    )
    next_state = mux(
        in_fetch[0],
        mux(
            in_loadir[0],
            mux(in_exec[0], const(3, _FETCH), after_exec),
            const(3, _EXEC),
        ),
        const(3, _LOADIR),
    )
    m.next(state, next_state)

    # ------------------------------------------------------------------
    # outputs: 20 + 32 + 1 + 1 = 54
    # ------------------------------------------------------------------
    m.output("addr", mar)
    m.output("data_out", mdr)
    m.output("rd", rd)
    m.output("wr", wr)

    netlist = m.elaborate()
    assert len(netlist.inputs) == B14_SPEC["inputs"], len(netlist.inputs)
    assert len(netlist.outputs) == B14_SPEC["outputs"], len(netlist.outputs)
    assert netlist.num_ffs == B14_SPEC["flip_flops"], netlist.num_ffs
    return netlist


def b14_program_testbench(netlist: Netlist, num_cycles: int, seed: int = 0) -> Testbench:
    """Instruction-shaped stimulus for b14.

    ``data_in`` is the processor's memory bus, so a realistic testbench
    feeds it plausible instruction words (valid opcodes, small addresses)
    rather than white noise — this is the 160-vector-style workload used
    for the paper's experiments.
    """
    rng = DeterministicRng(seed).fork("b14-program")
    vectors = []
    # Weight toward ALU/move traffic like compiled code; keep some loads
    # and stores so the data bus and mdr see action.
    opcode_pool = [
        OP_ADD, OP_ADD, OP_SUB, OP_AND, OP_OR, OP_XOR,
        OP_LOADA, OP_LOADA, OP_STOREA, OP_MOVB, OP_MOVX, OP_MOVY,
        OP_JZ, OP_JMP, OP_INCX, OP_CMP, OP_NOP,
    ]
    for _ in range(num_cycles):
        opcode = rng.choice(opcode_pool)
        word = opcode << 28
        if rng.bit(0.5):
            word |= 1 << 27  # indexed addressing
        word |= rng.word(20)  # operand / loaded data low bits
        word |= rng.word(7) << 20  # mid bits used when word is read as data
        vectors.append(word)
    return Testbench(list(netlist.inputs), vectors)
