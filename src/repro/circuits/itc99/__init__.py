"""ITC'99-style benchmark circuits.

The ITC'99 suite (Corno, Sonza Reorda, Squillero — IEEE D&T 2000) is the
standard RT-level benchmark set of the paper's era; the paper evaluates on
b14, "the Viper processor" subset (32 inputs, 54 outputs, 215 flip-flops).

The original VHDL is not redistributable inside this offline build, so the
modules here are *interface-faithful re-implementations*: each circuit
matches the documented I/O shape and flip-flop budget of its namesake and
performs the same kind of computation (serial comparators, BCD recogniser,
arbiter, interrupt handler, serial converter, and a Viper-style
accumulator CPU). See DESIGN.md section 2 for the substitution rationale.
"""

from repro.circuits.itc99.b01 import build_b01
from repro.circuits.itc99.b02 import build_b02
from repro.circuits.itc99.b03 import build_b03
from repro.circuits.itc99.b04 import build_b04
from repro.circuits.itc99.b06 import build_b06
from repro.circuits.itc99.b09 import build_b09
from repro.circuits.itc99.b14 import B14_SPEC, build_b14

__all__ = [
    "B14_SPEC",
    "build_b01",
    "build_b02",
    "build_b03",
    "build_b04",
    "build_b06",
    "build_b09",
    "build_b14",
]
