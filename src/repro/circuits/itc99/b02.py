"""b02 — BCD serial recogniser (1 input, 1 output, 4 flip-flops).

Accepts a serial stream of bits (MSB first, 4 bits per digit) and raises
``u`` when the completed digit is a valid BCD code (0..9). Matches the
documented b02 interface: input ``linea``, output ``u``.
"""

from __future__ import annotations

from repro.netlist.netlist import Netlist
from repro.rtl import RtlModule, cat, const, mux


def build_b02() -> Netlist:
    """Build the b02-style BCD recogniser."""
    m = RtlModule("b02")
    linea = m.input("linea", 1)

    # 2-bit phase counter + 2-bit partial shift: 4 flops total, like b02.
    phase = m.register("phase", 2, init=0)
    shift = m.register("shift", 2, init=0)

    m.next(phase, phase + const(2, 1))

    # Shift the incoming bit into the 2-bit window (enough to detect the
    # BCD-invalid prefixes 101x and 11xx at the right phases).
    m.next(shift, cat(shift[1], linea))

    # A digit is invalid when its first bit is 1 and (second bit is 1 or
    # third bit is 1): values 10..15. We track that with the window.
    first_bit_one = shift[1]
    second_or_third = shift[0] | linea
    invalid = first_bit_one & second_or_third

    digit_done = phase == const(2, 3)
    m.output("u", digit_done & ~invalid)
    return m.elaborate()
