"""b06 — interrupt handler (2 inputs, 6 outputs, 9 flip-flops).

A controller FSM that reacts to two interrupt lines with different
priorities, acknowledges, and drives a small control-word output. Matches
the documented b06 interface shape: inputs ``eql``/``uscite``-style
control lines, a 6-bit output word.
"""

from __future__ import annotations

from repro.netlist.netlist import Netlist
from repro.rtl import RtlModule, cat, const, mux


def build_b06() -> Netlist:
    """Build the b06-style interrupt handler."""
    m = RtlModule("b06")
    irq_high = m.input("cont_eql", 1)
    irq_low = m.input("cont_uscite", 1)

    # 9 flops: 3-bit FSM state, 2 pending latches, 4-bit output register.
    state = m.register("state", 3, init=0)
    pending_high = m.register("pending_high", 1, init=0)
    pending_low = m.register("pending_low", 1, init=0)
    out_word = m.register("out_word", 4, init=0)

    IDLE, ACK_H, SERVE_H, ACK_L, SERVE_L, COOL = (
        const(3, 0),
        const(3, 1),
        const(3, 2),
        const(3, 3),
        const(3, 4),
        const(3, 5),
    )

    in_idle = state == IDLE
    in_ack_h = state == ACK_H
    in_serve_h = state == SERVE_H
    in_ack_l = state == ACK_L
    in_serve_l = state == SERVE_L
    in_cool = state == COOL

    # Pending latches capture pulses; cleared when service starts.
    m.next(pending_high, (pending_high | irq_high) & ~in_ack_h)
    m.next(pending_low, (pending_low | irq_low) & ~in_ack_l)

    take_high = in_idle & (pending_high | irq_high)
    take_low = in_idle & ~(pending_high | irq_high) & (pending_low | irq_low)

    after_idle = mux(
        take_high[0], mux(take_low[0], IDLE, ACK_L), ACK_H
    )
    next_state = mux(
        in_idle[0],
        mux(
            in_ack_h[0],
            mux(
                in_serve_h[0],
                mux(
                    in_ack_l[0],
                    mux(in_serve_l[0], mux(in_cool[0], IDLE, IDLE), COOL),
                    SERVE_L,
                ),
                COOL,
            ),
            SERVE_H,
        ),
        after_idle,
    )
    m.next(state, next_state)

    # Output register encodes what is being serviced.
    served = mux(
        in_serve_h[0],
        mux(in_serve_l[0], mux(in_cool[0], out_word, const(4, 1)), const(4, 6)),
        const(4, 12),
    )
    m.next(out_word, served)

    m.output("ackn", cat(in_ack_h, in_ack_l))
    m.output("usc", out_word)
    return m.elaborate()
