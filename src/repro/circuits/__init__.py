"""Benchmark circuits.

* :mod:`repro.circuits.itc99` — re-implementations of ITC'99 circuits in
  our RTL layer (b01/b02/b03/b06/b09 FSMs and the Viper-style b14 the
  paper's evaluation uses).
* :mod:`repro.circuits.generators` — parametric synthetic circuits for
  sweeps (counter banks, LFSRs, pipelines, FSM grids).
* :mod:`repro.circuits.registry` — name-based lookup used by examples and
  benchmarks.
"""

from repro.circuits.registry import available_circuits, build_circuit

__all__ = ["available_circuits", "build_circuit"]
