"""Background campaign execution for the service daemon.

One executor thread drains a bounded submission queue and grades each
campaign through a persistent :class:`~repro.run.runner.CampaignRunner`
— so the service reuses whatever transport the operator configured
(serial, local pool, TCP fleet) and inherits all of the runner's
resume/retry behavior. Every state transition is written to the
:class:`~repro.service.db.ResultsDB` *and* the JSONL store stays the
durability layer: a service killed mid-campaign resumes the campaign's
completed shards on resubmission exactly like the CLI does.

Cancellation is cooperative and shard-grained: ``DELETE`` sets
``cancel_requested`` in the database, and the runner's ``on_shard``
callback — which fires between shards, never inside one — raises
:class:`_Cancelled` at the next boundary. Completed shards remain
checkpointed in the JSONL store, so a cancelled campaign that is later
resubmitted picks up where it stopped.
"""

from __future__ import annotations

import os
import queue
import threading
import traceback
from typing import Optional

from repro.errors import ServiceError
from repro.run.runner import CampaignRunner
from repro.run.spec import CampaignSpec
from repro.run.store import ResultsStore
from repro.service.db import ResultsDB

#: default bound on queued-but-unstarted campaigns
DEFAULT_QUEUE_LIMIT = 64


class _Cancelled(Exception):
    """Raised from the on_shard callback to abort between shards."""


class CampaignExecutor:
    """Single-threaded campaign queue draining into a shared runner."""

    def __init__(
        self,
        db: ResultsDB,
        runner: CampaignRunner,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
    ):
        if runner.store_root is None:
            raise ServiceError(
                "the service runner needs a store_root: the JSONL store is "
                "the durability layer the database indexes"
            )
        self.db = db
        self.runner = runner
        self._queue: "queue.Queue[Optional[CampaignSpec]]" = queue.Queue(
            maxsize=max(1, int(queue_limit))
        )
        self._thread = threading.Thread(
            target=self._drain, name="repro-service-executor", daemon=True
        )
        self._started = False
        self._current: Optional[str] = None
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if not self._started:
            self._started = True
            self._thread.start()

    def stop(self, wait: bool = True) -> None:
        """Finish the in-flight campaign, then exit the drain thread."""
        if not self._started:
            return
        self._queue.put(None)
        if wait:
            self._thread.join()

    @property
    def queue_depth(self) -> int:
        return self._queue.qsize()

    @property
    def current_campaign(self) -> Optional[str]:
        """Campaign id being graded right now, if any."""
        with self._lock:
            return self._current

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(self, spec: CampaignSpec) -> None:
        """Enqueue a campaign the database already holds as queued.

        Raises :class:`ServiceError` when the bounded queue is full —
        the HTTP layer turns that into a 503 so a client can back off
        instead of the daemon buffering unboundedly.
        """
        try:
            self._queue.put_nowait(spec)
        except queue.Full:
            raise ServiceError(
                f"submission queue is full ({self._queue.maxsize} campaigns "
                "queued); retry after some complete"
            ) from None

    # ------------------------------------------------------------------
    # drain loop
    # ------------------------------------------------------------------
    def _drain(self) -> None:
        while True:
            spec = self._queue.get()
            if spec is None:
                return
            row = self.db.campaign(spec.campaign_id)
            if row is None or row["status"] != "queued":
                # cancelled-while-queued (or deleted); nothing to run
                continue
            with self._lock:
                self._current = spec.campaign_id
            try:
                self._execute(spec)
            except _Cancelled:
                self.db.mark_cancelled(spec.campaign_id)
            except Exception as error:  # one bad campaign must not kill the drain
                detail = "".join(
                    traceback.format_exception_only(type(error), error)
                ).strip()
                self.db.mark_failed(spec.campaign_id, detail)
            finally:
                with self._lock:
                    self._current = None

    def _execute(self, spec: CampaignSpec) -> None:
        campaign_id = spec.campaign_id
        self.db.mark_running(campaign_id)

        def on_shard(record, done, total):
            self.db.update_progress(campaign_id, done, total)
            if self.db.cancel_requested(campaign_id):
                raise _Cancelled(campaign_id)

        self.runner.on_shard = on_shard
        try:
            oracle = self.runner.grade(spec)
        finally:
            self.runner.on_shard = None
        result = self.runner.run(spec, oracle=oracle)

        # Re-read the shard records from the JSONL store rather than
        # trusting the callback trail: resumed shards graded by an
        # earlier process belong in the index too.
        store = ResultsStore(
            # the runner opened/validated this store during grade()
            os.path.join(self.runner.store_root, campaign_id)
        )
        self.db.record_shards(campaign_id, store.iter_shards())
        self.db.record_outcomes(
            campaign_id, oracle.faults, oracle.fail_cycles,
            oracle.vanish_cycles,
        )
        self.db.mark_done(
            campaign_id,
            oracle_digest=oracle.outcome_digest(),
            num_faults=oracle.num_faults,
            total_cycles=result.total_cycles,
            emulation_ms=result.timing.milliseconds,
            us_per_fault=result.timing.us_per_fault,
        )
