"""Long-running campaign service: HTTP daemon + SQLite results index.

The package behind ``repro serve`` / ``repro db`` / ``repro query``:

* :mod:`repro.service.db` — schema-versioned WAL SQLite database
  (campaigns / shards / fault_outcomes) with lossless import from the
  JSONL :class:`~repro.run.store.ResultsStore` and the cross-campaign
  aggregate queries.
* :mod:`repro.service.executor` — the background grading thread that
  drains the bounded submission queue through one persistent
  :class:`~repro.run.runner.CampaignRunner`.
* :mod:`repro.service.app` — the stdlib ``ThreadingHTTPServer`` JSON
  API plus the HTML dashboard.

See ``docs/service.md`` for the API reference and deployment guide.
"""

from repro.service.app import CampaignService
from repro.service.db import SCHEMA_VERSION, ResultsDB
from repro.service.executor import DEFAULT_QUEUE_LIMIT, CampaignExecutor

__all__ = [
    "CampaignService",
    "CampaignExecutor",
    "ResultsDB",
    "SCHEMA_VERSION",
    "DEFAULT_QUEUE_LIMIT",
]
