"""Indexed SQLite results database for campaign outcomes.

The JSONL :class:`~repro.run.store.ResultsStore` is the *durability*
layer: append-only per-campaign shard checkpoints, optimized for
kill-tolerant resume. This module is the *query* layer: one indexed
SQLite file holding every campaign ever graded, so questions that span
campaigns — "failure rate of flop X across all b14 campaigns",
"hardened vs plain failure trend" — are one SQL statement instead of a
directory crawl plus a scenario rebuild per store.

Schema (three tables, mirroring DrSEUs's campaign/result/injection
split):

* ``campaigns``  — one row per campaign: the spec fields, lifecycle
  status (``queued → running → done`` / ``failed`` / ``cancelled``,
  or ``imported`` for JSONL imports), progress counters, timing and the
  merged oracle's ``oracle_digest``.
* ``shards``     — one row per graded cycle-window with its
  ``worker``/``attempts`` provenance (the JSONL shard records, minus
  the bulky outcome arrays).
* ``fault_outcomes`` — one row per fault: flop name, injection cycle,
  fail/vanish cycles and the derived verdict. This is the table the
  cross-campaign aggregates run on; it is indexed by flop and by
  (campaign, verdict).

The schema is versioned through ``PRAGMA user_version`` and the
database opens in WAL mode, so the service's executor thread, its HTTP
handler threads and an external ``repro query`` process can read and
write concurrently. A database written by a different schema version is
refused with a nameable error, never silently migrated.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import CampaignError, ReproError, ServiceError
from repro.faults.classify import FaultClass
from repro.run.spec import CampaignSpec
from repro.run.store import ResultsStore, ShardRecord, discover_stores

#: bump on any table/column/index change; mismatched files are refused.
SCHEMA_VERSION = 1

#: default database location, beside the JSONL stores it indexes
DEFAULT_DB_FILENAME = "service.db"

_SCHEMA = """
CREATE TABLE campaigns (
    campaign_id   TEXT PRIMARY KEY,
    circuit       TEXT NOT NULL,
    effective_circuit TEXT NOT NULL,
    technique     TEXT NOT NULL,
    engine        TEXT NOT NULL,
    testbench     TEXT NOT NULL,
    num_cycles    INTEGER NOT NULL,
    seed          INTEGER NOT NULL,
    sample        INTEGER,
    sampling      TEXT NOT NULL,
    fault_model   TEXT NOT NULL,
    hardening     TEXT,
    spec_json     TEXT NOT NULL,
    source        TEXT NOT NULL DEFAULT 'service',
    status        TEXT NOT NULL DEFAULT 'queued',
    cancel_requested INTEGER NOT NULL DEFAULT 0,
    error         TEXT,
    submitted_at  REAL,
    started_at    REAL,
    finished_at   REAL,
    num_shards    INTEGER,
    shards_done   INTEGER NOT NULL DEFAULT 0,
    num_faults    INTEGER,
    oracle_digest TEXT,
    total_cycles  INTEGER,
    emulation_ms  REAL,
    us_per_fault  REAL
);
CREATE INDEX idx_campaigns_circuit ON campaigns (circuit);
CREATE INDEX idx_campaigns_status  ON campaigns (status);

CREATE TABLE shards (
    campaign_id TEXT NOT NULL REFERENCES campaigns (campaign_id)
                ON DELETE CASCADE,
    shard_index INTEGER NOT NULL,
    start_cycle INTEGER NOT NULL,
    end_cycle   INTEGER NOT NULL,
    num_faults  INTEGER NOT NULL,
    engine      TEXT NOT NULL DEFAULT '',
    elapsed_s   REAL NOT NULL DEFAULT 0.0,
    worker      TEXT NOT NULL DEFAULT '',
    attempts    INTEGER NOT NULL DEFAULT 1,
    PRIMARY KEY (campaign_id, shard_index)
);

CREATE TABLE fault_outcomes (
    campaign_id  TEXT NOT NULL REFERENCES campaigns (campaign_id)
                 ON DELETE CASCADE,
    fault_index  INTEGER NOT NULL,
    flop         TEXT NOT NULL,
    inject_cycle INTEGER NOT NULL,
    fail_cycle   INTEGER NOT NULL,
    vanish_cycle INTEGER NOT NULL,
    verdict      TEXT NOT NULL,
    PRIMARY KEY (campaign_id, fault_index)
);
CREATE INDEX idx_outcomes_flop    ON fault_outcomes (flop);
CREATE INDEX idx_outcomes_verdict ON fault_outcomes (campaign_id, verdict);
"""

#: campaign lifecycle states a row may hold
CAMPAIGN_STATUSES = (
    "queued", "running", "done", "failed", "cancelled", "imported"
)

def spec_from_manifest(manifest: Dict) -> CampaignSpec:
    """Reconstruct a gradeable spec from a JSONL store manifest.

    The manifest's oracle key holds every field that determined the
    graded outcomes (circuit, resolved testbench kind, cycles, seed,
    fault model, sampling, optional hardening); technique/board/engine
    do not affect fail/vanish cycles, so the reconstruction pins
    defaults for them. The caller must verify the reconstructed spec's
    ``campaign_id`` against the store directory name — a mismatch means
    the fault population is no longer reproducible (for imported
    circuits: the netlist file changed since grading).
    """
    oracle = manifest.get("oracle") or {}
    try:
        return CampaignSpec(
            circuit=str(oracle["circuit"]),
            technique="time_multiplexed",
            testbench=str(oracle["testbench"]),
            num_cycles=int(oracle["num_cycles"]),
            seed=int(oracle["seed"]),
            sample=oracle.get("sample"),
            fault_model=str(oracle.get("fault_model", "seu")),
            sampling=str(oracle.get("sampling", "uniform")),
            hardening=oracle.get("hardening"),
            hardening_flops=oracle.get("hardening_flops"),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise ServiceError(
            f"store manifest oracle key is not reconstructable: {error}"
        ) from None


class ResultsDB:
    """One campaign-results database file.

    Thread-safe: a single connection guarded by an RLock (SQLite
    serializes writers anyway; WAL keeps readers from blocking on
    them). Separate *processes* — the service daemon plus a concurrent
    ``repro query`` — each open their own :class:`ResultsDB` on the
    same path and coexist through WAL.
    """

    def __init__(self, path: str, timeout: float = 30.0):
        self.path = str(path)
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(
            self.path, timeout=timeout, check_same_thread=False
        )
        self._conn.row_factory = sqlite3.Row
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute("PRAGMA foreign_keys=ON")
        self._init_schema()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _init_schema(self) -> None:
        with self._lock:
            (version,) = self._conn.execute("PRAGMA user_version").fetchone()
            if version == SCHEMA_VERSION:
                return
            if version != 0:
                raise ServiceError(
                    f"results database {self.path} has schema version "
                    f"{version}; this build speaks {SCHEMA_VERSION} — "
                    "migrate or re-import into a fresh database "
                    "(repro db import writes losslessly from the JSONL "
                    "stores)"
                )
            has_tables = self._conn.execute(
                "SELECT name FROM sqlite_master WHERE type='table' LIMIT 1"
            ).fetchone()
            if has_tables:
                raise ServiceError(
                    f"{self.path} is a SQLite file but not a repro results "
                    "database (tables exist, schema version 0); refusing "
                    "to overwrite it"
                )
            with self._conn:
                self._conn.executescript(_SCHEMA)
                self._conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION}")

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "ResultsDB":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # campaign lifecycle writes
    # ------------------------------------------------------------------
    def _spec_row(self, spec: CampaignSpec, source: str) -> Dict:
        return {
            "campaign_id": spec.campaign_id,
            "circuit": spec.circuit,
            "effective_circuit": spec.effective_circuit,
            "technique": spec.technique,
            "engine": spec.engine,
            "testbench": spec.resolved_testbench_kind(),
            "num_cycles": spec.resolved_cycles(),
            "seed": spec.seed,
            "sample": spec.sample,
            "sampling": spec.sampling,
            "fault_model": spec.fault_model,
            "hardening": spec.hardening,
            "spec_json": json.dumps(spec.to_dict(), sort_keys=True),
            "source": source,
        }

    def submit(self, spec: CampaignSpec) -> Tuple[bool, Dict]:
        """Record a submission; idempotent on the campaign id.

        Returns ``(created, row)``. An existing campaign in any *live*
        state (queued / running / done / imported) is returned as-is —
        resubmitting the same spec never regrades. A ``failed`` or
        ``cancelled`` campaign is re-queued: the terminal state is what
        the resubmission is asking to retry.
        """
        with self._lock, self._conn:
            existing = self.campaign(spec.campaign_id)
            if existing is not None:
                if existing["status"] in ("failed", "cancelled"):
                    self._conn.execute(
                        "UPDATE campaigns SET status='queued', error=NULL, "
                        "cancel_requested=0, submitted_at=?, started_at=NULL, "
                        "finished_at=NULL WHERE campaign_id=?",
                        (time.time(), spec.campaign_id),
                    )
                    return True, self.campaign(spec.campaign_id)
                return False, existing
            row = self._spec_row(spec, source="service")
            row.update(status="queued", submitted_at=time.time())
            columns = ", ".join(row)
            holes = ", ".join("?" for _ in row)
            self._conn.execute(
                f"INSERT INTO campaigns ({columns}) VALUES ({holes})",
                tuple(row.values()),
            )
            return True, self.campaign(spec.campaign_id)

    def delete_campaign(self, campaign_id: str) -> bool:
        """Drop a campaign and (via cascades) its shards and outcomes."""
        with self._lock, self._conn:
            cursor = self._conn.execute(
                "DELETE FROM campaigns WHERE campaign_id=?", (campaign_id,)
            )
            return cursor.rowcount > 0

    def mark_running(self, campaign_id: str) -> None:
        self._update(
            campaign_id, status="running", started_at=time.time(),
        )

    def update_progress(
        self, campaign_id: str, shards_done: int, num_shards: int
    ) -> None:
        self._update(
            campaign_id, shards_done=shards_done, num_shards=num_shards
        )

    def mark_failed(self, campaign_id: str, error: str) -> None:
        self._update(
            campaign_id, status="failed", error=str(error)[:2000],
            finished_at=time.time(),
        )

    def request_cancel(self, campaign_id: str) -> Optional[str]:
        """Ask for cancellation; returns the resulting status.

        A queued campaign flips straight to ``cancelled`` (the executor
        skips it). A running one gets ``cancel_requested`` set — the
        executor notices at its next shard boundary and transitions the
        status itself. Terminal campaigns return ``None`` (nothing to
        cancel).
        """
        with self._lock, self._conn:
            row = self.campaign(campaign_id)
            if row is None:
                raise ServiceError(f"unknown campaign {campaign_id!r}")
            if row["status"] == "queued":
                self._conn.execute(
                    "UPDATE campaigns SET status='cancelled', finished_at=? "
                    "WHERE campaign_id=? AND status='queued'",
                    (time.time(), campaign_id),
                )
                return "cancelled"
            if row["status"] == "running":
                self._conn.execute(
                    "UPDATE campaigns SET cancel_requested=1 "
                    "WHERE campaign_id=?",
                    (campaign_id,),
                )
                return "cancelling"
            return None

    def mark_cancelled(self, campaign_id: str) -> None:
        self._update(
            campaign_id, status="cancelled", cancel_requested=0,
            finished_at=time.time(),
        )

    def cancel_requested(self, campaign_id: str) -> bool:
        with self._lock:
            row = self._conn.execute(
                "SELECT cancel_requested FROM campaigns WHERE campaign_id=?",
                (campaign_id,),
            ).fetchone()
        return bool(row and row[0])

    def _update(self, campaign_id: str, **fields) -> None:
        assignments = ", ".join(f"{name}=?" for name in fields)
        with self._lock, self._conn:
            self._conn.execute(
                f"UPDATE campaigns SET {assignments} WHERE campaign_id=?",
                (*fields.values(), campaign_id),
            )

    # ------------------------------------------------------------------
    # results writes
    # ------------------------------------------------------------------
    def record_outcomes(
        self,
        campaign_id: str,
        faults,
        fail_cycles: Iterable[int],
        vanish_cycles: Iterable[int],
    ) -> int:
        """Bulk-insert per-fault outcomes (replacing any stale rows)."""
        from repro.faults.classify import classify_outcome

        rows = [
            (
                campaign_id,
                index,
                fault.flop_name or f"flop[{fault.flop_index}]",
                fault.cycle,
                int(fail),
                int(vanish),
                classify_outcome(int(fail), int(vanish)).value,
            )
            for index, (fault, fail, vanish) in enumerate(
                zip(faults, fail_cycles, vanish_cycles)
            )
        ]
        with self._lock, self._conn:
            self._conn.execute(
                "DELETE FROM fault_outcomes WHERE campaign_id=?",
                (campaign_id,),
            )
            self._conn.executemany(
                "INSERT INTO fault_outcomes VALUES (?,?,?,?,?,?,?)", rows
            )
        return len(rows)

    def record_shards(
        self, campaign_id: str, records: Iterable[ShardRecord]
    ) -> int:
        rows = [
            (
                campaign_id, record.index, record.start_cycle,
                record.end_cycle, record.num_faults, record.engine,
                record.elapsed_s, record.worker, record.attempts,
            )
            for record in records
        ]
        with self._lock, self._conn:
            self._conn.execute(
                "DELETE FROM shards WHERE campaign_id=?", (campaign_id,)
            )
            self._conn.executemany(
                "INSERT INTO shards VALUES (?,?,?,?,?,?,?,?,?)", rows
            )
        return len(rows)

    def mark_done(
        self,
        campaign_id: str,
        oracle_digest: str,
        num_faults: int,
        total_cycles: Optional[int] = None,
        emulation_ms: Optional[float] = None,
        us_per_fault: Optional[float] = None,
        status: str = "done",
    ) -> None:
        self._update(
            campaign_id,
            status=status,
            oracle_digest=oracle_digest,
            num_faults=num_faults,
            total_cycles=total_cycles,
            emulation_ms=emulation_ms,
            us_per_fault=us_per_fault,
            finished_at=time.time(),
            cancel_requested=0,
        )

    # ------------------------------------------------------------------
    # JSONL import
    # ------------------------------------------------------------------
    def import_store(self, store: ResultsStore) -> Dict:
        """Losslessly import one JSONL campaign store.

        Rebuilds the fault population from the manifest's oracle key
        (bit-identically — the same code path the runner uses),
        concatenates the stored shard outcomes in window order, derives
        verdicts, and writes campaign + shards + outcomes rows. Returns
        a summary dict with ``campaign_id`` and ``action`` (one of
        ``imported``, ``exists``, ``refused``) plus a ``reason`` when
        refused. Incomplete stores (missing shards) are refused — a
        partial import would undercount every aggregate that touches
        the campaign.
        """
        from repro.run import worker

        directory_id = os.path.basename(os.path.normpath(store.directory))
        manifest = store.manifest()
        if manifest is None:
            return self._refusal(directory_id, "no spec.json manifest")
        try:
            spec = spec_from_manifest(manifest)
        except (ServiceError, CampaignError) as error:
            return self._refusal(directory_id, str(error))
        if spec.campaign_id != directory_id:
            return self._refusal(
                directory_id,
                "fault population is not reproducible (the reconstructed "
                f"spec hashes to {spec.campaign_id}; for imported circuits "
                "this means the netlist file changed since grading)",
            )
        existing = self.campaign(spec.campaign_id)
        if existing is not None and existing["status"] in ("done", "imported"):
            return {
                "campaign_id": spec.campaign_id, "action": "exists",
                "reason": f"already {existing['status']}",
            }
        windows = [
            (int(start), int(end)) for start, end in manifest.get("windows", [])
        ]
        records = {record.index: record for record in store.iter_shards()}
        try:
            scenario = worker.scenario_for(spec)
        except ReproError as error:
            return self._refusal(directory_id, f"scenario rebuild failed: {error}")
        cycles = worker.injection_cycles(spec)
        fail: List[int] = []
        vanish: List[int] = []
        for index, (start, end) in enumerate(windows):
            record = records.get(index)
            if record is None:
                return self._refusal(
                    directory_id,
                    f"incomplete store: shard {index} of {len(windows)} "
                    "missing (resume the campaign to finish grading first)",
                )
            lo, hi = worker.window_slice(cycles, start, end)
            if record.num_faults != hi - lo:
                return self._refusal(
                    directory_id,
                    f"shard {index} holds {record.num_faults} faults but the "
                    f"rebuilt population puts {hi - lo} in its window",
                )
            fail.extend(record.fail_cycles)
            vanish.extend(record.vanish_cycles)
        if len(fail) != len(scenario.faults):
            return self._refusal(
                directory_id,
                f"merged shards cover {len(fail)} faults, campaign has "
                f"{len(scenario.faults)}",
            )

        from repro.sim.parallel import FaultGradingResult

        digest = FaultGradingResult(
            faults=scenario.faults,
            num_cycles=scenario.testbench.num_cycles,
            flop_names=[],
            golden=None,
            fail_cycles=fail,
            vanish_cycles=vanish,
        ).outcome_digest()
        with self._lock, self._conn:
            row = self._spec_row(spec, source="import")
            row.update(status="imported", submitted_at=time.time())
            columns = ", ".join(row)
            holes = ", ".join("?" for _ in row)
            self._conn.execute(
                "DELETE FROM campaigns WHERE campaign_id=?",
                (spec.campaign_id,),
            )
            self._conn.execute(
                f"INSERT INTO campaigns ({columns}) VALUES ({holes})",
                tuple(row.values()),
            )
        self.record_shards(spec.campaign_id, records.values())
        self.record_outcomes(spec.campaign_id, scenario.faults, fail, vanish)
        self.mark_done(
            spec.campaign_id, digest, len(fail), status="imported"
        )
        return {"campaign_id": spec.campaign_id, "action": "imported",
                "faults": len(fail), "shards": len(windows)}

    def import_root(self, root: str) -> List[Dict]:
        """Import every campaign store found under ``root``."""
        return [self.import_store(store) for store in discover_stores(root)]

    @staticmethod
    def _refusal(campaign_id: str, reason: str) -> Dict:
        return {"campaign_id": campaign_id, "action": "refused",
                "reason": reason}

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def campaign(self, campaign_id: str) -> Optional[Dict]:
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM campaigns WHERE campaign_id=?", (campaign_id,)
            ).fetchone()
        return dict(row) if row is not None else None

    def campaigns(self, status: Optional[str] = None) -> List[Dict]:
        """All campaigns, newest submission first."""
        query = "SELECT * FROM campaigns"
        params: Tuple = ()
        if status is not None:
            query += " WHERE status=?"
            params = (status,)
        query += " ORDER BY submitted_at DESC, campaign_id"
        with self._lock:
            rows = self._conn.execute(query, params).fetchall()
        return [dict(row) for row in rows]

    def shards(self, campaign_id: str) -> List[Dict]:
        """One campaign's shard provenance rows, in shard-index order."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT * FROM shards WHERE campaign_id=? "
                "ORDER BY shard_index",
                (campaign_id,),
            ).fetchall()
        return [dict(row) for row in rows]

    def class_counts(self, campaign_id: str) -> Dict[str, int]:
        """FAILURE/LATENT/SILENT counts of one campaign, from SQL."""
        counts = {fault_class.value: 0 for fault_class in FaultClass}
        with self._lock:
            rows = self._conn.execute(
                "SELECT verdict, COUNT(*) FROM fault_outcomes "
                "WHERE campaign_id=? GROUP BY verdict",
                (campaign_id,),
            ).fetchall()
        for verdict, count in rows:
            counts[verdict] = count
        return counts

    def counts(self) -> Dict[str, int]:
        """Row counts per table (db info / sanity checks)."""
        with self._lock:
            return {
                table: self._conn.execute(
                    f"SELECT COUNT(*) FROM {table}"
                ).fetchone()[0]
                for table in ("campaigns", "shards", "fault_outcomes")
            }

    # ------------------------------------------------------------------
    # cross-campaign queries
    # ------------------------------------------------------------------
    def flop_failure_rates(
        self,
        circuit: Optional[str] = None,
        fault_model: Optional[str] = None,
        limit: Optional[int] = None,
        mode: Optional[str] = None,
    ) -> List[Dict]:
        """Per-flop failure rate aggregated **across campaigns**.

        The query the JSONL store structurally cannot answer without
        rebuilding every campaign's scenario: how often does an upset
        in flop X propagate to an output, pooled over every campaign
        (optionally restricted to one circuit and/or fault model) in
        the database.

        Pooling gives every *fault* equal weight, so mixing sampled and
        exhaustive campaigns biases the rate toward whichever mode
        contributed more rows — an exhaustive campaign can drown a
        sampled one (or, with large samples over many campaigns, the
        reverse). ``mode`` scopes the aggregate: ``"exhaustive"`` pools
        only complete-population campaigns, ``"sampled"`` only sampled
        ones, ``None`` pools everything but flags the bias — each row
        then carries ``sampled_campaigns`` / ``exhaustive_campaigns``
        counts and ``mixed_pool`` is true where both contributed.
        Consumers that rank flops (the selective-hardening optimizer)
        should pass a mode or check the flag.
        """
        if mode not in (None, "sampled", "exhaustive"):
            raise ServiceError(
                f"unknown sampling-mode filter {mode!r}; expected "
                "'sampled', 'exhaustive' or None (pool everything)"
            )
        conditions = ["1=1"]
        params: List = []
        if circuit is not None:
            conditions.append("c.circuit = ?")
            params.append(circuit)
        if fault_model is not None:
            conditions.append("c.fault_model = ?")
            params.append(fault_model)
        if mode == "sampled":
            conditions.append("c.sample IS NOT NULL")
        elif mode == "exhaustive":
            conditions.append("c.sample IS NULL")
        query = (
            "SELECT o.flop AS flop, "
            "COUNT(DISTINCT o.campaign_id) AS campaigns, "
            "COUNT(DISTINCT CASE WHEN c.sample IS NOT NULL "
            "THEN o.campaign_id END) AS sampled_campaigns, "
            "COUNT(DISTINCT CASE WHEN c.sample IS NULL "
            "THEN o.campaign_id END) AS exhaustive_campaigns, "
            "COUNT(*) AS faults, "
            "SUM(o.verdict = 'failure') AS failures, "
            "ROUND(1.0 * SUM(o.verdict = 'failure') / COUNT(*), 6) "
            "AS failure_rate "
            "FROM fault_outcomes o "
            "JOIN campaigns c ON c.campaign_id = o.campaign_id "
            f"WHERE {' AND '.join(conditions)} "
            "GROUP BY o.flop "
            "ORDER BY failure_rate DESC, failures DESC, flop"
        )
        if limit is not None:
            query += " LIMIT ?"
            params.append(int(limit))
        with self._lock:
            rows = self._conn.execute(query, params).fetchall()
        results = []
        for row in rows:
            result = dict(row)
            result["mixed_pool"] = bool(
                result["sampled_campaigns"] and result["exhaustive_campaigns"]
            )
            results.append(result)
        return results

    def class_breakdown(self, group: str = "effective_circuit") -> List[Dict]:
        """Per-group verdict totals across all campaigns.

        ``group`` is a campaigns column (``effective_circuit``,
        ``circuit``, ``hardening``, ``fault_model``, ``status``) — the
        hardened-vs-plain failure trend is ``group="hardening"``.
        """
        if group not in (
            "effective_circuit", "circuit", "hardening", "fault_model",
            "status", "sampling", "testbench",
        ):
            raise ServiceError(f"cannot group the class breakdown by {group!r}")
        query = (
            f"SELECT COALESCE(c.{group}, 'none') AS grp, "
            "COUNT(DISTINCT c.campaign_id) AS campaigns, "
            "COUNT(*) AS faults, "
            "SUM(o.verdict = 'failure') AS failures, "
            "SUM(o.verdict = 'latent') AS latent, "
            "SUM(o.verdict = 'silent') AS silent, "
            "ROUND(1.0 * SUM(o.verdict = 'failure') / COUNT(*), 6) "
            "AS failure_rate "
            "FROM fault_outcomes o "
            "JOIN campaigns c ON c.campaign_id = o.campaign_id "
            "GROUP BY grp ORDER BY grp"
        )
        with self._lock:
            rows = self._conn.execute(query).fetchall()
        return [dict(row) for row in rows]
