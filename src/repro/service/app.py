"""The ``repro serve`` HTTP daemon.

Stdlib only: a :class:`http.server.ThreadingHTTPServer` front end over
the :class:`~repro.service.db.ResultsDB` (queries, status) and the
:class:`~repro.service.executor.CampaignExecutor` (grading). The API is
JSON over plain HTTP:

========  ==============================  =====================================
method    path                            meaning
========  ==============================  =====================================
GET       ``/``                           HTML dashboard
GET       ``/healthz``                    liveness + queue depth
POST      ``/campaigns``                  submit a CampaignSpec (idempotent)
GET       ``/campaigns``                  list campaigns
GET       ``/campaigns/<id>``             one campaign incl. live progress
GET       ``/campaigns/<id>/results``     per-class counts, shards, digest
DELETE    ``/campaigns/<id>``             cancel (queued or running)
GET       ``/query``                      cross-campaign aggregates
========  ==============================  =====================================

Submission is idempotent on the oracle-keyed campaign id: POSTing a
spec that already exists returns the stored campaign (HTTP 200, with
``"resubmitted": true``) instead of regrading — the same property the
CLI's resume path has, surfaced over the wire. A full queue is a 503,
a malformed spec a 400, an unknown id a 404; every error body is
``{"error": ...}``.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.errors import ReproError, ServiceError
from repro.run.runner import CampaignRunner
from repro.run.spec import CampaignSpec
from repro.service.dashboard import render_dashboard
from repro.service.db import DEFAULT_DB_FILENAME, ResultsDB
from repro.service.executor import DEFAULT_QUEUE_LIMIT, CampaignExecutor

#: largest accepted request body (a spec is a few hundred bytes)
MAX_BODY_BYTES = 1 << 20


class _Handler(BaseHTTPRequestHandler):
    """One request. ``self.server.service`` is the CampaignService."""

    server_version = "repro-serve"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    @property
    def service(self) -> "CampaignService":
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if self.service.verbose:
            super().log_message(format, *args)

    def _send_json(self, payload: Dict, status: int = 200) -> None:
        body = (json.dumps(payload, indent=2) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_html(self, markup: str, status: int = 200) -> None:
        body = markup.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "text/html; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, message: str, status: int) -> None:
        self._send_json({"error": message}, status=status)

    def _read_body(self) -> Optional[Dict]:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0 or length > MAX_BODY_BYTES:
            self._error("request body required (a JSON CampaignSpec)", 400)
            return None
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as error:
            self._error(f"request body is not JSON: {error}", 400)
            return None
        if not isinstance(payload, dict):
            self._error("request body must be a JSON object", 400)
            return None
        return payload

    def _route(self) -> Tuple[str, Dict]:
        parsed = urlparse(self.path)
        query = {
            key: values[-1] for key, values in parse_qs(parsed.query).items()
        }
        return parsed.path.rstrip("/") or "/", query

    # ------------------------------------------------------------------
    # GET
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        path, query = self._route()
        try:
            if path == "/":
                self._dashboard()
            elif path == "/healthz":
                self._healthz()
            elif path == "/campaigns":
                self._list_campaigns(query)
            elif path == "/query":
                self._query(query)
            elif path.startswith("/campaigns/"):
                parts = path.split("/")[2:]
                if len(parts) == 1:
                    self._get_campaign(parts[0])
                elif len(parts) == 2 and parts[1] == "results":
                    self._get_results(parts[0])
                else:
                    self._error(f"no route {path}", 404)
            else:
                self._error(f"no route {path}", 404)
        except ServiceError as error:
            self._error(str(error), 400)

    def _healthz(self) -> None:
        self._send_json(
            {
                "ok": True,
                "queue_depth": self.service.executor.queue_depth,
                "running": self.service.executor.current_campaign,
                "uptime_s": round(time.time() - self.service.started_at, 3),
            }
        )

    def _dashboard(self) -> None:
        db = self.service.db
        campaigns = db.campaigns()
        counts = {
            row["campaign_id"]: db.class_counts(row["campaign_id"])
            for row in campaigns
            if row["status"] in ("done", "imported")
        }
        self._send_html(
            render_dashboard(
                campaigns,
                counts,
                queue_depth=self.service.executor.queue_depth,
                started_at=self.service.started_at,
            )
        )

    def _list_campaigns(self, query: Dict) -> None:
        rows = self.service.db.campaigns(status=query.get("status"))
        self._send_json({"campaigns": rows, "count": len(rows)})

    def _get_campaign(self, campaign_id: str) -> None:
        row = self.service.db.campaign(campaign_id)
        if row is None:
            self._error(f"unknown campaign {campaign_id!r}", 404)
            return
        self._send_json(row)

    def _get_results(self, campaign_id: str) -> None:
        db = self.service.db
        row = db.campaign(campaign_id)
        if row is None:
            self._error(f"unknown campaign {campaign_id!r}", 404)
            return
        if row["status"] not in ("done", "imported"):
            self._send_json(
                {
                    "campaign_id": campaign_id,
                    "status": row["status"],
                    "detail": "results are available once the campaign "
                    "completes; poll GET /campaigns/<id> for progress",
                },
                status=409,
            )
            return
        self._send_json(
            {
                "campaign_id": campaign_id,
                "status": row["status"],
                "oracle_digest": row["oracle_digest"],
                "num_faults": row["num_faults"],
                "classes": db.class_counts(campaign_id),
                "total_cycles": row["total_cycles"],
                "emulation_ms": row["emulation_ms"],
                "us_per_fault": row["us_per_fault"],
                "shards": db.shards(campaign_id),
            }
        )

    def _query(self, query: Dict) -> None:
        kind = query.get("kind", "flop_failures")
        db = self.service.db
        if kind == "flop_failures":
            limit = int(query["limit"]) if "limit" in query else None
            mode = query.get("mode")
            if mode not in (None, "sampled", "exhaustive"):
                self._error(
                    f"unknown mode {mode!r}; expected sampled or exhaustive",
                    400,
                )
                return
            rows = db.flop_failure_rates(
                circuit=query.get("circuit"),
                fault_model=query.get("fault_model"),
                limit=limit,
                mode=mode,
            )
        elif kind == "classes":
            rows = db.class_breakdown(
                group=query.get("group", "effective_circuit")
            )
        else:
            self._error(
                f"unknown query kind {kind!r}; expected flop_failures or "
                "classes",
                400,
            )
            return
        self._send_json({"kind": kind, "rows": rows, "count": len(rows)})

    # ------------------------------------------------------------------
    # POST / DELETE
    # ------------------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        path, _ = self._route()
        if path != "/campaigns":
            self._error(f"no route POST {path}", 404)
            return
        payload = self._read_body()
        if payload is None:
            return
        try:
            spec = CampaignSpec.from_dict(payload)
        except ReproError as error:
            self._error(f"invalid campaign spec: {error}", 400)
            return
        except TypeError as error:
            self._error(f"invalid campaign spec: {error}", 400)
            return
        try:
            created, row = self.service.submit(spec)
        except ServiceError as error:
            self._error(str(error), 503)
            return
        row = dict(row)
        row["resubmitted"] = not created
        self._send_json(row, status=201 if created else 200)

    def do_DELETE(self) -> None:  # noqa: N802 - stdlib naming
        path, _ = self._route()
        parts = path.split("/")
        if len(parts) != 3 or parts[1] != "campaigns":
            self._error(f"no route DELETE {path}", 404)
            return
        campaign_id = parts[2]
        try:
            outcome = self.service.db.request_cancel(campaign_id)
        except ServiceError as error:
            self._error(str(error), 404)
            return
        if outcome is None:
            row = self.service.db.campaign(campaign_id)
            self._send_json(
                {
                    "campaign_id": campaign_id,
                    "status": row["status"],
                    "detail": "campaign already finished; nothing to cancel",
                }
            )
            return
        self._send_json({"campaign_id": campaign_id, "status": outcome})


class CampaignService:
    """Database + executor + HTTP server, composed and lifecycle-managed.

    ``port=0`` binds an ephemeral port (exposed as ``self.port`` after
    construction) — the tests and the CI smoke rely on this to avoid
    port races.
    """

    def __init__(
        self,
        db_path: str,
        runner: CampaignRunner,
        host: str = "127.0.0.1",
        port: int = 8780,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
        verbose: bool = False,
    ):
        self.db = ResultsDB(db_path)
        self.executor = CampaignExecutor(
            self.db, runner, queue_limit=queue_limit
        )
        self.verbose = verbose
        self.started_at = time.time()
        self.httpd = ThreadingHTTPServer((host, port), _Handler)
        self.httpd.daemon_threads = True
        self.httpd.service = self  # type: ignore[attr-defined]
        self.host, self.port = self.httpd.server_address[:2]
        self._serve_thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # submission (shared by HTTP handler and any in-process caller)
    # ------------------------------------------------------------------
    def submit(self, spec: CampaignSpec) -> Tuple[bool, Dict]:
        """Idempotent submit: record in the DB, then enqueue if new."""
        created, row = self.db.submit(spec)
        if created:
            try:
                self.executor.submit(spec)
            except ServiceError:
                # Queue full: roll the queued row back so a retry after
                # drain re-creates it cleanly instead of stranding a
                # 'queued' campaign no executor will ever pick up.
                if row.get("status") == "queued":
                    self.db.delete_campaign(spec.campaign_id)
                raise
        return created, row

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start executor + HTTP server threads; returns immediately."""
        self.executor.start()
        self._serve_thread = threading.Thread(
            target=self.httpd.serve_forever,
            name="repro-service-http",
            daemon=True,
        )
        self._serve_thread.start()

    def serve_forever(self) -> None:
        """Blocking variant for the CLI entry point."""
        self.executor.start()
        try:
            self.httpd.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            self.shutdown()

    def shutdown(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        self.executor.stop(wait=False)
        self.db.close()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"


__all__ = [
    "CampaignService",
    "DEFAULT_DB_FILENAME",
    "DEFAULT_QUEUE_LIMIT",
    "MAX_BODY_BYTES",
]
