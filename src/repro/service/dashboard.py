"""Server-rendered HTML dashboard for the campaign service.

One self-contained page (inline CSS, meta-refresh, zero JavaScript and
zero assets) so ``GET /`` works from any browser pointed at the daemon
— including over an SSH port-forward to a headless campaign box. The
page is a *view* of the database, rendered per request; it holds no
state of its own.
"""

from __future__ import annotations

import html
import time
from typing import Dict, List, Optional

_STYLE = """
body { font-family: system-ui, sans-serif; margin: 2rem; color: #1a202c; }
h1 { font-size: 1.4rem; }
table { border-collapse: collapse; width: 100%; margin-top: 1rem; }
th, td { text-align: left; padding: 0.4rem 0.7rem;
         border-bottom: 1px solid #e2e8f0; font-size: 0.9rem; }
th { background: #f7fafc; }
code { background: #edf2f7; padding: 0.1rem 0.3rem; border-radius: 3px; }
.muted { color: #718096; }
.badge { padding: 0.15rem 0.5rem; border-radius: 9px; font-size: 0.8rem; }
.badge.queued    { background: #e2e8f0; }
.badge.running   { background: #bee3f8; }
.badge.done      { background: #c6f6d5; }
.badge.imported  { background: #c6f6d5; }
.badge.failed    { background: #fed7d7; }
.badge.cancelled { background: #feebc8; }
.bar { background: #edf2f7; border-radius: 3px; width: 100px;
       height: 0.7rem; display: inline-block; vertical-align: middle; }
.bar > span { background: #4299e1; height: 100%; display: block;
              border-radius: 3px; }
"""


def _progress_cell(row: Dict) -> str:
    total = row.get("num_shards") or 0
    done = row.get("shards_done") or 0
    if not total:
        return '<span class="muted">—</span>'
    percent = int(100 * done / total)
    return (
        f'<span class="bar"><span style="width:{percent}%"></span></span> '
        f"{done}/{total}"
    )


def _classes_cell(counts: Optional[Dict[str, int]]) -> str:
    if not counts or not sum(counts.values()):
        return '<span class="muted">—</span>'
    return (
        f"{counts.get('failure', 0)} / {counts.get('latent', 0)} / "
        f"{counts.get('silent', 0)}"
    )


def _age(timestamp: Optional[float], now: float) -> str:
    if not timestamp:
        return "—"
    seconds = max(0, int(now - timestamp))
    if seconds < 120:
        return f"{seconds}s ago"
    if seconds < 7200:
        return f"{seconds // 60}m ago"
    return f"{seconds // 3600}h ago"


def render_dashboard(
    campaigns: List[Dict],
    class_counts: Dict[str, Dict[str, int]],
    queue_depth: int,
    started_at: float,
) -> str:
    """The whole dashboard page, as a UTF-8 HTML string.

    ``class_counts`` maps campaign id → verdict counts (only terminal
    campaigns need entries). All user-originated strings are escaped —
    circuit names come from HTTP submissions.
    """
    now = time.time()
    active = sum(1 for row in campaigns if row["status"] == "running")
    terminal = sum(
        1 for row in campaigns if row["status"] in ("done", "imported")
    )
    rows = []
    for row in campaigns:
        status = html.escape(row["status"])
        digest = row.get("oracle_digest") or ""
        rows.append(
            "<tr>"
            f"<td><code><a href='/campaigns/{html.escape(row['campaign_id'])}'>"
            f"{html.escape(row['campaign_id'])}</a></code></td>"
            f"<td>{html.escape(row['effective_circuit'])}</td>"
            f"<td>{html.escape(row['fault_model'])}"
            f"<span class='muted'> · seed {row['seed']}</span></td>"
            f"<td><span class='badge {status}'>{status}</span></td>"
            f"<td>{_progress_cell(row)}</td>"
            f"<td>{_classes_cell(class_counts.get(row['campaign_id']))}</td>"
            f"<td><code>{html.escape(digest[:12]) or '—'}</code></td>"
            f"<td class='muted'>{_age(row.get('submitted_at'), now)}</td>"
            "</tr>"
        )
    body = "".join(rows) or (
        '<tr><td colspan="8" class="muted">no campaigns yet — '
        "POST a spec to /campaigns</td></tr>"
    )
    uptime = int(now - started_at)
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta http-equiv="refresh" content="5">
<title>repro campaign service</title>
<style>{_STYLE}</style>
</head>
<body>
<h1>repro campaign service</h1>
<p class="muted">{len(campaigns)} campaigns · {active} running ·
{terminal} completed · {queue_depth} queued in memory ·
up {uptime}s · auto-refreshes every 5s</p>
<table>
<tr><th>campaign</th><th>circuit</th><th>faults</th><th>status</th>
<th>progress</th><th>F / L / S</th><th>digest</th><th>submitted</th></tr>
{body}
</table>
<p class="muted">API: <code>POST /campaigns</code> ·
<code>GET /campaigns/&lt;id&gt;</code> ·
<code>GET /campaigns/&lt;id&gt;/results</code> ·
<code>GET /query?kind=flop_failures</code> —
see <code>docs/service.md</code>.</p>
</body>
</html>
"""
