"""Semantic validation of netlists.

``validate_netlist`` is the gatekeeper every pipeline stage calls before
trusting a netlist: elaboration output, instrumentation output and parsed
files all go through it. It checks what the incremental construction API
cannot: that every consumed net is driven, outputs are driven, and the
combinational logic is acyclic.
"""

from __future__ import annotations

from typing import List

from repro.errors import ValidationError
from repro.netlist.netlist import Netlist
from repro.netlist.topo import levelize


def validate_netlist(netlist: Netlist, allow_dangling: bool = False) -> None:
    """Raise :class:`ValidationError` describing every problem found.

    ``allow_dangling`` permits driven nets with no consumers (common in
    intermediate transform states); undriven *consumed* nets are always an
    error.
    """
    problems: List[str] = []

    for gate in netlist.gates.values():
        for net in gate.inputs:
            if not netlist.is_driven(net):
                problems.append(f"gate {gate.name}: input net {net!r} is undriven")
    for dff in netlist.dffs.values():
        if not netlist.is_driven(dff.d):
            problems.append(f"dff {dff.name}: data net {dff.d!r} is undriven")
    for net in netlist.outputs:
        if not netlist.is_driven(net):
            problems.append(f"primary output {net!r} is undriven")

    seen_outputs = set()
    for net in netlist.outputs:
        if net in seen_outputs:
            problems.append(f"output {net!r} listed twice")
        seen_outputs.add(net)

    if not allow_dangling:
        consumed = set(netlist.outputs)
        for gate in netlist.gates.values():
            consumed.update(gate.inputs)
        for dff in netlist.dffs.values():
            consumed.add(dff.d)
        for net in netlist.nets():
            if net not in consumed and not netlist.is_input(net):
                problems.append(f"net {net!r} is driven but never used")

    try:
        levelize(netlist)
    except ValidationError as error:
        problems.append(str(error))

    if problems:
        preview = "; ".join(problems[:8])
        if len(problems) > 8:
            preview += f"; ... ({len(problems) - 8} more)"
        raise ValidationError(f"netlist {netlist.name!r} invalid: {preview}")
