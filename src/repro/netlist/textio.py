"""Plain-text netlist serialisation (the ``.bnet`` format).

A deliberately small, line-oriented structural format so circuits can be
shipped as data files, diffed and hand-edited::

    circuit half_adder
    input a
    input b
    output sum
    output carry
    gate g1 xor a b -> sum
    gate g2 and a b -> carry
    dff r1 d=n3 q=n4 init=0

Lines starting with ``#`` are comments. Gate input order is positional
(significant for ``mux2``).
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from repro.errors import ParseError
from repro.logic.values import X
from repro.netlist.netlist import Netlist
from repro.netlist.validate import validate_netlist


def dumps_netlist(netlist: Netlist) -> str:
    """Serialise a netlist to ``.bnet`` text."""
    lines = [f"circuit {netlist.name}"]
    for net in netlist.inputs:
        lines.append(f"input {net}")
    for net in netlist.outputs:
        lines.append(f"output {net}")
    for gate in netlist.gates.values():
        joined = " ".join(gate.inputs)
        lines.append(f"gate {gate.name} {gate.gate_type} {joined} -> {gate.output}".replace("  ", " "))
    for dff in netlist.dffs.values():
        init = "x" if dff.init == X else str(dff.init)
        lines.append(f"dff {dff.name} d={dff.d} q={dff.q} init={init}")
    return "\n".join(lines) + "\n"


def loads_netlist(text: str, validate: bool = True) -> Netlist:
    """Parse ``.bnet`` text into a :class:`Netlist`."""
    netlist: Netlist | None = None
    declared_outputs: list[str] = []

    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        tokens = line.split()
        keyword = tokens[0]

        if keyword == "circuit":
            if netlist is not None:
                raise ParseError("duplicate 'circuit' line", line_number)
            if len(tokens) != 2:
                raise ParseError("expected: circuit <name>", line_number)
            netlist = Netlist(tokens[1])
            continue

        if netlist is None:
            raise ParseError("file must start with a 'circuit' line", line_number)

        if keyword == "input":
            if len(tokens) != 2:
                raise ParseError("expected: input <net>", line_number)
            netlist.add_input(tokens[1])
        elif keyword == "output":
            if len(tokens) != 2:
                raise ParseError("expected: output <net>", line_number)
            declared_outputs.append(tokens[1])
        elif keyword == "gate":
            _parse_gate(netlist, tokens, line_number)
        elif keyword == "dff":
            _parse_dff(netlist, tokens, line_number)
        else:
            raise ParseError(f"unknown keyword {keyword!r}", line_number)

    if netlist is None:
        raise ParseError("empty netlist file")
    for net in declared_outputs:
        netlist.add_output(net)
    if validate:
        validate_netlist(netlist)
    return netlist


def _parse_gate(netlist: Netlist, tokens: list, line_number: int) -> None:
    # gate <name> <type> <in...> -> <out>
    if "->" not in tokens:
        raise ParseError("gate line missing '->'", line_number)
    arrow = tokens.index("->")
    if arrow < 3 or arrow != len(tokens) - 2:
        raise ParseError(
            "expected: gate <name> <type> <inputs...> -> <output>", line_number
        )
    name, gate_type = tokens[1], tokens[2]
    inputs = tokens[3:arrow]
    output = tokens[arrow + 1]
    try:
        netlist.add_gate(name, gate_type, inputs, output)
    except Exception as error:
        raise ParseError(str(error), line_number) from error


def _parse_dff(netlist: Netlist, tokens: list, line_number: int) -> None:
    # dff <name> d=<net> q=<net> [init=<0|1|x>]
    if len(tokens) not in (4, 5):
        raise ParseError("expected: dff <name> d=<net> q=<net> [init=...]", line_number)
    name = tokens[1]
    fields = {}
    for token in tokens[2:]:
        if "=" not in token:
            raise ParseError(f"bad dff field {token!r}", line_number)
        key, value = token.split("=", 1)
        fields[key] = value
    if "d" not in fields or "q" not in fields:
        raise ParseError("dff needs d= and q= fields", line_number)
    init_text = fields.get("init", "0")
    if init_text == "x":
        init = X
    elif init_text in ("0", "1"):
        init = int(init_text)
    else:
        raise ParseError(f"bad init value {init_text!r}", line_number)
    try:
        netlist.add_dff(name, fields["d"], fields["q"], init)
    except Exception as error:
        raise ParseError(str(error), line_number) from error


def netlist_to_file(netlist: Netlist, path: Union[str, Path]) -> None:
    """Write a netlist to a ``.bnet`` file."""
    Path(path).write_text(dumps_netlist(netlist))


def netlist_from_file(path: Union[str, Path], validate: bool = True) -> Netlist:
    """Read a netlist from a ``.bnet`` file."""
    return loads_netlist(Path(path).read_text(), validate=validate)
