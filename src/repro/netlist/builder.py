"""Fluent construction helpers for netlists.

:class:`NetlistBuilder` removes the naming boilerplate from hand-written
circuits (tests, instrumentation transforms, the controller generator):
every helper invents fresh gate/net names and returns the output net, so
logic reads as data flow::

    b = NetlistBuilder("half_adder")
    a, c = b.input("a"), b.input("c")
    b.output_net("sum", b.xor_(a, c))
    b.output_net("carry", b.and_(a, c))
    netlist = b.build()
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import NetlistError
from repro.logic.values import Value
from repro.netlist.netlist import Netlist
from repro.netlist.validate import validate_netlist


class NetlistBuilder:
    """Incrementally builds a validated :class:`Netlist`."""

    def __init__(self, name: str):
        self.netlist = Netlist(name)
        self._gate_counter = 0

    # ------------------------------------------------------------------
    # ports
    # ------------------------------------------------------------------
    def input(self, net: str) -> str:
        """Declare and return a primary input net."""
        return self.netlist.add_input(net)

    def inputs(self, prefix: str, width: int) -> List[str]:
        """Declare a bus of inputs ``prefix[0..width)``."""
        return [self.input(f"{prefix}[{i}]") for i in range(width)]

    def output_net(self, name: str, source: str) -> str:
        """Expose ``source`` as primary output ``name`` (buffers if the
        name differs from the source net)."""
        if name == source:
            self.netlist.add_output(name)
            return name
        self._emit("buf", [source], name)
        self.netlist.add_output(name)
        return name

    def outputs(self, prefix: str, sources: Sequence[str]) -> List[str]:
        """Expose a bus of outputs ``prefix[i]`` fed by ``sources``."""
        return [
            self.output_net(f"{prefix}[{i}]", net) for i, net in enumerate(sources)
        ]

    # ------------------------------------------------------------------
    # gates
    # ------------------------------------------------------------------
    def _emit(self, gate_type: str, inputs: Sequence[str], out: Optional[str] = None) -> str:
        self._gate_counter += 1
        name = f"{gate_type}${self._gate_counter}"
        output = out if out is not None else self.netlist.fresh_net(gate_type)
        self.netlist.add_gate(name, gate_type, inputs, output)
        return output

    def const0(self) -> str:
        """A constant-0 net."""
        return self._emit("const0", [])

    def const1(self) -> str:
        """A constant-1 net."""
        return self._emit("const1", [])

    def buf(self, a: str, out: Optional[str] = None) -> str:
        """Buffer."""
        return self._emit("buf", [a], out)

    def inv(self, a: str, out: Optional[str] = None) -> str:
        """Inverter."""
        return self._emit("inv", [a], out)

    def and_(self, *nets: str, out: Optional[str] = None) -> str:
        """N-input AND (n>=2, or pass-through for a single net)."""
        return self._nary("and", nets, out)

    def or_(self, *nets: str, out: Optional[str] = None) -> str:
        """N-input OR."""
        return self._nary("or", nets, out)

    def nand_(self, *nets: str, out: Optional[str] = None) -> str:
        """N-input NAND."""
        return self._emit("nand", list(nets), out)

    def nor_(self, *nets: str, out: Optional[str] = None) -> str:
        """N-input NOR."""
        return self._emit("nor", list(nets), out)

    def xor_(self, *nets: str, out: Optional[str] = None) -> str:
        """N-input XOR (parity)."""
        return self._nary("xor", nets, out)

    def xnor_(self, a: str, b: str, out: Optional[str] = None) -> str:
        """2-input XNOR (equality)."""
        return self._emit("xnor", [a, b], out)

    def mux(self, select: str, if0: str, if1: str, out: Optional[str] = None) -> str:
        """2:1 mux: returns ``if1`` when ``select`` is 1, else ``if0``."""
        return self._emit("mux2", [select, if0, if1], out)

    def _nary(self, gate_type: str, nets: Sequence[str], out: Optional[str]) -> str:
        if not nets:
            raise NetlistError(f"{gate_type} needs at least one input")
        if len(nets) == 1:
            return self.buf(nets[0], out) if out is not None else nets[0]
        return self._emit(gate_type, list(nets), out)

    # ------------------------------------------------------------------
    # trees and reductions (keep fanin bounded for realistic mapping)
    # ------------------------------------------------------------------
    def reduce_tree(self, gate_type: str, nets: Sequence[str], arity: int = 4) -> str:
        """Balanced reduction tree of ``gate_type`` over ``nets``.

        Bounding gate fanin (default 4) keeps the netlist representative of
        what synthesis would feed a 4-LUT architecture.
        """
        if not nets:
            raise NetlistError("cannot reduce an empty net list")
        level = list(nets)
        while len(level) > 1:
            next_level: List[str] = []
            for start in range(0, len(level), arity):
                chunk = level[start : start + arity]
                if len(chunk) == 1:
                    next_level.append(chunk[0])
                else:
                    next_level.append(self._emit(gate_type, chunk))
            level = next_level
        return level[0]

    def or_reduce(self, nets: Sequence[str]) -> str:
        """OR-reduce a bus (any bit set)."""
        return self.reduce_tree("or", nets)

    def and_reduce(self, nets: Sequence[str]) -> str:
        """AND-reduce a bus (all bits set)."""
        return self.reduce_tree("and", nets)

    def equal(self, bus_a: Sequence[str], bus_b: Sequence[str]) -> str:
        """Bitwise equality comparator between two equal-width buses."""
        if len(bus_a) != len(bus_b):
            raise NetlistError("equal() requires equal-width buses")
        bits = [self.xnor_(a, b) for a, b in zip(bus_a, bus_b)]
        return self.and_reduce(bits)

    # ------------------------------------------------------------------
    # sequential
    # ------------------------------------------------------------------
    def dff(self, d: str, q: Optional[str] = None, init: Value = 0, name: Optional[str] = None) -> str:
        """D flip-flop; returns the q net."""
        q_net = q if q is not None else self.netlist.fresh_net("q")
        if name is None:
            name = f"ff${q_net}"
        self.netlist.add_dff(name, d, q_net, init)
        return q_net

    def register(self, d_bits: Sequence[str], prefix: str, init: int = 0) -> List[str]:
        """A word register: one dff per bit, named ``prefix[i]``."""
        q_bits: List[str] = []
        for index, d_net in enumerate(d_bits):
            q_bits.append(
                self.dff(d_net, q=f"{prefix}[{index}]", init=(init >> index) & 1,
                         name=f"ff${prefix}[{index}]")
            )
        return q_bits

    # ------------------------------------------------------------------
    def build(self, validate: bool = True, allow_dangling: bool = False) -> Netlist:
        """Finish construction; validates by default."""
        if validate:
            validate_netlist(self.netlist, allow_dangling=allow_dangling)
        return self.netlist
