"""Netlist statistics — sizes, depth, fanout — for reports and tests."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.netlist.netlist import Netlist
from repro.netlist.topo import combinational_levels


@dataclass
class NetlistStats:
    """Summary statistics of one netlist."""

    name: str
    num_inputs: int
    num_outputs: int
    num_gates: int
    num_ffs: int
    logic_depth: int
    gate_type_counts: Dict[str, int] = field(default_factory=dict)
    max_fanout: int = 0

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.name}: {self.num_inputs} in / {self.num_outputs} out, "
            f"{self.num_gates} gates, {self.num_ffs} FFs, "
            f"depth {self.logic_depth}, max fanout {self.max_fanout}"
        )


def netlist_stats(netlist: Netlist) -> NetlistStats:
    """Compute :class:`NetlistStats` for a netlist."""
    type_counts: Dict[str, int] = {}
    for gate in netlist.gates.values():
        type_counts[gate.gate_type] = type_counts.get(gate.gate_type, 0) + 1

    levels = combinational_levels(netlist)
    depth = 1 + max(levels.values()) if levels else 0

    fanout_sizes = [len(users) for users in netlist.fanout_map().values()]
    max_fanout = max(fanout_sizes) if fanout_sizes else 0

    return NetlistStats(
        name=netlist.name,
        num_inputs=len(netlist.inputs),
        num_outputs=len(netlist.outputs),
        num_gates=netlist.num_gates,
        num_ffs=netlist.num_ffs,
        logic_depth=depth,
        gate_type_counts=type_counts,
        max_fanout=max_fanout,
    )
