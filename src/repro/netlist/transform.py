"""Netlist cleanup transforms.

Elaboration and instrumentation leave behind buffers, constants and
unreachable logic; these passes tidy the result before technology mapping
so that area numbers reflect real logic, the way a synthesis tool's
sweep/constant-propagation stages would.

All transforms return a *new* netlist; inputs are never mutated.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.logic.tables import eval_gate
from repro.logic.values import is_known
from repro.netlist.netlist import Dff, Gate, Netlist
from repro.netlist.topo import levelize


def _rebuild(
    source: Netlist,
    keep_gate: Dict[str, bool],
    net_substitution: Dict[str, str],
    name: Optional[str] = None,
) -> Netlist:
    """Copy ``source`` renaming consumed nets through ``net_substitution``
    and dropping gates where ``keep_gate`` is False."""

    def resolve(net: str) -> str:
        while net in net_substitution:
            net = net_substitution[net]
        return net

    result = Netlist(name or source.name)
    for net in source.inputs:
        result.add_input(net)
    for gate in source.gates.values():
        if keep_gate.get(gate.name, True):
            result.add_gate(
                gate.name,
                gate.gate_type,
                [resolve(n) for n in gate.inputs],
                gate.output,
            )
    for dff in source.dffs.values():
        result.add_dff(dff.name, resolve(dff.d), dff.q, dff.init)
    for net in source.outputs:
        resolved = resolve(net)
        if resolved == net:
            result.add_output(net)
        else:
            # Outputs must keep their names: re-buffer the substituted net.
            result.add_gate(f"obuf${net}", "buf", [resolved], net)
            result.add_output(net)
    return result


def remove_buffers(netlist: Netlist) -> Netlist:
    """Remove ``buf`` gates by rewiring consumers to the buffer input.

    Buffers driving primary outputs are kept (the output net name is part
    of the interface).
    """
    substitution: Dict[str, str] = {}
    keep: Dict[str, bool] = {}
    output_set = set(netlist.outputs)
    for gate in netlist.gates.values():
        if gate.gate_type == "buf" and gate.output not in output_set:
            substitution[gate.output] = gate.inputs[0]
            keep[gate.name] = False
    return _rebuild(netlist, keep, substitution)


def propagate_constants(netlist: Netlist) -> Netlist:
    """Fold gates whose inputs are known constants.

    Iterates to a fixed point in one topological pass: a gate whose inputs
    are all constant is replaced by a constant driver; partial constants
    are left alone (full Boolean simplification is the mapper's job).
    Flip-flops are never folded — their value is cycle-dependent.
    """
    constant_of: Dict[str, int] = {}
    keep: Dict[str, bool] = {}
    substitution: Dict[str, str] = {}

    # Nets driven by const gates seed the propagation.
    for gate in levelize(netlist):
        known_inputs = []
        all_known = True
        for net in gate.inputs:
            if net in constant_of:
                known_inputs.append(constant_of[net])
            else:
                all_known = False
                break
        if gate.gate_type in ("const0", "const1"):
            constant_of[gate.output] = 0 if gate.gate_type == "const0" else 1
            continue
        if all_known:
            value = eval_gate(gate.gate_type, known_inputs)
            if is_known(value):
                constant_of[gate.output] = int(value)

    if not constant_of:
        return netlist.clone()

    # Replace every folded gate by a shared const cell.
    result = Netlist(netlist.name)
    for net in netlist.inputs:
        result.add_input(net)

    const_nets: Dict[int, str] = {}

    def const_net(value: int) -> str:
        if value not in const_nets:
            net = result.fresh_net(f"const{value}")
            result.add_gate(f"konst${value}", f"const{value}", [], net)
            const_nets[value] = net
        return const_nets[value]

    def resolve(net: str) -> str:
        if net in constant_of:
            return const_net(constant_of[net])
        return net

    for gate in netlist.gates.values():
        if gate.output in constant_of:
            continue
        result.add_gate(
            gate.name, gate.gate_type, [resolve(n) for n in gate.inputs], gate.output
        )
    for dff in netlist.dffs.values():
        result.add_dff(dff.name, resolve(dff.d), dff.q, dff.init)
    for net in netlist.outputs:
        resolved = resolve(net)
        if resolved == net:
            result.add_output(net)
        else:
            result.add_gate(f"obuf${net}", "buf", [resolved], net)
            result.add_output(net)
    return sweep_dead_logic(result)


def sweep_dead_logic(netlist: Netlist, name: Optional[str] = None) -> Netlist:
    """Remove gates and flip-flops not reachable from any primary output.

    Reachability crosses flip-flops (a FF feeding reachable logic keeps its
    fanin cone alive). Primary inputs are always preserved — the interface
    is part of the contract.
    """
    live_nets = netlist.transitive_fanin(netlist.outputs)

    result = Netlist(name or netlist.name)
    for net in netlist.inputs:
        result.add_input(net)
    for gate in netlist.gates.values():
        if gate.output in live_nets:
            result.add_gate(gate.name, gate.gate_type, gate.inputs, gate.output)
    for dff in netlist.dffs.values():
        if dff.q in live_nets:
            result.add_dff(dff.name, dff.d, dff.q, dff.init)
    for net in netlist.outputs:
        result.add_output(net)
    return result
