"""The core netlist data structure.

Nets are plain strings; gates and flip-flops are small named records that
reference nets. The :class:`Netlist` owns name uniqueness and driver
bookkeeping and offers the structural queries (driver, fanout, cones) the
rest of the library is built on.

Design choices:

* **Single clock domain, implicit clock.** The paper's emulation model is a
  synchronous circuit driven by one emulation clock; modelling the clock as
  a net would only add noise.
* **Flip-flops carry an ``init`` value** (0, 1 or X). SEU grading starts
  from a reset state, and instrumentation inserts flops with known resets.
* **Deterministic iteration order everywhere** (insertion-ordered dicts) so
  that compiled simulators, scan chains and reports are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import NetlistError
from repro.logic.tables import GATE_ARITY
from repro.logic.values import X, Value


@dataclass(frozen=True)
class Gate:
    """A combinational gate instance.

    ``inputs`` are net names in positional order (significant for ``mux2``:
    select, d0, d1). ``output`` is the single net this gate drives.
    """

    name: str
    gate_type: str
    inputs: Tuple[str, ...]
    output: str

    def __post_init__(self) -> None:
        if self.gate_type not in GATE_ARITY:
            raise NetlistError(f"unknown gate type {self.gate_type!r} in {self.name}")
        low, high = GATE_ARITY[self.gate_type]
        if len(self.inputs) < low or (high is not None and len(self.inputs) > high):
            raise NetlistError(
                f"gate {self.name}: {self.gate_type} cannot take "
                f"{len(self.inputs)} inputs"
            )


@dataclass(frozen=True)
class Dff:
    """A D flip-flop: ``q`` takes the value of ``d`` at each clock edge.

    ``init`` is the power-on/reset value of ``q`` (0, 1, or X for
    uninitialised).
    """

    name: str
    d: str
    q: str
    init: Value = 0

    def __post_init__(self) -> None:
        if self.init not in (0, 1, X):
            raise NetlistError(f"dff {self.name}: bad init value {self.init!r}")


class Netlist:
    """A synchronous gate-level circuit.

    Construction is incremental (``add_input`` / ``add_gate`` / ...); every
    mutation keeps the driver map consistent and rejects double-driven nets
    immediately, so a Netlist is structurally sound at all times. Semantic
    validation (combinational loops, floating nets) lives in
    :func:`repro.netlist.validate.validate_netlist`.
    """

    def __init__(self, name: str):
        self.name = name
        self.inputs: List[str] = []
        self.outputs: List[str] = []
        self.gates: Dict[str, Gate] = {}
        self.dffs: Dict[str, Dff] = {}
        self._driver: Dict[str, object] = {}
        self._input_set: set = set()
        self._fresh_counter = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_input(self, net: str) -> str:
        """Declare a primary input net."""
        self._claim_driver(net, "input")
        self.inputs.append(net)
        self._input_set.add(net)
        return net

    def add_output(self, net: str) -> str:
        """Declare a primary output net (must eventually be driven)."""
        if net in self.outputs:
            raise NetlistError(f"duplicate output {net!r}")
        self.outputs.append(net)
        return net

    def add_gate(
        self,
        name: str,
        gate_type: str,
        inputs: Sequence[str],
        output: str,
    ) -> Gate:
        """Add a combinational gate; rejects duplicate names and drivers."""
        if name in self.gates or name in self.dffs:
            raise NetlistError(f"duplicate instance name {name!r}")
        gate = Gate(name=name, gate_type=gate_type, inputs=tuple(inputs), output=output)
        self._claim_driver(output, gate)
        self.gates[name] = gate
        return gate

    def add_dff(self, name: str, d: str, q: str, init: Value = 0) -> Dff:
        """Add a flip-flop driving net ``q`` from net ``d``."""
        if name in self.gates or name in self.dffs:
            raise NetlistError(f"duplicate instance name {name!r}")
        dff = Dff(name=name, d=d, q=q, init=init)
        self._claim_driver(q, dff)
        self.dffs[name] = dff
        return dff

    def remove_gate(self, name: str) -> None:
        """Remove a gate and release its output net."""
        gate = self.gates.pop(name, None)
        if gate is None:
            raise NetlistError(f"no gate named {name!r}")
        del self._driver[gate.output]

    def remove_dff(self, name: str) -> None:
        """Remove a flip-flop and release its output net."""
        dff = self.dffs.pop(name, None)
        if dff is None:
            raise NetlistError(f"no dff named {name!r}")
        del self._driver[dff.q]

    def fresh_net(self, hint: str = "n") -> str:
        """Return a net name that is not yet driven or referenced."""
        while True:
            self._fresh_counter += 1
            candidate = f"{hint}${self._fresh_counter}"
            if candidate not in self._driver and candidate not in self.outputs:
                return candidate

    def _claim_driver(self, net: str, driver: object) -> None:
        if net in self._driver:
            raise NetlistError(f"net {net!r} is already driven")
        self._driver[net] = driver

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def driver_of(self, net: str) -> object:
        """Return the driver of a net: a Gate, a Dff, or the string
        ``"input"``. Raises for undriven nets."""
        try:
            return self._driver[net]
        except KeyError:
            raise NetlistError(f"net {net!r} has no driver") from None

    def is_driven(self, net: str) -> bool:
        """True when the net has a driver (gate, dff or primary input)."""
        return net in self._driver

    def is_input(self, net: str) -> bool:
        """True when the net is a primary input."""
        return net in self._input_set

    def nets(self) -> Iterator[str]:
        """Iterate over every driven net, in insertion order."""
        return iter(self._driver)

    def all_referenced_nets(self) -> set:
        """Every net that appears anywhere (driven or consumed)."""
        nets = set(self._driver)
        nets.update(self.outputs)
        for gate in self.gates.values():
            nets.update(gate.inputs)
        for dff in self.dffs.values():
            nets.add(dff.d)
        return nets

    def fanout_map(self) -> Dict[str, List[object]]:
        """Map each net to the list of instances that consume it."""
        fanout: Dict[str, List[object]] = {net: [] for net in self._driver}
        for gate in self.gates.values():
            for net in gate.inputs:
                fanout.setdefault(net, []).append(gate)
        for dff in self.dffs.values():
            fanout.setdefault(dff.d, []).append(dff)
        return fanout

    def transitive_fanin(self, roots: Iterable[str]) -> set:
        """All nets in the combinational-and-sequential fanin cone of
        ``roots`` (crossing flip-flops)."""
        seen: set = set()
        stack = list(roots)
        while stack:
            net = stack.pop()
            if net in seen or net not in self._driver:
                continue
            seen.add(net)
            driver = self._driver[net]
            if isinstance(driver, Gate):
                stack.extend(driver.inputs)
            elif isinstance(driver, Dff):
                stack.append(driver.d)
        return seen

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    @property
    def num_ffs(self) -> int:
        """Number of flip-flops (the paper's key size metric)."""
        return len(self.dffs)

    @property
    def num_gates(self) -> int:
        """Number of combinational gates."""
        return len(self.gates)

    def ff_names(self) -> List[str]:
        """Flip-flop names in deterministic (insertion) order — this order
        defines scan-chain position and fault indexing everywhere."""
        return list(self.dffs)

    def clone(
        self,
        name: Optional[str] = None,
        skip_dffs: Iterable[str] = (),
    ) -> "Netlist":
        """Deep-copy the netlist (records are immutable, so this is a
        cheap re-registration). ``skip_dffs`` omits the named flip-flops
        — transforms that replace flops (e.g. hardening) start from such
        a partial copy."""
        skip = set(skip_dffs)
        copy = Netlist(name or self.name)
        for net in self.inputs:
            copy.add_input(net)
        for net in self.outputs:
            copy.add_output(net)
        for gate in self.gates.values():
            copy.add_gate(gate.name, gate.gate_type, gate.inputs, gate.output)
        for dff in self.dffs.values():
            if dff.name not in skip:
                copy.add_dff(dff.name, dff.d, dff.q, dff.init)
        copy._fresh_counter = self._fresh_counter
        return copy

    def __repr__(self) -> str:
        return (
            f"Netlist({self.name!r}: {len(self.inputs)} in, "
            f"{len(self.outputs)} out, {self.num_gates} gates, "
            f"{self.num_ffs} ffs)"
        )
