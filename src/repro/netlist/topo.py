"""Topological ordering of combinational logic.

Levelization treats primary inputs, flip-flop outputs and constant gates as
sources and orders the remaining gates so that every gate appears after all
of its fanin. The compiled simulator and the LUT mapper both consume this
order; a cycle (combinational loop) is a hard error.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import ValidationError
from repro.netlist.netlist import Gate, Netlist


def levelize(netlist: Netlist) -> List[Gate]:
    """Return all gates in topological order (Kahn's algorithm).

    Raises :class:`ValidationError` naming the gates on a combinational
    loop if one exists.
    """
    # Pending fanin count per gate: inputs driven by other gates only
    # (primary inputs and dff outputs are always ready).
    pending: Dict[str, int] = {}
    consumers: Dict[str, List[Gate]] = {}
    for gate in netlist.gates.values():
        count = 0
        for net in gate.inputs:
            if netlist.is_driven(net) and isinstance(netlist.driver_of(net), Gate):
                count += 1
                consumers.setdefault(net, []).append(gate)
        pending[gate.name] = count

    ready = [gate for gate in netlist.gates.values() if pending[gate.name] == 0]
    order: List[Gate] = []
    cursor = 0
    while cursor < len(ready):
        gate = ready[cursor]
        cursor += 1
        order.append(gate)
        for consumer in consumers.get(gate.output, ()):
            pending[consumer.name] -= 1
            if pending[consumer.name] == 0:
                ready.append(consumer)

    if len(order) != len(netlist.gates):
        stuck = sorted(name for name, count in pending.items() if count > 0)
        raise ValidationError(
            f"combinational loop in {netlist.name!r} involving gates: "
            + ", ".join(stuck[:10])
            + ("..." if len(stuck) > 10 else "")
        )
    return order


def combinational_levels(netlist: Netlist) -> Dict[str, int]:
    """Map each gate name to its logic level (longest path from a source).

    Sources (inputs, dff outputs, constants) are level 0; a gate's level is
    1 + max level of its gate-driven fanins. Used for depth statistics and
    by the LUT mapper's depth-oriented cut ranking.
    """
    levels: Dict[str, int] = {}
    for gate in levelize(netlist):
        level = 0
        for net in gate.inputs:
            if netlist.is_driven(net):
                driver = netlist.driver_of(net)
                if isinstance(driver, Gate):
                    level = max(level, levels[driver.name] + 1)
        levels[gate.name] = level
    return levels
