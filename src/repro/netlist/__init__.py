"""Gate-level netlist representation.

A :class:`Netlist` is a single-clock synchronous circuit: primary inputs,
primary outputs, combinational gates (see :mod:`repro.logic.tables` for the
cell library) and D flip-flops. This is the common currency of the whole
library — circuits are elaborated to netlists, instrumented as netlists,
simulated as netlists and technology-mapped as netlists.
"""

from repro.netlist.builder import NetlistBuilder
from repro.netlist.netlist import Dff, Gate, Netlist
from repro.netlist.stats import NetlistStats, netlist_stats
from repro.netlist.textio import loads_netlist, netlist_from_file, netlist_to_file, dumps_netlist
from repro.netlist.topo import combinational_levels, levelize
from repro.netlist.transform import (
    propagate_constants,
    remove_buffers,
    sweep_dead_logic,
)
from repro.netlist.validate import validate_netlist

__all__ = [
    "Dff",
    "Gate",
    "Netlist",
    "NetlistBuilder",
    "NetlistStats",
    "combinational_levels",
    "dumps_netlist",
    "levelize",
    "loads_netlist",
    "netlist_from_file",
    "netlist_stats",
    "netlist_to_file",
    "propagate_constants",
    "remove_buffers",
    "sweep_dead_logic",
    "validate_netlist",
]
