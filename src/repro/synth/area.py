"""Area accounting in FPGA resources (LUTs, flip-flops, block RAM).

:class:`AreaReport` is the unit every Table-1 row is expressed in;
:class:`DeviceModel` describes the target part so reports can include
utilisation (the paper's board is a Xilinx Virtex-2000E).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.netlist.netlist import Netlist
from repro.synth.lutmap import map_to_luts


@dataclass(frozen=True)
class DeviceModel:
    """Capacity of one FPGA part."""

    name: str
    luts: int
    ffs: int
    block_ram_kbits: float

    def lut_utilisation(self, report: "AreaReport") -> float:
        """Fraction of the device's LUTs used."""
        return report.luts / self.luts

    def fits(self, report: "AreaReport") -> bool:
        """Whether the report fits on this device."""
        return (
            report.luts <= self.luts
            and report.ffs <= self.ffs
            and report.bram_kbits <= self.block_ram_kbits
        )


# XCV2000E: 19,200 slices x 2 LUTs/2 FFs; 160 BlockRAMs x 4 kbit.
VIRTEX_2000E = DeviceModel(
    name="Virtex-2000E", luts=38_400, ffs=38_400, block_ram_kbits=640.0
)


@dataclass
class AreaReport:
    """FPGA resources used by one netlist (plus optional RAM bits)."""

    name: str
    luts: int
    ffs: int
    bram_kbits: float = 0.0
    lut_depth: int = 0

    def overhead_vs(self, baseline: "AreaReport") -> "AreaOverhead":
        """Percentage overhead relative to a baseline circuit — the
        paper's Table 1 presentation."""
        return AreaOverhead(
            name=self.name,
            luts=self.luts,
            ffs=self.ffs,
            lut_overhead_pct=_pct(self.luts, baseline.luts),
            ff_overhead_pct=_pct(self.ffs, baseline.ffs),
            bram_kbits=self.bram_kbits,
        )

    def plus(self, other: "AreaReport", name: Optional[str] = None) -> "AreaReport":
        """Sum of two reports (modified circuit + controller = system)."""
        return AreaReport(
            name=name or f"{self.name}+{other.name}",
            luts=self.luts + other.luts,
            ffs=self.ffs + other.ffs,
            bram_kbits=self.bram_kbits + other.bram_kbits,
            lut_depth=max(self.lut_depth, other.lut_depth),
        )


@dataclass(frozen=True)
class AreaOverhead:
    """An area report annotated with overhead percentages.

    A percentage of ``None`` means the overhead is undefined: the
    baseline had zero of that resource while this circuit has some, so
    there is no finite ratio to print (rendered as ``n/a``).
    """

    name: str
    luts: int
    ffs: int
    lut_overhead_pct: Optional[float]
    ff_overhead_pct: Optional[float]
    bram_kbits: float

    def lut_cell(self) -> str:
        """Render like the paper: ``1,657 (41%)``."""
        if self.lut_overhead_pct is None:
            return f"{self.luts:,} (n/a)"
        return f"{self.luts:,} ({self.lut_overhead_pct:.0f}%)"

    def ff_cell(self) -> str:
        """Render like the paper: ``434 (102%)``."""
        if self.ff_overhead_pct is None:
            return f"{self.ffs:,} (n/a)"
        return f"{self.ffs:,} ({self.ff_overhead_pct:.0f}%)"


def _pct(value: int, baseline: int) -> Optional[float]:
    """Overhead of ``value`` over ``baseline`` in percent.

    Mirrors ``HardnessRow.failure_reduction_pct``'s handling of the
    degenerate baseline: growing from zero has no finite percentage
    (``None``, rendered ``n/a``), while zero-over-zero is a true 0%.
    """
    if baseline == 0:
        return 0.0 if value == 0 else None
    return 100.0 * (value - baseline) / baseline


def area_of(netlist: Netlist, k: int = 4, bram_kbits: float = 0.0) -> AreaReport:
    """Measure a netlist's area by LUT-mapping it."""
    mapping = map_to_luts(netlist, k=k)
    return AreaReport(
        name=netlist.name,
        luts=mapping.num_luts,
        ffs=netlist.num_ffs,
        bram_kbits=bram_kbits,
        lut_depth=mapping.depth,
    )
