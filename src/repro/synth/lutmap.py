"""Priority-cuts technology mapping onto k-input LUTs.

The classic FPGA mapping formulation: every combinational gate gets a set
of *cuts* (sets of <= k nets that fully determine its output); a mapping
selects one cut per needed gate so that every root (primary output or
flip-flop D input) is covered; each selected cut becomes one LUT.

The implementation follows the standard priority-cuts recipe:

1. topological order; each gate's cut set = cross-merge of its fanins'
   cut sets + the trivial cut, pruned to the ``cuts_per_node`` best by
   (depth, size);
2. a covering pass from the roots picks each gate's best cut and recurses
   into the cut leaves.

This is an area-oriented heuristic mapper, not an optimal one — exactly
the class of tool behind the paper's Table 1 numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Tuple

from repro.errors import SynthesisError
from repro.netlist.netlist import Gate, Netlist
from repro.netlist.topo import levelize

Cut = FrozenSet[str]


@dataclass
class LutMapping:
    """Result of mapping: one entry per LUT.

    ``luts`` maps each selected root net to its cut (the LUT's input
    nets). ``depth`` is the maximum LUT depth over all roots.
    """

    k: int
    luts: Dict[str, Cut] = field(default_factory=dict)
    depth: int = 0

    @property
    def num_luts(self) -> int:
        return len(self.luts)


def decompose_wide_gates(netlist: Netlist, k: int = 4) -> Netlist:
    """Split gates with more than ``k`` inputs into balanced trees.

    Mapping requires every gate to fit in one LUT in the worst case; the
    builder usually keeps fanin bounded, but hand-built or generated
    netlists may not.
    """
    wide = [gate for gate in netlist.gates.values() if len(gate.inputs) > k]
    if not wide:
        return netlist

    result = netlist.clone()
    for gate in wide:
        result.remove_gate(gate.name)
        _emit_tree(result, gate, k)
    return result


_TREE_INNER = {"and": "and", "or": "or", "nand": "and", "nor": "or", "xor": "xor", "xnor": "xor"}
_TREE_FINAL = {"and": "and", "or": "or", "nand": "nand", "nor": "nor", "xor": "xor", "xnor": "xnor"}


def _emit_tree(netlist: Netlist, gate: Gate, k: int) -> None:
    if gate.gate_type not in _TREE_INNER:
        raise SynthesisError(
            f"gate {gate.name} of type {gate.gate_type} has "
            f"{len(gate.inputs)} inputs and cannot be decomposed"
        )
    inner_type = _TREE_INNER[gate.gate_type]
    final_type = _TREE_FINAL[gate.gate_type]
    level: List[str] = list(gate.inputs)
    counter = 0
    while len(level) > k:
        next_level: List[str] = []
        for start in range(0, len(level), k):
            chunk = level[start : start + k]
            if len(chunk) == 1:
                next_level.append(chunk[0])
                continue
            counter += 1
            out = netlist.fresh_net(f"{gate.name}.t")
            netlist.add_gate(f"{gate.name}.t{counter}", inner_type, chunk, out)
            next_level.append(out)
        level = next_level
    netlist.add_gate(gate.name, final_type, level, gate.output)


def map_to_luts(
    netlist: Netlist, k: int = 4, cuts_per_node: int = 8
) -> LutMapping:
    """Map the combinational logic of ``netlist`` onto k-LUTs.

    Returns a :class:`LutMapping`; flip-flops are untouched (they map to
    the slice registers the area model counts separately).
    """
    if k < 2:
        raise SynthesisError("LUT size must be at least 2")
    working = decompose_wide_gates(netlist, k)

    order = levelize(working)
    gate_of_net: Dict[str, Gate] = {
        gate.output: gate for gate in working.gates.values()
    }

    # A net is a *leaf candidate* when it is not produced by a mappable
    # gate: primary inputs and flip-flop outputs. Constant gates produce
    # free constants (absorbed into LUT masks), handled specially below.
    def is_const(net: str) -> bool:
        gate = gate_of_net.get(net)
        return gate is not None and gate.gate_type in ("const0", "const1")

    # cut set and best depth per gate-driven net
    cuts: Dict[str, List[Tuple[int, Cut]]] = {}

    def leaf_depth(net: str) -> int:
        if net in cuts:
            return cuts[net][0][0]
        return 0  # primary input / flop output / constant

    for gate in order:
        if gate.gate_type in ("const0", "const1"):
            cuts[gate.output] = [(0, frozenset())]
            continue
        fanin_cutsets: List[List[Cut]] = []
        for net in gate.inputs:
            if net in cuts:
                fanin_cutsets.append([leaves for _, leaves in cuts[net]])
            else:
                fanin_cutsets.append([frozenset([net])])

        candidates: List[Cut] = [frozenset()]
        for cutset in fanin_cutsets:
            next_candidates: List[Cut] = []
            seen = set()
            for leaves_so_far in candidates:
                for leaves in cutset:
                    union = leaves_so_far | leaves
                    if len(union) > k or union in seen:
                        continue
                    seen.add(union)
                    next_candidates.append(union)
            # prune aggressively between merges to bound the cross product
            next_candidates.sort(key=len)
            candidates = next_candidates[: cuts_per_node * 2]
            if not candidates:
                break

        # the trivial cut: the gate's own inputs
        trivial = frozenset(gate.inputs)
        if len(trivial) <= k and trivial not in candidates:
            candidates.append(trivial)
        if not candidates:
            raise SynthesisError(
                f"gate {gate.name} has no feasible {k}-cut "
                f"(arity {len(gate.inputs)})"
            )

        # Cut depth: one LUT level on top of the deepest leaf. Leaf depth
        # is the leaf's own best-cut depth (0 for inputs/flops/constants);
        # topological order guarantees leaves are final by now.
        merged: Dict[Cut, int] = {}
        for leaves in candidates:
            depth_value = 1 + max(
                (leaf_depth(leaf) for leaf in leaves), default=0
            )
            if leaves not in merged or merged[leaves] > depth_value:
                merged[leaves] = depth_value

        ranked = sorted(
            ((depth_value, leaves) for leaves, depth_value in merged.items()),
            key=lambda item: (item[0], len(item[1])),
        )
        cuts[gate.output] = ranked[:cuts_per_node]

    # ------------------------------------------------------------------
    # covering from the roots
    # ------------------------------------------------------------------
    roots: List[str] = []
    seen_roots = set()
    for net in working.outputs:
        if net in cuts and net not in seen_roots:
            roots.append(net)
            seen_roots.add(net)
    for dff in working.dffs.values():
        if dff.d in cuts and dff.d not in seen_roots:
            roots.append(dff.d)
            seen_roots.add(dff.d)

    mapping = LutMapping(k=k)
    depth_of: Dict[str, int] = {}
    stack = list(roots)
    while stack:
        net = stack.pop()
        if net in mapping.luts or net not in cuts:
            continue
        best_depth, best_cut = _select_cut(cuts[net])
        if not best_cut and is_const(net):
            # constants cost no LUT
            depth_of[net] = 0
            continue
        mapping.luts[net] = best_cut
        depth_of[net] = best_depth
        for leaf in best_cut:
            if leaf in cuts and leaf not in mapping.luts:
                stack.append(leaf)

    mapping.depth = max(depth_of.values(), default=0)
    return mapping


def _select_cut(ranked: List[Tuple[int, Cut]]) -> Tuple[int, Cut]:
    """Pick the area-best cut: widest feasible cut first (covers the most
    logic per LUT), depth as tiebreak."""
    return min(ranked, key=lambda item: (-len(item[1]), item[0]))
