"""FPGA synthesis substrate: LUT technology mapping and area accounting.

The paper's Table 1 reports Virtex LUT/FF counts from Leonardo Spectrum;
we reproduce the *ratios* by mapping our gate-level netlists onto k-input
LUTs with a priority-cuts mapper and counting flip-flops structurally.
"""

from repro.synth.area import AreaReport, DeviceModel, VIRTEX_2000E, area_of
from repro.synth.lutmap import LutMapping, decompose_wide_gates, map_to_luts

__all__ = [
    "AreaReport",
    "DeviceModel",
    "LutMapping",
    "VIRTEX_2000E",
    "area_of",
    "decompose_wide_gates",
    "map_to_luts",
]
