"""``python -m repro`` — the campaign orchestration CLI."""

import sys

from repro.run.cli import main

if __name__ == "__main__":
    sys.exit(main())
