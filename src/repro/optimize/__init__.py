"""Selective-hardening design-space exploration (ROADMAP item 3).

Given an area budget or a target failure rate, search flop subsets and
mixed protection stacks for one circuit, grading every candidate as a
real (sampled, resumable, bit-exact) campaign and costing it by LUT
mapping the actually-built netlist. The result is a deterministic,
seeded Pareto front of failure rate against LUT/FF overhead — the
automated version of the paper's hand-made compare-the-columns tables.

Entry points: ``python -m repro optimize`` (CLI), or programmatically

    evaluator = Evaluator(base_spec, runner)
    result = explore(evaluator, SearchConfig(max_ff_overhead=100.0))
    print(pareto_report(base_spec, result).render())

See ``docs/optimize.md`` for strategy details and how to read the front.
"""

from repro.optimize.assignment import HardeningAssignment
from repro.optimize.evaluate import Evaluator, FlopRank, PointEval
from repro.optimize.report import ParetoReport, pareto_report
from repro.optimize.search import (
    DEFAULT_FRACTIONS,
    OptimizeResult,
    SearchConfig,
    explore,
)

__all__ = [
    "DEFAULT_FRACTIONS",
    "Evaluator",
    "FlopRank",
    "HardeningAssignment",
    "OptimizeResult",
    "ParetoReport",
    "PointEval",
    "SearchConfig",
    "explore",
    "pareto_report",
]
