"""Rendering an optimizer run: Pareto table, summary lines, JSON.

The table shows the Pareto front (cheapest to most protected) with the
anchors always included for orientation; the JSON form carries every
evaluated point plus the front/best markers, so downstream tooling can
re-plot the trade-off without re-grading anything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.optimize.evaluate import PointEval
from repro.optimize.search import OptimizeResult, SearchConfig
from repro.run.spec import CampaignSpec
from repro.util.tables import Table


def _fmt_pct(value: Optional[float]) -> str:
    return "n/a" if value is None else f"{value:+.0f}%"


def _fmt_rate(point: PointEval) -> str:
    if point.ci_half_width_pct is None:
        return f"{point.failure_rate_pct:.2f}"
    return f"{point.failure_rate_pct:.2f}±{point.ci_half_width_pct:.2f}"


@dataclass
class ParetoReport:
    """One optimizer run, renderable as text or JSON."""

    base: CampaignSpec
    result: OptimizeResult

    @property
    def config(self) -> SearchConfig:
        return self.result.config

    # ------------------------------------------------------------------
    # derived markers
    # ------------------------------------------------------------------
    def dominates_full_tmr(self, point: PointEval) -> bool:
        """Whether ``point`` Pareto-dominates the all-flops TMR anchor on
        the failure-rate-vs-FF plane (the paper's headline trade-off)."""
        full = self.result.full_scheme("tmr")
        if full is None or point.assignment == full.assignment:
            return False
        mine = (point.failure_rate_pct, point.ffs)
        theirs = (full.failure_rate_pct, full.ffs)
        return all(a <= b for a, b in zip(mine, theirs)) and mine != theirs

    # ------------------------------------------------------------------
    # text
    # ------------------------------------------------------------------
    def render(self) -> str:
        front = self.result.front()
        best = self.result.best()
        sampled = any(p.estimate is not None for p in self.result.points)
        title = (
            f"Selective-hardening Pareto front — {self.base.circuit} "
            f"({self.base.fault_model}, seed {self.config.seed}, "
            f"{self.result.plain.population:,}-fault plain population, "
            f"{len(self.result.points)} points evaluated)"
        )
        table = Table(
            ["point", "FFs", "LUTs",
             "fail %" + (" (±95% CI)" if sampled else ""), "notes"],
            title=title,
        )
        front_set = {id(point) for point in front}
        anchors = [
            point
            for point in self.result.points
            if id(point) not in front_set
            and (
                point.assignment.is_plain
                or point.assignment.layers == (("tmr", None),)
            )
        ]
        rows = sorted(front + anchors, key=lambda p: (p.ffs, p.luts, p.label))
        for point in rows:
            notes = []
            if id(point) not in front_set:
                notes.append("dominated")
            if best is not None and point.assignment == best.assignment:
                notes.append("best")
            if self.dominates_full_tmr(point):
                notes.append("beats full tmr")
            if not self.config.within_budget(point):
                notes.append("over budget")
            if point.detected_rate_pct > 0:
                notes.append(f"{point.detected_rate_pct:.1f}% detected")
            ffs = f"{point.ffs:,} ({_fmt_pct(point.ff_overhead_pct)})"
            luts = f"{point.luts:,} ({_fmt_pct(point.lut_overhead_pct)})"
            table.add_row(
                [point.label, ffs, luts, _fmt_rate(point), ", ".join(notes)]
            )
        lines = [table.render()]
        budget_bits = []
        if self.config.max_ff_overhead is not None:
            budget_bits.append(f"FF overhead <= {self.config.max_ff_overhead:g}%")
        if self.config.max_lut_overhead is not None:
            budget_bits.append(
                f"LUT overhead <= {self.config.max_lut_overhead:g}%"
            )
        if self.config.target_rate is not None:
            budget_bits.append(
                f"failure rate <= {self.config.target_rate:g}%"
            )
        if budget_bits:
            lines.append("  budget: " + ", ".join(budget_bits))
        if best is not None:
            lines.append(
                f"  best: {best.label} — fail {_fmt_rate(best)}%, "
                f"{best.ffs:,} FFs ({_fmt_pct(best.ff_overhead_pct)}), "
                f"{best.luts:,} LUTs ({_fmt_pct(best.lut_overhead_pct)})"
            )
        else:
            lines.append(
                "  best: none — no evaluated point satisfies the budget"
            )
        if any(p.detected_rate_pct > 0 for p in self.result.points):
            lines.append(
                "  fail % counts unprotected failures only — upsets "
                "flagged by a detection layer (dwc/parity) are handled, "
                "not silent corruption; their share is the notes' "
                "'detected' figure"
            )
        if sampled:
            lines.append(
                "  rates are Wilson 95% estimates from sampled campaigns; "
                "rerun with a larger --sample (or --adaptive-half-width) "
                "to tighten the intervals"
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # JSON
    # ------------------------------------------------------------------
    def to_json(self) -> Dict:
        front = self.result.front()
        best = self.result.best()
        front_ids = {id(point) for point in front}

        def encode(point: PointEval) -> Dict:
            return {
                "label": point.label,
                "layers": point.assignment.to_json(),
                "circuit": point.assignment.circuit_name(self.base.circuit),
                "campaign_id": point.campaign_id,
                "failure_rate_pct": round(point.failure_rate_pct, 4),
                "detected_rate_pct": round(point.detected_rate_pct, 4),
                "ci_half_width_pct": (
                    None
                    if point.ci_half_width_pct is None
                    else round(point.ci_half_width_pct, 4)
                ),
                "graded_faults": point.graded_faults,
                "population": point.population,
                "ffs": point.ffs,
                "luts": point.luts,
                "ff_overhead_pct": (
                    None
                    if point.ff_overhead_pct is None
                    else round(point.ff_overhead_pct, 2)
                ),
                "lut_overhead_pct": (
                    None
                    if point.lut_overhead_pct is None
                    else round(point.lut_overhead_pct, 2)
                ),
                "on_front": id(point) in front_ids,
                "within_budget": self.config.within_budget(point),
                "dominates_full_tmr": self.dominates_full_tmr(point),
            }

        return {
            "circuit": self.base.circuit,
            "fault_model": self.base.fault_model,
            "seed": self.config.seed,
            "sample": self.base.sample,
            "budget": {
                "max_ff_overhead_pct": self.config.max_ff_overhead,
                "max_lut_overhead_pct": self.config.max_lut_overhead,
                "target_rate_pct": self.config.target_rate,
            },
            "schemes": list(self.config.schemes),
            "mixed_scheme": self.config.mixed_scheme,
            "ranking": [
                {
                    "flop": rank.flop,
                    "faults": rank.faults,
                    "failures": rank.failures,
                    "failure_rate": round(rank.failure_rate, 6),
                }
                for rank in self.result.ranking
            ],
            "points": [encode(point) for point in self.result.points],
            "front": [encode(point) for point in front],
            "best": None if best is None else encode(best),
        }


def pareto_report(
    base: CampaignSpec, result: OptimizeResult
) -> ParetoReport:
    return ParetoReport(base=base, result=result)
