"""Evaluating one hardening assignment: a real campaign plus real area.

The optimizer's inner loop. Every assignment is turned into an ordinary
:class:`~repro.run.spec.CampaignSpec` and graded through the caller's
:class:`~repro.run.runner.CampaignRunner` — sharded, store-backed and
resumable, bit-exact with serial grading — while its area cost is
measured by :func:`repro.synth.area.area_of` on the *actually built*
netlist (never estimated from flop counts). Evaluations are memoized by
canonical assignment, so the greedy ladder and the annealer share work.

**The metric is the unprotected failure rate.** Detection schemes (dwc,
parity) raise an error-flag primary output, so every upset they catch
grades as a FAILURE — by design (the hardness report reads that column
as detection coverage). For a design-space search that mixes masking
and detection that reading inverts the objective: a flagged failure is
a *handled* upset (the system can retry or reset), not silent data
corruption. A detection checker is a function of the protected storage
and the same next-state inputs the storage captures, so only an upset
on a covered flop — or on the checker's own storage bit — can raise
the flag (``HardeningScheme.detects``). That makes detection per-fault
attributable from the faulted flop's name alone: a FAILURE verdict
whose flop is covered by a detection layer is *detected*; the rest are
unprotected failures, and those are what the optimizer minimizes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, FrozenSet, List, Optional

from repro.faults.classify import FaultClass
from repro.faults.sampling import SampleEstimate
from repro.hardening import get_hardening_scheme
from repro.optimize.assignment import HardeningAssignment
from repro.run.runner import CampaignRunner
from repro.run.spec import CampaignSpec
from repro.synth.area import AreaReport, area_of


@dataclass(frozen=True)
class PointEval:
    """One evaluated design point of the search space."""

    assignment: HardeningAssignment
    campaign_id: str
    #: unprotected failures (FAILURE verdicts not covered by a detection
    #: layer) as a percentage of graded faults — the search objective
    failure_rate_pct: float
    #: FAILURE verdicts a detection layer flagged, same denominator
    detected_rate_pct: float
    estimate: Optional[SampleEstimate]
    graded_faults: int
    population: int
    luts: int
    ffs: int
    lut_overhead_pct: Optional[float]
    ff_overhead_pct: Optional[float]

    @property
    def label(self) -> str:
        return self.assignment.label

    @property
    def ci_half_width_pct(self) -> Optional[float]:
        """Wilson half-width in percentage points (None = exhaustive)."""
        if self.estimate is None:
            return None
        return 100.0 * self.estimate.half_width

    def dominates(self, other: "PointEval") -> bool:
        """Pareto dominance on the (failure rate, FF, LUT) axes."""
        mine = (self.failure_rate_pct, self.ffs, self.luts)
        theirs = (other.failure_rate_pct, other.ffs, other.luts)
        return all(a <= b for a, b in zip(mine, theirs)) and mine != theirs


@dataclass(frozen=True)
class FlopRank:
    """One flop's failure statistics in the plain-circuit ranking."""

    flop: str
    faults: int
    failures: int

    @property
    def failure_rate(self) -> float:
        return self.failures / self.faults if self.faults else 0.0


class Evaluator:
    """Memoized assignment -> :class:`PointEval` evaluation.

    ``base`` must describe the *plain* circuit; every point reuses its
    stimulus, seed, fault model and sample size, so points differ in
    exactly the protection. With ``adaptive_half_width`` set, each point
    is graded through :meth:`CampaignRunner.run_adaptive` (the sample
    grows until the failure-rate interval reaches the target width);
    otherwise one campaign at the base spec's ``sample`` is graded.
    """

    def __init__(
        self,
        base: CampaignSpec,
        runner: Optional[CampaignRunner] = None,
        adaptive_half_width: Optional[float] = None,
    ):
        self.base = base
        self.runner = runner or CampaignRunner()
        self.adaptive_half_width = adaptive_half_width
        self._memo: Dict[HardeningAssignment, PointEval] = {}
        self._baseline_area: Optional[AreaReport] = None

    @property
    def evaluations(self) -> int:
        """Distinct campaigns graded so far."""
        return len(self._memo)

    def baseline_area(self) -> AreaReport:
        if self._baseline_area is None:
            self._baseline_area = area_of(self.base.build_netlist())
        return self._baseline_area

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def evaluate(self, assignment: HardeningAssignment) -> PointEval:
        if assignment in self._memo:
            return self._memo[assignment]
        spec = assignment.spec_for(self.base)
        netlist = spec.build_netlist()
        area = area_of(netlist)
        population = spec.population_size(netlist)
        sampled = True
        if self.adaptive_half_width is not None:
            adaptive = self.runner.run_adaptive(
                spec, target_half_width=self.adaptive_half_width
            )
            oracle = adaptive.oracle
            spec = adaptive.spec
            sampled = not adaptive.exhausted
        else:
            oracle = self.runner.grade(spec)
            sampled = oracle.num_faults < population
        detected_flops = self._detected_flops(assignment)
        flop_names = netlist.ff_names()
        failures = detected = 0
        for fault, verdict in zip(oracle.faults, oracle.verdicts()):
            if verdict is not FaultClass.FAILURE:
                continue
            name = fault.flop_name or flop_names[fault.flop_index]
            if name in detected_flops:
                detected += 1
            else:
                failures += 1
        estimate: Optional[SampleEstimate] = None
        if sampled:
            estimate = SampleEstimate(
                successes=failures, trials=oracle.num_faults
            )
        overhead = area.overhead_vs(self.baseline_area())
        point = PointEval(
            assignment=assignment,
            campaign_id=spec.campaign_id,
            failure_rate_pct=100.0 * failures / oracle.num_faults,
            detected_rate_pct=100.0 * detected / oracle.num_faults,
            estimate=estimate,
            graded_faults=oracle.num_faults,
            population=population,
            luts=area.luts,
            ffs=area.ffs,
            lut_overhead_pct=overhead.lut_overhead_pct,
            ff_overhead_pct=overhead.ff_overhead_pct,
        )
        self._memo[assignment] = point
        return point

    def _detected_flops(
        self, assignment: HardeningAssignment
    ) -> FrozenSet[str]:
        """Flop names whose upsets a detection layer flags.

        Replays the assignment's layers over the plain netlist: each
        detection layer covers its protected subset (every flop present
        at that stage when unrestricted) plus the storage bits it adds
        (parity register, dwc shadows) — an upset there raises the flag
        too, harmlessly. Masking layers applied on top never rename the
        flops they leave alone, so the covered names survive into the
        final netlist the campaign actually grades.
        """
        if not any(
            get_hardening_scheme(scheme).detects
            for scheme, _ in assignment.layers
        ):
            return frozenset()
        netlist = self.base.build_netlist()
        covered = set()
        for scheme_name, flops in assignment.layers:
            scheme = get_hardening_scheme(scheme_name)
            before = set(netlist.ff_names())
            netlist = scheme.apply(netlist, flops=flops)
            if scheme.detects:
                covered |= set(flops) if flops is not None else before
                covered |= set(netlist.ff_names()) - before
        return frozenset(covered)

    # ------------------------------------------------------------------
    # the seed ranking
    # ------------------------------------------------------------------
    def rank_flops(self) -> List[FlopRank]:
        """Per-flop failure rates of the plain circuit, worst first.

        This is the greedy search's seed ordering. The ranking campaign
        forces ``stratified`` sampling so every flop contributes faults
        even at small sample sizes (a uniformly-drawn 200-fault sample
        over a 10k population can miss flops entirely). Ties break by
        flop name, keeping the ranking deterministic.
        """
        spec = replace(self.base, sampling="stratified")
        oracle = self.runner.grade(spec)
        counts: Dict[str, List[int]] = {}
        for fault, verdict in zip(oracle.faults, oracle.verdicts()):
            flop = fault.flop_name or f"flop[{fault.flop_index}]"
            entry = counts.setdefault(flop, [0, 0])
            entry[0] += 1
            if verdict is FaultClass.FAILURE:
                entry[1] += 1
        ranks = [
            FlopRank(flop=flop, faults=faults, failures=failures)
            for flop, (faults, failures) in counts.items()
        ]
        ranks.sort(key=lambda rank: (-rank.failure_rate, rank.flop))
        return ranks
