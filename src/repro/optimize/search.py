"""Selective-hardening search: greedy ranking ladder + simulated annealing.

The paper's numbers show protection is wildly non-uniform: a few flops
carry most of a circuit's failure probability. The search exploits that:

1. **Anchors** — the plain circuit and every candidate scheme over all
   flops (full TMR is the classic 200%-FF reference point).
2. **Greedy ladder** — rank flops by plain-circuit failure rate, then
   evaluate each scheme over the top-k prefixes for a ladder of k
   (fractions of the flop count plus "every failing flop").
3. **Mixed stacks** — for each prefix, additionally guard every
   *remaining* flop with a cheap detection scheme (parity by default):
   TMR the hot flops, parity the rest. Every flop is then either masked
   or flagged, so the unprotected failure rate (see
   :mod:`repro.optimize.evaluate`) drops to zero at a fraction of full
   TMR's flip-flop cost — the classic hybrid-protection trade.
4. **Simulated annealing** — refine the best in-budget subset by
   add/remove/swap moves under a seeded, deterministic annealer whose
   objective is the failure rate plus a soft budget penalty.

Every candidate is a real campaign (see
:mod:`repro.optimize.evaluate`); the result is the set of evaluated
points, their Pareto front, and the best point under the caller's
budget. Same seed, same repo state -> identical front, bit for bit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import CampaignError
from repro.hardening import available_schemes
from repro.optimize.assignment import HardeningAssignment
from repro.optimize.evaluate import Evaluator, FlopRank, PointEval
from repro.util.rng import DeterministicRng

#: greedy ladder: protect these fractions of the circuit's flops
DEFAULT_FRACTIONS = (0.1, 0.25, 0.5, 0.75)


@dataclass(frozen=True)
class SearchConfig:
    """Budget, targets and knobs of one optimizer run."""

    schemes: Tuple[str, ...] = ("tmr",)
    mixed_scheme: Optional[str] = "parity"
    max_ff_overhead: Optional[float] = None
    max_lut_overhead: Optional[float] = None
    target_rate: Optional[float] = None
    fractions: Tuple[float, ...] = DEFAULT_FRACTIONS
    sa_iterations: int = 40
    sa_temperature: float = 4.0
    sa_cooling: float = 0.9
    seed: int = 0

    def __post_init__(self) -> None:
        for scheme in self.schemes + (
            (self.mixed_scheme,) if self.mixed_scheme else ()
        ):
            if scheme not in available_schemes():
                raise CampaignError(
                    f"unknown hardening scheme {scheme!r}; available: "
                    + ", ".join(available_schemes())
                )
        if not self.schemes:
            raise CampaignError("the optimizer needs at least one scheme")
        if self.sa_iterations < 0:
            raise CampaignError("sa_iterations must be >= 0")

    def within_budget(self, point: PointEval) -> bool:
        """Whether a point satisfies every configured area bound.

        A point whose overhead is undefined (``None`` — zero-resource
        baseline) cannot be certified against a bound and counts as
        out of budget.
        """
        if self.max_ff_overhead is not None:
            if point.ff_overhead_pct is None:
                return False
            if point.ff_overhead_pct > self.max_ff_overhead:
                return False
        if self.max_lut_overhead is not None:
            if point.lut_overhead_pct is None:
                return False
            if point.lut_overhead_pct > self.max_lut_overhead:
                return False
        return True


@dataclass
class OptimizeResult:
    """Everything one search run produced."""

    config: SearchConfig
    ranking: List[FlopRank]
    points: List[PointEval] = field(default_factory=list)

    @property
    def plain(self) -> PointEval:
        return next(p for p in self.points if p.assignment.is_plain)

    def full_scheme(self, scheme: str) -> Optional[PointEval]:
        """The all-flops anchor point of ``scheme``, if evaluated."""
        for point in self.points:
            if point.assignment.layers == ((scheme, None),):
                return point
        return None

    def front(self) -> List[PointEval]:
        """Non-dominated points on (failure rate, FFs, LUTs), sorted by
        ascending FF cost (descending failure rate along the front)."""
        front = [
            point
            for point in self.points
            if not any(
                other.dominates(point)
                for other in self.points
                if other is not point
            )
        ]
        front.sort(key=lambda p: (p.ffs, p.luts, p.failure_rate_pct, p.label))
        return front

    def best(self) -> Optional[PointEval]:
        """The winning point under the configured budget/target.

        With a target rate: the cheapest (FF, then LUT) point reaching
        it inside the budget. Otherwise: the lowest-failure-rate
        in-budget point, cost as tie-break. ``None`` when nothing
        qualifies.
        """
        eligible = [
            point
            for point in self.points
            if self.config.within_budget(point)
        ]
        if self.config.target_rate is not None:
            eligible = [
                point
                for point in eligible
                if point.failure_rate_pct <= self.config.target_rate
            ]
            eligible.sort(
                key=lambda p: (p.ffs, p.luts, p.failure_rate_pct, p.label)
            )
        else:
            eligible.sort(
                key=lambda p: (p.failure_rate_pct, p.ffs, p.luts, p.label)
            )
        return eligible[0] if eligible else None


def explore(evaluator: Evaluator, config: SearchConfig) -> OptimizeResult:
    """Run the full search; see the module docstring for the phases."""
    ranking = evaluator.rank_flops()
    result = OptimizeResult(config=config, ranking=ranking)
    seen = set()

    def visit(assignment: HardeningAssignment) -> PointEval:
        point = evaluator.evaluate(assignment)
        if assignment not in seen:
            seen.add(assignment)
            result.points.append(point)
        return point

    # 1. anchors
    visit(HardeningAssignment.plain())
    for scheme in config.schemes:
        visit(HardeningAssignment.single(scheme))

    # 2. greedy ladder over the ranking
    ordered = [rank.flop for rank in ranking]
    failing = [rank.flop for rank in ranking if rank.failures > 0]
    ladder = sorted(
        {
            max(1, round(fraction * len(ordered)))
            for fraction in config.fractions
        }
        | ({len(failing)} if failing else set())
    )
    ladder = [k for k in ladder if k < len(ordered)]
    for scheme in config.schemes:
        for k in ladder:
            visit(HardeningAssignment.single(scheme, ordered[:k]))

    # 3. mixed stacks: detection scheme under the masking prefix,
    # covering every flop the prefix leaves unmasked
    if config.mixed_scheme is not None:
        for scheme in config.schemes:
            for k in ladder:
                rest = ordered[k:]
                if not rest:
                    continue
                mixed = HardeningAssignment.single(
                    config.mixed_scheme, rest
                ).wrapped(scheme, ordered[:k])
                visit(mixed)

    # 4. simulated-annealing refinement of the best in-budget subset
    _anneal(evaluator, config, result, ordered, visit)
    return result


def _anneal(evaluator, config, result, ordered, visit) -> None:
    """Local refinement: add/remove/swap one flop of a TMR-style subset.

    Deterministic: the move stream comes from a seeded
    :class:`DeterministicRng` fork, the acceptance test replaces
    ``random()`` with an integer draw from the same stream, and every
    candidate evaluation is memoized — so reruns with one seed replay
    the identical trajectory.
    """
    if config.sa_iterations == 0 or not ordered:
        return
    scheme = config.schemes[0]
    starts = [
        point
        for point in result.points
        if len(point.assignment.layers) == 1
        and point.assignment.layers[0][0] == scheme
        and point.assignment.layers[0][1] is not None
        and config.within_budget(point)
    ]
    if not starts:
        return

    def objective(point: PointEval) -> float:
        penalty = 0.0
        if (
            config.max_ff_overhead is not None
            and point.ff_overhead_pct is not None
        ):
            penalty += 10.0 * max(
                0.0, point.ff_overhead_pct - config.max_ff_overhead
            )
        if (
            config.max_lut_overhead is not None
            and point.lut_overhead_pct is not None
        ):
            penalty += 10.0 * max(
                0.0, point.lut_overhead_pct - config.max_lut_overhead
            )
        return point.failure_rate_pct + penalty

    current = min(starts, key=lambda p: (objective(p), p.ffs, p.label))
    rng = DeterministicRng(config.seed).fork("optimize-sa")
    temperature = config.sa_temperature
    for _ in range(config.sa_iterations):
        subset = set(current.assignment.layers[0][1])
        inside = sorted(subset)
        outside = [flop for flop in ordered if flop not in subset]
        moves = []
        if outside:
            moves.append("add")
        if len(inside) > 1:
            moves.append("remove")
        if inside and outside:
            moves.append("swap")
        if not moves:
            break
        move = rng.choice(moves)
        if move == "add":
            subset.add(rng.choice(outside))
        elif move == "remove":
            subset.discard(rng.choice(inside))
        else:
            subset.discard(rng.choice(inside))
            subset.add(rng.choice(outside))
        candidate = visit(HardeningAssignment.single(scheme, sorted(subset)))
        delta = objective(candidate) - objective(current)
        if delta <= 0:
            current = candidate
        else:
            # acceptance draw from the same deterministic stream
            draw = rng.integer(0, 10**9) / 1e9
            if temperature > 0 and draw < math.exp(-delta / temperature):
                current = candidate
        temperature *= config.sa_cooling
