"""Hardening assignments: which scheme protects which flops.

An assignment is the optimizer's search-space point: an ordered stack of
``(scheme, flop subset)`` layers over one base circuit. The empty stack
is the plain circuit; one layer with ``flops=None`` is a classic
all-flops scheme; several layers compose mixed protection (e.g. parity
over most flops, TMR over the failure-prone few). Assignments serialise
to the registry's nested ``hardened:`` grammar, so every point the
optimizer visits is an ordinary, nameable, resumable campaign.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence, Tuple

from repro.errors import HardeningError
from repro.hardening import (
    canonical_flop_subset,
    format_scheme_segment,
    get_hardening_scheme,
)
from repro.run.spec import CampaignSpec

#: one protection layer: scheme name plus the flop subset it guards
#: (``None`` = every flop of the netlist the layer is applied to)
Layer = Tuple[str, Optional[Tuple[str, ...]]]


@dataclass(frozen=True)
class HardeningAssignment:
    """An ordered protection stack over one base circuit.

    ``layers[0]`` is applied first (innermost); later layers wrap the
    already-protected netlist. Subsets are canonicalised on
    construction, so equal assignments compare (and memoize) equal.
    """

    layers: Tuple[Layer, ...] = ()

    def __post_init__(self) -> None:
        canonical = []
        for scheme, flops in self.layers:
            get_hardening_scheme(scheme)  # fail early on unknown schemes
            if flops is not None:
                flops = canonical_flop_subset(flops)
            canonical.append((scheme, flops))
        object.__setattr__(self, "layers", tuple(canonical))

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def plain(cls) -> "HardeningAssignment":
        return cls(())

    @classmethod
    def single(
        cls, scheme: str, flops: Optional[Sequence[str]] = None
    ) -> "HardeningAssignment":
        return cls(((scheme, tuple(flops) if flops is not None else None),))

    def wrapped(
        self, scheme: str, flops: Optional[Sequence[str]] = None
    ) -> "HardeningAssignment":
        """This assignment with one more (outermost) layer."""
        layer: Layer = (scheme, tuple(flops) if flops is not None else None)
        return HardeningAssignment(self.layers + (layer,))

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    @property
    def is_plain(self) -> bool:
        return not self.layers

    def circuit_name(self, base: str) -> str:
        """The registry spelling of this assignment over ``base``."""
        name = base
        for scheme, flops in self.layers:
            name = f"hardened:{format_scheme_segment(scheme, flops)}:{name}"
        return name

    @property
    def label(self) -> str:
        """Compact human label: ``plain``, ``tmr``, ``tmr@5ff+parity@12ff``."""
        if self.is_plain:
            return "plain"
        parts = []
        for scheme, flops in self.layers:
            parts.append(
                scheme if flops is None else f"{scheme}@{len(flops)}ff"
            )
        # outermost first, matching the circuit-name spelling
        return "+".join(reversed(parts))

    def protected_flops(self) -> Tuple[str, ...]:
        """Every base-netlist flop named by any subset layer (sorted)."""
        names = set()
        for _, flops in self.layers:
            if flops is not None:
                names.update(flops)
        return tuple(sorted(names))

    def spec_for(self, base: CampaignSpec) -> CampaignSpec:
        """The campaign grading this assignment, derived from a plain
        base spec (same stimulus/seed/sampling — only the circuit
        changes, so points differ in exactly the protection)."""
        if base.hardening is not None or base.circuit.startswith("hardened:"):
            raise HardeningError(
                "the optimizer's base spec must be the plain circuit; got "
                f"{base.effective_circuit!r}"
            )
        return replace(
            base, circuit=self.circuit_name(base.circuit)
        )

    def to_json(self) -> list:
        """JSON form: outermost layer first, like the circuit name."""
        return [
            {
                "scheme": scheme,
                "flops": None if flops is None else list(flops),
            }
            for scheme, flops in reversed(self.layers)
        ]
