#!/usr/bin/env python3
"""Reproduce the paper's full b14 evaluation — a thin CLI demo.

Runs every experiment of Lopez-Ongil et al. (DATE 2005) on the
Viper-style b14 (32 inputs / 54 outputs / 215 flip-flops, 160 stimulus
vectors, 34,400 single faults) through the campaign CLI. Equivalent to::

    python -m repro report --circuit b14

Any extra arguments are forwarded (e.g. ``--workers 4`` to shard the
grading over a process pool, ``--no-crossover`` to skip the sweep).

Run:  python examples/b14_campaign.py
"""

import sys

from repro.run.cli import main

if __name__ == "__main__":
    sys.exit(main(["report", "--circuit", "b14", *sys.argv[1:]]))
