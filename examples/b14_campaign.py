#!/usr/bin/env python3
"""Reproduce the paper's full b14 evaluation.

Runs every experiment of Lopez-Ongil et al. (DATE 2005) on the
Viper-style b14 (32 inputs / 54 outputs / 215 flip-flops, 160 stimulus
vectors, 34,400 single faults): Table 1 (synthesis), Table 2 (emulation
times at 25 MHz), the fault-classification split, the baseline speed
comparison, the Figure-1 instrument census and the mask-scan/state-scan
crossover sweep. Paper reference numbers are printed inline.

Run:  python examples/b14_campaign.py
"""

import time

from repro.eval import ExperimentContext, run_all_experiments


def main():
    started = time.time()
    report = run_all_experiments(ExperimentContext(include_crossover=True))
    print(report.render())
    print()
    claims = report.crossover.paper_claims_hold()
    print("paper claim checks:")
    for claim, holds in claims.items():
        print(f"  {claim}: {'HOLDS' if holds else 'VIOLATED'}")
    fastest = report.table2.fastest()
    print(f"  fastest technique on b14: {fastest} "
          f"({'matches paper' if fastest == 'time_multiplexed' else 'differs!'})")
    print(f"\ncompleted in {time.time() - started:.1f}s")


if __name__ == "__main__":
    main()
