#!/usr/bin/env python3
"""Choosing an injection technique for *your* circuit.

The paper's conclusion: the best technique depends on the circuit —
state-scan's per-fault state insertion costs N flip-flop cycles, so it
loses to mask-scan's cycle-0 replay when N is large relative to the
testbench, and wins when testbenches are long; time-multiplexed is always
fastest but costs ~4x flip-flops. This example sweeps circuit families of
different shapes (shift-heavy, FSM-heavy, processor-like) and prints the
cycles/fault and area price of each technique, ending with a simple
recommendation per circuit.

Run:  python examples/technique_tradeoff.py
"""

from repro import TECHNIQUES, run_campaign
from repro.circuits.generators import (
    build_counter_bank,
    build_lfsr,
    build_pipeline,
    build_scaled_processor,
)
from repro.emu.system import AutonomousEmulator
from repro.faults.model import exhaustive_fault_list
from repro.sim.parallel import grade_faults
from repro.sim.vectors import random_testbench
from repro.util.tables import Table


def evaluate(circuit, num_cycles, seed=3):
    """cycles/fault per technique + LUT price of each system."""
    bench = random_testbench(circuit, num_cycles, seed=seed)
    faults = exhaustive_fault_list(circuit, num_cycles)
    oracle = grade_faults(circuit, bench, faults)
    row = {}
    for technique in TECHNIQUES:
        campaign = run_campaign(
            circuit, bench, technique, faults=faults, oracle=oracle
        )
        summary = AutonomousEmulator(
            circuit, technique,
            campaign_cycles=num_cycles, campaign_faults=len(faults),
        ).synthesize(num_cycles, len(faults))
        row[technique] = (
            campaign.timing.cycles_per_fault,
            summary.system.luts,
        )
    return row


def main():
    cases = [
        ("pipeline 8x8", build_pipeline(8, 8), 96),
        ("lfsr 24", build_lfsr(24), 256),
        ("counter bank 6x8", build_counter_bank(6, 8), 128),
        ("processor ~64ff", build_scaled_processor(64), 400),
    ]
    table = Table(
        ["circuit", "FFs", "cycles"]
        + [f"{t} c/f (LUTs)" for t in TECHNIQUES]
        + ["recommendation"],
        title="Technique trade-off across circuit shapes",
    )
    for name, circuit, cycles in cases:
        row = evaluate(circuit, cycles)
        fastest = min(row, key=lambda t: row[t][0])
        cheapest = min(row, key=lambda t: row[t][1])
        recommendation = (
            f"{fastest} (fastest)"
            if fastest == cheapest
            else f"{fastest} for speed, {cheapest} for area"
        )
        table.add_row(
            [name, circuit.num_ffs, cycles]
            + [f"{row[t][0]:.1f} ({row[t][1]:,})" for t in TECHNIQUES]
            + [recommendation]
        )
    print(table.render())
    print(
        "\nNote the paper's rule of thumb: state-scan overtakes mask-scan "
        "once the testbench is much longer than the flip-flop count; "
        "time-multiplexed is always fastest but pays ~4x flip-flops."
    )


if __name__ == "__main__":
    main()
