#!/usr/bin/env python3
"""Choosing an injection technique for *your* circuit — a thin CLI demo.

The paper's conclusion: the best technique depends on the circuit —
state-scan's per-fault state insertion costs N flip-flop cycles, so it
loses to mask-scan's cycle-0 replay when N is large relative to the
testbench, and wins when testbenches are long; time-multiplexed is always
fastest but costs ~4x flip-flops. This demo expands one declarative
``CampaignSpec.matrix`` per circuit shape, runs it through the campaign
runner (one shared oracle per circuit) and prints cycles/fault plus the
area price of each technique.

The per-circuit sweep is also available directly from the shell::

    python -m repro sweep --circuits pipeline --cycles 96 --testbench random

Run:  python examples/technique_tradeoff.py
"""

from repro import TECHNIQUES
from repro.circuits.registry import build_circuit
from repro.emu.system import AutonomousEmulator
from repro.run import CampaignRunner, CampaignSpec
from repro.util.tables import Table

#: (registered circuit name, testbench length) per circuit shape. The
#: names resolve to the registry's default shapes — pipeline 4x8 (32
#: FFs), lfsr 16, counter_bank 4x8 (32 FFs) — plus the parameterized
#: ~64-FF-budget processor; earlier revisions of this example built
#: slightly larger variants by hand, so absolute numbers differ.
CASES = [
    ("pipeline", 96),
    ("lfsr", 256),
    ("counter_bank", 128),
    ("proc:64", 400),
]


def main():
    runner = CampaignRunner()
    table = Table(
        ["circuit", "FFs", "cycles"]
        + [f"{t} c/f (LUTs)" for t in TECHNIQUES]
        + ["recommendation"],
        title="Technique trade-off across circuit shapes",
    )
    for name, cycles in CASES:
        specs = CampaignSpec.matrix(
            circuits=[name], num_cycles=cycles, testbench="random", seed=3
        )
        campaigns = runner.sweep(specs)
        circuit = build_circuit(name)
        row = {}
        for spec, campaign in zip(specs, campaigns):
            summary = AutonomousEmulator(
                circuit, spec.technique,
                campaign_cycles=cycles, campaign_faults=campaign.num_faults,
            ).synthesize(cycles, campaign.num_faults)
            row[spec.technique] = (
                campaign.timing.cycles_per_fault,
                summary.system.luts,
            )
        fastest = min(row, key=lambda t: row[t][0])
        cheapest = min(row, key=lambda t: row[t][1])
        recommendation = (
            f"{fastest} (fastest)"
            if fastest == cheapest
            else f"{fastest} for speed, {cheapest} for area"
        )
        table.add_row(
            [name, circuit.num_ffs, cycles]
            + [f"{row[t][0]:.1f} ({row[t][1]:,})" for t in TECHNIQUES]
            + [recommendation]
        )
    print(table.render())
    print(
        "\nNote the paper's rule of thumb: state-scan overtakes mask-scan "
        "once the testbench is much longer than the flip-flop count; "
        "time-multiplexed is always fastest but pays ~4x flip-flops."
    )


if __name__ == "__main__":
    main()
