#!/usr/bin/env python3
"""Quickstart: grade SEU faults in a small circuit in ~20 lines.

Builds a tiny accumulator in the RTL layer, runs an autonomous
time-multiplexed emulation campaign over every possible single-event
upset, and prints the fault dictionary — which flip-flops matter, and how
fast the campaign would run on the paper's 25 MHz board.

Run:  python examples/quickstart.py
"""

from repro import AutonomousEmulator, random_testbench
from repro.rtl import RtlModule, const, mux


def build_accumulator():
    """An 8-bit accumulator with an enable and a zero flag."""
    m = RtlModule("accumulator")
    data = m.input("data", 8)
    enable = m.input("enable", 1)
    total = m.register("total", 8, init=0)
    m.next(total, mux(enable[0], total, total + data))
    m.output("total", total)
    m.output("is_zero", total == const(8, 0))
    return m.elaborate()


def main():
    circuit = build_accumulator()
    print(f"circuit: {circuit}")

    testbench = random_testbench(circuit, num_cycles=64, seed=42)
    emulator = AutonomousEmulator(circuit, technique="time_multiplexed")

    result = emulator.run_campaign(testbench)
    print(result.summary())
    print()
    print(result.dictionary.summary())
    print()
    print("weakest flip-flops (most failures):")
    for name, failures in result.dictionary.weakest_flops(5):
        print(f"  {name:<16} {failures} failing injections")


if __name__ == "__main__":
    main()
