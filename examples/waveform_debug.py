#!/usr/bin/env python3
"""Debugging a single fault with the event simulator and VCD waveforms.

Fault grading tells you *that* an upset fails; debugging asks *how* the
corruption propagated. This example picks the worst flip-flop of the b01
comparator (most failing injections), replays one of its failing faults
on the event-driven simulator with a waveform recorder attached, and
writes a GTKWave-compatible VCD file of the propagation.

Run:  python examples/waveform_debug.py  [output.vcd]
"""

import sys

from repro import build_circuit, grade_faults, random_testbench
from repro.faults.classify import FaultClass
from repro.faults.model import exhaustive_fault_list
from repro.sim.event import EventSimulator
from repro.sim.waves import VcdRecorder


def main():
    out_path = sys.argv[1] if len(sys.argv) > 1 else "b01_fault.vcd"
    circuit = build_circuit("b01")
    bench = random_testbench(circuit, 48, seed=5)
    faults = exhaustive_fault_list(circuit, bench.num_cycles)
    graded = grade_faults(circuit, bench, faults)
    dictionary = graded.to_dictionary()

    worst_flop, _count = dictionary.weakest_flops(1)[0]
    target = next(
        record
        for record in dictionary
        if record.verdict is FaultClass.FAILURE
        and (record.fault.flop_name or "") == worst_flop
    )
    fault = target.fault
    print(f"replaying {fault.describe()} "
          f"(fails at cycle {target.fail_cycle}) on the event simulator")

    simulator = EventSimulator(circuit)
    recorder = VcdRecorder(circuit)
    simulator.observe(recorder.on_change)

    vectors = list(bench.as_dicts())
    for cycle, vector in enumerate(vectors):
        if cycle == fault.cycle:
            q_net = circuit.dffs[worst_flop].q
            current = simulator.values[q_net]
            simulator.poke_flop(worst_flop, current ^ 1)  # the SEU
        simulator.step(vector)

    recorder.write(out_path)
    print(f"wrote {out_path} ({simulator.events_processed} events simulated); "
          "open it in GTKWave to follow the corruption.")


if __name__ == "__main__":
    main()
