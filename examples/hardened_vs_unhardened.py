#!/usr/bin/env python3
"""Evaluating a hardened design — the workflow the paper motivates.

Fault-tolerance evaluation exists to answer: did my hardening work? This
example builds the same datapath twice — plain, and with its state
register protected by triple modular redundancy (TMR, majority-voted
flip-flop triplication) — and grades the complete single-fault set on
both. The TMR version should convert almost every failing upset into a
silent one, and the report quantifies exactly that, plus the area price
of the protection.

Run:  python examples/hardened_vs_unhardened.py
"""

from repro import grade_faults, random_testbench
from repro.faults.classify import FaultClass
from repro.faults.model import exhaustive_fault_list
from repro.netlist.builder import NetlistBuilder
from repro.synth import area_of


def build_datapath(hardened: bool):
    """A 8-bit running-xor datapath; optionally TMR-protected."""
    b = NetlistBuilder("tmr_datapath" if hardened else "plain_datapath")
    data = b.inputs("data", 8)

    state_bits = []
    if not hardened:
        for i in range(8):
            d_net = b.netlist.fresh_net(f"d{i}")
            q = b.dff(d_net, q=f"state[{i}]", init=0, name=f"ff$state[{i}]")
            state_bits.append((q, d_net))
    else:
        for i in range(8):
            d_net = b.netlist.fresh_net(f"d{i}")
            copies = [
                b.dff(d_net, init=0, name=f"ff$state{copy}[{i}]")
                for copy in range(3)
            ]
            # majority vote: ab | bc | ac
            voted = b.or_(
                b.and_(copies[0], copies[1]),
                b.and_(copies[1], copies[2]),
                b.and_(copies[0], copies[2]),
                out=f"state[{i}]",
            )
            state_bits.append((voted, d_net))

    # next state: rotate left then xor with input
    for i in range(8):
        voted_q, d_net = state_bits[i]
        rotated = state_bits[(i - 1) % 8][0]
        b.xor_(rotated, data[i], out=d_net)
    b.outputs("out", [q for q, _ in state_bits])
    return b.build()


def grade(circuit, cycles=96):
    bench = random_testbench(circuit, cycles, seed=11)
    faults = exhaustive_fault_list(circuit, cycles)
    result = grade_faults(circuit, bench, faults)
    return result.to_dictionary(), len(faults)


def main():
    for hardened in (False, True):
        circuit = build_datapath(hardened)
        area = area_of(circuit)
        dictionary, num_faults = grade(circuit)
        counts = dictionary.counts()
        failure_pct = 100 * counts[FaultClass.FAILURE] / num_faults
        label = "TMR-hardened" if hardened else "unprotected"
        print(f"{label:14} {area.luts:3} LUTs, {area.ffs:2} FFs | "
              f"{num_faults} faults: "
              f"{failure_pct:5.1f}% failure, "
              f"{100 * counts[FaultClass.LATENT] / num_faults:4.1f}% latent, "
              f"{100 * counts[FaultClass.SILENT] / num_faults:4.1f}% silent")
    print("\nTMR should drive the failure rate to (near) zero: any single "
          "flipped copy is outvoted and overwritten on the next cycle.")


if __name__ == "__main__":
    main()
