#!/usr/bin/env python3
"""Evaluating hardened designs — the workflow the paper motivates.

Fault-tolerance evaluation exists to answer: did my hardening work, and
what did it cost? The :mod:`repro.hardening` transforms generate the
protected versions automatically (TMR masks, DWC and parity detect), and
the hardness report grades plain vs hardened over any fault model:

    python -m repro report --hardness --circuit b04
    python -m repro harden --circuit b04 --scheme tmr -o b04_tmr.bnet

This example is the library-API spelling of the same workflow, plus a
taste of *selective* hardening (protect only part of the state and pay
only part of the area).

Run:  python examples/hardened_vs_unhardened.py
"""

from repro.circuits.registry import build_circuit
from repro.eval.hardness import run_hardness_experiment
from repro.hardening import harden_tmr
from repro.synth import area_of


def main():
    # Plain vs TMR vs DWC vs parity, complete single-fault set on b04.
    report = run_hardness_experiment(
        "b04", schemes=("tmr", "dwc", "parity"), fault_models=("seu",)
    )
    print(report.render())

    # Selective hardening: triplicate only the first 16 flops.
    plain = build_circuit("b04")
    subset = plain.ff_names()[:16]
    partial = harden_tmr(plain, flops=subset)
    overhead = area_of(partial).overhead_vs(area_of(plain))
    print(
        f"\nselective TMR ({len(subset)}/{plain.num_ffs} flops): "
        f"{overhead.lut_overhead_pct:+.0f}% LUTs, "
        f"{overhead.ff_overhead_pct:+.0f}% FFs "
        "— protection scales with the protected subset"
    )


if __name__ == "__main__":
    main()
