"""Tests for the on-disk artifact cache (compiled plans + golden traces).

Covers the properties the pooled runner depends on: artifacts written by
one process are readable by a later one (kill-and-resume), corrupted or
truncated entries are silently rebuilt — never trusted — and scenarios
below the campaign-scale thresholds stay session-only.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

import repro
from repro.circuits.registry import build_circuit
from repro.sim.cache import (
    DISK_MIN_CYCLES,
    DiskArtifactCache,
    cache_root,
    clear_caches,
    compiled_for,
    disk_cache,
    golden_for,
    netlist_digest,
)
from repro.sim.cycle import GoldenTrace
from repro.sim.vectors import random_testbench
from tests.conftest import build_counter

#: the scenario both restart processes rebuild — b04 (66 flops) at 40
#: cycles sits above both disk thresholds; the seeded testbench gives
#: an identical stimulus digest in every process.
_SCENARIO = """
from repro.circuits.registry import build_circuit
from repro.sim.cache import compiled_for, golden_for, netlist_digest
from repro.sim.vectors import random_testbench
netlist = build_circuit("b04")
bench = random_testbench(netlist, 40, seed=3)
"""


def _run_python(code: str, cache_dir: str) -> str:
    env = dict(os.environ)
    env["REPRO_CACHE_DIR"] = cache_dir
    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", code],
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    clear_caches()
    yield str(tmp_path)
    clear_caches()


def _golden_dir(netlist, bench) -> str:
    nd = netlist_digest(netlist)
    return os.path.join(
        cache_root(), nd[:2], nd, bench.stimulus_digest()
    )


class TestRestartSurvival:
    def test_artifacts_survive_a_killed_process(self, cache_dir):
        """Process one populates the cache and dies without cleanup
        (``os._exit``, the persistence profile of a kill); process two
        must resolve both artifacts from disk alone — compiling or
        re-running golden there is made fatal."""
        warm = _SCENARIO + (
            "import os\n"
            "golden = golden_for(compiled_for(netlist), bench)\n"
            "print(netlist_digest(netlist))\n"
            "print(sum(golden.outputs) % (10 ** 9))\n"
            "print(sum(golden.states) % (10 ** 9))\n"
            "os._exit(0)\n"
        )
        digest, outputs_sum, states_sum = _run_python(warm, cache_dir).split()

        resume = _SCENARIO + (
            "import repro.sim.cache as cache\n"
            "def boom(*a, **k): raise AssertionError('disk miss')\n"
            "cache.compile_netlist = boom\n"
            "cache.run_golden = boom\n"
            "golden = golden_for(compiled_for(netlist), bench)\n"
            "print(netlist_digest(netlist))\n"
            "print(sum(golden.outputs) % (10 ** 9))\n"
            "print(sum(golden.states) % (10 ** 9))\n"
        )
        assert _run_python(resume, cache_dir).split() == [
            digest, outputs_sum, states_sum,
        ]

    def test_cache_layout_is_content_keyed(self, cache_dir):
        netlist = build_circuit("b04")
        bench = random_testbench(netlist, 40, seed=3)
        golden_for(compiled_for(netlist), bench)
        nd = netlist_digest(netlist)
        base = os.path.join(cache_root(), nd[:2], nd)
        assert os.path.exists(os.path.join(base, "compiled.pkl"))
        assert os.path.exists(os.path.join(base, "compiled.meta.json"))
        golden_dir = os.path.join(base, bench.stimulus_digest())
        for name in ("golden_outputs.npy", "golden_states.npy", "meta.json"):
            assert os.path.exists(os.path.join(golden_dir, name))


class TestCorruptionRebuild:
    def _populate(self):
        netlist = build_circuit("b04")
        bench = random_testbench(netlist, 40, seed=3)
        golden = golden_for(compiled_for(netlist), bench)
        return netlist, bench, golden

    def test_flipped_golden_bytes_are_rebuilt_not_trusted(self, cache_dir):
        netlist, bench, golden = self._populate()
        expected = (list(golden.outputs), list(golden.states))
        path = os.path.join(_golden_dir(netlist, bench), "golden_outputs.npy")
        with open(path, "r+b") as handle:
            handle.seek(-1, os.SEEK_END)
            last = handle.read(1)[0]
            handle.seek(-1, os.SEEK_END)
            handle.write(bytes([last ^ 0xFF]))
        cache = disk_cache()
        key = (netlist_digest(netlist), bench.stimulus_digest())
        assert cache.load_golden(*key) is None  # checksum mismatch
        clear_caches()
        rebuilt = golden_for(compiled_for(netlist), bench)
        assert (list(rebuilt.outputs), list(rebuilt.states)) == expected
        # the rebuild overwrote the bad entry with a good one
        assert cache.load_golden(*key) is not None

    def test_truncated_golden_is_rebuilt(self, cache_dir):
        netlist, bench, golden = self._populate()
        expected = list(golden.outputs)
        path = os.path.join(_golden_dir(netlist, bench), "golden_states.npy")
        with open(path, "r+b") as handle:
            handle.truncate(8)
        clear_caches()
        rebuilt = golden_for(compiled_for(netlist), bench)
        assert list(rebuilt.outputs) == expected

    def test_corrupt_compiled_plan_is_rebuilt(self, cache_dir):
        netlist, bench, _ = self._populate()
        nd = netlist_digest(netlist)
        path = os.path.join(cache_root(), nd[:2], nd, "compiled.pkl")
        with open(path, "wb") as handle:
            handle.write(b"not a pickle")
        assert disk_cache().load_compiled(nd) is None
        clear_caches()
        compiled = compiled_for(netlist)  # silently recompiled
        assert compiled.num_flops == netlist.num_ffs
        assert disk_cache().load_compiled(nd) is not None

    def test_garbled_meta_json_is_a_miss(self, cache_dir):
        netlist, bench, _ = self._populate()
        meta = os.path.join(_golden_dir(netlist, bench), "meta.json")
        with open(meta, "w", encoding="utf-8") as handle:
            handle.write("{ definitely not json")
        key = (netlist_digest(netlist), bench.stimulus_digest())
        assert disk_cache().load_golden(*key) is None


class TestThresholdsAndRoundtrip:
    def test_small_scenarios_stay_session_only(self, cache_dir):
        netlist = build_counter(4)  # 4 flops < DISK_MIN_FLOPS
        bench = random_testbench(netlist, 2 * DISK_MIN_CYCLES, seed=1)
        golden_for(compiled_for(netlist), bench)
        nd = netlist_digest(netlist)
        assert not os.path.exists(os.path.join(cache_root(), nd[:2], nd))

    def test_golden_roundtrip_preserves_wide_words(self, tmp_path):
        """States wider than 64 bits (many-flop circuits pack into one
        big int) must roundtrip through the byte-matrix encoding."""
        cache = DiskArtifactCache(str(tmp_path))
        trace = GoldenTrace(num_cycles=2)
        trace.outputs.extend([0, (1 << 200) | 5])
        trace.states.extend([(1 << 130) - 1, 7, 1 << 199])
        cache.store_golden("ab" * 32, "cd" * 32, trace)
        loaded = cache.load_golden("ab" * 32, "cd" * 32)
        assert loaded is not None
        assert loaded.outputs == trace.outputs
        assert loaded.states == trace.states

    def test_missing_entry_is_none(self, tmp_path):
        cache = DiskArtifactCache(str(tmp_path))
        assert cache.load_golden("ab" * 32, "cd" * 32) is None
        assert cache.load_compiled("ab" * 32) is None

    def test_disk_cache_disabled_by_env(self, cache_dir, monkeypatch):
        monkeypatch.setenv("REPRO_DISK_CACHE", "0")
        assert disk_cache() is None
        netlist = build_circuit("b04")
        bench = random_testbench(netlist, 40, seed=3)
        golden_for(compiled_for(netlist), bench)
        nd = netlist_digest(netlist)
        assert not os.path.exists(os.path.join(cache_root(), nd[:2], nd))
