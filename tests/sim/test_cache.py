"""Tests for the session caches (digest-keyed golden traces)."""

from repro.sim.cache import clear_caches, compiled_for, golden_for
from repro.sim.vectors import Testbench, random_testbench
from tests.conftest import build_counter


class TestStimulusDigest:
    def test_memoized_on_object(self):
        netlist = build_counter(4)
        bench = random_testbench(netlist, 32, seed=1)
        first = bench.stimulus_digest()
        assert bench.__dict__["_stimulus_digest"] == first
        assert bench.stimulus_digest() is first  # memo hit, not recompute

    def test_equal_stimulus_equal_digest(self):
        netlist = build_counter(4)
        one = random_testbench(netlist, 32, seed=1)
        two = random_testbench(netlist, 32, seed=1)
        other = random_testbench(netlist, 32, seed=2)
        assert one.stimulus_digest() == two.stimulus_digest()
        assert one.stimulus_digest() != other.stimulus_digest()

    def test_digest_depends_on_names_and_vectors(self):
        plain = Testbench(["a", "b"], [1, 2, 3])
        renamed = Testbench(["a", "c"], [1, 2, 3])
        shifted = Testbench(["a", "b"], [1, 2, 2])
        assert plain.stimulus_digest() != renamed.stimulus_digest()
        assert plain.stimulus_digest() != shifted.stimulus_digest()

    def test_framing_is_unambiguous(self):
        # [0x12] vs [0x1, 0x2]: a naive concatenation would collide
        one = Testbench(["a", "b", "c", "d", "e"], [0x12])
        two = Testbench(["a", "b", "c", "d", "e"], [0x1, 0x2])
        assert one.stimulus_digest() != two.stimulus_digest()

    def test_names_vectors_boundary_is_unambiguous(self):
        # a name ending in hex/'/' must not absorb vector framing
        one = Testbench(["n"], [1, 0])
        two = Testbench(["n1/"], [0])
        assert one.stimulus_digest() != two.stimulus_digest()


class TestGoldenCache:
    def test_identical_stimulus_shares_one_trace(self):
        clear_caches()
        netlist = build_counter(4)
        compiled = compiled_for(netlist)
        one = random_testbench(netlist, 32, seed=1)
        two = random_testbench(netlist, 32, seed=1)
        assert golden_for(compiled, one) is golden_for(compiled, two)

    def test_different_stimulus_distinct_traces(self):
        clear_caches()
        netlist = build_counter(4)
        compiled = compiled_for(netlist)
        one = golden_for(compiled, random_testbench(netlist, 32, seed=1))
        two = golden_for(compiled, random_testbench(netlist, 32, seed=2))
        assert one is not two
