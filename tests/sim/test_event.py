"""Tests for the event-driven simulator (including cross-checks against
the compiled cycle simulator — two independent implementations)."""

import pytest

from repro.errors import SimulationError
from repro.logic.values import X
from repro.netlist.builder import NetlistBuilder
from repro.sim.cycle import CycleSimulator
from repro.sim.event import EventSimulator
from repro.sim.vectors import random_testbench
from tests.conftest import build_counter, build_shift_register, build_sticky


@pytest.mark.parametrize(
    "factory", [build_counter, build_shift_register, build_sticky]
)
def test_event_matches_cycle_simulator(factory):
    circuit = factory()
    bench = random_testbench(circuit, 25, seed=6)
    cycle_sim = CycleSimulator(circuit)
    event_sim = EventSimulator(circuit)
    for vector in bench.vectors:
        packed = cycle_sim.step(vector)
        named = event_sim.step(
            {
                name: (vector >> index) & 1
                for index, name in enumerate(circuit.inputs)
            }
        )
        for index, net in enumerate(circuit.outputs):
            assert named[net] == (packed >> index) & 1


class TestEventBehaviour:
    def test_unknown_inputs_produce_x(self, counter):
        sim = EventSimulator(counter)
        outputs = sim.step({})  # enable never driven
        # count value bits come from flops (known 0); wrap compare known
        assert outputs["value[0]"] == 0

    def test_x_propagates_through_logic(self):
        b = NetlistBuilder("xprop")
        a = b.input("a")
        c = b.input("c")
        b.output_net("y", b.xor_(a, c))
        sim = EventSimulator(b.build())
        outputs = sim.step({"a": 1})  # c stays X
        assert outputs["y"] == X

    def test_event_counting_is_sparse(self, shift_register):
        sim = EventSimulator(shift_register)
        sim.step({"si": 0})
        baseline = sim.events_processed
        # feeding the same value again should cause few new events
        sim.step({"si": 0})
        assert sim.events_processed - baseline < 10

    def test_poke_flop_propagates(self, sticky):
        sim = EventSimulator(sticky)
        sim.step({"trigger": 0, "observe": 1})
        sim.poke_flop("ff$sticky", 1)
        # combinational alarm = sticky & observe updates immediately
        assert sim.values["alarm"] == 1

    def test_poke_unknown_flop_raises(self, sticky):
        sim = EventSimulator(sticky)
        with pytest.raises(SimulationError):
            sim.poke_flop("ghost", 1)

    def test_bad_input_name_raises(self, counter):
        sim = EventSimulator(counter)
        with pytest.raises(SimulationError):
            sim.step({"not_an_input": 1})

    def test_flop_state_view(self, counter):
        sim = EventSimulator(counter)
        sim.step({"enable": 1})
        state = sim.flop_state()
        assert state["count[0]"] == 1

    def test_observer_sees_changes(self, toggle):
        events = []
        sim = EventSimulator(toggle)
        sim.observe(lambda cycle, net, value: events.append((cycle, net, value)))
        sim.step({"tick": 1})
        assert events  # tick input change + flop toggle recorded
        nets_changed = {net for _, net, _ in events}
        assert "tick" in nets_changed
