"""Cross-engine equivalence for the non-SEU fault models.

Every grading engine must agree with the bigint reference and with the
serial generalized replay for every fault model — the same adversarial
structure PR 1 established for SEUs, extended to multi-bit, stuck-at and
intermittent injection. Also locks the engine-selection contract: plain
SEU lists take the legacy fast path (early exit intact), generalized
lists take the per-cycle-force branch.
"""

import random

import pytest

from repro.faults.model import SeuFault
from repro.faults.models import get_fault_model
from repro.sim.backends import available_engines, get_engine
from repro.sim.backends.fused import FusedEngine
from repro.sim.cycle import replay_fault, run_golden
from repro.sim.inject import schedule_for
from repro.sim.parallel import grade_faults
from repro.sim.vectors import constant_testbench, random_testbench
from tests.conftest import build_counter, build_shift_register
from tests.sim.test_backends import random_netlist

MODELS = ["mbu:2", "mbu:3", "stuck_at_0", "stuck_at_1", "intermittent:4:2"]


def model_fault_sample(model_name, circuit, num_cycles, rng, count=70):
    population = get_fault_model(model_name).population(circuit, num_cycles)
    return [population[rng.randrange(len(population))] for _ in range(count)]


class TestScheduleFor:
    def test_plain_seu_lists_are_simple(self):
        faults = [SeuFault(cycle=1, flop_index=0), SeuFault(cycle=3, flop_index=2)]
        schedule = schedule_for(faults, 8, 4)
        assert schedule.simple and not schedule.persistent
        assert schedule.flips == {}  # fast path never reads event lists

    def test_mbu_is_transient_but_not_simple(self):
        faults = get_fault_model("mbu:2").population(build_counter(), 4)[:5]
        schedule = schedule_for(faults, 4, build_counter().num_ffs)
        assert not schedule.simple and not schedule.persistent
        assert sum(len(v) for v in schedule.flips.values()) == 10

    def test_stuck_at_is_persistent(self):
        faults = get_fault_model("stuck_at_1").population(build_counter(), 4)[:5]
        schedule = schedule_for(faults, 4, build_counter().num_ffs)
        assert schedule.persistent and not schedule.simple
        assert sum(len(v) for v in schedule.force_on.values()) == 5

    def test_out_of_range_flip_rejected(self):
        from repro.errors import CampaignError
        from repro.faults.models import MbuFault

        with pytest.raises(CampaignError, match="flips flop"):
            schedule_for([MbuFault(cycle=0, flop_index=2, width=3)], 4, 4)


class TestCrossEngineEquivalence:
    @pytest.mark.parametrize("model_name", MODELS)
    @pytest.mark.parametrize("seed", range(4))
    def test_all_engines_agree_with_bigint(self, model_name, seed):
        rng = random.Random(9000 + seed)
        circuit = random_netlist(rng)
        model = get_fault_model(model_name)
        if circuit.num_ffs < getattr(model, "width", 1):
            pytest.skip("circuit smaller than the MBU run")
        num_cycles = rng.randint(6, 20)
        bench = random_testbench(circuit, num_cycles, seed=seed)
        faults = model_fault_sample(model_name, circuit, num_cycles, rng)

        reference = grade_faults(circuit, bench, faults, backend="bigint")
        for name in available_engines():
            result = grade_faults(circuit, bench, faults, backend=name)
            assert result.fail_cycles == reference.fail_cycles, (name, seed)
            assert result.vanish_cycles == reference.vanish_cycles, (name, seed)

    @pytest.mark.parametrize("model_name", MODELS)
    def test_engines_agree_with_serial_replay(self, model_name):
        rng = random.Random(31)
        circuit = build_counter()
        bench = random_testbench(circuit, 14, seed=2)
        golden = run_golden(circuit, bench)
        faults = model_fault_sample(model_name, circuit, 14, rng, count=40)
        oracle = grade_faults(circuit, bench, faults, backend="fused")
        for index, fault in enumerate(faults):
            reference = replay_fault(circuit, bench, fault, golden)
            assert oracle.fail_cycles[index] == reference["fail_cycle"], (
                fault.describe()
            )
            assert oracle.vanish_cycles[index] == reference["vanish_cycle"], (
                fault.describe()
            )

    @pytest.mark.parametrize("model_name", MODELS)
    def test_fused_plan_path_agrees(self, model_name, monkeypatch):
        rng = random.Random(77)
        circuit = build_shift_register(5)
        bench = random_testbench(circuit, 16, seed=1)
        faults = model_fault_sample(model_name, circuit, 16, rng, count=66)
        native = grade_faults(circuit, bench, faults, backend="fused")
        monkeypatch.setattr(FusedEngine, "use_native", False)
        plan = grade_faults(circuit, bench, faults, backend="fused")
        assert plan.fail_cycles == native.fail_cycles
        assert plan.vanish_cycles == native.vanish_cycles

    def test_word_boundary_lane_counts(self):
        circuit = build_shift_register(6)
        bench = random_testbench(circuit, 24, seed=9)
        population = get_fault_model("stuck_at_1").population(circuit, 24)
        for count in (1, 63, 64, 65, 130):
            faults = population[:count]
            fused = grade_faults(circuit, bench, faults, backend="fused")
            bigint = grade_faults(circuit, bench, faults, backend="bigint")
            assert fused.fail_cycles == bigint.fail_cycles, count
            assert fused.vanish_cycles == bigint.vanish_cycles, count


class TestEarlyExitContract:
    def test_mbu_campaign_still_early_exits(self):
        """MBUs are transient: a shift register flushes them, and the
        generic fused branch must stop instead of simulating the tail."""
        shift = build_shift_register(4)
        bench = constant_testbench(shift, 200, value=0)
        faults = get_fault_model("mbu:2").population(shift, 3)
        engine = get_engine("fused")
        result = grade_faults(shift, bench, faults, backend="fused")
        assert engine.last_stats["cycles_executed"] < 15
        assert all(cycle != -1 for cycle in result.vanish_cycles)

    def test_stuck_at_campaign_runs_the_full_bench(self):
        """Persistent faults can re-diverge; no early exit allowed even
        when every lane momentarily matches the golden state."""
        shift = build_shift_register(4)
        bench = constant_testbench(shift, 60, value=0)
        faults = get_fault_model("stuck_at_0").population(shift, 3)
        engine = get_engine("fused")
        grade_faults(shift, bench, faults, backend="fused")
        assert engine.last_stats["cycles_executed"] == 60

    def test_seu_keeps_the_legacy_fast_path(self):
        """Plain SEU lists must report native-kernel stats (the legacy
        path), not the generic branch."""
        counter = build_counter()
        bench = random_testbench(counter, 12, seed=0)
        faults = [SeuFault(cycle=0, flop_index=0)]
        engine = get_engine("fused")
        grade_faults(counter, bench, faults, backend="fused")
        assert "native" in engine.last_stats
        assert engine.last_stats["native"] == bool(
            __import__("repro.sim.backends._native", fromlist=["native_kernel"])
            .native_kernel()
        )


class TestPersistentReconvergence:
    def test_vanish_is_the_final_suffix_not_the_first_match(self):
        """A stuck-at-0 fault on a flop whose golden value toggles
        matches the golden state on the golden-0 cycles; first-match
        semantics would wrongly call it silent."""
        from tests.conftest import build_toggle

        toggle = build_toggle()
        bench = constant_testbench(toggle, 12, value=0)
        population = get_fault_model("stuck_at_0").population(toggle, 12)
        fault = population[0]  # onset at cycle 0
        oracle = grade_faults(toggle, bench, [fault], backend="fused")
        reference = replay_fault(toggle, bench, fault)
        assert oracle.fail_cycles[0] == reference["fail_cycle"]
        assert oracle.vanish_cycles[0] == reference["vanish_cycle"]
        # Golden q alternates 0,1,0,1..., the forced flop holds 0: the
        # state matches on every even cycle and re-diverges on every odd
        # one. First-match semantics would report vanish at cycle 1; the
        # final-suffix rule must instead report the *last* convergence —
        # the even end-of-bench state, cycle 11.
        assert oracle.vanish_cycles[0] == 11

    def test_odd_length_bench_never_vanishes(self):
        """Same fault, bench one cycle shorter: the run now *ends* on a
        diverged state, so the candidate reset must leave vanish = -1."""
        from tests.conftest import build_toggle

        toggle = build_toggle()
        bench = constant_testbench(toggle, 11, value=0)
        fault = get_fault_model("stuck_at_0").population(toggle, 11)[0]
        oracle = grade_faults(toggle, bench, [fault], backend="fused")
        reference = replay_fault(toggle, bench, fault)
        assert oracle.vanish_cycles[0] == reference["vanish_cycle"] == -1
