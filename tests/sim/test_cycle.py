"""Unit tests for the scalar cycle simulator and golden traces."""

import pytest

from repro.errors import SimulationError
from repro.sim.compile import compile_netlist
from repro.sim.cycle import (
    CycleSimulator,
    replay_single_fault,
    run_golden,
)
from repro.sim.vectors import Testbench, constant_testbench, random_testbench
from tests.conftest import build_counter, build_shift_register, build_sticky


class TestStepping:
    def test_toggle_alternates(self, toggle):
        sim = CycleSimulator(toggle)
        values = [sim.step(0) & 1 for _ in range(6)]
        assert values == [0, 1, 0, 1, 0, 1]

    def test_counter_counts_when_enabled(self, counter):
        sim = CycleSimulator(counter)
        for expected in range(5):
            out = sim.step(1)  # enable=1
            assert out & 0xF == expected

    def test_counter_holds_when_disabled(self, counter):
        sim = CycleSimulator(counter)
        sim.step(1)
        sim.step(1)
        held = sim.step(0) & 0xF
        assert held == 2
        assert sim.step(0) & 0xF == 2

    def test_wrap_output(self):
        counter = build_counter(2)
        sim = CycleSimulator(counter)
        wraps = [(sim.step(1) >> 2) & 1 for _ in range(8)]
        # wrap asserted when the value is 3 (cycles 3 and 7)
        assert wraps == [0, 0, 0, 1, 0, 0, 0, 1]

    def test_accepts_precompiled(self, counter):
        compiled = compile_netlist(counter)
        sim = CycleSimulator(compiled)
        assert sim.step(1) == 0


class TestStateAccess:
    def test_get_set_state(self, counter):
        sim = CycleSimulator(counter)
        sim.set_state(0b1010)
        assert sim.get_state() == 0b1010
        assert sim.step(0) & 0xF == 0b1010

    def test_state_bounds_checked(self, counter):
        sim = CycleSimulator(counter)
        with pytest.raises(SimulationError):
            sim.set_state(1 << 10)

    def test_flip_flop_bit(self, counter):
        sim = CycleSimulator(counter)
        sim.flip_flop_bit(2)
        assert sim.get_state() == 0b0100
        sim.flip_flop_bit(2)
        assert sim.get_state() == 0

    def test_flip_bad_index(self, counter):
        sim = CycleSimulator(counter)
        with pytest.raises(SimulationError):
            sim.flip_flop_bit(99)

    def test_reset(self, counter):
        sim = CycleSimulator(counter)
        sim.step(1)
        sim.step(1)
        sim.reset()
        assert sim.get_state() == 0
        assert sim.cycle == 0

    def test_reset_preserves_x_as_zero_choice(self, counter):
        # reset() must reuse the x_as_zero given at construction instead
        # of silently reverting to the default
        sim = CycleSimulator(counter, x_as_zero=False)
        sim.step(1)
        sim.reset()
        assert sim.get_state() == 0
        assert sim._x_as_zero is False

    def test_reset_with_x_init_flop(self):
        from repro.logic.values import X
        from repro.netlist.builder import NetlistBuilder

        b = NetlistBuilder("xinit")
        q = b.dff("d", q="q", init=X, name="fx")
        b.buf(q, out="d")
        b.output_net("o", q)
        netlist = b.build()
        sim = CycleSimulator(netlist)  # x_as_zero=True: X becomes 0
        sim.step(0)
        sim.reset()
        assert sim.get_state() == 0
        with pytest.raises(SimulationError):
            CycleSimulator(netlist, x_as_zero=False)

    def test_peek_net(self, counter):
        sim = CycleSimulator(counter)
        sim.step(1)
        assert sim.peek_net("enable") == 1
        with pytest.raises(SimulationError):
            sim.peek_net("nonexistent")


class TestGoldenTrace:
    def test_trace_lengths(self, counter, counter_bench):
        trace = run_golden(counter, counter_bench)
        assert len(trace.outputs) == counter_bench.num_cycles
        assert len(trace.states) == counter_bench.num_cycles + 1

    def test_states_chain_consistently(self, counter, counter_bench):
        trace = run_golden(counter, counter_bench)
        sim = CycleSimulator(counter)
        for cycle, vector in enumerate(counter_bench.vectors):
            assert sim.get_state() == trace.states[cycle]
            assert sim.step(vector) == trace.outputs[cycle]
        assert sim.get_state() == trace.final_state()

    def test_final_state(self, counter):
        bench = constant_testbench(counter, 5, value=1)
        trace = run_golden(counter, bench)
        assert trace.final_state() == 5


class TestReplaySingleFault:
    def test_shift_register_fault_flushes_out(self):
        shift = build_shift_register(4)
        bench = constant_testbench(shift, 12, value=0)
        outcome = replay_single_fault(shift, bench, flop_index=0, inject_cycle=2)
        # the flipped bit marches to the output (fail) and then leaves (vanish)
        assert outcome["fail_cycle"] != -1
        assert outcome["vanish_cycle"] != -1
        assert outcome["vanish_cycle"] >= outcome["fail_cycle"] - 4

    def test_sticky_fault_is_latent_until_observed(self):
        sticky = build_sticky()
        # never observe, never trigger: alarm stays 0, state stays corrupted
        bench = constant_testbench(sticky, 10, value=0)
        outcome = replay_single_fault(sticky, bench, flop_index=0, inject_cycle=1)
        assert outcome["fail_cycle"] == -1
        assert outcome["vanish_cycle"] == -1

    def test_sticky_fault_fails_when_observed(self):
        sticky = build_sticky()
        observe_bit = sticky.inputs.index("observe")
        vectors = [0] * 10
        vectors[6] = 1 << observe_bit
        bench = Testbench(list(sticky.inputs), vectors)
        outcome = replay_single_fault(sticky, bench, flop_index=0, inject_cycle=1)
        assert outcome["fail_cycle"] == 6

    def test_injection_at_cycle_zero(self, counter):
        bench = constant_testbench(counter, 6, value=1)
        outcome = replay_single_fault(counter, bench, flop_index=3, inject_cycle=0)
        assert outcome["fail_cycle"] == 0  # value is a direct output
