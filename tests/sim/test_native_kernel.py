"""Differential tests for the vectorized / threaded native kernel.

The fused engine's C kernel went multi-word: fault populations wider
than 64 lanes span several uint64 words per flop row, dead lanes are
compacted away mid-campaign, and an optional persistent thread pool
splits the word range across workers. Every one of those paths must be
bit-exact against the pure-Python engines — these tests force each of
them on random netlists whose populations genuinely exceed one word.
"""

from __future__ import annotations

import pytest

from repro.faults.model import exhaustive_fault_list
from repro.sim.backends import get_engine
from repro.sim.backends._native import (
    configure_threads,
    default_threads,
    native_kernel,
)
from repro.sim.parallel import grade_faults
from repro.sim.vectors import random_testbench
from tests.property.randnet import random_netlist

pytestmark = pytest.mark.skipif(
    native_kernel() is None,
    reason="native kernel unavailable (no C compiler or REPRO_FUSED_NATIVE=0)",
)


def _wide_scenario(seed: int):
    """A random circuit whose fault population spans many lane words.

    65+ flops x 40 cycles puts thousands of faults in flight, so the
    kernel runs multi-word rows, triggers mid-campaign lane compaction
    and (when enabled) gives every pool thread a non-trivial chunk.
    """
    netlist = random_netlist(
        seed, min_flops=65, max_flops=96, max_gates=220, max_inputs=6
    )
    bench = random_testbench(netlist, 40, seed=1000 + seed)
    faults = exhaustive_fault_list(netlist, bench.num_cycles)
    assert len(faults) > 64  # must exceed one 64-lane word
    return netlist, bench, faults


@pytest.fixture
def restore_threads():
    """Put the kernel's thread count back however a test leaves it."""
    yield
    configure_threads(default_threads())


@pytest.mark.parametrize("seed", range(4))
def test_wide_population_bit_exact_vs_python_engines(seed):
    netlist, bench, faults = _wide_scenario(seed)
    fused = grade_faults(netlist, bench, faults, backend="fused")
    stats = get_engine("fused").last_stats
    assert stats.get("native"), "wide scenario must run the native kernel"
    for reference_backend in ("numpy", "bigint"):
        reference = grade_faults(
            netlist, bench, faults, backend=reference_backend
        )
        assert fused.fail_cycles == reference.fail_cycles, reference_backend
        assert fused.vanish_cycles == reference.vanish_cycles, reference_backend


@pytest.mark.parametrize("threads", [2, 3])
@pytest.mark.parametrize("seed", [5, 6])
def test_threaded_kernel_bit_exact(seed, threads, restore_threads):
    netlist, bench, faults = _wide_scenario(seed)
    reference = grade_faults(netlist, bench, faults, backend="numpy")
    configure_threads(threads)
    fused = grade_faults(netlist, bench, faults, backend="fused")
    stats = get_engine("fused").last_stats
    assert stats.get("native")
    assert stats.get("threads") == threads
    assert fused.fail_cycles == reference.fail_cycles
    assert fused.vanish_cycles == reference.vanish_cycles


def test_thread_count_changes_do_not_change_results(restore_threads):
    netlist, bench, faults = _wide_scenario(7)
    outcomes = []
    for threads in (1, 2, 4):
        configure_threads(threads)
        result = grade_faults(netlist, bench, faults, backend="fused")
        outcomes.append((result.fail_cycles, result.vanish_cycles))
    assert outcomes[0] == outcomes[1] == outcomes[2]


def test_compaction_reported_and_exact_on_b14_sample():
    """A campaign long enough to retire lanes mid-flight compacts them
    (visible in last_stats) without perturbing a single verdict."""
    netlist = random_netlist(
        11, min_flops=70, max_flops=90, max_gates=200, max_inputs=5
    )
    bench = random_testbench(netlist, 64, seed=77)
    faults = exhaustive_fault_list(netlist, bench.num_cycles)
    fused = grade_faults(netlist, bench, faults, backend="fused")
    stats = get_engine("fused").last_stats
    assert stats.get("native")
    assert "repacks" in stats
    reference = grade_faults(netlist, bench, faults, backend="numpy")
    assert fused.fail_cycles == reference.fail_cycles
    assert fused.vanish_cycles == reference.vanish_cycles
